"""Span tracing in virtual time.

A span is one named interval on one track (``pid`` = one simulated rank, or
:data:`~repro.telemetry.KERNEL_PID` for the kernel itself).  Spans nest
freely on a track — the Chrome trace-event viewer infers nesting from
containment of complete (``"X"``) events — and work both as explicit
``begin``/``end`` pairs (the natural shape inside generator-based simulation
code) and as context managers for host-side code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.core import Telemetry


class Span:
    """One open interval; ``end()`` stamps the close time and records it.

    While open, the span is tracked in ``Telemetry.open_spans()`` so a
    mid-run export (the online monitor's view) still sees in-flight work.
    """

    __slots__ = ("name", "cat", "pid", "tid", "t0", "t1", "args", "_tel")

    def __init__(
        self,
        tel: "Telemetry",
        name: str,
        pid: int,
        tid: int,
        cat: str,
        args: dict[str, Any] | None,
    ):
        self._tel = tel
        self.name = name
        self.cat = cat
        self.pid = pid
        self.tid = tid
        self.t0 = tel.now()
        self.t1: float | None = None
        self.args = args
        tel._open_span(self)

    @property
    def duration(self) -> float:
        if self.t1 is None:
            raise RuntimeError(f"span {self.name!r} not ended")
        return self.t1 - self.t0

    def end(self, **extra: Any) -> "Span":
        """Close the span; extra keywords are merged into its args."""
        if self.t1 is not None:
            raise RuntimeError(f"span {self.name!r} ended twice")
        self.t1 = self._tel.now()
        if extra:
            self.args = {**(self.args or {}), **extra}
        self._tel._record_span(self)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.t1 is None:
            self.end()


class NullSpan:
    """Shared no-op span returned by disabled telemetry."""

    __slots__ = ()
    name = "null"
    t0 = 0.0
    t1 = 0.0
    duration = 0.0

    def end(self, **extra: Any) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = NullSpan()
