"""Scalasca 1.4 model: runtime summarization + post-mortem replay.

Scalasca's measurement phase resembles Score-P's profile mode (it shares
lineage) with a slightly heavier per-call path (call-path hashing for the
wait-state search) and an EPILOG-era collation step at finalize: a gather
of per-rank profiles to intermediate collectors plus the report write.  The
post-mortem trace replay runs *after* MPI_Finalize in the paper's
measurement window, so it is tracked but not charged between init and
finalize.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.iosim.filesystem import ParallelFS
from repro.mpi.pmpi import CallRecord, Interceptor

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.world import ProgramAPI, RankContext


class ScalascaInterceptor(Interceptor):
    """Scalasca runtime summarization."""

    #: per-call callpath hash + metric accumulation
    PER_CALL_CPU = 0.8e-6
    #: per-rank profile contribution gathered at finalize
    PROFILE_BYTES_PER_RANK = 96 * 1024
    #: collation fan-in (ranks per collector)
    COLLATE_FANIN = 64

    def __init__(self, mpi: "ProgramAPI", fs: ParallelFS, amortize_fixed: float = 1.0):
        self.mpi = mpi
        self.fs = fs
        self.amortize_fixed = amortize_fixed
        self.calls = 0
        self.postmortem_seconds = 0.0

    def on_exit(self, ctx: "RankContext", record: CallRecord):
        if record.name == "MPI_Finalize":
            return self._finalize()
        self.calls += 1
        return self.PER_CALL_CPU

    def _finalize(self):
        """Collation: gather profiles over a fan-in tree, root writes."""
        mpi = self.mpi
        size = mpi.size
        scale = self.amortize_fixed
        cost = mpi.ctx.world.cost
        # Stage 1: send my profile towards my collector (modelled time).
        stages = max(1, math.ceil(math.log(max(2, size), self.COLLATE_FANIN)))
        per_stage = cost.alpha + self.PROFILE_BYTES_PER_RANK * cost.beta
        yield mpi.ctx.kernel.timeout(stages * per_stage * scale)
        if mpi.rank == 0:
            nbytes = int(self.PROFILE_BYTES_PER_RANK * size * scale)
            yield from self.fs.metadata_op(scale)
            yield self.fs.raw_write(nbytes)
            yield from self.fs.metadata_op(scale)
        # Post-mortem analysis estimate (outside the measured window).
        self.postmortem_seconds = 0.02 * math.log2(max(2, size))
