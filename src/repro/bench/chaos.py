"""Chaos bench: how the coupling behaves when faults are injected mid-run.

Each row runs the same fig14-style coupled workload (an instrumented SP
kernel streaming into a multi-rank analyzer) under one fault plan and
reports whether the application still completed, whether the run degraded,
and what fraction of emitted packs never reached analysis.  A healthy
plan-free baseline row anchors the comparison and supplies the virtual
wall-time used to place the fault anchor (paper-spirit: faults strike in
the middle of the streaming phase, not during startup or teardown).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.apps.nas import SP
from repro.core.session import CouplingSession
from repro.errors import ConfigError
from repro.faults import CANNED_PLANS, FaultPlan, make_plan
from repro.instrument.overhead import InstrumentationCost
from repro.network.machine import MachineSpec, TERA100
from repro.telemetry import Telemetry
from repro.util.tables import Table

#: where in the healthy run's app wall-time the canned plans anchor
_ANCHOR_FRACTION = 0.35


@dataclass
class ChaosPoint:
    """One fault-plan run of the reference coupled workload."""

    plan: str
    writers: int
    readers: int
    completed: bool
    degraded: bool
    faults_injected: int
    dead_ranks: int
    packs_dropped: int
    packs_rejected: int
    data_loss_fraction: float
    app_walltime: float
    alerts: int


@dataclass
class ChaosResult:
    """Fault-plan sweep over the reference coupled workload."""

    machine: str
    scale: str
    seed: int
    points: list[ChaosPoint] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            [
                "plan", "writers", "readers", "completed", "degraded",
                "faults_injected", "dead_ranks", "packs_dropped",
                "packs_rejected", "data_loss_pct", "app_walltime_s", "alerts",
            ],
            title=f"Chaos resilience ({self.machine}, scale={self.scale})",
        )
        for p in self.points:
            t.add_row(
                p.plan, p.writers, p.readers,
                "yes" if p.completed else "no",
                "yes" if p.degraded else "no",
                p.faults_injected, p.dead_ranks, p.packs_dropped,
                p.packs_rejected, f"{p.data_loss_fraction * 100:.2f}",
                f"{p.app_walltime:.4f}", p.alerts,
            )
        return t


def load_plan(spec: str, *, at: float, seed: int = 0) -> FaultPlan:
    """Resolve a ``--chaos`` argument: a canned plan name or a JSON file.

    Canned names are anchored at virtual time ``at``; a JSON file carries
    its own absolute timestamps and is used verbatim.
    """
    if spec in CANNED_PLANS:
        return make_plan(spec, at=at, seed=seed)
    path = Path(spec)
    if path.suffix == ".json" or path.exists():
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise ConfigError(f"cannot read fault plan {spec!r}: {exc}") from None
        return FaultPlan.from_json(data)
    raise ConfigError(
        f"unknown fault plan {spec!r}: not a canned name "
        f"({', '.join(CANNED_PLANS)}) and not a JSON file"
    )


def _workload(scale: str):
    """(kernel, analyzer ranks): a crash needs >= 2 readers to survive."""
    if scale == "paper":
        return SP(256, "C", iterations=3), 16
    if scale == "small":
        return SP(16, "C", iterations=3), 4
    raise ConfigError(f"unknown scale {scale!r}")


def _session(kernel, readers, machine, seed, telemetry):
    # Small packs so every writer flushes a stream of them: the tamper
    # faults ("every Nth pack") and the loss accounting need traffic.
    cost = InstrumentationCost(block_size=4096, na_buffers=2)
    session = CouplingSession(
        machine=machine, seed=seed, instrumentation=cost, telemetry=telemetry
    )
    name = session.add_application(kernel)
    session.set_analyzer(nprocs=readers)
    if telemetry is not None:
        session.enable_monitor()
    return session, name


def _point(result, name: str, plan_label: str, readers: int) -> ChaosPoint:
    run = result.app(name)
    faults = result.faults or {}
    health = result.health or {}
    stats = result.analyzer_stats or {}
    return ChaosPoint(
        plan=plan_label,
        writers=run.nprocs,
        readers=readers,
        completed=run.walltime > 0,
        degraded=result.degraded,
        faults_injected=faults.get("injected", 0),
        dead_ranks=len(faults.get("dead_ranks", ())),
        packs_dropped=run.packs_dropped,
        packs_rejected=stats.get("packs_rejected", 0),
        data_loss_fraction=result.data_loss_fraction,
        app_walltime=run.walltime,
        alerts=len(health.get("alerts", ())),
    )


def chaos_resilience(
    scale: str = "small",
    machine: MachineSpec = TERA100,
    seed: int = 0,
    telemetry: Telemetry | None = None,
    plan: str | FaultPlan | None = None,
) -> ChaosResult:
    """Run the coupled workload healthy, then under fault plans.

    ``plan`` narrows the sweep to one plan (a canned name, a JSON plan
    file, or a :class:`FaultPlan`); by default every canned plan runs.
    """
    kernel, readers = _workload(scale)
    result = ChaosResult(machine=machine.name, scale=scale, seed=seed)

    # Healthy baseline: supplies the row of reference numbers and the
    # wall-time that anchors the canned plans mid-streaming-phase.
    session, name = _session(kernel, readers, machine, seed, telemetry)
    healthy = session.run()
    result.points.append(_point(healthy, name, "none", readers))
    anchor = healthy.app(name).walltime * _ANCHOR_FRACTION

    if plan is None:
        plans = [(p, make_plan(p, at=anchor, seed=seed)) for p in CANNED_PLANS]
    elif isinstance(plan, FaultPlan):
        plans = [(plan.name, plan)]
    else:
        resolved = load_plan(plan, at=anchor, seed=seed)
        plans = [(resolved.name, resolved)]

    for label, fault_plan in plans:
        session, name = _session(kernel, readers, machine, seed, telemetry)
        session.inject_faults(fault_plan)
        chaotic = session.run()
        result.points.append(_point(chaotic, name, label, readers))
    return result
