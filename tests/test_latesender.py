"""Distributed late-sender analysis: local matching, sharding, end-to-end."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.analysis import AnalysisConfig
from repro.analysis.latesender import LateSenderAnalysis
from repro.core.session import CouplingSession
from repro.instrument.events import CALL_IDS, EVENT_DTYPE
from repro.network.machine import small_test_machine

MACHINE = small_test_machine(nodes=256, cores_per_node=4)


def events(rows):
    arr = np.zeros(len(rows), dtype=EVENT_DTYPE)
    for i, (name, peer, tag, t0, t1) in enumerate(rows):
        arr[i] = (CALL_IDS[name], 0, peer, tag, 4, 8, t0, t1)
    return arr


class TestLocalMatching:
    def test_basic_pairing(self):
        ls = LateSenderAnalysis("app", 2)
        # rank 0 sends at t=5; rank 1's recv completes at t=6.
        ls.update(0, events([("MPI_Send", 1, 0, 5.0, 5.1)]))
        ls.update(1, events([("MPI_Recv", 0, 0, 1.0, 6.0)]))
        ls.finalize()
        assert ls.matched_pairs == 1
        assert ls.unmatched_sends == 0 and ls.unmatched_recvs == 0
        assert ls.late_send_time[1] == pytest.approx(1.0)  # 6.0 - 5.0
        assert ls.late_send_time[0] == 0.0

    def test_fifo_channel_matching(self):
        ls = LateSenderAnalysis("app", 2)
        ls.update(0, events([
            ("MPI_Send", 1, 0, 1.0, 1.1),
            ("MPI_Send", 1, 0, 2.0, 2.1),
        ]))
        ls.update(1, events([
            ("MPI_Recv", 0, 0, 0.0, 1.5),
            ("MPI_Recv", 0, 0, 0.0, 2.5),
        ]))
        ls.finalize()
        assert ls.matched_pairs == 2
        assert ls.late_send_time[1] == pytest.approx(0.5 + 0.5)

    def test_tags_separate_channels(self):
        ls = LateSenderAnalysis("app", 2)
        ls.update(0, events([("MPI_Send", 1, 7, 1.0, 1.1)]))
        ls.update(1, events([("MPI_Recv", 0, 8, 0.0, 2.0)]))
        ls.finalize()
        assert ls.matched_pairs == 0
        assert ls.unmatched_sends == 1 and ls.unmatched_recvs == 1

    def test_wait_completions_count_as_recv(self):
        ls = LateSenderAnalysis("app", 2)
        ls.update(0, events([("MPI_Isend", 1, 0, 1.0, 1.0)]))
        ls.update(1, events([("MPI_Wait", 0, 0, 0.5, 3.0)]))
        ls.finalize()
        assert ls.matched_pairs == 1
        assert ls.late_send_time[1] == pytest.approx(2.0)

    def test_unresolved_peers_ignored(self):
        ls = LateSenderAnalysis("app", 2)
        ls.update(0, events([("MPI_Wait", -1, -1, 0.0, 1.0)]))  # send-side wait
        ls.finalize()
        assert ls.matched_pairs == 0 and ls.unmatched_recvs == 0

    def test_double_finalize_rejected(self):
        ls = LateSenderAnalysis("app", 2)
        ls.finalize()
        with pytest.raises(ReproError):
            ls.finalize()


class TestSharding:
    def _populated(self):
        ls = LateSenderAnalysis("app", 4)
        for src in range(4):
            dst = (src + 1) % 4
            ls.update(src, events([("MPI_Send", dst, 0, 1.0 * src, 1.0 * src)]))
            ls.update(dst, events([("MPI_Recv", src, 0, 0.0, 2.0 * src + 1)]))
        return ls

    def test_shards_route_by_sender(self):
        ls = self._populated()
        packets = ls.shard(2)
        for shard_idx, packet in enumerate(packets):
            for (src, _dst, _tag) in packet["sends"]:
                assert src % 2 == shard_idx
            for (src, _dst, _tag) in packet["recvs"]:
                assert src % 2 == shard_idx

    def test_shard_exchange_equals_local(self):
        """Distributed matching produces identical results to local."""
        local = self._populated()
        local.finalize()

        distributed = self._populated()
        packets = distributed.shard(3)
        distributed.reset_local()
        shards = [LateSenderAnalysis("app", 4) for _ in range(3)]
        for shard, packet in zip(shards, packets):
            shard.absorb(packet)
            shard.finalize()
        merged = shards[0]
        for other in shards[1:]:
            merged.merge(other)
        assert merged.matched_pairs == local.matched_pairs
        assert merged.late_send_time == pytest.approx(local.late_send_time)

    def test_absorb_wrong_app_rejected(self):
        ls = LateSenderAnalysis("a", 2)
        with pytest.raises(ReproError):
            ls.absorb({"app": "b", "sends": {}, "recvs": {}})

    def test_merge_finalized_mismatch_rejected(self):
        a = LateSenderAnalysis("x", 2)
        b = LateSenderAnalysis("x", 2)
        a.finalize()
        with pytest.raises(ReproError):
            a.merge(b)


class TestEndToEnd:
    def test_session_with_latesender(self):
        from repro.apps.nas import LU

        cfg = AnalysisConfig(modules=("profile", "latesender"))
        session = CouplingSession(machine=MACHINE, seed=9, analysis=cfg)
        name = session.add_application(LU(16, "C", iterations=1))
        session.set_analyzer(nprocs=4)  # several analyzer ranks -> real exchange
        result = session.run()
        ls = result.report.chapter(name).latesender
        assert ls is not None
        summary = ls.summary()
        # LU is a blocking-recv wavefront: every send matches a receive.
        assert summary["matched_pairs"] > 0
        assert summary["unmatched_recvs"] == 0
        assert summary["late_time_total"] > 0  # the pipeline fill is real waiting
        assert "Late-sender analysis" in result.report.render()

    def test_matched_pairs_equal_send_count(self):
        from repro.apps.nas import LU

        cfg = AnalysisConfig(modules=("profile", "latesender"))
        session = CouplingSession(machine=MACHINE, seed=9, analysis=cfg)
        name = session.add_application(LU(16, "C", iterations=1))
        session.set_analyzer(nprocs=4)
        result = session.run()
        chapter = result.report.chapter(name)
        sends = next(r[1] for r in chapter.profile.rows() if r[0] == "MPI_Send")
        assert chapter.latesender.matched_pairs == sends

    def test_single_analyzer_rank_degenerate_exchange(self):
        from repro.apps.nas import CG

        cfg = AnalysisConfig(modules=("latesender",))
        session = CouplingSession(machine=MACHINE, seed=9, analysis=cfg)
        name = session.add_application(CG(8, "C", iterations=2))
        session.set_analyzer(nprocs=1)
        result = session.run()
        ls = result.report.chapter(name).latesender
        # CG uses sendrecv: sends resolve, their receive side completes in
        # the same call, which is recorded as a Sendrecv (send family) —
        # the module matches what it can see without inventing pairs.
        assert ls.summary()["matched_pairs"] >= 0
