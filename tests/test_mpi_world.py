"""World, launcher, partitions, PMPI interception, program API."""

import pytest

from repro.errors import ConfigError, MPIError, SimulationError
from repro.mpi import MPMDLauncher
from repro.mpi.pmpi import CallRecord, Interceptor
from repro.vmpi.virtualization import VirtualizedLauncher


def _noop_app(mpi, work=0.0):
    yield from mpi.init()
    if work:
        yield from mpi.compute(work)
    yield from mpi.comm_world.barrier()
    yield from mpi.finalize()


class TestLauncher:
    def test_single_program(self, machine):
        launcher = MPMDLauncher(machine=machine)
        launcher.add_program("a", nprocs=4, main=_noop_app)
        world = launcher.run()
        assert world.nranks == 4
        assert world.app_walltime("a") >= 0

    def test_duplicate_program_name_rejected(self, machine):
        launcher = MPMDLauncher(machine=machine)
        launcher.add_program("a", nprocs=2, main=_noop_app)
        with pytest.raises(ConfigError):
            launcher.add_program("a", nprocs=2, main=_noop_app)

    def test_launch_twice_rejected(self, machine):
        launcher = MPMDLauncher(machine=machine)
        launcher.add_program("a", nprocs=1, main=_noop_app)
        launcher.run()
        with pytest.raises(ConfigError):
            launcher.launch()

    def test_no_programs_rejected(self, machine):
        with pytest.raises(ConfigError):
            MPMDLauncher(machine=machine).launch()

    def test_bad_nprocs_rejected(self, machine):
        launcher = MPMDLauncher(machine=machine)
        with pytest.raises(ConfigError):
            launcher.add_program("a", nprocs=0, main=_noop_app)

    def test_partition_layout(self, machine):
        launcher = MPMDLauncher(machine=machine)
        launcher.add_program("a", nprocs=3, main=_noop_app)
        launcher.add_program("b", nprocs=5, main=_noop_app)
        world = launcher.run()
        a = world.partition_by_name("a")
        b = world.partition_by_name("b")
        assert list(a.global_ranks) == [0, 1, 2]
        assert list(b.global_ranks) == [3, 4, 5, 6, 7]
        assert world.partition_by_name("missing") is None

    def test_missing_finalize_detected(self, machine):
        def bad(mpi):
            yield from mpi.init()
            # forgets finalize

        launcher = MPMDLauncher(machine=machine)
        launcher.add_program("bad", nprocs=1, main=bad)
        with pytest.raises(SimulationError, match="finalize"):
            launcher.run()

    def test_missing_init_detected(self, machine):
        def bad(mpi):
            yield from mpi.finalize()

        launcher = MPMDLauncher(machine=machine)
        launcher.add_program("bad", nprocs=1, main=bad)
        with pytest.raises(SimulationError, match="init"):
            launcher.run()


class TestVirtualization:
    def test_plain_mpmd_shares_world(self, machine):
        sizes = []

        def probe(mpi):
            yield from mpi.init()
            sizes.append(mpi.comm_world.size)
            yield from mpi.finalize()

        launcher = MPMDLauncher(machine=machine)
        launcher.add_program("a", nprocs=2, main=probe)
        launcher.add_program("b", nprocs=3, main=probe)
        launcher.run()
        assert sizes == [5] * 5  # everyone sees the full world

    def test_virtualized_worlds_are_partition_scoped(self, machine):
        views = []

        def probe(mpi):
            yield from mpi.init()
            views.append(
                (mpi.partition.name, mpi.comm_world.size, mpi.comm_universe.size)
            )
            yield from mpi.comm_world.barrier()  # partition-local barrier
            yield from mpi.finalize()

        launcher = VirtualizedLauncher(machine=machine)
        launcher.add_program("a", nprocs=2, main=probe)
        launcher.add_program("b", nprocs=3, main=probe)
        launcher.run()
        for name, world_size, universe_size in views:
            assert universe_size == 5
            assert world_size == (2 if name == "a" else 3)

    def test_same_program_unmodified_alone_or_colaunched(self, machine):
        """The transparency property: identical code both ways."""
        results = {}

        def app(mpi, key):
            yield from mpi.init()
            total = yield from mpi.comm_world.allreduce(nbytes=8, payload=mpi.rank)
            results.setdefault(key, []).append(total)
            yield from mpi.finalize()

        solo = VirtualizedLauncher(machine=machine)
        solo.add_program("app", nprocs=4, main=app, key="solo")
        solo.run()

        co = VirtualizedLauncher(machine=machine)
        co.add_program("app", nprocs=4, main=app, key="co")
        co.add_program("other", nprocs=4, main=app, key="other")
        co.run()
        assert results["solo"] == results["co"] == [6, 6, 6, 6]

    def test_universe_enables_cross_partition_p2p(self, machine):
        got = []

        def sender(mpi):
            yield from mpi.init()
            target = mpi.partition_by_name("recv")
            yield from mpi.comm_universe.send(
                target.first_global_rank, nbytes=8, tag=77, payload="hello"
            )
            yield from mpi.finalize()

        def receiver(mpi):
            yield from mpi.init()
            status = yield from mpi.comm_universe.recv(tag=77)
            got.append(status.payload)
            yield from mpi.finalize()

        launcher = VirtualizedLauncher(machine=machine)
        launcher.add_program("send", nprocs=1, main=sender)
        launcher.add_program("recv", nprocs=1, main=receiver)
        launcher.run()
        assert got == ["hello"]


class TestProgramAPI:
    def test_wtime_advances(self, machine):
        times = []

        def app(mpi):
            yield from mpi.init()
            t0 = mpi.wtime()
            yield from mpi.compute(1.5)
            times.append(mpi.wtime() - t0)
            yield from mpi.finalize()

        launcher = MPMDLauncher(machine=machine)
        launcher.add_program("a", nprocs=1, main=app)
        launcher.run()
        assert times == [1.5]

    def test_compute_flops_uses_machine_rate(self, machine):
        spans = []

        def app(mpi):
            yield from mpi.init()
            t0 = mpi.now
            yield from mpi.compute_flops(machine.core_flops_effective * 2.0)
            spans.append(mpi.now - t0)
            yield from mpi.finalize()

        launcher = MPMDLauncher(machine=machine)
        launcher.add_program("a", nprocs=1, main=app)
        launcher.run()
        assert spans == [pytest.approx(2.0)]

    def test_negative_compute_rejected(self, machine):
        def app(mpi):
            yield from mpi.init()
            yield from mpi.compute(-1)
            yield from mpi.finalize()

        launcher = MPMDLauncher(machine=machine)
        launcher.add_program("a", nprocs=1, main=app)
        with pytest.raises(SimulationError):
            launcher.run()

    def test_double_finalize_rejected(self, machine):
        def app(mpi):
            yield from mpi.init()
            yield from mpi.finalize()
            yield from mpi.finalize()

        launcher = MPMDLauncher(machine=machine)
        launcher.add_program("a", nprocs=1, main=app)
        with pytest.raises(SimulationError, match="double finalize"):
            launcher.run()

    def test_posix_calls_validated(self, machine):
        def app(mpi):
            yield from mpi.init()
            yield from mpi.posix("unlink")
            yield from mpi.finalize()

        launcher = MPMDLauncher(machine=machine)
        launcher.add_program("a", nprocs=1, main=app)
        with pytest.raises(SimulationError):
            launcher.run()

    def test_app_walltime_requires_completion(self, machine):
        launcher = MPMDLauncher(machine=machine)
        launcher.add_program("a", nprocs=2, main=_noop_app)
        world = launcher.launch()
        with pytest.raises(MPIError):
            world.app_walltime("a")
        world.run()
        assert world.app_walltime("a") >= 0


class TestPMPI:
    def test_interceptor_sees_calls_in_order(self, machine):
        calls = []

        class Recorder(Interceptor):
            def on_exit(self, ctx, record: CallRecord):
                calls.append(record.name)

        def app(mpi):
            mpi.ctx.pmpi.attach(Recorder())
            yield from mpi.init()
            yield from mpi.comm_world.barrier()
            yield from mpi.finalize()

        launcher = MPMDLauncher(machine=machine)
        launcher.add_program("a", nprocs=1, main=app)
        launcher.run()
        assert calls == ["MPI_Init", "MPI_Barrier", "MPI_Finalize"]

    def test_interceptor_charges_time(self, machine):
        class Expensive(Interceptor):
            def on_exit(self, ctx, record):
                return 0.25  # seconds per call

        spans = {}

        def app(mpi, key, intercept):
            if intercept:
                mpi.ctx.pmpi.attach(Expensive())
            yield from mpi.init()
            yield from mpi.comm_world.barrier()
            yield from mpi.finalize()
            spans[key] = mpi.now

        for key, flag in (("plain", False), ("hooked", True)):
            launcher = MPMDLauncher(machine=machine)
            launcher.add_program("a", nprocs=1, main=app, key=key, intercept=flag)
            launcher.run()
        assert spans["hooked"] >= spans["plain"] + 0.74  # three calls x 0.25

    def test_interceptor_detached_after_finalize(self, machine):
        events = []

        class Tracker(Interceptor):
            def on_detach(self, ctx):
                events.append("detached")

        def app(mpi):
            mpi.ctx.pmpi.attach(Tracker())
            yield from mpi.init()
            yield from mpi.finalize()
            assert not mpi.ctx.pmpi.active

        launcher = MPMDLauncher(machine=machine)
        launcher.add_program("a", nprocs=1, main=app)
        launcher.run()
        assert events == ["detached"]

    def test_record_fields_for_p2p(self, machine):
        records = []

        class Recorder(Interceptor):
            def on_exit(self, ctx, record):
                if record.name in ("MPI_Send", "MPI_Recv"):
                    records.append(record)

        def app(mpi):
            mpi.ctx.pmpi.attach(Recorder())
            yield from mpi.init()
            comm = mpi.comm_world
            if comm.rank == 0:
                yield from comm.send(1, nbytes=512, tag=6)
            else:
                yield from comm.recv()
            yield from mpi.finalize()

        launcher = MPMDLauncher(machine=machine)
        launcher.add_program("a", nprocs=2, main=app)
        launcher.run()
        send = next(r for r in records if r.name == "MPI_Send")
        recv = next(r for r in records if r.name == "MPI_Recv")
        assert send.peer == 1 and send.nbytes == 512 and send.tag == 6
        # Wildcard receive resolved by the post hook:
        assert recv.peer == 0 and recv.nbytes == 512 and recv.tag == 6
        assert recv.t_end >= recv.t_start

    def test_bad_hook_return_type_rejected(self, machine):
        class Broken(Interceptor):
            def on_exit(self, ctx, record):
                return "oops"

        def app(mpi):
            mpi.ctx.pmpi.attach(Broken())
            yield from mpi.init()
            yield from mpi.finalize()

        launcher = MPMDLauncher(machine=machine)
        launcher.add_program("a", nprocs=1, main=app)
        with pytest.raises(SimulationError):
            launcher.run()
