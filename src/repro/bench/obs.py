"""Obs bench: gate the unified observability bus against its own cost.

Runs the fig14-style coupled workload (an instrumented SP kernel streaming
into the analyzer partition) with every observation plane enabled — health
monitor, POP metrics with the legacy NDJSON stream, steering, provenance —
twice: once without the bus (hub-off) and once with the bus publishing to
a file sink plus an in-memory ring (hub-on).  The lane self-gates before
it reports anything:

* **bit-identity** — the hub-on run's simulation fingerprint (walltimes,
  event/pack counts, analyzer byte totals) must equal the hub-off run's:
  the bus observes, it never perturbs;
* **byte-identity** — the bus file sink's records of the POP metrics
  schema must be byte-for-byte the legacy
  :class:`~repro.telemetry.stream_export.MetricsStreamWriter` stream;
* **count self-consistency** — the bus's per-schema record counts must
  match each plane's own totals (telemetry records, monitor alerts,
  steering decisions, metrics stream lines);
* **host overhead** — paired hub-off/hub-on runs, best-of-N minimum pair
  ratio below ``overhead_budget`` (default 5%), the same
  noise-robust gate the selfperf lane uses.

Any gate failure raises :class:`~repro.errors.ConfigError`, so *running
the lane is the test*.  ``ndjson_dir`` (set by ``--json``) keeps the
hub-on run's unified stream as ``BENCH_obs.ndjson`` — the CI artefact a
release can be audited from with ``python -m repro.obs query``.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.apps.nas import SP
from repro.core.session import CouplingSession
from repro.errors import ConfigError
from repro.network.machine import MachineSpec, TERA100
from repro.obs.registry import (
    HEALTH_SCHEMA,
    METRICS_SCHEMA,
    STEERING_SCHEMA,
    TELEMETRY_SCHEMA,
)
from repro.telemetry import Telemetry, hostprof
from repro.telemetry.export import jsonl_records
from repro.telemetry.popmetrics import PopConfig
from repro.util.tables import Table

#: name of the unified NDJSON artefact kept under ``--json``
ARTIFACT_NAME = "BENCH_obs.ndjson"


def _workload(scale: str) -> SP:
    if scale == "paper":
        return SP(64, "C", iterations=3)
    if scale == "small":
        return SP(16, "C", iterations=3)
    raise ConfigError(f"unknown scale {scale!r}")


@dataclass
class ObsResult:
    """Per-schema round-trip accounting of one gated bus run."""

    machine: str
    scale: str
    seed: int
    host: dict[str, Any]
    overhead_budget: float
    overhead_ratio: float | None = None
    #: ``ObservabilityBus.summary()`` of the gating hub-on run
    bus: dict[str, Any] | None = None
    #: ``(schema, kinds, records, plane_records)`` per published schema
    points: list[tuple[str, int, int, int]] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            ["schema", "kinds", "bus_records", "plane_records"],
            title=(
                f"Observability bus round-trip ({self.machine}, "
                f"scale={self.scale}, seed={self.seed})"
            ),
        )
        for schema, kinds, records, plane in self.points:
            t.add_row(schema, kinds, records, plane)
        return t


def _run_once(
    scale: str,
    machine: MachineSpec,
    seed: int,
    workdir: Path,
    tag: str,
    with_bus: bool,
):
    """One fully observed coupled run; hub on or off is the only difference."""
    session = CouplingSession(machine=machine, seed=seed, telemetry=Telemetry())
    name = session.add_application(_workload(scale))
    session.set_analyzer(ratio=4.0)
    session.enable_monitor()
    legacy = workdir / f"pop_{tag}.ndjson"
    session.enable_pop_metrics(PopConfig(window=0.5), stream=str(legacy))
    session.enable_steering()
    session.enable_provenance()
    unified = workdir / f"unified_{tag}.ndjson"
    if with_bus:
        session.enable_observability(str(unified))
    t0 = hostprof.host_now()
    run = session.run()
    wall = hostprof.host_now() - t0
    return session, run, run.app(name), wall, legacy, unified


def _fingerprint(app, stats) -> tuple:
    """The simulation outputs that must not move when the bus is on."""
    return (
        app.walltime, app.events, app.packs,
        stats["packs"], stats["bytes"], stats["bytes_wire"],
    )


def _schema_total(bus_summary: dict[str, Any], schema: str) -> int:
    return sum(bus_summary["schemas"].get(schema, {}).values())


def obs_roundtrip(
    scale: str = "small",
    machine: MachineSpec = TERA100,
    seed: int = 0,
    telemetry: Telemetry | None = None,
    overhead_budget: float = 0.05,
    repeats: int = 8,
    ndjson_dir: str | None = None,
) -> ObsResult:
    """Round-trip every plane through the bus; self-gate identity and cost.

    ``telemetry`` (the driver's ``--telemetry`` flag) is accepted for
    driver uniformity but unused: the lane's paired runs each need a fresh
    per-run :class:`Telemetry` so hub-on and hub-off observe identical,
    independent pipelines.
    """
    if repeats < 1:
        raise ConfigError(f"repeats must be >= 1, got {repeats}")
    result = ObsResult(
        machine=machine.name, scale=scale, seed=seed,
        host=hostprof.host_environment(), overhead_budget=overhead_budget,
    )
    with tempfile.TemporaryDirectory(prefix="bench_obs_") as tmp:
        workdir = Path(tmp)

        # -- gate 1: bit-identity, hub off vs on -------------------------------
        _, ref_run, ref_app, _, ref_legacy, _ = _run_once(
            scale, machine, seed, workdir, "off", with_bus=False
        )
        session, run, app, _, legacy, unified = _run_once(
            scale, machine, seed, workdir, "on", with_bus=True
        )
        ref_fp = _fingerprint(ref_app, ref_run.analyzer_stats)
        fp = _fingerprint(app, run.analyzer_stats)
        if fp != ref_fp:
            raise ConfigError(
                f"observability bus perturbed the simulation: {ref_fp} -> {fp}"
            )

        # -- gate 2: byte-identity of the POP stream ---------------------------
        legacy_bytes = ref_legacy.read_bytes()
        if legacy.read_bytes() != legacy_bytes:
            raise ConfigError("legacy POP stream differs between paired runs")
        bus_metric_lines = b"".join(
            line
            for line in unified.read_bytes().splitlines(keepends=True)
            if json.loads(line).get("schema") == METRICS_SCHEMA
        )
        if bus_metric_lines != legacy_bytes:
            raise ConfigError(
                "bus file sink is not byte-identical to the legacy POP "
                f"stream ({len(bus_metric_lines)} vs {len(legacy_bytes)} bytes)"
            )

        # -- gate 3: per-plane count self-consistency --------------------------
        summary = run.obs
        if summary is None or summary["rejected"]:
            raise ConfigError(f"bus rejected records: {summary}")
        plane_totals = {
            TELEMETRY_SCHEMA: len(jsonl_records(session.telemetry)),
            METRICS_SCHEMA: len(legacy_bytes.splitlines()),
            HEALTH_SCHEMA: len(session.monitor.alerts),
            STEERING_SCHEMA: len(session.steering.decisions),
        }
        for schema, expected in sorted(plane_totals.items()):
            got = _schema_total(summary, schema)
            if got != expected:
                raise ConfigError(
                    f"bus count for {schema} is {got}, but the plane "
                    f"recorded {expected}"
                )
            result.points.append(
                (schema, len(summary["schemas"].get(schema, {})), got, expected)
            )
        result.bus = summary

        # -- gate 4: host overhead, best-of-N paired runs ----------------------
        # Same rationale as the selfperf lane: ~second-long runs swing with
        # scheduler noise, so each hub-off run is paired with an adjacent
        # hub-on run and the gate takes the minimum pair ratio.  The
        # hot-path refactor roughly halved the base wall time, so the same
        # absolute jitter is now a larger relative swing — eight pairs
        # (was five) keep the minimum a reliable noise floor.
        ratios = []
        for i in range(repeats):
            off_s = _run_once(
                scale, machine, seed, workdir, f"off{i}", with_bus=False
            )[3]
            on_s = _run_once(
                scale, machine, seed, workdir, f"on{i}", with_bus=True
            )[3]
            ratios.append(on_s / off_s - 1.0)
        result.overhead_ratio = min(ratios)
        if result.overhead_ratio > overhead_budget:
            raise ConfigError(
                f"observability bus overhead {result.overhead_ratio:+.2%} "
                f"exceeds the {overhead_budget:.0%} budget (pair ratios: "
                + ", ".join(f"{r:+.2%}" for r in ratios) + ")"
            )

        if ndjson_dir is not None:
            outdir = Path(ndjson_dir)
            outdir.mkdir(parents=True, exist_ok=True)
            (outdir / ARTIFACT_NAME).write_bytes(unified.read_bytes())
    return result
