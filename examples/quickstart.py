#!/usr/bin/env python
"""Quickstart: profile one NAS benchmark online and print the report.

This is the paper's core user story — an instrumented application streams
its MPI events over the (simulated) interconnect into a concurrently running
blackboard analysis engine; the profiling report is available immediately
after the run, with no trace file ever written.

Run:  python examples/quickstart.py
"""

from repro import CouplingSession
from repro.apps import nas_kernel
from repro.util.units import fmt_bw, fmt_time


def main() -> None:
    session = CouplingSession(seed=42)  # defaults to the Tera 100 model

    # The application: NAS CG, class C, on 64 ranks (power of two).
    name = session.add_application(nas_kernel("CG", 64, "C", iterations=8))

    # One analyzer rank per instrumented rank (the paper's 1/1 ratio).
    session.set_analyzer(ratio=1.0)

    result = session.run()
    run = result.app(name)

    print(f"application      : {run.name} on {run.nprocs} ranks")
    print(f"wall-time        : {fmt_time(run.walltime)} (simulated)")
    print(f"events captured  : {run.events}")
    print(f"stream volume    : {run.modeled_stream_bytes} bytes (modelled)")
    print(f"Bi bandwidth     : {fmt_bw(run.bi_bandwidth)}")
    print(f"analyzer ranks   : {result.analyzer_nprocs}")
    print()

    # The report has one chapter per instrumented application.
    print(result.report.render(verbosity=1))

    # Compare against an uninstrumented run of the same workload.
    reference = session.run_reference()
    t_ref = reference.app(name).walltime
    overhead = (run.walltime - t_ref) / t_ref * 100.0
    print(f"reference wall-time : {fmt_time(t_ref)}")
    print(f"relative overhead   : {overhead:.2f} % (paper: < 25 %)")


if __name__ == "__main__":
    main()
