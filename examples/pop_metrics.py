#!/usr/bin/env python
"""Time-resolved POP efficiency tour: watch a run's efficiency *evolve*.

A synthetic two-phase workload — 40 balanced compute-heavy iterations,
then 40 imbalanced communication-heavy ones — runs coupled to the
analyzer with the online :class:`PopMetricsEngine` attached. The engine
closes a metric window every few milliseconds of virtual time, streams
each one to an NDJSON file the moment it closes (the file a visual
frontend would ``tail -f``), and detects the phase boundary online with
a change-point test. Afterwards we:

1. print an ASCII sparkline of parallel efficiency over the windows,
2. show the detected phases (the seam lands at the workload's true
   transition),
3. replay the NDJSON stream through the validating loader and recombine
   the per-phase per-rank sums — reproducing the end-of-run metrics
   exactly, the telescoping property the bench lane gates on.

Run:  python examples/pop_metrics.py
"""

import os
import tempfile

from repro.apps.base import AppKernel
from repro.core.session import CouplingSession
from repro.telemetry import PopConfig, Telemetry, read_metrics_stream
from repro.telemetry.popmetrics import SUM_KEYS, metrics_from_sums

BARS = " .:-=+*#%@"


class TwoPhase(AppKernel):
    """Balanced compute, then imbalanced compute + chatty collectives."""

    name = "TWOPHASE"

    def __init__(self, nprocs=8, iters_a=40, iters_b=40):
        super().__init__(nprocs, iters_a + iters_b)
        self.iters_a = iters_a
        self.iters_b = iters_b

    def main(self, mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        for _ in range(self.iters_a):
            yield from mpi.compute(2e-3)
            yield from comm.allreduce(nbytes=8)
        for _ in range(self.iters_b):
            yield from mpi.compute(2e-4 + 6e-4 * comm.rank / comm.size)
            for _ in range(4):
                yield from comm.allreduce(nbytes=65536)
        yield from mpi.finalize()


def sparkline(values):
    return "".join(
        BARS[min(len(BARS) - 1, max(0, int(v * (len(BARS) - 1))))] for v in values
    )


def main() -> None:
    ndjson = os.path.join(tempfile.mkdtemp(prefix="pop_metrics_"), "run.ndjson")
    session = CouplingSession(seed=3, telemetry=Telemetry())
    session.add_application(TwoPhase(), name="twophase")
    session.set_analyzer(nprocs=2)
    session.enable_pop_metrics(PopConfig(window=0.004), stream=ndjson)
    result = session.run()

    summary = result.efficiency
    print(f"windows={summary['windows']}  phases={len(summary['phases'])}  "
          f"signal={summary['signal']}")

    # 1. Efficiency sparkline over the windowed series.
    engine = session.pop_metrics
    series = [w.metrics["parallel_efficiency"] for w in engine.windows]
    print(f"\nparallel efficiency per {summary['window_s'] * 1e3:g} ms window:")
    print(f"  |{sparkline(series)}|")

    # 2. The detected phases: the seam sits at the workload transition.
    print("\ndetected phases:")
    for phase in summary["phases"]:
        m = phase["metrics"]
        print(f"  phase {phase['index']}: [{phase['t0']:.3f}, {phase['t1']:.3f}]s "
              f"({phase['windows']} windows)  PE={m['parallel_efficiency']:.3f}  "
              f"LB={m['load_balance']:.3f}  CommE={m['communication_efficiency']:.3f}")

    # 3. Replay the stream: phases recombine to the end-of-run metrics.
    records = read_metrics_stream(ndjson)
    kinds = [r["kind"] for r in records]
    print(f"\nNDJSON stream: {len(records)} records "
          f"({kinds.count('window')} windows, {kinds.count('phase')} phases, "
          f"{kinds.count('run_summary')} summary) -> {ndjson}")
    combined = {}
    for record in records:
        if record["kind"] != "phase":
            continue
        for rank_key, sums in record["ranks"].items():
            entry = combined.setdefault(rank_key, {k: 0.0 for k in SUM_KEYS})
            for key in SUM_KEYS:
                entry[key] += sums[key]
    recombined = metrics_from_sums(combined)
    eor = summary["end_of_run"]
    print("\ntelescoping check (recombined from streamed phases vs end of run):")
    for key, value in recombined.items():
        print(f"  {key:28s} {value:.6f}  vs  {eor[key]:.6f}  "
              f"(delta {abs(value - eor[key]):.2e})")

    report = result.report.render()
    print()
    print(report[report.index("## Efficiency timeline"):])


if __name__ == "__main__":
    main()
