"""Process lifecycle edge cases and kernel robustness under load."""

import pytest

from repro.errors import SimulationError
from repro.simt import Kernel
from repro.simt.primitives import Interrupt


def test_process_return_value_via_join(kernel):
    def child(k):
        yield k.timeout(1.0)
        return {"answer": 42}

    def parent(k):
        result = yield k.spawn(child(k))
        return result["answer"]

    p = kernel.spawn(parent(kernel))
    kernel.run()
    assert p.value == 42


def test_join_already_finished_process(kernel):
    def quick(k):
        yield k.timeout(0.5)
        return "done"

    def late_joiner(k, target):
        yield k.timeout(5.0)
        result = yield target
        return result

    child = kernel.spawn(quick(kernel))
    parent = kernel.spawn(late_joiner(kernel, child))
    kernel.run()
    assert parent.value == "done"


def test_interrupted_process_can_continue(kernel):
    trace = []

    def worker(k):
        try:
            yield k.timeout(100.0)
        except Interrupt:
            trace.append(("interrupted", k.now))
        yield k.timeout(1.0)  # keeps living after the interrupt
        trace.append(("finished", k.now))

    def boss(k, target):
        yield k.timeout(2.0)
        target.interrupt()

    target = kernel.spawn(worker(kernel))
    kernel.spawn(boss(kernel, target))
    kernel.run()
    assert trace == [("interrupted", 2.0), ("finished", 3.0)]


def test_stale_wakeup_after_interrupt_ignored(kernel):
    """The original timeout firing later must not resume the process twice."""
    resumed = []

    def worker(k):
        try:
            yield k.timeout(5.0)
            resumed.append("timeout")
        except Interrupt:
            resumed.append("interrupt")
        yield k.timeout(10.0)
        resumed.append("second")

    def boss(k, target):
        yield k.timeout(1.0)
        target.interrupt()

    target = kernel.spawn(worker(kernel))
    kernel.spawn(boss(kernel, target))
    kernel.run()
    assert resumed == ["interrupt", "second"]


def test_nested_spawning(kernel):
    depth_reached = []

    def recursive(k, depth):
        if depth == 0:
            depth_reached.append(k.now)
            return 0
        yield k.timeout(0.1)
        child = k.spawn(recursive(k, depth - 1))
        result = yield child
        return result + 1

    p = kernel.spawn(recursive(kernel, 10))
    kernel.run()
    assert p.value == 10
    assert depth_reached == [pytest.approx(1.0)]


def test_thousands_of_processes(kernel):
    done = []

    def tiny(k, i):
        yield k.timeout(i * 1e-6)
        done.append(i)

    for i in range(3000):
        kernel.spawn(tiny(kernel, i))
    kernel.run()
    assert len(done) == 3000
    assert done == sorted(done)


def test_alive_processes_listing(kernel):
    def sleeper(k):
        yield k.timeout(10.0)

    kernel.spawn(sleeper(kernel), name="s1")
    kernel.spawn(sleeper(kernel), name="s2")
    kernel.run(until=1.0)
    assert {p.name for p in kernel.alive_processes()} == {"s1", "s2"}
    kernel.run()
    assert kernel.alive_processes() == []


def test_current_process_visibility(kernel):
    seen = []

    def introspect(k):
        seen.append(k.current_process.name)
        yield k.timeout(0.0)

    kernel.spawn(introspect(kernel), name="me")
    kernel.run()
    assert seen == ["me"]
    assert kernel.current_process is None
