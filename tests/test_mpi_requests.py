"""Non-blocking requests: wait/test/waitall/waitany discipline."""

import pytest

from repro.errors import MPIError, SimulationError
from repro.mpi import MPMDLauncher


def _single(machine, main, nprocs, **kwargs):
    launcher = MPMDLauncher(machine=machine)
    launcher.add_program("t", nprocs=nprocs, main=main, **kwargs)
    return launcher.run()


def test_isend_irecv_waitall_statuses(machine):
    got = []

    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        rq = yield from comm.irecv(source=left, tag=1)
        sq = yield from comm.isend(right, nbytes=64, tag=1, payload=comm.rank)
        statuses = yield from mpi.waitall([rq, sq])
        got.append((comm.rank, statuses[0].payload, statuses[1]))
        yield from mpi.finalize()

    _single(machine, main, 4)
    for rank, left_payload, send_status in got:
        assert left_payload == (rank - 1) % 4
        assert send_status is None  # sends carry no status


def test_test_polls_without_blocking(machine):
    polled = []

    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        if comm.rank == 0:
            yield from mpi.compute(0.01)
            yield from comm.send(1, nbytes=8, tag=1)
        else:
            req = yield from comm.irecv(source=0, tag=1)
            done_first, _ = req.test()
            polled.append(done_first)
            status = yield from mpi.wait(req)
            done_after, st = req.test()
            polled.append(done_after)
            assert st.nbytes == 8
        yield from mpi.finalize()

    _single(machine, main, 2)
    assert polled == [False, True]


def test_double_wait_rejected(machine):
    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        if comm.rank == 0:
            yield from comm.send(1, nbytes=8, tag=1)
        else:
            req = yield from comm.irecv(source=0, tag=1)
            yield from req.wait()
            yield from req.wait()
        yield from mpi.finalize()

    with pytest.raises(SimulationError, match="already-waited"):
        _single(machine, main, 2)


def test_waitall_empty_list(machine):
    def main(mpi):
        yield from mpi.init()
        statuses = yield from mpi.waitall([])
        assert statuses == []
        yield from mpi.finalize()

    _single(machine, main, 1)


def test_waitany_returns_first_completion(machine):
    got = []

    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        if comm.rank == 0:
            yield from mpi.compute(0.2)
            yield from comm.send(2, nbytes=8, tag=1, payload="slow")
        elif comm.rank == 1:
            yield from comm.send(2, nbytes=8, tag=2, payload="fast")
        else:
            r_slow = yield from comm.irecv(source=0, tag=1)
            r_fast = yield from comm.irecv(source=1, tag=2)
            idx, status = yield from mpi.waitany([r_slow, r_fast])
            got.append((idx, status.payload))
            yield from mpi.wait(r_slow)
        yield from mpi.finalize()

    _single(machine, main, 3)
    assert got == [(1, "fast")]


def test_waitany_empty_rejected(machine):
    def main(mpi):
        yield from mpi.init()
        yield from mpi.waitany([])
        yield from mpi.finalize()

    with pytest.raises(SimulationError):
        _single(machine, main, 1)


def test_many_outstanding_requests(machine):
    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        n = 50
        if comm.rank == 0:
            reqs = []
            for i in range(n):
                req = yield from comm.isend(1, nbytes=100, tag=i, payload=i)
                reqs.append(req)
            yield from mpi.waitall(reqs)
        else:
            reqs = []
            for i in range(n):
                req = yield from comm.irecv(source=0, tag=i)
                reqs.append(req)
            statuses = yield from mpi.waitall(reqs)
            assert [s.payload for s in statuses] == list(range(n))
        yield from mpi.finalize()

    _single(machine, main, 2)
