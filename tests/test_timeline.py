"""Ring-buffer time series and periodic instrument snapshots."""

import math

import pytest

from repro.errors import ConfigError
from repro.telemetry import Telemetry
from repro.telemetry.timeline import CUMULATIVE, LEVEL, Timeline, TimeSeries


class ManualClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def tel(clock):
    return Telemetry(clock=clock)


class TestTimeSeries:
    def test_rejects_bad_kind_and_capacity(self):
        with pytest.raises(ConfigError):
            TimeSeries("x", kind="weird")
        with pytest.raises(ConfigError):
            TimeSeries("x", capacity=1)

    def test_append_and_points_in_order(self):
        ts = TimeSeries("x", LEVEL, capacity=8)
        for i in range(5):
            ts.append(float(i), float(i * 10))
        assert len(ts) == 5
        assert ts.points() == [(float(i), float(i * 10)) for i in range(5)]
        assert ts.latest() == (4.0, 40.0)

    def test_ring_wraps_and_stays_bounded(self):
        ts = TimeSeries("x", CUMULATIVE, capacity=4)
        for i in range(10):
            ts.append(float(i), float(i))
        assert len(ts) == 4
        # Oldest retained samples are dropped, chronology is preserved.
        assert ts.points() == [(6.0, 6.0), (7.0, 7.0), (8.0, 8.0), (9.0, 9.0)]
        assert ts.latest() == (9.0, 9.0)
        assert ts.total_points == 10

    def test_watermarks_survive_eviction(self):
        ts = TimeSeries("x", LEVEL, capacity=2)
        ts.append(0.0, 100.0)
        ts.append(1.0, 1.0)
        ts.append(2.0, 2.0)  # evicts the 100.0 sample
        assert ts.high_water == 100.0
        assert ts.low_water == 1.0

    def test_window_filters_by_time(self):
        ts = TimeSeries("x", LEVEL, capacity=16)
        for i in range(10):
            ts.append(float(i), float(i))
        assert ts.window(3.0, 6.0) == [(3.0, 3.0), (4.0, 4.0), (5.0, 5.0), (6.0, 6.0)]
        assert ts.window(100.0) == []

    def test_window_stats_empty(self):
        ts = TimeSeries("x", LEVEL)
        stats = ts.window_stats(0.0)
        assert stats["n"] == 0
        assert stats["rate"] == 0.0

    def test_window_stats_rate_differentiates_cumulative(self):
        ts = TimeSeries("x", CUMULATIVE, capacity=16)
        # 100 units per second of growth.
        for i in range(5):
            ts.append(i * 0.1, i * 10.0)
        stats = ts.window_stats(0.0)
        assert stats["n"] == 5
        assert stats["first"] == 0.0
        assert stats["last"] == 40.0
        assert stats["delta"] == 40.0
        assert stats["rate"] == pytest.approx(100.0)
        assert stats["mean"] == pytest.approx(20.0)
        assert stats["min"] == 0.0 and stats["max"] == 40.0

    def test_window_stats_percentiles(self):
        ts = TimeSeries("x", LEVEL, capacity=128)
        for i in range(100):
            ts.append(float(i), float(i + 1))  # values 1..100
        stats = ts.window_stats(-math.inf)
        assert stats["p50"] == 50.0
        assert stats["p95"] == 95.0

    def test_slope_least_squares(self):
        ts = TimeSeries("x", LEVEL, capacity=16)
        for i in range(8):
            ts.append(float(i), 3.0 * i + 1.0)
        assert ts.slope(-math.inf) == pytest.approx(3.0)
        flat = TimeSeries("y", LEVEL)
        flat.append(0.0, 5.0)
        assert flat.slope(-math.inf) == 0.0  # fewer than 2 points

    def test_decimated_keeps_newest(self):
        ts = TimeSeries("x", LEVEL, capacity=128)
        for i in range(100):
            ts.append(float(i), float(i))
        picked = ts.decimated(8)
        assert len(picked) == 8
        assert picked[-1] == (99.0, 99.0)
        assert picked == sorted(picked)
        with pytest.raises(ConfigError):
            ts.decimated(0)


class TestTimeline:
    def test_rejects_bad_resolution(self, tel):
        with pytest.raises(ConfigError):
            Timeline(tel, resolution=0.0)

    def test_sample_respects_resolution(self, tel, clock):
        tl = Timeline(tel, resolution=0.1)
        tel.counter("c").inc()
        assert tl.sample() is True
        assert tl.sample() is False  # same instant, within resolution
        clock.advance(0.05)
        assert tl.sample() is False
        clock.advance(0.05)
        assert tl.sample() is True
        assert tl.samples_taken == 2

    def test_force_overrides_resolution(self, tel):
        tl = Timeline(tel, resolution=10.0)
        assert tl.sample(force=True)
        assert tl.sample(force=True)
        assert tl.samples_taken == 2

    def test_series_keys_and_kinds(self, tel, clock):
        tel.counter("kernel.events").inc(7)
        tel.gauge("depth", pid=1).set(3)
        tel.gauge("depth", pid=2).set(4)
        tel.histogram("lat").observe(0.5)
        tl = Timeline(tel, resolution=0.01)
        tl.sample()
        assert tl.get("counter.kernel.events").kind == CUMULATIVE
        assert tl.get("gauge.depth").kind == LEVEL
        assert tl.get("hist.lat.count").kind == CUMULATIVE
        assert tl.get("hist.lat.total").kind == CUMULATIVE
        # Multi-track gauges are summed into one total series.
        assert tl.get("gauge.depth").latest()[1] == 7.0
        assert tl.get("counter.kernel.events").latest()[1] == 7.0
        assert tl.get("missing") is None

    def test_summary_reports_rates(self, tel, clock):
        ctr = tel.counter("bytes")
        tl = Timeline(tel, resolution=0.01)
        for _ in range(5):
            ctr.inc(100)
            tl.sample()
            clock.advance(0.01)
        summary = tl.summary()
        assert summary["counter.bytes"]["last"] == 500.0
        assert summary["counter.bytes"]["high_water"] == 500.0
        assert summary["counter.bytes"]["rate"] == pytest.approx(10000.0)

    def test_render_table(self, tel, clock):
        ctr = tel.counter("bytes")
        tl = Timeline(tel, resolution=0.01)
        for _ in range(4):
            ctr.inc(10)
            tl.sample()
            clock.advance(0.01)
        text = tl.render_table()
        assert "counter.bytes" in text
        assert "t_virtual_s" in text
        assert Timeline(tel, resolution=1.0).render_table() == (
            "(no timeline series recorded)"
        )


class TestWindowEdgeCases:
    """Windowing corners the POP-metrics engine leans on."""

    def test_empty_window_between_samples(self):
        ts = TimeSeries("x", CUMULATIVE, capacity=8)
        ts.append(0.0, 1.0)
        ts.append(10.0, 2.0)
        stats = ts.window_stats(3.0, 7.0)  # a gap with no samples at all
        assert stats["n"] == 0
        assert stats["rate"] == 0.0
        assert stats["delta"] == 0.0
        assert ts.window(3.0, 7.0) == []

    def test_single_sample_percentiles(self):
        ts = TimeSeries("x", LEVEL, capacity=8)
        ts.append(1.0, 42.0)
        stats = ts.window_stats(0.0, 2.0)
        assert stats["n"] == 1
        assert stats["p50"] == 42.0
        assert stats["p95"] == 42.0
        assert stats["min"] == stats["max"] == stats["mean"] == 42.0
        assert stats["rate"] == 0.0  # dt == 0 must not divide by zero

    def test_slope_on_constant_series_is_zero(self):
        ts = TimeSeries("x", LEVEL, capacity=32)
        for i in range(10):
            ts.append(float(i), 7.5)
        assert ts.slope(-math.inf) == 0.0
        # Constant *time* (all samples at one instant) must not blow up
        # either: the denominator degenerates to zero.
        stacked = TimeSeries("y", LEVEL, capacity=8)
        for value in (1.0, 2.0, 3.0):
            stacked.append(5.0, value)
        assert stacked.slope(-math.inf) == 0.0

    def test_wraparound_during_open_window(self):
        # The ring evicts the oldest samples while a window is still open:
        # stats must reflect only retained points, in chronological order.
        ts = TimeSeries("x", CUMULATIVE, capacity=8)
        for i in range(20):
            ts.append(float(i), float(i) * 10.0)
        pts = ts.window(-math.inf)
        assert len(pts) == 8  # bounded by capacity
        assert pts == sorted(pts)  # chronological despite the wrap
        assert pts[0] == (12.0, 120.0)  # oldest retained, not t=0
        stats = ts.window_stats(-math.inf)
        assert stats["n"] == 8
        assert stats["first"] == 120.0
        assert stats["last"] == 190.0
        assert stats["rate"] == pytest.approx(10.0)
        # Watermarks still remember evicted extremes.
        assert ts.low_water == 0.0
        assert ts.total_points == 20
