"""Workload kernel base classes and grid helpers."""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.world import ProgramAPI


@dataclass(frozen=True)
class ClassSpec:
    """One NPB problem class: grid size, official iterations, total work."""

    size: int  # problem dimension (grid edge or matrix order)
    niter: int  # official iteration count of the class
    gops: float  # published total operation count, in Gop

    def __post_init__(self) -> None:
        if self.size <= 0 or self.niter <= 0 or self.gops <= 0:
            raise ConfigError("ClassSpec fields must be positive")


def grid_2d(nprocs: int) -> tuple[int, int]:
    """Factor ``nprocs`` into the most square (px, py) grid with px >= py."""
    if nprocs <= 0:
        raise ConfigError(f"nprocs must be > 0, got {nprocs}")
    best = (nprocs, 1)
    for py in range(1, int(math.isqrt(nprocs)) + 1):
        if nprocs % py == 0:
            best = (nprocs // py, py)
    return best


def is_square(n: int) -> bool:
    r = math.isqrt(n)
    return r * r == n


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class AppKernel(ABC):
    """A runnable workload: produces a ``main(mpi)`` generator."""

    #: short benchmark name, e.g. "SP"
    name: str = "APP"

    def __init__(self, nprocs: int, iterations: int):
        if nprocs <= 0:
            raise ConfigError(f"{self.name}: nprocs must be > 0")
        if iterations <= 0:
            raise ConfigError(f"{self.name}: iterations must be > 0")
        self.validate_nprocs(nprocs)
        self.nprocs = nprocs
        self.iterations = iterations

    @classmethod
    def validate_nprocs(cls, nprocs: int) -> None:
        """Raise ConfigError when the benchmark cannot run on this count."""

    @property
    def label(self) -> str:
        return self.name

    @abstractmethod
    def main(self, mpi: "ProgramAPI"):
        """The program generator to hand to a launcher."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.label} nprocs={self.nprocs}>"


class NASKernel(AppKernel):
    """Base for NPB-style kernels parameterised by a problem class."""

    CLASSES: dict[str, ClassSpec] = {}

    def __init__(self, nprocs: int, klass: str = "C", iterations: int = 5):
        if klass not in self.CLASSES:
            raise ConfigError(
                f"{self.name}: unknown class {klass!r}; have {sorted(self.CLASSES)}"
            )
        self.klass = klass
        self.spec = self.CLASSES[klass]
        super().__init__(nprocs, iterations)

    @property
    def label(self) -> str:
        return f"{self.name}.{self.klass}"

    @property
    def iteration_scale(self) -> float:
        """Multiplier from simulated iterations to the official count."""
        return self.spec.niter / self.iterations

    def step_compute_seconds(self, mpi: "ProgramAPI") -> float:
        """Per-rank compute time of one iteration, from published op counts."""
        flop_rate = mpi.ctx.world.machine.core_flops_effective
        flops_per_rank_step = self.spec.gops * 1e9 / (self.spec.niter * self.nprocs)
        return flops_per_rank_step / flop_rate
