"""Parallel file-system model: data path, metadata contention, SIONlib."""

import pytest

from repro.errors import IOSimError
from repro.iosim import ParallelFS, SimFile, SionFile
from repro.simt import Kernel


@pytest.fixture
def fs(machine):
    return ParallelFS(Kernel(), machine, job_cores=machine.total_cores)


def _run(fs, gen):
    proc = fs.kernel.spawn(gen)
    fs.kernel.run()
    return proc.value


class TestParallelFS:
    def test_job_bandwidth_scales_with_cores(self, machine):
        kernel = Kernel()
        small = ParallelFS(kernel, machine, job_cores=machine.total_cores // 2)
        assert small.job_bandwidth == pytest.approx(machine.fs_bandwidth_total / 2)

    def test_job_cores_validated(self, machine):
        with pytest.raises(IOSimError):
            ParallelFS(Kernel(), machine, job_cores=0)

    def test_metadata_ops_serialize(self, fs, machine):
        done = []

        def client(k, name):
            yield from fs.metadata_op()
            done.append((name, k.now))

        for name in "abc":
            fs.kernel.spawn(client(fs.kernel, name))
        fs.kernel.run()
        lat = machine.fs_metadata_latency
        assert [t for _n, t in done] == pytest.approx([lat, 2 * lat, 3 * lat])
        assert fs.metadata_ops == 3

    def test_metadata_service_scale(self, fs, machine):
        def client(k):
            yield from fs.metadata_op(service_scale=0.1)
            return k.now

        t = _run(fs, client(fs.kernel))
        assert t == pytest.approx(machine.fs_metadata_latency * 0.1)

    def test_metadata_scale_validated(self, fs):
        with pytest.raises(IOSimError):
            list(fs.metadata_op(service_scale=0.0))

    def test_stripe_cap_limits_single_stream(self, fs, machine):
        """A single writer cannot exceed the stripe bandwidth."""
        nbytes = int(machine.fs_stripe_bandwidth)  # 1 second at stripe speed

        def writer(k):
            yield fs.raw_write(nbytes)
            return k.now

        t = _run(fs, writer(fs.kernel))
        assert t >= 1.0 * 0.999

    def test_aggregate_bandwidth_shared(self, machine):
        kernel = Kernel()
        fs = ParallelFS(kernel, machine, job_cores=machine.total_cores)
        # Write 2 seconds worth of aggregate bandwidth from many clients.
        total = int(2 * fs.job_bandwidth)
        per_client = total // 20
        done = []

        def writer(k):
            yield fs.raw_write(per_client)
            done.append(k.now)

        for _ in range(20):
            kernel.spawn(writer(kernel))
        kernel.run()
        assert max(done) >= 1.99

    def test_negative_write_rejected(self, fs):
        with pytest.raises(IOSimError):
            fs.raw_write(-1)

    def test_read_accounting(self, fs):
        def reader(k):
            yield fs.raw_read(1000)

        _run(fs, reader(fs.kernel))
        assert fs.bytes_read == 1000


class TestSimFile:
    def test_lifecycle(self, fs):
        f = SimFile(fs, "/scratch/trace.0")

        def user(k):
            yield from f.open()
            yield from f.write(500)
            yield from f.write(700)
            yield from f.close()

        _run(fs, user(fs.kernel))
        assert f.size == 1200
        assert f.writes == 2
        assert not f.is_open
        assert fs.files_created == 1
        assert fs.metadata_ops == 2  # open + close

    def test_write_requires_open(self, fs):
        f = SimFile(fs, "/x")
        with pytest.raises(IOSimError):
            list(f.write(10))

    def test_double_open_rejected(self, fs):
        from repro.errors import SimulationError

        f = SimFile(fs, "/x")

        def user(k):
            yield from f.open()
            yield from f.open()

        # The crash surfaces through the kernel, chained to the IOSimError.
        with pytest.raises(SimulationError, match="already open") as excinfo:
            _run(fs, user(fs.kernel))
        assert isinstance(excinfo.value.__cause__, IOSimError)

    def test_close_closed_rejected(self, fs):
        f = SimFile(fs, "/x")
        with pytest.raises(IOSimError):
            list(f.close())


class TestSionFile:
    def test_container_sharing(self, fs):
        sion = SionFile(fs, "trace.sion", tasks_per_file=4)

        def user(k):
            for task in range(8):
                yield from sion.open_task(task)
                yield from sion.write_task(task, 1000)
            return None

        _run(fs, user(fs.kernel))
        assert sion.containers_used == 2
        assert fs.metadata_ops == 2  # one per container, not per task
        assert sion.logical_size == 8000

    def test_block_alignment_padding(self, fs):
        sion = SionFile(fs, "t.sion")

        def user(k):
            yield from sion.open_task(0)
            yield from sion.write_task(0, 1)

        _run(fs, user(fs.kernel))
        assert sion.physical_size == SionFile.BLOCK_SIZE
        assert sion.task_size(0) == 1

    def test_write_before_open_rejected(self, fs):
        sion = SionFile(fs, "t.sion")
        with pytest.raises(IOSimError):
            list(sion.write_task(0, 10))

    def test_close_before_open_rejected(self, fs):
        sion = SionFile(fs, "t.sion")
        with pytest.raises(IOSimError):
            list(sion.close_task(3))

    def test_validation(self, fs):
        with pytest.raises(IOSimError):
            SionFile(fs, "t", tasks_per_file=0)

    def test_metadata_storm_vs_sion(self, machine):
        """N task-local creates queue N-fold; SIONlib pays once per container."""
        kernel = Kernel()
        fs = ParallelFS(kernel, machine, job_cores=64)
        n = 32
        local_done = []

        def local_writer(k, i):
            f = SimFile(fs, f"/trace.{i}")
            yield from f.open()
            local_done.append(k.now)

        for i in range(n):
            kernel.spawn(local_writer(kernel, i))
        kernel.run()
        t_local = max(local_done)

        kernel2 = Kernel()
        fs2 = ParallelFS(kernel2, machine, job_cores=64)
        sion = SionFile(fs2, "t.sion", tasks_per_file=n)
        sion_done = []

        def sion_writer(k, i):
            yield from sion.open_task(i)
            sion_done.append(k.now)

        for i in range(n):
            kernel2.spawn(sion_writer(kernel2, i))
        kernel2.run()
        t_sion = max(sion_done)
        assert t_local > 10 * t_sion
