#!/usr/bin/env python
"""VMPI stream tuning: throughput vs writer/reader ratio (paper Figure 14).

Sweeps the analyzer-partition sizing ratio for a fixed writer count using
the paper's own coupling codes (Figures 11/12) and compares stream
throughput against the job-scaled file-system bandwidth — reproducing the
paper's guidance that ratios between 1/1 and 1/32 provide enough bandwidth
for profiling, with 1/10 a good bandwidth-resource trade-off and the
file-system crossover near 1/25.

Run:  python examples/stream_tuning.py [writers]
"""

import sys

from repro.bench.figures import _stream_point
from repro.network.machine import TERA100
from repro.util.tables import Table
from repro.util.units import GB, MIB


def main() -> None:
    writers = int(sys.argv[1]) if len(sys.argv) > 1 else 640
    fs_scaled = TERA100.fs_job_bandwidth(writers)
    table = Table(
        ["ratio", "readers", "stream_GBps", "fs_scaled_GBps", "verdict"],
        title=f"VMPI stream throughput at {writers} writers (Tera 100 model)",
    )
    for ratio in (1, 2, 4, 8, 10, 16, 25, 32, 64):
        point = _stream_point(
            TERA100, writers, ratio, bytes_per_writer=32 * MIB, block_size=MIB, seed=0
        )
        verdict = "streams win" if point["throughput"] > fs_scaled else "file system wins"
        table.add_row(
            ratio,
            int(point["readers"]),
            point["throughput"] / GB,
            fs_scaled / GB,
            verdict,
        )
    print(table.render())
    print()
    print("Paper reference points (2560 writers, 1 GB each): peak 98.5 GB/s at")
    print("ratio 1/1; competitive with the 9.1 GB/s scaled file system until")
    print("~1/25; 1/10 recommended as the bandwidth-resource trade-off.")


if __name__ == "__main__":
    main()
