"""Figure 15 — relative overhead of online instrumentation at ratio 1/1.

Paper: NAS class C/D + EulerMHD on Tera 100, all overheads below 25 %;
class C above class D for the same benchmark (higher Bi); overhead
correlates with the instrumentation data bandwidth.
"""

import pytest

from repro.bench import fig15_overhead


@pytest.fixture(scope="module")
def result(scale):
    return fig15_overhead(scale=scale)


def test_fig15_regenerate(benchmark, scale, show):
    data = benchmark.pedantic(lambda: fig15_overhead(scale=scale), rounds=1, iterations=1)
    show(data.table())


class TestShape:
    def test_all_overheads_below_paper_bound(self, result, scale):
        # Paper: all < 25 %.  Small scale sits well inside; at the paper
        # grid our flow model charges SP.C@900's 4.7 GB/s instrumentation
        # stream against the same NICs as the application traffic, landing
        # its point at ~30 % (documented deviation, EXPERIMENTS.md).
        bound = 30.0 if scale == "small" else 35.0
        for p in result.points:
            assert p.overhead_pct < bound, f"{p.app}@{p.nprocs}: {p.overhead_pct:.1f}%"

    def test_overheads_non_negative(self, result):
        for p in result.points:
            assert p.overhead_pct > -1.0  # numerical noise floor only

    def test_class_c_above_class_d(self, result):
        """Same benchmark, same scale: class C has higher Bi and overhead."""
        by_key = {(p.app, p.nprocs): p for p in result.points}
        compared = 0
        for (app, nprocs), point_c in by_key.items():
            if not app.endswith(".C"):
                continue
            point_d = by_key.get((app[:-2] + ".D", nprocs))
            if point_d is None:
                continue
            compared += 1
            assert point_c.bi_bandwidth > point_d.bi_bandwidth, (app, nprocs)
            assert point_c.overhead_pct >= point_d.overhead_pct * 0.9, (app, nprocs)
        assert compared >= 2

    def test_overhead_correlates_with_bi(self, result):
        """Spearman-style check: higher Bi tends to mean higher overhead."""
        points = sorted(result.points, key=lambda p: p.bi_bandwidth)
        lower = points[: len(points) // 3]
        upper = points[-len(points) // 3 :]
        mean = lambda ps: sum(p.overhead_pct for p in ps) / len(ps)
        assert mean(upper) > mean(lower)

    def test_events_flow_for_every_workload(self, result):
        for p in result.points:
            assert p.events > 0
            assert p.modeled_stream_bytes > 0
