"""The ObservabilityBus: one streaming record plane for every exporter.

The paper's thesis — measurements should flow as *streams* consumed online,
not post-mortem files — applied to the reproduction's own observability
output.  Every plane (virtual-time telemetry, host-time profiling, POP
efficiency windows, health alerts, steering decisions) publishes
schema-tagged records into one bus; pluggable sinks fan them out:

* :class:`~repro.obs.sinks.FileSink` — JSONL/NDJSON files, byte-identical
  to the legacy per-plane exporters;
* :class:`~repro.obs.sinks.RingSink` — a bounded in-memory ring for live
  queries mid-run;
* :class:`~repro.obs.sinks.TailServer` — a line-delimited TCP/Unix-socket
  feed for live tailing (``python -m repro.obs tail HOST:PORT``) and the
  future analyzer service.

Publishing **validates**: a record without a registered schema tag, or with
a kind outside its schema's kind set, is rejected with
:class:`~repro.errors.ConfigError` and counted — garbage never reaches a
sink.  Each sink is wrapped in a :class:`SinkBinding` that tracks delivery,
drops (a full ring, a slow tail client) and write errors per sink, so the
observability layer reports on itself: :meth:`ObservabilityBus.summary` is
what :attr:`~repro.core.session.SessionResult.obs` and the report's
"Observability" section render.

The bus is synchronous and allocation-light: one dict lookup per publish
for validation, one ``emit`` per subscribed sink.  When a session does not
call ``enable_observability()`` no bus exists at all — zero cost — and an
enabled bus never touches the simulation (sinks only *observe*), so an
enabled-but-idle run is bit-identical to the seed.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import ConfigError
from repro.obs.registry import REGISTRY, SchemaRegistry, make_record

__all__ = ["ObservabilityBus", "SinkBinding"]


class SinkBinding:
    """One subscribed sink plus its per-sink delivery accounting."""

    __slots__ = ("sink", "name", "schemas", "delivered", "dropped", "errors")

    def __init__(self, sink: Any, name: str, schemas: frozenset[str] | None):
        self.sink = sink
        self.name = name
        #: None = subscribe to every schema; else the subscribed subset
        self.schemas = schemas
        self.delivered = 0
        self.dropped = 0
        self.errors = 0

    def wants(self, schema: str) -> bool:
        return self.schemas is None or schema in self.schemas

    def stats(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "sink": self.name,
            "schemas": sorted(self.schemas) if self.schemas is not None else "all",
            "delivered": self.delivered,
            "dropped": self.dropped,
            "errors": self.errors,
        }
        extra = getattr(self.sink, "stats", None)
        if callable(extra):
            out.update(extra())
        return out


class ObservabilityBus:
    """Validate-on-publish fan-out hub for schema-tagged records.

    A sink is any object with ``emit(record) -> bool`` (True = delivered,
    False = dropped by the sink's own backpressure policy) and optionally
    ``close()`` and ``stats() -> dict``.  An ``emit`` that *raises* is
    counted as a sink error and swallowed: one broken sink must not take
    down the others, and never the simulation.
    """

    def __init__(self, registry: SchemaRegistry | None = None):
        self.registry = registry if registry is not None else REGISTRY
        self.bindings: list[SinkBinding] = []
        #: records accepted, per (schema, kind)
        self.counts: dict[tuple[str, str], int] = {}
        self.published = 0
        self.rejected = 0
        self._closed = False

    # -- wiring -------------------------------------------------------------------

    def add_sink(
        self,
        sink: Any,
        schemas: Iterable[str] | None = None,
        name: str | None = None,
    ) -> SinkBinding:
        """Subscribe a sink, optionally to a subset of schemas.

        Every schema in ``schemas`` must be registered — subscribing to a
        typo'd tag would otherwise silently deliver nothing forever.
        """
        if not callable(getattr(sink, "emit", None)):
            raise ConfigError(f"observability sink {sink!r} lacks an emit method")
        subset: frozenset[str] | None = None
        if schemas is not None:
            subset = frozenset(schemas)
            for schema in subset:
                self.registry.get(schema)  # raises on unknown
        binding = SinkBinding(sink, name or type(sink).__name__, subset)
        self.bindings.append(binding)
        return binding

    # -- publish path -------------------------------------------------------------

    def publish(self, record: dict[str, Any]) -> dict[str, Any]:
        """Validate one record and deliver it to every subscribed sink.

        Returns the record (for chaining).  Raises
        :class:`~repro.errors.ConfigError` on a malformed record — after
        counting the rejection, so the bus's self-accounting survives the
        caller catching the error.
        """
        if self._closed:
            raise ConfigError("observability bus is closed")
        try:
            self.registry.validate(record)
        except ConfigError:
            self.rejected += 1
            raise
        schema, kind = record["schema"], record["kind"]
        self.published += 1
        key = (schema, kind)
        self.counts[key] = self.counts.get(key, 0) + 1
        for binding in self.bindings:
            if not binding.wants(schema):
                continue
            try:
                delivered = binding.sink.emit(record)
            except Exception:
                binding.errors += 1
                continue
            if delivered is False:
                binding.dropped += 1
            else:
                binding.delivered += 1
        return record

    def publish_record(self, schema: str, kind: str, **payload: Any) -> dict[str, Any]:
        """Assemble via :func:`~repro.obs.registry.make_record` and publish."""
        return self.publish(make_record(schema, kind, **payload))

    def publish_all(self, records: Iterable[dict[str, Any]]) -> int:
        """Publish a batch; returns how many were accepted."""
        n = 0
        for record in records:
            self.publish(record)
            n += 1
        return n

    # -- introspection ------------------------------------------------------------

    def count(self, schema: str, kind: str | None = None) -> int:
        """Accepted records for one schema (optionally one kind)."""
        if kind is not None:
            return self.counts.get((schema, kind), 0)
        return sum(n for (s, _k), n in self.counts.items() if s == schema)

    def by_schema(self) -> dict[str, dict[str, int]]:
        """Accepted record counts nested as ``{schema: {kind: n}}``."""
        out: dict[str, dict[str, int]] = {}
        for (schema, kind), n in sorted(self.counts.items()):
            out.setdefault(schema, {})[kind] = n
        return out

    def summary(self) -> dict[str, Any]:
        """JSON-serializable self-accounting for reports and bench artefacts."""
        return {
            "published": self.published,
            "rejected": self.rejected,
            "schemas": self.by_schema(),
            "sinks": [binding.stats() for binding in self.bindings],
        }

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Close every sink that has a close method; idempotent."""
        if self._closed:
            return
        self._closed = True
        for binding in self.bindings:
            close = getattr(binding.sink, "close", None)
            if callable(close):
                try:
                    close()
                except Exception:
                    binding.errors += 1
