"""Coverage for the remaining public API surface: datatypes, status,
CLI driver, harness helpers, stream channels, cost model edges."""

import pytest

from repro.errors import ConfigError
from repro.mpi.datatypes import BYTE, DOUBLE, INT, PREDEFINED, Datatype
from repro.mpi.status import Status


class TestDatatypes:
    def test_sizes(self):
        assert BYTE.size == 1 and INT.size == 4 and DOUBLE.size == 8

    def test_count_bytes(self):
        assert DOUBLE.count_bytes(10) == 80
        with pytest.raises(ValueError):
            DOUBLE.count_bytes(-1)

    def test_registry(self):
        assert PREDEFINED["MPI_DOUBLE"] is DOUBLE
        assert str(INT) == "MPI_INT"

    def test_custom_datatype(self):
        pair = Datatype("PAIR", 16)
        assert pair.count_bytes(2) == 32


class TestStatus:
    def test_count(self):
        st = Status(source=1, tag=2, nbytes=80)
        assert st.count(8) == 10
        with pytest.raises(ValueError):
            st.count(0)

    def test_frozen(self):
        st = Status(source=0, tag=0, nbytes=0)
        with pytest.raises(Exception):
            st.source = 5  # type: ignore[misc]


class TestCLI:
    def test_unknown_experiment_rejected(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_bad_scale_rejected(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig14", "--scale", "huge"])

    def test_runs_a_driver(self, capsys, monkeypatch):
        import repro.bench.__main__ as cli
        from repro.util.tables import Table

        class FakeResult:
            def table(self):
                t = Table(["x"], title="fake")
                t.add_row(1)
                return t

        monkeypatch.setitem(cli._DRIVERS, "fig14", lambda scale, seed, telemetry=None: FakeResult())
        assert cli.main(["fig14"]) == 0
        out = capsys.readouterr().out
        assert "fake" in out and "regenerated" in out

    def test_csv_mode(self, capsys, monkeypatch):
        import repro.bench.__main__ as cli
        from repro.util.tables import Table

        class FakeResult:
            def table(self):
                t = Table(["a", "b"])
                t.add_row(1, 2)
                return t

        monkeypatch.setitem(cli._DRIVERS, "fig15", lambda scale, seed, telemetry=None: FakeResult())
        cli.main(["fig15", "--csv"])
        assert "a,b\n1,2" in capsys.readouterr().out


class TestHarness:
    def test_sweep_runs_all_configs(self):
        from repro.bench.harness import sweep

        seen = []
        out = sweep([1, 2, 3], lambda c: c * 10, progress=seen.append)
        assert out == [10, 20, 30]
        assert len(seen) == 3

    def test_overhead_point_properties(self):
        from repro.bench.harness import OverheadPoint

        p = OverheadPoint(
            app="X", nprocs=4, t_reference=2.0, t_instrumented=2.2,
            events=100, modeled_stream_bytes=4400,
        )
        assert p.overhead_pct == pytest.approx(10.0)
        assert p.bi_bandwidth == pytest.approx(2000.0)
        zero = OverheadPoint("X", 1, 0.0, 0.0, 0, 0)
        assert zero.overhead_pct == 0.0 and zero.bi_bandwidth == 0.0


class TestStreamChannels:
    def test_two_channels_between_same_partitions_do_not_mix(self, machine):
        """Independent streams on distinct channels keep their data apart."""
        from repro.vmpi import EOF, ROUND_ROBIN, VMPIMap, VMPIStream, map_partitions
        from repro.vmpi.virtualization import VirtualizedLauncher

        received = {1: [], 2: []}

        def writer(mpi):
            yield from mpi.init()
            vmap = VMPIMap()
            yield from map_partitions(mpi, vmap, "Analyzer", ROUND_ROBIN)
            st1 = VMPIStream(channel=1)
            st2 = VMPIStream(channel=2)
            yield from st1.open_map(mpi, vmap, "w")
            yield from st2.open_map(mpi, vmap, "w")
            yield from st1.write(nbytes=100, payload="one")
            yield from st2.write(nbytes=100, payload="two")
            yield from st1.close()
            yield from st2.close()
            yield from mpi.finalize()

        def reader(mpi):
            yield from mpi.init()
            vmap = VMPIMap()
            yield from map_partitions(mpi, vmap, 0, ROUND_ROBIN)
            st1 = VMPIStream(channel=1)
            st2 = VMPIStream(channel=2)
            yield from st1.open_map(mpi, vmap, "r")
            yield from st2.open_map(mpi, vmap, "r")
            for channel, st in ((1, st1), (2, st2)):
                while True:
                    n, payload = yield from st.read()
                    if n == EOF:
                        break
                    received[channel].append(payload)
            yield from mpi.finalize()

        launcher = VirtualizedLauncher(machine=machine)
        launcher.add_program("W", nprocs=1, main=writer)
        launcher.add_program("Analyzer", nprocs=1, main=reader)
        launcher.run()
        assert received == {1: ["one"], 2: ["two"]}


class TestCostModelEdges:
    def test_for_machine_uses_occupancy(self, machine):
        from repro.mpi.costmodel import CostModel

        packed = CostModel.for_machine(machine)
        solo = CostModel.for_machine(machine, ranks_per_node=1)
        assert solo.beta <= packed.beta  # a lone rank gets a bigger share

    def test_bad_occupancy_rejected(self, machine):
        from repro.mpi.costmodel import CostModel

        with pytest.raises(ConfigError):
            CostModel.for_machine(machine, ranks_per_node=0)

    def test_negative_bytes_rejected(self):
        from repro.mpi.costmodel import CostModel

        with pytest.raises(ConfigError):
            CostModel().collective_cost("bcast", 4, -1)


class TestFatTreeExtras:
    def test_bisection_links_positive(self):
        from repro.network.fattree import FatTree

        assert FatTree(100, radix=18).bisection_links() > 0

    def test_report_chapter_alerts_render(self):
        from repro.analysis import AlertMonitor
        from repro.analysis.report import ApplicationReport

        monitor = AlertMonitor("x", 2)
        chapter = ApplicationReport(app="x", app_size=2, alerts=monitor)
        assert "Real-time alerts" in chapter.render()
        assert "none raised" in chapter.render()

    def test_report_chapter_proxy_render(self):
        from repro.analysis import OTF2Proxy
        from repro.analysis.report import ApplicationReport

        proxy = OTF2Proxy("x", 2)
        chapter = ApplicationReport(app="x", app_size=2, otf2proxy=proxy)
        text = chapter.render()
        assert "Selective trace" in text and "selectivity" in text
