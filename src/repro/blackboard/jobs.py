"""Job queues: an array of individually-locked FIFOs (paper Figure 13).

To reduce contention, jobs are pushed onto a random FIFO of the array and
workers look for work by sweeping the FIFOs from a random starting point; a
back-off keeps idle workers from spinning on the locks (paper Sec. III-B).
"""

from __future__ import annotations

import random
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import BlackboardError
from repro.blackboard.entry import DataEntry
from repro.telemetry import NULL_TELEMETRY, Telemetry

if TYPE_CHECKING:  # pragma: no cover
    from repro.blackboard.ks import KnowledgeSource


@dataclass(slots=True)
class Job:
    """A ready-to-run couple ``{{data entries}, operation}``."""

    ks: "KnowledgeSource"
    entries: list[DataEntry] = field(default_factory=list)
    #: Telemetry-clock stamp taken at submit time (None when telemetry is
    #: off); execution sites derive the FIFO dwell from it.
    t_submitted: float | None = None


class JobQueues:
    """Fixed array of locked FIFOs with random placement and sweep."""

    def __init__(self, nqueues: int = 8, seed: int = 0, telemetry: Telemetry | None = None):
        if nqueues < 1:
            raise BlackboardError(f"nqueues must be >= 1, got {nqueues}")
        self.nqueues = nqueues
        self._queues: list[deque[Job]] = [deque() for _ in range(nqueues)]
        self._locks = [threading.Lock() for _ in range(nqueues)]
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self.pushed = 0
        self.popped = 0
        self.lock_failures = 0
        self.depth_hwm = 0

    def push(self, job: Job) -> None:
        """Push to a random FIFO (contention spreading)."""
        self.push_many((job,))

    def push_many(self, jobs) -> None:
        """Push a batch of jobs with one placement draw and one lock hold.

        All jobs of a batch land on the same random FIFO in order; the
        pushed/high-water-mark/telemetry accounting is settled once per
        batch instead of once per job, which is what keeps control-system
        overhead proportional to packs rather than fan-out width.
        """
        if not jobs:
            return
        with self._rng_lock:
            idx = self._rng.randrange(self.nqueues)
        with self._locks[idx]:
            self._queues[idx].extend(jobs)
        self.pushed += len(jobs)
        depth = len(self)
        if depth > self.depth_hwm:
            self.depth_hwm = depth
        if self._tel.enabled:
            self._tel.gauge("blackboard.fifo_depth").set(depth)

    def try_pop(self, start: int | None = None) -> Job | None:
        """Sweep all FIFOs from ``start`` (random if None); None when empty."""
        if start is None:
            with self._rng_lock:
                start = self._rng.randrange(self.nqueues)
        for offset in range(self.nqueues):
            idx = (start + offset) % self.nqueues
            lock = self._locks[idx]
            if not lock.acquire(blocking=False):
                self.lock_failures += 1
                if self._tel.enabled:
                    self._tel.counter("blackboard.lock_contention").inc()
                continue
            try:
                queue = self._queues[idx]
                if queue:
                    self.popped += 1
                    return queue.popleft()
            finally:
                lock.release()
        # Second pass, blocking, so a busy lock cannot hide the last job.
        for offset in range(self.nqueues):
            idx = (start + offset) % self.nqueues
            with self._locks[idx]:
                queue = self._queues[idx]
                if queue:
                    self.popped += 1
                    return queue.popleft()
        return None

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues)

    @property
    def empty(self) -> bool:
        return len(self) == 0
