"""repro — Event Streaming for Online Performance Measurements Reduction.

A full reproduction of Besnard, Pérache & Jalby (ICPP 2013) as a Python
library over a deterministic discrete-event HPC substrate:

* :mod:`repro.simt` — discrete-event simulation kernel;
* :mod:`repro.network` / :mod:`repro.iosim` — machine, network and parallel
  file-system models (Tera 100 / Curie);
* :mod:`repro.mpi` — simulated MPI runtime with MPMD launching and PMPI
  interception;
* :mod:`repro.vmpi` — the paper's virtualization / mapping / stream layer;
* :mod:`repro.blackboard` — the parallel data-centric task engine;
* :mod:`repro.instrument` / :mod:`repro.analysis` — event capture and the
  online analysis modules (profile, topology, density maps, wait states);
* :mod:`repro.apps` — NAS-MPI skeletons and EulerMHD;
* :mod:`repro.baselines` — Scalasca / Score-P / mpiP comparators;
* :mod:`repro.core` — the user-facing :class:`CouplingSession` and tool
  comparison harness;
* :mod:`repro.bench` — drivers regenerating every evaluation figure/table.

Quickstart::

    from repro import CouplingSession
    from repro.apps import nas_kernel

    session = CouplingSession(seed=1)
    session.add_application(nas_kernel("CG", 64, "C", iterations=8))
    session.set_analyzer(ratio=1.0)
    result = session.run()
    print(result.report.render())
"""

from repro.core import CouplingSession, SessionResult, compare_tools, run_tool
from repro.network import TERA100, CURIE, MachineSpec
from repro.analysis import AnalysisConfig, ProfileReport
from repro.instrument import InstrumentationCost

__version__ = "1.0.0"

__all__ = [
    "CouplingSession",
    "SessionResult",
    "compare_tools",
    "run_tool",
    "TERA100",
    "CURIE",
    "MachineSpec",
    "AnalysisConfig",
    "ProfileReport",
    "InstrumentationCost",
    "__version__",
]
