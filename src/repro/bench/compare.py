"""Bench regression gate: diff two ``BENCH_*.json`` artefacts.

``python -m repro.bench <exp> --json`` writes the experiment's table rows
plus metadata.  This module compares a *candidate* artefact against a
committed *baseline* with per-metric relative tolerances, so CI can fail a
change that silently degrades stream throughput or inflates overhead.

Direction matters: a throughput column going **up** is fine at any
magnitude, overhead going **down** is fine; only movement in the bad
direction (or any movement at all for direction-less parameter columns)
beyond the tolerance counts as a regression.  Column direction is inferred
from its name (see :func:`metric_direction`); callers can tighten or loosen
individual columns through ``per_metric``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ConfigError
from repro.obs.registry import REGISTRY

#: column-name fragments implying "bigger is better"
_HIGHER_BETTER = (
    "throughput", "gbps", "mbps", "bandwidth", "bi_", "rate", "speedup", "per_s",
)
#: column-name fragments implying "smaller is better"
_LOWER_BETTER = (
    "overhead", "walltime", "time", "stall", "volume", "size", "bytes",
    "elapsed", "latency", "slowdown", "allocs",
)

#: columns never compared (host-dependent wall-clock noise)
DEFAULT_SKIP = ("elapsed_s",)


def metric_direction(column: str) -> str:
    """Classify a column: ``"higher"`` / ``"lower"`` is better, or ``"either"``.

    ``"either"`` columns (parameters like writer counts, ratios) must stay
    within tolerance in *both* directions — drift means the experiment grid
    itself changed, which a regression gate should flag loudly.
    """
    name = column.lower()
    for frag in _HIGHER_BETTER:
        if frag in name:
            return "higher"
    for frag in _LOWER_BETTER:
        if frag in name:
            return "lower"
    return "either"


def load_bench_json(path: str | Path) -> dict[str, Any]:
    """Read one ``BENCH_*.json`` artefact, validating the minimal shape."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise ConfigError(f"bench artefact not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ConfigError(f"bench artefact {path} is not valid JSON: {exc}") from None
    for key in ("experiment", "columns", "rows"):
        if key not in payload:
            raise ConfigError(f"bench artefact {path} misses required key {key!r}")
    return payload


def _as_float(cell: Any) -> float | None:
    """Numeric view of a table cell, None for genuinely textual cells."""
    if isinstance(cell, bool):
        return float(cell)
    if isinstance(cell, (int, float)):
        return float(cell)
    try:
        return float(str(cell).strip())
    except ValueError:
        return None


@dataclass(frozen=True)
class MetricDelta:
    """One (row, column) comparison outcome."""

    row: int
    row_label: str
    column: str
    direction: str  # "higher" | "lower" | "either"
    baseline: Any
    candidate: Any
    rel_delta: float  # signed (candidate - baseline) / |baseline|
    tolerance: float
    status: str  # "ok" | "improved" | "regressed"

    @property
    def ratio(self) -> float | None:
        """Candidate-over-baseline ratio — the speedup/slowdown factor.

        ``None`` for textual cells and zero baselines, where a ratio is
        meaningless; direction is *not* folded in, so a 2.0 on a
        higher-better column is a 2x speedup while on a lower-better
        column it is a 2x slowdown.
        """
        b_num, c_num = _as_float(self.baseline), _as_float(self.candidate)
        if b_num is None or c_num is None or b_num == 0.0:
            return None
        return c_num / b_num

    def describe(self) -> str:
        arrow = {"ok": "=", "improved": "+", "regressed": "!"}[self.status]
        ratio = self.ratio
        times = f", x{ratio:.2f}" if ratio is not None else ""
        return (
            f"[{arrow}] row {self.row} ({self.row_label}) {self.column}: "
            f"{self.baseline} -> {self.candidate} "
            f"({self.rel_delta:+.2%}{times}, tol {self.tolerance:.2%}, "
            f"{self.direction}-better)"
        )


@dataclass
class BenchComparison:
    """The full diff of candidate against baseline."""

    experiment: str
    deltas: list[MetricDelta] = field(default_factory=list)
    structural: list[str] = field(default_factory=list)  # shape mismatches
    #: informational only (host-environment drift); never flips :attr:`ok`
    warnings: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.status == "regressed"]

    @property
    def improvements(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.status == "improved"]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.structural

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable diff for ``bench compare --json``.

        Carries everything ``render()`` prints — including the host-env
        mismatch ``warnings`` — plus every cell's ratio, so dashboards
        can chart speedups without re-deriving them.
        """
        return {
            "experiment": self.experiment,
            "ok": self.ok,
            "structural": list(self.structural),
            "warnings": list(self.warnings),
            "cells_compared": len(self.deltas),
            "improved": len(self.improvements),
            "regressed": len(self.regressions),
            "deltas": [
                {
                    "row": d.row,
                    "row_label": d.row_label,
                    "column": d.column,
                    "direction": d.direction,
                    "baseline": d.baseline,
                    "candidate": d.candidate,
                    "rel_delta": d.rel_delta,
                    "ratio": d.ratio,
                    "tolerance": d.tolerance,
                    "status": d.status,
                }
                for d in self.deltas
            ],
        }

    def render(self) -> str:
        lines = [f"bench compare: {self.experiment}"]
        for msg in self.structural:
            lines.append(f"  [!] structural: {msg}")
        for msg in self.warnings:
            lines.append(f"  [~] warning: {msg}")
        shown = [d for d in self.deltas if d.status != "ok"]
        for delta in shown:
            lines.append("  " + delta.describe())
        compared = len(self.deltas)
        lines.append(
            f"  {compared} cells compared, {len(self.improvements)} improved, "
            f"{len(self.regressions)} regressed, {len(self.structural)} structural"
        )
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def _environment_warnings(
    baseline: dict[str, Any], candidate: dict[str, Any]
) -> list[str]:
    """Host-fingerprint drift between artefacts (informational only).

    Wall-clock-derived columns (throughputs, elapsed times) are only
    apples-to-apples on the same interpreter/platform/CPU budget, so any
    mismatch in the ``host`` headers (stamped by ``--json`` runs since the
    hostprof plane landed) is surfaced — but a slower runner is not a code
    regression, so warnings never fail the gate.  Artefacts predating the
    header compare silently.
    """
    b_host, c_host = baseline.get("host"), candidate.get("host")
    if not isinstance(b_host, dict) or not isinstance(c_host, dict):
        return []
    warnings = []
    for key in sorted(set(b_host) | set(c_host)):
        b_val, c_val = b_host.get(key), c_host.get(key)
        if b_val != c_val:
            warnings.append(
                f"host environment differs: {key} {b_val!r} -> {c_val!r} "
                "(wall-clock metrics may not be comparable)"
            )
    return warnings


def _schema_warnings(baseline: dict[str, Any]) -> list[str]:
    """Baseline records stamped with schema tags the registry no longer knows.

    A baseline artefact may embed observability records (the obs lane's
    per-schema counts, hostprof summaries, ...).  If one carries a
    ``schema`` tag that has since been dropped or bumped, the comparison
    is likely stale rather than regressed — warn, never fail, and let the
    owner re-record the baseline.  Only version-shaped tags
    (``family/version``) are considered; other ``"schema"`` keys are not
    record tags.
    """
    unknown: set[str] = set()

    def walk(node: Any) -> None:
        if isinstance(node, dict):
            tag = node.get("schema")
            if isinstance(tag, str) and "/" in tag and tag not in REGISTRY:
                unknown.add(tag)
            for value in node.values():
                walk(value)
        elif isinstance(node, list):
            for value in node:
                walk(value)

    walk(baseline)
    return [
        f"baseline carries schema tag {tag!r} unknown to the current "
        "registry (stale baseline? re-record it)"
        for tag in sorted(unknown)
    ]


def compare_bench(
    baseline: dict[str, Any],
    candidate: dict[str, Any],
    tolerance: float = 0.05,
    per_metric: dict[str, float] | None = None,
    skip_columns: tuple[str, ...] = DEFAULT_SKIP,
) -> BenchComparison:
    """Diff two bench payloads; regressions are direction-aware.

    ``tolerance`` is the default allowed relative drift in the *bad*
    direction; ``per_metric`` overrides it per column name.  Rows are
    matched positionally (the experiment grids are deterministic), and any
    shape mismatch — different experiment, missing columns, differing row
    counts — is a structural failure regardless of tolerances.
    """
    if tolerance < 0:
        raise ConfigError(f"tolerance must be >= 0, got {tolerance}")
    per_metric = dict(per_metric or {})
    for col, tol in per_metric.items():
        if tol < 0:
            raise ConfigError(f"per-metric tolerance for {col!r} must be >= 0")

    cmp = BenchComparison(experiment=str(candidate.get("experiment", "?")))
    if baseline.get("experiment") != candidate.get("experiment"):
        cmp.structural.append(
            f"experiment mismatch: baseline {baseline.get('experiment')!r} "
            f"vs candidate {candidate.get('experiment')!r}"
        )
        return cmp
    cmp.warnings.extend(_environment_warnings(baseline, candidate))
    cmp.warnings.extend(_schema_warnings(baseline))

    b_cols, c_cols = list(baseline["columns"]), list(candidate["columns"])
    missing = [c for c in b_cols if c not in c_cols]
    extra = [c for c in c_cols if c not in b_cols]
    if missing:
        cmp.structural.append(f"candidate lost columns: {missing}")
    if extra:
        cmp.structural.append(f"candidate grew columns: {extra}")

    b_rows, c_rows = baseline["rows"], candidate["rows"]
    if len(b_rows) != len(c_rows):
        cmp.structural.append(
            f"row count changed: {len(b_rows)} -> {len(c_rows)}"
        )
    shared = [c for c in b_cols if c in c_cols and c not in skip_columns]

    for i in range(min(len(b_rows), len(c_rows))):
        b_row = dict(zip(b_cols, b_rows[i]))
        c_row = dict(zip(c_cols, c_rows[i]))
        # Label the row with its leading textual/parameter cells for humans.
        label = ",".join(str(b_row[c]) for c in shared[:3]) or f"#{i}"
        for col in shared:
            b_val, c_val = b_row[col], c_row[col]
            b_num, c_num = _as_float(b_val), _as_float(c_val)
            direction = metric_direction(col)
            tol = per_metric.get(col, tolerance)
            if b_num is None or c_num is None:
                # Textual cell (tool names, labels): identity comparison.
                status = "ok" if str(b_val) == str(c_val) else "regressed"
                cmp.deltas.append(MetricDelta(
                    row=i, row_label=label, column=col, direction="either",
                    baseline=b_val, candidate=c_val, rel_delta=0.0,
                    tolerance=0.0, status=status,
                ))
                continue
            if b_num == 0.0:
                rel = 0.0 if c_num == 0.0 else float("inf")
            else:
                rel = (c_num - b_num) / abs(b_num)
            if direction == "higher":
                bad, good = rel < -tol, rel > tol
            elif direction == "lower":
                bad, good = rel > tol, rel < -tol
            else:
                bad, good = abs(rel) > tol, False
            status = "regressed" if bad else ("improved" if good else "ok")
            cmp.deltas.append(MetricDelta(
                row=i, row_label=label, column=col, direction=direction,
                baseline=b_val, candidate=c_val, rel_delta=rel,
                tolerance=tol, status=status,
            ))
    return cmp


def compare_files(
    baseline_path: str | Path,
    candidate_path: str | Path,
    tolerance: float = 0.05,
    per_metric: dict[str, float] | None = None,
) -> BenchComparison:
    """File-level convenience wrapper around :func:`compare_bench`."""
    return compare_bench(
        load_bench_json(baseline_path),
        load_bench_json(candidate_path),
        tolerance=tolerance,
        per_metric=per_metric,
    )
