"""PMPI-style interception.

The paper generates its virtualization and instrumentation layers with an
MPI wrapper generator over the PMPI profiling interface.  Here every
simulated MPI call runs through a :class:`PMPIStack`: a stack of
:class:`Interceptor` objects that observe the call, may charge extra CPU
time (instrumentation overhead), and may run blocking work (flushing a full
event pack through a stream exerts backpressure on the application — the
paper's central overhead mechanism).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.world import RankContext


@dataclass(frozen=True, slots=True)
class CallRecord:
    """What an interceptor sees about one completed MPI call."""

    name: str
    t_start: float
    t_end: float
    comm_id: int
    comm_rank: int
    comm_size: int
    peer: int  # destination / matched source; -1 for collectives
    tag: int  # -1 when not applicable
    nbytes: int

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class Interceptor:
    """Base interceptor; subclass and override the hooks you need.

    ``on_enter`` / ``on_exit`` may return ``None`` (free), a float (CPU
    seconds charged to the calling rank), or a generator (driven to
    completion on the calling rank's timeline — use this for blocking work
    such as stream writes).
    """

    def on_enter(self, ctx: "RankContext", name: str) -> Any:
        return None

    def on_exit(self, ctx: "RankContext", record: CallRecord) -> Any:
        return None

    def on_attach(self, ctx: "RankContext") -> None:
        """Called when the interceptor is installed on a rank."""

    def on_detach(self, ctx: "RankContext") -> None:
        """Called when the rank's program finalizes."""


class PMPIStack:
    """Ordered interceptor stack for one rank."""

    __slots__ = ("ctx", "interceptors", "calls_seen")

    def __init__(self, ctx: "RankContext"):
        self.ctx = ctx
        self.interceptors: list[Interceptor] = []
        self.calls_seen = 0

    def attach(self, interceptor: Interceptor) -> None:
        self.interceptors.append(interceptor)
        interceptor.on_attach(self.ctx)

    def detach_all(self) -> None:
        for interceptor in self.interceptors:
            interceptor.on_detach(self.ctx)
        self.interceptors.clear()

    @property
    def active(self) -> bool:
        return bool(self.interceptors)

    def around(
        self,
        name: str,
        impl,
        *,
        comm_id: int = -1,
        comm_rank: int = -1,
        comm_size: int = 0,
        peer: int = -1,
        tag: int = -1,
        nbytes: int = 0,
        post=None,
    ):
        """Generator: run ``impl`` (a generator) under the interceptors.

        ``post(result)`` may return a dict overriding record fields that are
        only known after completion (matched source, actual byte count of a
        wildcard receive, ...).
        """
        if not self.interceptors:
            result = yield from impl
            return result
        self.calls_seen += 1
        ctx = self.ctx
        kernel = ctx.kernel
        # Hook results are interpreted inline: the overwhelmingly common
        # None / seconds outcomes never build a _drive generator frame.
        for interceptor in self.interceptors:
            hooked = interceptor.on_enter(ctx, name)
            if hooked is None:
                continue
            if isinstance(hooked, (int, float)):
                if hooked > 0:
                    yield kernel.timeout(float(hooked))
                continue
            yield from _drive(kernel, hooked)
        t_start = kernel.now
        result = yield from impl
        if post is None:
            record = CallRecord(
                name, t_start, kernel.now, comm_id, comm_rank, comm_size,
                peer, tag, nbytes,
            )
        else:
            fields = {
                "name": name,
                "t_start": t_start,
                "t_end": kernel.now,
                "comm_id": comm_id,
                "comm_rank": comm_rank,
                "comm_size": comm_size,
                "peer": peer,
                "tag": tag,
                "nbytes": nbytes,
            }
            fields.update(post(result))
            record = CallRecord(**fields)
        for interceptor in self.interceptors:
            hooked = interceptor.on_exit(ctx, record)
            if hooked is None:
                continue
            if isinstance(hooked, (int, float)):
                if hooked > 0:
                    yield kernel.timeout(float(hooked))
                continue
            yield from _drive(kernel, hooked)
        return result


def _drive(kernel, hook_result):
    """Generator: interpret a hook's return value (None / float / generator)."""
    if hook_result is None:
        return
    if isinstance(hook_result, (int, float)):
        if hook_result > 0:
            yield kernel.timeout(float(hook_result))
        return
    if inspect.isgenerator(hook_result):
        yield from hook_result
        return
    raise TypeError(
        f"interceptor hook returned {type(hook_result).__name__}; "
        "expected None, seconds, or a generator"
    )
