#!/usr/bin/env python
"""Telemetry tour: watch the measurement pipeline measure itself.

The reproduction's self-telemetry subsystem stamps counters, gauges,
histograms and spans in *virtual kernel time* while a coupled run executes,
then exports a Chrome trace-event file — open it in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing`` to see one process row
per simulated rank plus the kernel's own row.

Run:  python examples/telemetry_tour.py
"""

from repro import CouplingSession
from repro.apps import EulerMHD, nas_kernel
from repro.telemetry import Telemetry
from repro.util.units import fmt_bytes, fmt_time


def main() -> None:
    # One Telemetry instance is shared by the whole simulation; the kernel
    # binds its clock to virtual time at launch.
    tel = Telemetry()
    session = CouplingSession(seed=7, telemetry=tel)
    session.add_application(nas_kernel("CG", 32, "C", iterations=4))
    session.add_application(EulerMHD(16, iterations=3))
    session.set_analyzer(ratio=2.0)
    result = session.run()

    # -- headline numbers -------------------------------------------------------
    head = tel.headline()
    print(f"kernel events dispatched : {head['events_dispatched']}")
    print(f"bytes streamed           : {fmt_bytes(head['bytes_streamed'])}")
    print(f"spans recorded           : {head['spans_recorded']}")
    print()

    # -- where the virtual time went -------------------------------------------
    print("busiest spans (by summed virtual duration):")
    totals = tel.span_totals()
    for name, t in sorted(totals.items(), key=lambda kv: -kv[1]["total_s"])[:8]:
        print(f"  {name:<22} x{int(t['count']):<6} {fmt_time(t['total_s'])}")
    print()

    # -- distributions ----------------------------------------------------------
    stall = tel.histograms.get("stream.write_stall_s")
    if stall is not None and stall.count:
        print(
            f"writer rendezvous stalls : n={stall.count} "
            f"mean={fmt_time(stall.mean)} p95={fmt_time(stall.percentile(95))}"
        )
    print()

    # -- the same summary, embedded in the profiling report ---------------------
    rendered = result.report.render()
    section = rendered[rendered.index("## Self-telemetry") :]
    print(section)

    # -- export -----------------------------------------------------------------
    trace = tel.write_chrome_trace("telemetry_tour.trace.json")
    jsonl = tel.write_jsonl("telemetry_tour.jsonl")
    print(f"Chrome trace (load in Perfetto): {trace}")
    print(f"JSONL records (jq/pandas)      : {jsonl}")


if __name__ == "__main__":
    main()
