"""Reading the record plane back: torn-tail-tolerant NDJSON + archive query.

Two consumers need to *read* schema-tagged NDJSON:

* a **live tail** following a file another process is still flushing.  A
  flush can tear mid-record, leaving a trailing line that is invalid JSON
  with no newline yet — that is normal, not corruption, and the reader
  must tolerate exactly one such line and resume from its start once more
  bytes arrive (:func:`iter_ndjson`, ``tail=True``);
* an **archive query** over finished run directories, where every line
  should parse and anything else is real corruption worth failing on.

Offsets are byte positions (files are read in binary), so a resumed tail
re-seeks exactly to where the previous pass stopped regardless of record
content.  :func:`iter_archive` walks run directories for ``*.jsonl`` /
``*.ndjson`` files and yields records across all registered schemas,
counting (rather than crashing on) records from schemas the registry does
not know — a run archived by a *newer* version must still be queryable.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.errors import ConfigError
from repro.obs.registry import REGISTRY, SchemaRegistry, record_time

__all__ = ["iter_ndjson", "iter_archive", "match_record", "ArchiveScan"]

#: file suffixes the archive walker treats as record streams
RECORD_SUFFIXES = (".ndjson", ".jsonl")


def iter_ndjson(
    path: str | Path,
    *,
    tail: bool = False,
    start: int = 0,
) -> Iterator[tuple[int, dict[str, Any]]]:
    """Yield ``(next_offset, record)`` pairs from one NDJSON file.

    ``next_offset`` is the byte position just past the record's newline —
    pass it back as ``start`` to resume without re-reading.  Blank lines
    are skipped (but advance the offset).

    With ``tail=True`` the final line is allowed to be *partial*: a line
    with no terminating newline (torn mid-flush by a live writer) ends the
    iteration silently, and the last yielded ``next_offset`` (or ``start``
    when nothing parsed) is the position to resume from.  A malformed line
    that **is** newline-terminated is mid-file corruption and raises
    :class:`~repro.errors.ConfigError` loudly in both modes — as does a
    torn final line when ``tail=False``, because a finished file should
    not have one.
    """
    path = Path(path)
    lineno = 0
    with open(path, "rb") as fh:
        if start:
            fh.seek(start)
        offset = start
        for raw in fh:
            lineno += 1
            complete = raw.endswith(b"\n")
            line = raw.strip()
            if not line:
                if complete:
                    offset += len(raw)
                    continue
                return  # whitespace-only torn tail: resume at its start
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if tail and not complete:
                    return  # the one tolerated trailing partial line
                raise ConfigError(
                    f"{path}:+{offset}: not valid JSON: {exc}"
                ) from exc
            if not complete:
                if tail:
                    # Parses today, but the writer may still be appending
                    # to this line (its newline has not flushed) — treat
                    # as partial and re-read it next pass.
                    return
                raise ConfigError(
                    f"{path}:+{offset}: final line has no newline "
                    "(torn tail; use tail=True to follow a live file)"
                )
            offset += len(raw)
            yield offset, record


def match_record(
    record: dict[str, Any],
    schema: str | None = None,
    kind: str | None = None,
    since: float | None = None,
) -> bool:
    """The shared ``--schema/--kind/--since`` filter predicate.

    ``since`` is inclusive (a record stamped exactly at the bound passes)
    and excludes time-less records — a filter on time cannot vouch for a
    record that carries none.
    """
    if schema is not None and record.get("schema") != schema:
        return False
    if kind is not None and record.get("kind") != kind:
        return False
    if since is not None:
        t = record_time(record)
        if t is None or t < since:
            return False
    return True


@dataclass
class ArchiveScan:
    """Bookkeeping of one archive walk: what was read, skipped, unknown."""

    files_scanned: int = 0
    records_read: int = 0
    records_matched: int = 0
    #: records whose schema tag the registry does not know, per tag
    unknown_schemas: dict[str, int] = field(default_factory=dict)
    #: files skipped because their first line was not a JSON object
    files_skipped: list[str] = field(default_factory=list)


def _record_files(roots: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    for root in roots:
        root = Path(root)
        if root.is_dir():
            found = [
                p
                for suffix in RECORD_SUFFIXES
                for p in root.rglob(f"*{suffix}")
                if p.is_file()
            ]
            files.extend(sorted(set(found)))
        elif root.is_file():
            files.append(root)
        else:
            raise ConfigError(f"no such file or directory: {root}")
    return files


def iter_archive(
    roots: Iterable[str | Path],
    *,
    schema: str | None = None,
    kind: str | None = None,
    since: float | None = None,
    registry: SchemaRegistry | None = None,
    scan: ArchiveScan | None = None,
) -> Iterator[dict[str, Any]]:
    """Yield matching records from run-archive files, file by file.

    ``roots`` are files or directories (searched recursively for
    ``*.ndjson`` / ``*.jsonl``).  Records with a schema the registry does
    not know are counted in ``scan.unknown_schemas`` and skipped — never
    yielded, even schema-filter-free, because a consumer cannot interpret
    them; a file whose very first line is not JSON at all (some foreign
    ``.jsonl``) is skipped whole.  Genuine mid-file corruption still
    raises, matching :func:`iter_ndjson`.
    """
    registry = registry if registry is not None else REGISTRY
    scan = scan if scan is not None else ArchiveScan()
    for path in _record_files(roots):
        try:
            stream = iter_ndjson(path)
            first = next(stream, None)
        except ConfigError:
            scan.files_skipped.append(str(path))
            continue
        scan.files_scanned += 1
        if first is None:
            continue  # empty file: scanned, nothing to yield
        for _offset, record in itertools.chain([first], stream):
            scan.records_read += 1
            tag = record.get("schema") if isinstance(record, dict) else None
            if not isinstance(tag, str) or tag not in registry:
                label = tag if isinstance(tag, str) else "<missing>"
                scan.unknown_schemas[label] = scan.unknown_schemas.get(label, 0) + 1
                continue
            if match_record(record, schema=schema, kind=kind, since=since):
                scan.records_matched += 1
                yield record
