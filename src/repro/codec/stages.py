"""Composable measurements-reduction stages and the codec-chain registry.

A chain is an ordered list of :class:`Stage` objects built from a spec
string such as ``"delta+dict+zlib"`` (stage args after a colon:
``"quant:1e-6+zlib:9"``).  Encoding applies stages left to right;
decoding applies their inverses right to left, so every stage's decoder
sees exactly what its encoder produced.

Stages are typed by *phase*, and a chain must be phase-ordered:

    phase 0 — record filters (``sample``, ``quant``): fixed-width records
              in, fixed-width records out; may drop or rewrite events.
    phase 1 — columnar transforms (``delta``, ``dict``): operate on the
              split site/time columns of the record batch.
    phase 2 — byte codecs (``zlib``): opaque bytes in, opaque bytes out.

Between phases 0 and 2 the chain serializes a small self-describing
columnar container, which is what makes ``delta`` and ``dict`` compose
without either knowing the other's output format.

``sample`` and ``quant`` are deliberately lossy (that is the point of
online reduction); every chain listed in :data:`REGISTERED_CHAINS` is
lossless and must round-trip bit-exactly — the randomized codec tests
enforce this.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigError, PackFormatError, UnknownCodecError
from repro.telemetry import hostprof

RECORD_SIZE = 40  # matches instrument.events.EVENT_RECORD_SIZE (asserted there)
_SITE_BYTES = 24  # the non-temporal record prefix ("call site")
_TIME_BYTES = 16  # t_start + t_end, two little-endian f64

# A record is the 24-byte call-site prefix followed by the two timestamps.
_REC_DTYPE = np.dtype(
    {
        "names": ["site", "t_start", "t_end"],
        "formats": ["V24", "<f8", "<f8"],
        "offsets": [0, _SITE_BYTES, _SITE_BYTES + 8],
        "itemsize": RECORD_SIZE,
    }
)

SITE_RAW, SITE_DICT = 0, 1
TIME_RAW, TIME_DELTA = 0, 1
_COL_FMT = "<BBII"  # site_enc, time_enc, count, sites_len
_COL_STRUCT = struct.Struct(_COL_FMT)
_COL_HEADER_SIZE = _COL_STRUCT.size


@dataclass
class CodecContext:
    """Per-encode state threaded through the stages of one pack seal."""

    now: float = 0.0
    events_dropped: int = 0


@dataclass(frozen=True)
class EncodeResult:
    """Outcome of encoding one record batch through a chain."""

    payload: bytes  # the frame's payload-section body
    count: int  # records the payload decodes back to (post-sampling)
    raw_bytes: int  # kept-record bytes before lossless transforms
    events_dropped: int  # records the sampler removed from this batch


@dataclass
class Columnar:
    """The split record batch phase-1 stages transform.

    ``sites`` and ``times`` each carry their own encoding tag, so the
    container is self-describing and a decoder can detect when the chain
    it was asked to apply does not match the bytes in front of it.
    """

    count: int
    site_enc: int
    time_enc: int
    sites: bytes
    times: bytes

    def serialize(self) -> bytes:
        return (
            _COL_STRUCT.pack(
                self.site_enc, self.time_enc, self.count, len(self.sites)
            )
            + self.sites
            + self.times
        )

    @classmethod
    def parse(cls, data: bytes) -> "Columnar":
        if len(data) < _COL_HEADER_SIZE:
            raise PackFormatError(
                f"columnar container of {len(data)} bytes shorter than header"
            )
        site_enc, time_enc, count, sites_len = _COL_STRUCT.unpack_from(data, 0)
        body = data[_COL_HEADER_SIZE:]
        if sites_len > len(body):
            raise PackFormatError(
                f"columnar sites length {sites_len} exceeds body of {len(body)} bytes"
            )
        return cls(
            count=count,
            site_enc=site_enc,
            time_enc=time_enc,
            sites=bytes(body[:sites_len]),
            times=bytes(body[sites_len:]),
        )


def _split_columnar(records: bytes) -> Columnar:
    count = len(records) // RECORD_SIZE
    arr = np.frombuffer(records, dtype=_REC_DTYPE)
    times = np.empty((count, 2), dtype="<f8")
    times[:, 0] = arr["t_start"]
    times[:, 1] = arr["t_end"]
    return Columnar(
        count=count,
        site_enc=SITE_RAW,
        time_enc=TIME_RAW,
        sites=arr["site"].tobytes(),
        times=times.tobytes(),
    )


def _reassemble(col: Columnar) -> bytes:
    if col.site_enc != SITE_RAW or col.time_enc != TIME_RAW:
        raise PackFormatError(
            "codec descriptor mismatch: columnar payload still encoded "
            f"(site_enc={col.site_enc}, time_enc={col.time_enc}) after chain decode"
        )
    if len(col.sites) != col.count * _SITE_BYTES:
        raise PackFormatError(
            f"columnar sites of {len(col.sites)} bytes, "
            f"count {col.count} implies {col.count * _SITE_BYTES}"
        )
    if len(col.times) != col.count * _TIME_BYTES:
        raise PackFormatError(
            f"columnar times of {len(col.times)} bytes, "
            f"count {col.count} implies {col.count * _TIME_BYTES}"
        )
    out = np.empty(col.count, dtype=_REC_DTYPE)
    out["site"] = np.frombuffer(col.sites, dtype="V24")
    times = np.frombuffer(col.times, dtype="<f8").reshape(col.count, 2)
    out["t_start"] = times[:, 0]
    out["t_end"] = times[:, 1]
    return out.tobytes()


def _encode_varints(values) -> bytes:
    out = bytearray()
    for v in values:
        while True:
            byte = v & 0x7F
            v >>= 7
            if v:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def _decode_varints(data: bytes, count: int) -> tuple[list[int], int]:
    """Decode exactly ``count`` varints; returns (values, bytes consumed)."""
    values: list[int] = []
    pos = 0
    total = len(data)
    for _ in range(count):
        shift = 0
        acc = 0
        while True:
            if pos >= total:
                raise PackFormatError("varint stream truncated")
            byte = data[pos]
            pos += 1
            acc |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
        values.append(acc)
    return values, pos


def _zigzag(n: int) -> int:
    return (n << 1) ^ (n >> 63)


def _unzigzag(z: int) -> int:
    return (z >> 1) ^ -(z & 1)


class Stage:
    """One symmetric encode/decode step of a reduction chain.

    Subclasses override the pair of hooks matching their phase; the
    defaults are identity, so decode always mirrors encode.
    """

    name: str = "?"
    phase: int = 0
    lossless: bool = True
    cost_weight: float = 1.0  # relative CPU per raw byte, scales the cost model

    def spec(self) -> str:
        return self.name

    # phase 0 — records in, records out
    def encode_records(self, records: bytes, ctx: CodecContext) -> bytes:
        return records

    def decode_records(self, records: bytes) -> bytes:
        return records

    # phase 1 — columnar transforms (mutate in place)
    def encode_columnar(self, col: Columnar, ctx: CodecContext) -> None:
        return None

    def decode_columnar(self, col: Columnar) -> None:
        return None

    # phase 2 — opaque bytes
    def encode_bytes(self, data: bytes, ctx: CodecContext) -> bytes:
        return data

    def decode_bytes(self, data: bytes) -> bytes:
        return data


class SampleStage(Stage):
    """Adaptive event sampling against a target wire budget (lossy).

    Keeps every record while the cumulative content volume stays under
    ``target_bps * elapsed + burst``; past that, keeps a deterministic,
    evenly spaced subset of each batch and reports the exact drop count
    through :attr:`CodecContext.events_dropped` (carried on the frame's
    SAMPLING section, so the analyzer's accounting is exact, not
    estimated).  Decode is the identity — dropped events are gone.
    """

    name = "sample"
    phase = 0
    lossless = False
    cost_weight = 0.2

    def __init__(self, arg: str | None = None):
        self.target_bps = float(arg) if arg else 262144.0
        if self.target_bps <= 0:
            raise ConfigError(f"sample target must be positive, got {self.target_bps}")
        self.burst_bytes = 65536.0
        self._t0: float | None = None
        self._sent_bytes = 0.0

    def spec(self) -> str:
        return f"{self.name}:{self.target_bps:g}"

    def encode_records(self, records: bytes, ctx: CodecContext) -> bytes:
        count = len(records) // RECORD_SIZE
        if count == 0:
            return records
        if self._t0 is None:
            self._t0 = ctx.now
        allowed = self.target_bps * (ctx.now - self._t0) + self.burst_bytes
        budget = allowed - self._sent_bytes
        keep = min(count, max(0, int(budget // RECORD_SIZE)))
        self._sent_bytes += keep * RECORD_SIZE
        if keep >= count:
            return records
        ctx.events_dropped += count - keep
        if keep == 0:
            return b""
        idx = (np.arange(keep, dtype=np.int64) * count) // keep
        arr = np.frombuffer(records, dtype=_REC_DTYPE)
        return arr[idx].tobytes()


class QuantStage(Stage):
    """Duration quantization (lossy): snap ``t_end - t_start`` to a grid.

    ``t_start`` is untouched (event ordering and inter-event gaps stay
    exact); the duration is rounded to the nearest multiple of ``q``
    seconds, collapsing near-equal durations so downstream ``delta`` and
    ``zlib`` stages see far fewer distinct values.
    """

    name = "quant"
    phase = 0
    lossless = False
    cost_weight = 0.3

    def __init__(self, arg: str | None = None):
        self.q = float(arg) if arg else 1e-6
        if self.q <= 0:
            raise ConfigError(f"quant grid must be positive, got {self.q}")

    def spec(self) -> str:
        return f"{self.name}:{self.q:g}"

    def encode_records(self, records: bytes, ctx: CodecContext) -> bytes:
        if not records:
            return records
        arr = np.frombuffer(records, dtype=_REC_DTYPE).copy()
        dur = arr["t_end"] - arr["t_start"]
        arr["t_end"] = arr["t_start"] + np.round(dur / self.q) * self.q
        return arr.tobytes()


class DeltaStage(Stage):
    """Timestamp delta + varint encoding (lossless, exact for floats).

    Timestamps are monotone positive doubles, so their IEEE-754 bit
    patterns are monotone 63-bit integers: delta + zigzag + varint over
    the *bit patterns* compresses them without losing a single ULP.
    ``t_end`` is stored as the varint difference to its own ``t_start``.
    """

    name = "delta"
    phase = 1
    lossless = True
    cost_weight = 1.0

    def encode_columnar(self, col: Columnar, ctx: CodecContext) -> None:
        if col.count == 0 or col.time_enc != TIME_RAW:
            return
        pairs = np.frombuffer(col.times, dtype="<f8").reshape(col.count, 2)
        ts_bits = np.ascontiguousarray(pairs[:, 0]).view(np.int64)
        te_bits = np.ascontiguousarray(pairs[:, 1]).view(np.int64)
        ts_vals = [int(ts_bits[0])] + np.diff(ts_bits).tolist()
        te_vals = (te_bits - ts_bits).tolist()
        ts_stream = _encode_varints(_zigzag(v) for v in ts_vals)
        te_stream = _encode_varints(_zigzag(v) for v in te_vals)
        col.times = struct.pack("<I", len(ts_stream)) + ts_stream + te_stream
        col.time_enc = TIME_DELTA

    def decode_columnar(self, col: Columnar) -> None:
        if col.time_enc != TIME_DELTA:
            if col.time_enc == TIME_RAW and col.count == 0:
                return  # empty batches are left raw on encode
            raise PackFormatError(
                f"delta decode on time_enc={col.time_enc} columnar payload"
            )
        data = col.times
        if len(data) < 4:
            raise PackFormatError("delta time stream shorter than its length prefix")
        (ts_len,) = struct.unpack_from("<I", data, 0)
        ts_zz, used = _decode_varints(data[4 : 4 + ts_len], col.count)
        if used != ts_len:
            raise PackFormatError(
                f"delta t_start stream: {ts_len} bytes declared, {used} consumed"
            )
        te_zz, used = _decode_varints(data[4 + ts_len :], col.count)
        if 4 + ts_len + used != len(data):
            raise PackFormatError("trailing bytes after delta t_end stream")
        ts_bits = np.cumsum(
            np.array([_unzigzag(z) for z in ts_zz], dtype=np.int64), dtype=np.int64
        )
        te_bits = ts_bits + np.array(
            [_unzigzag(z) for z in te_zz], dtype=np.int64
        )
        pairs = np.empty((col.count, 2), dtype=np.int64)
        pairs[:, 0] = ts_bits
        pairs[:, 1] = te_bits
        col.times = pairs.view("<f8").tobytes()
        col.time_enc = TIME_RAW


class DictStage(Stage):
    """Dictionary encoding of call sites (lossless).

    The 24-byte non-temporal record prefix — call id, flags, peer, tag,
    communicator size, message bytes — repeats heavily inside a pack
    (loops issue the same call shape thousands of times).  Unique
    prefixes go into a table; each record stores a 1/2/4-byte index.
    """

    name = "dict"
    phase = 1
    lossless = True
    cost_weight = 1.0

    def encode_columnar(self, col: Columnar, ctx: CodecContext) -> None:
        if col.count == 0 or col.site_enc != SITE_RAW:
            return
        arr = np.frombuffer(col.sites, dtype=np.uint8).reshape(col.count, _SITE_BYTES)
        uniq, inverse = np.unique(arr, axis=0, return_inverse=True)
        nuniq = uniq.shape[0]
        if nuniq <= 256:
            idx_dtype, idx_width = np.dtype("<u1"), 1
        elif nuniq <= 65536:
            idx_dtype, idx_width = np.dtype("<u2"), 2
        else:
            idx_dtype, idx_width = np.dtype("<u4"), 4
        col.sites = (
            struct.pack("<BI", idx_width, nuniq)
            + uniq.tobytes()
            + inverse.reshape(-1).astype(idx_dtype).tobytes()
        )
        col.site_enc = SITE_DICT

    def decode_columnar(self, col: Columnar) -> None:
        if col.site_enc != SITE_DICT:
            if col.site_enc == SITE_RAW and col.count == 0:
                return
            raise PackFormatError(
                f"dict decode on site_enc={col.site_enc} columnar payload"
            )
        data = col.sites
        if len(data) < 5:
            raise PackFormatError("dict site stream shorter than its header")
        idx_width, nuniq = struct.unpack_from("<BI", data, 0)
        if idx_width not in (1, 2, 4):
            raise PackFormatError(f"dict index width {idx_width} not in (1, 2, 4)")
        table_end = 5 + nuniq * _SITE_BYTES
        expected = table_end + col.count * idx_width
        if len(data) != expected:
            raise PackFormatError(
                f"dict site stream of {len(data)} bytes, "
                f"table {nuniq} × index {idx_width} implies {expected}"
            )
        table = np.frombuffer(data[5:table_end], dtype=np.uint8).reshape(
            nuniq, _SITE_BYTES
        )
        idx = np.frombuffer(data[table_end:], dtype=f"<u{idx_width}")
        if nuniq and int(idx.max(initial=0)) >= nuniq:
            raise PackFormatError("dict index out of table range")
        col.sites = table[idx].tobytes()
        col.site_enc = SITE_RAW


class ZlibStage(Stage):
    """zlib entropy coding of the whole serialized batch (lossless)."""

    name = "zlib"
    phase = 2
    lossless = True
    cost_weight = 2.5

    def __init__(self, arg: str | None = None):
        self.level = int(arg) if arg else 6
        if not (1 <= self.level <= 9):
            raise ConfigError(f"zlib level must be 1..9, got {self.level}")

    def spec(self) -> str:
        return f"{self.name}:{self.level}" if self.level != 6 else self.name

    def encode_bytes(self, data: bytes, ctx: CodecContext) -> bytes:
        return zlib.compress(data, self.level)

    def decode_bytes(self, data: bytes) -> bytes:
        try:
            return zlib.decompress(data)
        except zlib.error as exc:
            raise PackFormatError(f"zlib payload failed to inflate: {exc}") from exc


_REGISTRY: dict[str, Callable[[str | None], Stage]] = {}


def register_stage(name: str, factory: Callable[[str | None], Stage]) -> None:
    """Register a stage factory under ``name`` (used by chain specs)."""
    if name in _REGISTRY:
        raise ConfigError(f"codec stage {name!r} already registered")
    _REGISTRY[name] = factory


def available_stages() -> list[str]:
    return sorted(_REGISTRY)


register_stage("sample", SampleStage)
register_stage("quant", QuantStage)
register_stage("delta", lambda arg=None: DeltaStage())
register_stage("dict", lambda arg=None: DictStage())
register_stage("zlib", ZlibStage)

#: Every lossless chain the randomized round-trip tests must pass bit-exactly.
REGISTERED_CHAINS: tuple[str, ...] = (
    "",
    "delta",
    "dict",
    "zlib",
    "delta+dict",
    "delta+zlib",
    "dict+zlib",
    "delta+dict+zlib",
)


class CodecChain:
    """An ordered, phase-validated list of stages with one spec string."""

    def __init__(self, stages: Sequence[Stage]):
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate stage in chain: {'+'.join(names)}")
        phases = [s.phase for s in stages]
        if phases != sorted(phases):
            raise ConfigError(
                "chain stages out of phase order "
                f"({'+'.join(names)}): record filters (sample, quant) must come "
                "before columnar transforms (delta, dict), byte codecs (zlib) last"
            )
        self.stages = list(stages)
        # Phase partition, computed once: the encode/decode hot loops must
        # not rebuild these lists per pack.
        self._phase0 = [s for s in self.stages if s.phase == 0]
        self._phase1 = [s for s in self.stages if s.phase == 1]
        self._phase2 = [s for s in self.stages if s.phase == 2]

    @property
    def spec(self) -> str:
        return "+".join(s.spec() for s in self.stages)

    @property
    def lossless(self) -> bool:
        return all(s.lossless for s in self.stages)

    @property
    def cost_weight(self) -> float:
        """Relative CPU per raw byte; the cost model's codec multiplier."""
        return sum(s.cost_weight for s in self.stages)

    def __bool__(self) -> bool:
        return bool(self.stages)

    def __repr__(self) -> str:
        return f"CodecChain({self.spec!r})"

    def _by_phase(self, phase: int) -> list[Stage]:
        return (self._phase0, self._phase1, self._phase2)[phase]

    def encode(self, records: bytes, now: float = 0.0) -> EncodeResult:
        """Run one record batch through the chain (left to right)."""
        if len(records) % RECORD_SIZE:
            raise PackFormatError(
                f"record batch of {len(records)} bytes is not a multiple of "
                f"{RECORD_SIZE}"
            )
        hp = hostprof.ACTIVE
        t_host = hp.now() if hp.enabled else 0.0
        ctx = CodecContext(now=now)
        data = bytes(records)
        for stage in self._phase0:
            data = stage.encode_records(data, ctx)
        count = len(data) // RECORD_SIZE
        raw_bytes = len(data)
        columnar = self._phase1
        if columnar:
            col = _split_columnar(data)
            for stage in columnar:
                stage.encode_columnar(col, ctx)
            data = col.serialize()
        for stage in self._phase2:
            data = stage.encode_bytes(data, ctx)
        if hp.enabled:
            # MB/s over the *content* bytes in: the work the chain absorbed.
            hp.timer("codec.encode").add(hp.now() - t_host, nbytes=len(records))
        return EncodeResult(
            payload=data,
            count=count,
            raw_bytes=raw_bytes,
            events_dropped=ctx.events_dropped,
        )

    def decode(self, payload: bytes, count: int) -> bytes:
        """Invert :meth:`encode`: payload bytes back to fixed-width records."""
        hp = hostprof.ACTIVE
        t_host = hp.now() if hp.enabled else 0.0
        # Zero-copy entry: ``payload`` may be a memoryview straight out of
        # parse_frame; every stage accepts buffer objects, and the identity
        # chain hands the view back uncopied.
        data = payload
        for stage in reversed(self._phase2):
            data = stage.decode_bytes(data)
        columnar = self._phase1
        if columnar:
            col = Columnar.parse(data)
            if col.count != count:
                raise PackFormatError(
                    f"columnar count {col.count} disagrees with frame count {count}"
                )
            for stage in reversed(columnar):
                stage.decode_columnar(col)
            data = _reassemble(col)
        if len(data) != count * RECORD_SIZE:
            raise PackFormatError(
                f"decoded payload of {len(data)} bytes, "
                f"frame count {count} implies {count * RECORD_SIZE}"
            )
        for stage in reversed(self._phase0):
            data = stage.decode_records(data)
        if hp.enabled:
            # MB/s over the content bytes out: symmetric with encode.
            hp.timer("codec.decode").add(hp.now() - t_host, nbytes=len(data))
        return data


def build_chain(spec: str | Sequence[str] | None) -> CodecChain:
    """Build a fresh chain (fresh stage state) from a spec.

    Accepts a ``"+"``-joined string, a sequence of stage tokens, or
    ``None``/``""``/``[]`` for the identity chain.  Unknown stage names
    raise :class:`UnknownCodecError`; structurally invalid chains
    (duplicates, phase order) raise :class:`ConfigError`.
    """
    if spec is None:
        tokens: list[str] = []
    elif isinstance(spec, str):
        tokens = [t for t in spec.split("+") if t] if spec else []
    else:
        tokens = [str(t) for t in spec if str(t)]
    stages = []
    for token in tokens:
        name, _, arg = token.partition(":")
        name = name.strip()
        factory = _REGISTRY.get(name)
        if factory is None:
            raise UnknownCodecError(
                f"unknown codec stage {name!r} "
                f"(available: {', '.join(available_stages())})"
            )
        stages.append(factory(arg.strip() or None))
    return CodecChain(stages)


_DECODE_CHAINS: dict[str, CodecChain] = {}


def decode_chain(spec: str) -> CodecChain:
    """A cached chain for *decoding* a wire descriptor.

    Decode is stateless, so instances are shared; never use the returned
    chain to encode (``sample`` carries budget state across packs).
    Structural errors in a wire descriptor surface as
    :class:`UnknownCodecError` so ingest can reject the pack.
    """
    chain = _DECODE_CHAINS.get(spec)
    if chain is None:
        try:
            chain = build_chain(spec)
        except ConfigError as exc:
            raise UnknownCodecError(str(exc)) from exc
        if len(_DECODE_CHAINS) < 64:
            _DECODE_CHAINS[spec] = chain
    return chain
