"""Edge-path coverage across small utilities and error branches."""

import pytest

from repro.errors import ConfigError, DeadlockError
from repro.simt import Kernel, Pipe


class TestKernelRunUntilEvent:
    def test_failing_event_raises(self, kernel):
        def boom(k):
            yield k.timeout(1.0)
            raise RuntimeError("expected")

        p = kernel.spawn(boom(kernel))
        with pytest.raises(RuntimeError, match="expected"):
            kernel.run(until=p)

    def test_deadlock_while_waiting_for_event(self, kernel):
        target = kernel.event("never")

        def stuck(k):
            yield k.event()

        kernel.spawn(stuck(kernel), name="stuck")
        with pytest.raises(DeadlockError):
            kernel.run(until=target)


class TestPipeUtilization:
    def test_explicit_horizon(self, kernel):
        pipe = Pipe(kernel, bandwidth=10.0)

        def proc(k):
            yield pipe.transfer(10)  # busy 1s
            yield k.timeout(3.0)

        kernel.spawn(proc(kernel))
        kernel.run()
        assert pipe.utilization(horizon=2.0) == pytest.approx(0.5)
        assert pipe.utilization(horizon=0.0) == 0.0


class TestRenderingEdges:
    def test_table_str(self):
        from repro.util.tables import Table

        t = Table(["a"])
        t.add_row(1)
        assert str(t) == t.render()

    def test_profile_table_renders(self):
        import numpy as np

        from repro.analysis.profiler import MPIProfile
        from repro.instrument.events import CALL_IDS, EVENT_DTYPE

        p = MPIProfile("app", 2)
        arr = np.zeros(1, dtype=EVENT_DTYPE)
        arr[0] = (CALL_IDS["MPI_Send"], 0, 1, 0, 2, 100, 0.0, 0.5)
        p.update(0, arr)
        text = p.table().render()
        assert "MPI_Send" in text and "MPI profile" in text

    def test_density_grid_non_square_rank_count(self):
        from repro.analysis.density import DensityMaps

        d = DensityMaps("app", 10)  # not a perfect square
        text = d.render_grid("MPI_Send", "hits")
        assert "min=" in text

    def test_density_grid_explicit_columns(self):
        from repro.analysis.density import DensityMaps

        d = DensityMaps("app", 12)
        text = d.render_grid("MPI_Send", "hits", columns=6)
        assert len(text.splitlines()) == 3  # header + 2 rows

    def test_comm_matrix_graph_weights(self):
        import numpy as np

        from repro.analysis.topology import CommMatrix
        from repro.instrument.events import CALL_IDS, EVENT_DTYPE

        m = CommMatrix("app", 2)
        arr = np.zeros(1, dtype=EVENT_DTYPE)
        arr[0] = (CALL_IDS["MPI_Send"], 0, 1, 0, 2, 77, 0.0, 0.5)
        m.update(0, arr)
        g = m.graph("size")
        assert g[0][1]["weight"] == 77


class TestGrid3D:
    def test_non_cubic_power_of_two(self):
        from repro.apps.nas.mg import grid_3d

        for n in (2, 8, 32, 256, 1024):
            px, py, pz = grid_3d(n)
            assert px * py * pz == n
            assert px >= py >= pz >= 1


class TestLauncherEdges:
    def test_analyzer_without_apps_rejected(self, machine):
        from repro.analysis.engine import analyzer_program
        from repro.vmpi.virtualization import VirtualizedLauncher

        launcher = VirtualizedLauncher(machine=machine)
        launcher.add_program("Analyzer", nprocs=2, main=analyzer_program)
        with pytest.raises(Exception, match="without application"):
            launcher.run()

    def test_session_without_apps_rejected(self, machine):
        from repro.core.session import CouplingSession

        session = CouplingSession(machine=machine)
        with pytest.raises(ConfigError):
            session.run()
        with pytest.raises(ConfigError):
            session.run_reference()

    def test_world_group_interning(self, machine):
        from repro.mpi import MPMDLauncher

        def app(mpi):
            yield from mpi.init()
            yield from mpi.finalize()

        launcher = MPMDLauncher(machine=machine)
        launcher.add_program("a", nprocs=2, main=app)
        world = launcher.launch()
        g1 = world.intern_group((0, 1), "x")
        g2 = world.intern_group((0, 1), "x")
        assert g1 is g2
        g3 = world.intern_group((0, 1), "x", key="different")
        assert g3 is not g1
        world.run()

    def test_partition_api_queries(self, machine):
        from repro.vmpi.virtualization import VirtualizedLauncher

        seen = {}

        def app(mpi):
            yield from mpi.init()
            seen["count"] = mpi.partition_count()
            seen["by_index"] = mpi.partition_by_index(1).name
            seen["ranks"] = list(mpi.partition_by_name("b").global_ranks)
            yield from mpi.finalize()

        launcher = VirtualizedLauncher(machine=machine)
        launcher.add_program("a", nprocs=2, main=app)
        launcher.add_program("b", nprocs=3, main=_noop)
        launcher.run()
        assert seen == {"count": 2, "by_index": "b", "ranks": [2, 3, 4]}


def _noop(mpi):
    yield from mpi.init()
    yield from mpi.finalize()


class TestErrorsHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        import inspect

        import repro.errors as errors_mod
        from repro.errors import ReproError

        for name, obj in vars(errors_mod).items():
            if inspect.isclass(obj) and issubclass(obj, Exception):
                if obj is not ReproError and obj.__module__ == "repro.errors":
                    assert issubclass(obj, ReproError), name

    def test_deadlock_error_preview_caps(self):
        err = DeadlockError([f"proc{i}" for i in range(20)])
        assert "+12 more" in str(err)
        assert len(err.blocked) == 20
