"""Collective operations: data semantics, synchronization, mismatch detection."""

import pytest

from repro.errors import SimulationError
from repro.mpi import MPMDLauncher
from repro.mpi.collectives import numeric_max, numeric_min
from repro.mpi.costmodel import CostModel


def _single(machine, main, nprocs, **kwargs):
    launcher = MPMDLauncher(machine=machine)
    launcher.add_program("t", nprocs=nprocs, main=main, **kwargs)
    return launcher.run()


def test_barrier_synchronizes(machine):
    after = []

    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        yield from mpi.compute(comm.rank * 0.1)  # staggered arrivals
        yield from comm.barrier()
        after.append(mpi.now)
        yield from mpi.finalize()

    _single(machine, main, 4)
    assert max(after) - min(after) < 1e-12  # all released together
    assert min(after) >= 0.3  # not before the last arrival


def test_bcast_value(machine):
    got = []

    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        value = yield from comm.bcast(
            nbytes=64, root=2, payload=("data", 42) if comm.rank == 2 else None
        )
        got.append(value)
        yield from mpi.finalize()

    _single(machine, main, 4)
    assert got == [("data", 42)] * 4


def test_reduce_to_root_only(machine):
    got = {}

    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        value = yield from comm.reduce(nbytes=8, root=1, payload=comm.rank + 1)
        got[comm.rank] = value
        yield from mpi.finalize()

    _single(machine, main, 4)
    assert got[1] == 10  # 1+2+3+4
    assert got[0] is None and got[2] is None and got[3] is None


def test_allreduce_sum_everywhere(machine):
    got = []

    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        value = yield from comm.allreduce(nbytes=8, payload=comm.rank)
        got.append(value)
        yield from mpi.finalize()

    _single(machine, main, 5)
    assert got == [10] * 5


def test_allreduce_min_max_reducers(machine):
    got = []

    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        lo = yield from comm.allreduce(nbytes=8, payload=comm.rank, reduce_fn=numeric_min)
        hi = yield from comm.allreduce(nbytes=8, payload=comm.rank, reduce_fn=numeric_max)
        got.append((lo, hi))
        yield from mpi.finalize()

    _single(machine, main, 4)
    assert got == [(0, 3)] * 4


def test_gather_ordered(machine):
    got = {}

    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        value = yield from comm.gather(nbytes=8, root=0, payload=f"r{comm.rank}")
        got[comm.rank] = value
        yield from mpi.finalize()

    _single(machine, main, 3)
    assert got[0] == ["r0", "r1", "r2"]
    assert got[1] is None


def test_allgather(machine):
    got = []

    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        value = yield from comm.allgather(nbytes=8, payload=comm.rank * 2)
        got.append(value)
        yield from mpi.finalize()

    _single(machine, main, 3)
    assert got == [[0, 2, 4]] * 3


def test_scatter(machine):
    got = {}

    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        payload = ["a", "b", "c"] if comm.rank == 0 else None
        value = yield from comm.scatter(nbytes=8, root=0, payload=payload)
        got[comm.rank] = value
        yield from mpi.finalize()

    _single(machine, main, 3)
    assert got == {0: "a", 1: "b", 2: "c"}


def test_alltoall_redistribution(machine):
    got = {}

    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        row = [f"{comm.rank}->{j}" for j in range(comm.size)]
        value = yield from comm.alltoall(nbytes=16, payload=row)
        got[comm.rank] = value
        yield from mpi.finalize()

    _single(machine, main, 3)
    for r in range(3):
        assert got[r] == [f"{i}->{r}" for i in range(3)]


def test_collective_mismatch_detected(machine):
    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        if comm.rank == 0:
            yield from comm.barrier()
        else:
            yield from comm.allreduce(nbytes=8)
        yield from mpi.finalize()

    with pytest.raises(SimulationError, match="collective mismatch"):
        _single(machine, main, 2)


def test_root_mismatch_detected(machine):
    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        yield from comm.bcast(nbytes=8, root=comm.rank)
        yield from mpi.finalize()

    with pytest.raises(SimulationError, match="root mismatch"):
        _single(machine, main, 2)


def test_collective_cost_grows_with_ranks(machine):
    cost = CostModel()
    c4 = cost.collective_cost("allreduce", 4, 1024)
    c64 = cost.collective_cost("allreduce", 64, 1024)
    assert c64 > c4


def test_collective_cost_grows_with_bytes(machine):
    cost = CostModel()
    small = cost.collective_cost("bcast", 16, 1024)
    big = cost.collective_cost("bcast", 16, 1024 * 1024)
    assert big > small


def test_collective_cost_single_rank_trivial():
    cost = CostModel()
    assert cost.collective_cost("alltoall", 1, 10**9) == cost.o_send


def test_unknown_collective_rejected():
    from repro.errors import ConfigError

    cost = CostModel()
    with pytest.raises(ConfigError):
        cost.collective_cost("gossip", 4, 8)


def test_successive_collectives_match_by_sequence(machine):
    """Two back-to-back allreduces never cross-match."""
    got = []

    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        first = yield from comm.allreduce(nbytes=8, payload=1)
        second = yield from comm.allreduce(nbytes=8, payload=10)
        got.append((first, second))
        yield from mpi.finalize()

    _single(machine, main, 3)
    assert got == [(3, 30)] * 3


def test_comm_split_subgroups(machine):
    sizes = []

    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        sub = yield from comm.split(color=comm.rank % 2, key=comm.rank)
        sizes.append((comm.rank, sub.size, sub.rank))
        total = yield from sub.allreduce(nbytes=8, payload=comm.rank)
        if comm.rank % 2 == 0:
            assert total == 0 + 2
        else:
            assert total == 1 + 3
        yield from mpi.finalize()

    _single(machine, main, 4)
    assert all(size == 2 for _r, size, _nr in sizes)


def test_comm_dup_independent_matching(machine):
    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        dup = yield from comm.dup()
        assert dup.id != comm.id
        # p2p on the dup does not cross into the original comm.
        if comm.rank == 0:
            yield from dup.send(1, nbytes=8, tag=0, payload="dup")
            yield from comm.send(1, nbytes=8, tag=0, payload="orig")
        else:
            st_orig = yield from comm.recv(source=0, tag=0)
            st_dup = yield from dup.recv(source=0, tag=0)
            assert st_orig.payload == "orig"
            assert st_dup.payload == "dup"
        yield from mpi.finalize()

    _single(machine, main, 2)
