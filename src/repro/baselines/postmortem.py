"""Post-mortem trace analysis over the file-system model.

The classical workflow of paper Figure 1: after the instrumented run, an
analysis job *reads the trace back* from the shared file system,
redistributes it to analysis processes and reduces it.  This is the path
the online coupling removes; modelling it lets benchmarks report the
*time-to-report* comparison (trace write + read-back + reduce vs. streamed
analysis finishing "briefly after execution ends").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.iosim.filesystem import ParallelFS
from repro.network.machine import MachineSpec


@dataclass(frozen=True)
class PostMortemResult:
    read_back_seconds: float
    redistribute_seconds: float
    analyze_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.read_back_seconds + self.redistribute_seconds + self.analyze_seconds


class PostMortemAnalyzer:
    """Analytic model of the trace read-back + analysis phase."""

    def __init__(
        self,
        machine: MachineSpec,
        analysis_cores: int,
        per_byte_cpu: float = 0.8e-9,
    ):
        if analysis_cores <= 0:
            raise ConfigError("analysis_cores must be > 0")
        if per_byte_cpu < 0:
            raise ConfigError("per_byte_cpu must be >= 0")
        self.machine = machine
        self.analysis_cores = analysis_cores
        self.per_byte_cpu = per_byte_cpu

    def analyze(self, trace_bytes: int) -> PostMortemResult:
        """Time to read a trace of ``trace_bytes`` back and reduce it."""
        if trace_bytes < 0:
            raise ConfigError("trace_bytes must be >= 0")
        fs_bw = self.machine.fs_job_bandwidth(self.analysis_cores)
        read_back = trace_bytes / fs_bw
        # Explicit redistribution: the trace is written in file order, the
        # analysis wants rank order (paper Figure 1) — one shuffle pass
        # through the per-rank NIC share.
        per_rank_bw = (
            self.machine.nic_effective_bandwidth(self.machine.cores_per_node)
            / self.machine.cores_per_node
        )
        redistribute = trace_bytes / (per_rank_bw * self.analysis_cores)
        analyze = trace_bytes * self.per_byte_cpu / self.analysis_cores
        return PostMortemResult(
            read_back_seconds=read_back,
            redistribute_seconds=redistribute,
            analyze_seconds=analyze,
        )
