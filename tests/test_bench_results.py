"""Benchmark result containers: grouping, accessors, table rendering."""

import pytest

from repro.bench.figures import Fig15Result, Fig17Result, Fig18Result, _fig15_workloads
from repro.bench.harness import OverheadPoint
from repro.bench.tables import BiResult, FSComparisonResult, TraceSizeResult


def _point(app, nprocs, ovh):
    t_ref = 1.0
    return OverheadPoint(
        app=app,
        nprocs=nprocs,
        t_reference=t_ref,
        t_instrumented=t_ref * (1 + ovh / 100.0),
        events=10,
        modeled_stream_bytes=100,
    )


class TestFig15Result:
    def test_by_app_groups(self):
        r = Fig15Result(machine="X")
        r.points = [_point("SP.C", 64, 1.0), _point("SP.C", 256, 2.0), _point("LU.C", 64, 3.0)]
        grouped = r.by_app()
        assert len(grouped["SP.C"]) == 2
        assert len(grouped["LU.C"]) == 1

    def test_table_renders_all_points(self):
        r = Fig15Result(machine="X")
        r.points = [_point("SP.C", 64, 1.0)]
        text = r.table().render()
        assert "SP.C" in text and "Figure 15" in text

    def test_workload_grids_well_formed(self):
        for scale in ("small", "paper"):
            kernels = _fig15_workloads(scale)
            assert len(kernels) >= 8
            labels = [k.label for k in kernels]
            # Both classes of SP present for the C-vs-D comparison.
            assert any(l == "SP.C" for l in labels)
            assert any(l == "SP.D" for l in labels)


class TestTableResults:
    def test_bi_result_lookup(self):
        r = BiResult(machine="X")
        r.rows.append({"app": "SP.C", "nprocs": 900, "bi": 2.0e9,
                       "overhead_pct": 10.0, "paper": "2.37 GB/s"})
        assert r.bi("SP.C") == 2.0e9
        with pytest.raises(KeyError):
            r.bi("SP.D")
        assert "SP.C" in r.table().render()

    def test_trace_size_ratio(self):
        r = TraceSizeResult(machine="X")
        r.rows.append({"tool": "online", "nprocs": 64, "volume": 290})
        r.rows.append({"tool": "scorep_trace", "nprocs": 64, "volume": 100})
        assert r.ratio(64) == pytest.approx(2.9)
        with pytest.raises(KeyError):
            r.volume("online", 128)

    def test_fs_comparison_crossover(self):
        r = FSComparisonResult(machine="X", writers=100, fs_scaled=5.0)
        r.rows = [
            {"ratio": 1, "readers": 100, "throughput": 50.0},
            {"ratio": 10, "readers": 10, "throughput": 8.0},
            {"ratio": 32, "readers": 3, "throughput": 2.0},
        ]
        assert r.crossover_ratio() == 10
        text = r.table().render()
        assert "True" in text and "False" in text

    def test_fs_comparison_no_crossover(self):
        r = FSComparisonResult(machine="X", writers=4, fs_scaled=100.0)
        r.rows = [{"ratio": 1, "readers": 4, "throughput": 1.0}]
        assert r.crossover_ratio() == 0.0


class TestFigReportContainers:
    def test_fig17_matrix_accessor(self):
        from repro.analysis.report import ApplicationReport, ProfileReport
        from repro.analysis.topology import CommMatrix

        topo = CommMatrix("app", 4)
        report = ProfileReport(chapters=[
            ApplicationReport(app="app", app_size=4, topology=topo)
        ])
        result = Fig17Result(reports={"app": report})
        assert result.matrix("app") is topo

    def test_fig18_accessors(self):
        from repro.analysis.density import DensityMaps
        from repro.analysis.report import ApplicationReport, ProfileReport
        from repro.analysis.waitstate import WaitState

        density = DensityMaps("app", 4)
        waits = WaitState("app", 4)
        report = ProfileReport(chapters=[
            ApplicationReport(app="app", app_size=4, density=density, waitstate=waits)
        ])
        result = Fig18Result(reports={"app": report})
        assert result.density("app") is density
        assert result.waitstate("app") is waits
