"""Blackboard engine: entries, KS triggering, jobs, ref-counting, multilevel."""

import threading

import pytest

from repro.errors import BlackboardError, UnknownTypeError
from repro.blackboard import Blackboard, MultiLevelBlackboard, ThreadPool
from repro.blackboard.entry import DataEntry, TypeRegistry
from repro.blackboard.jobs import Job, JobQueues
from repro.blackboard.ks import KnowledgeSource


class TestTypeRegistry:
    def test_register_idempotent(self):
        reg = TypeRegistry()
        a = reg.register("events", level="app0")
        b = reg.register("events", level="app0")
        assert a == b

    def test_level_scoping(self):
        reg = TypeRegistry()
        a = reg.register("events", level="app0")
        b = reg.register("events", level="app1")
        assert a != b

    def test_lookup_unknown_raises(self):
        reg = TypeRegistry()
        with pytest.raises(UnknownTypeError):
            reg.lookup("missing")

    def test_name_of_roundtrip(self):
        reg = TypeRegistry()
        tid = reg.register("x", level="lvl")
        assert reg.name_of(tid) == ("lvl", "x")

    def test_len(self):
        reg = TypeRegistry()
        reg.register("a")
        reg.register("b")
        assert len(reg) == 2


class TestDataEntry:
    def test_refcount_lifecycle(self):
        e = DataEntry(1, 10, b"payload")
        assert e.refs == 1 and e.writable
        e.retain()
        assert e.refs == 2 and not e.writable
        assert not e.release()
        assert e.release()  # last ref frees
        assert e.freed

    def test_payload_access_after_free_rejected(self):
        e = DataEntry(1, 0, "x")
        e.release()
        with pytest.raises(BlackboardError):
            _ = e.payload
        with pytest.raises(BlackboardError):
            e.retain()
        with pytest.raises(BlackboardError):
            e.release()

    def test_negative_size_rejected(self):
        with pytest.raises(BlackboardError):
            DataEntry(1, -1, None)


class TestKnowledgeSource:
    def test_needs_sensitivities(self):
        with pytest.raises(BlackboardError):
            KnowledgeSource("ks", [], lambda b, e: None)

    def test_single_sensitivity_fires_per_entry(self):
        ks = KnowledgeSource("ks", [5], lambda b, e: None)
        e = DataEntry(5, 0, None)
        assert ks.offer(e) == [e]

    def test_multi_sensitivity_waits_for_all(self):
        ks = KnowledgeSource("join", [1, 2], lambda b, e: None)
        e1 = DataEntry(1, 0, "a")
        assert ks.offer(e1) is None
        e2 = DataEntry(2, 0, "b")
        assert ks.offer(e2) == [e1, e2]

    def test_duplicate_sensitivity_consumes_two(self):
        ks = KnowledgeSource("pair", [7, 7], lambda b, e: None)
        e1, e2, e3 = (DataEntry(7, 0, i) for i in range(3))
        assert ks.offer(e1) is None
        job = ks.offer(e2)
        assert job == [e1, e2]
        assert ks.offer(e3) is None
        assert ks.pending_count() == 1

    def test_foreign_type_rejected(self):
        ks = KnowledgeSource("ks", [1], lambda b, e: None)
        with pytest.raises(BlackboardError):
            ks.offer(DataEntry(2, 0, None))


class TestJobQueues:
    def test_validation(self):
        with pytest.raises(BlackboardError):
            JobQueues(nqueues=0)

    def test_push_pop_all(self):
        q = JobQueues(nqueues=4, seed=1)
        ks = KnowledgeSource("ks", [1], lambda b, e: None)
        jobs = [Job(ks=ks, entries=[]) for _ in range(20)]
        for job in jobs:
            q.push(job)
        assert len(q) == 20
        popped = []
        while True:
            job = q.try_pop()
            if job is None:
                break
            popped.append(job)
        assert len(popped) == 20 and q.empty

    def test_pop_empty_returns_none(self):
        q = JobQueues(nqueues=2)
        assert q.try_pop() is None


class TestBlackboard:
    def test_submit_unregistered_type_rejected(self):
        b = Blackboard()
        with pytest.raises(UnknownTypeError):
            b.submit(123456, None)

    def test_ks_with_unregistered_sensitivity_rejected(self):
        b = Blackboard()
        with pytest.raises(UnknownTypeError):
            b.register_ks("ks", [999], lambda bd, e: None)

    def test_chained_ks_dataflow(self):
        """Paper Figure 4: pack -> unpack -> per-event analyses."""
        b = Blackboard(seed=3)
        t_pack = b.register_type("pack")
        t_event = b.register_type("event")
        profile = []
        topo = []

        def unpack(board, entries):
            for e in entries:
                for item in e.payload:
                    board.submit(t_event, item, size=8)

        b.register_ks("unpacker", [t_pack], unpack)
        b.register_ks("profiler", [t_event], lambda bd, es: profile.append(es[0].payload))
        b.register_ks("topology", [t_event], lambda bd, es: topo.append(es[0].payload))
        b.submit(t_pack, ["e1", "e2"])
        b.run_until_idle()
        assert sorted(profile) == ["e1", "e2"]
        assert sorted(topo) == ["e1", "e2"]

    def test_buffer_freed_after_all_consumers(self):
        b = Blackboard()
        t = b.register_type("t")
        b.register_ks("a", [t], lambda bd, es: None)
        b.register_ks("b", [t], lambda bd, es: None)
        entry = b.submit(t, b"x" * 100, size=100)
        assert not entry.freed  # two consumers still hold references
        b.run_until_idle()
        assert entry.freed
        assert b.stats()["bytes_current"] == 0
        assert b.stats()["bytes_peak"] == 100

    def test_entry_without_consumers_freed_immediately(self):
        b = Blackboard()
        t = b.register_type("orphan")
        entry = b.submit(t, "data", size=4)
        assert entry.freed

    def test_dynamic_ks_registration_from_operation(self):
        """Opportunistic reasoning: a KS installs another KS."""
        b = Blackboard()
        t = b.register_type("t")
        late = []

        def bootstrap(board, entries):
            board.register_ks("late", [t], lambda bd, es: late.append(es[0].payload))

        ks = b.register_ks("bootstrap", [t], bootstrap)
        b.submit(t, "first")
        b.run_until_idle()
        assert late == []  # late KS was not yet installed for "first"
        b.remove_ks(ks)
        b.submit(t, "second")
        b.run_until_idle()
        assert late == ["second"]

    def test_ks_self_removal(self):
        b = Blackboard()
        t = b.register_type("t")
        fired = []

        def once(board, entries):
            fired.append(entries[0].payload)
            board.remove_ks(ks)

        ks = b.register_ks("once", [t], once)
        b.submit(t, 1)
        b.run_until_idle()
        b.submit(t, 2)
        b.run_until_idle()
        assert fired == [1]

    def test_remove_unknown_ks_rejected(self):
        b = Blackboard()
        t = b.register_type("t")
        ks = KnowledgeSource("ghost", [t], lambda bd, e: None)
        with pytest.raises(BlackboardError):
            b.remove_ks(ks)

    def test_stats_counters(self):
        b = Blackboard()
        t = b.register_type("t")
        b.register_ks("ks", [t], lambda bd, es: None)
        for i in range(5):
            b.submit(t, i, size=10)
        executed = b.run_until_idle()
        s = b.stats()
        assert executed == 5
        assert s["entries_submitted"] == 5
        assert s["jobs_executed"] == 5
        assert s["bytes_total"] == 50

    def test_run_until_idle_max_jobs(self):
        b = Blackboard()
        t = b.register_type("t")
        b.register_ks("ks", [t], lambda bd, es: None)
        for i in range(5):
            b.submit(t, i)
        assert b.run_until_idle(max_jobs=2) == 2
        assert b.run_until_idle() == 3


class TestThreadPool:
    def test_parallel_execution_correct(self):
        b = Blackboard(nqueues=8, seed=5)
        t = b.register_type("n")
        results = []
        lock = threading.Lock()

        def work(board, entries):
            value = entries[0].payload
            with lock:
                results.append(value * 2)

        b.register_ks("doubler", [t], work)
        with ThreadPool(b, nworkers=4, seed=9):
            for i in range(300):
                b.submit(t, i)
        assert sorted(results) == [2 * i for i in range(300)]

    def test_workers_validation(self):
        b = Blackboard()
        with pytest.raises(BlackboardError):
            ThreadPool(b, nworkers=0)

    def test_double_start_rejected(self):
        b = Blackboard()
        pool = ThreadPool(b, nworkers=1)
        pool.start()
        try:
            with pytest.raises(BlackboardError):
                pool.start()
        finally:
            pool.stop()

    def test_chained_submission_under_threads(self):
        b = Blackboard(nqueues=4, seed=2)
        t_in = b.register_type("in")
        t_out = b.register_type("out")
        final = []
        lock = threading.Lock()

        def stage1(board, entries):
            board.submit(t_out, entries[0].payload + 1)

        def stage2(board, entries):
            with lock:
                final.append(entries[0].payload)

        b.register_ks("s1", [t_in], stage1)
        b.register_ks("s2", [t_out], stage2)
        with ThreadPool(b, nworkers=3):
            for i in range(100):
                b.submit(t_in, i)
        assert sorted(final) == list(range(1, 101))


class TestMultiLevel:
    def _pack(self, app_id, nevents=2):
        from repro.instrument.packer import EventPackBuilder
        from repro.mpi.pmpi import CallRecord

        pb = EventPackBuilder(app_id=app_id, rank=0)
        for _ in range(nevents):
            pb.add(
                CallRecord(
                    "MPI_Send", 0.0, 1.0, 0, 0, 4, peer=1, tag=0, nbytes=10
                )
            )
        return pb.emit()

    def test_dispatch_by_app_id(self):
        ml = MultiLevelBlackboard(levels=["a", "b"])
        seen = {"a": [], "b": []}
        for level in ml.levels:
            ml.register_ks(
                "sink",
                [("event_pack", level)],
                (lambda lv: lambda bd, es: seen[lv].append(es[0].size))(level),
            )
        ml.submit_pack(self._pack(0))
        ml.submit_pack(self._pack(1))
        ml.submit_pack(self._pack(0))
        ml.board.run_until_idle()
        assert len(seen["a"]) == 2 and len(seen["b"]) == 1
        assert ml.dispatched == {"a": 2, "b": 1}

    def test_same_ks_name_cohabits_across_levels(self):
        ml = MultiLevelBlackboard(levels=["x", "y"])
        ml.register_ks_all_levels("profiler", "event_pack", lambda bd, es: None)
        names = [ks.name for ks in ml.board.knowledge_sources()]
        assert "profiler[x]" in names and "profiler[y]" in names

    def test_unknown_app_id_rejected(self):
        ml = MultiLevelBlackboard(levels=["only"])
        ml.submit_pack(self._pack(3))
        with pytest.raises(BlackboardError):
            ml.board.run_until_idle()

    def test_level_validation(self):
        with pytest.raises(BlackboardError):
            MultiLevelBlackboard(levels=[])
        with pytest.raises(BlackboardError):
            MultiLevelBlackboard(levels=["a", "a"])
        ml = MultiLevelBlackboard(levels=["a"])
        with pytest.raises(BlackboardError):
            ml.type_id("t", "missing_level")
