"""VMPI_Stream: persistent asynchronous data channels (paper Sec. III-A, Fig. 9).

Behavioural contract from the paper:

* UNIX-pipe-like interface: ``write`` is non-blocking *until all
  asynchronous buffers are full*, preserving an adaptation window between
  producer and consumer.
* The read endpoint keeps ``NA`` receive buffers **per incoming stream** so
  a buffer is always available for matched reception (no unexpected
  messages); the write endpoint shares ``NA`` output buffers across all its
  endpoints to bound memory (blocks are ~1 MB for instrumentation).
* A stream may connect one writer to several readers (and vice versa); a
  load-balancing policy — none / random / round-robin — picks the endpoint
  of each block.
* Non-blocking reads return :data:`EAGAIN`; once every connected writer has
  closed and all data is drained, reads return EOF (0), mirroring the
  paper's read loop (Figure 12).

Backpressure is physical, not simulated-by-fiat: blocks above the eager
threshold use rendezvous sends, which only complete once the reader has a
receive buffer posted — a slow reader therefore stalls the writer exactly
when writer slots and reader buffers are exhausted.

Failure tolerance (this layer's extensions, all pay-for-what-you-use):

* ``write_timeout`` arms a bounded retry loop around output-buffer
  acquisition: each expiry counts a timeout, retries back off exponentially
  (``backoff_factor``), and after ``max_retries`` the ``overflow`` policy
  decides — keep blocking (:data:`OVERFLOW_BLOCK`), discard the new block
  (:data:`OVERFLOW_DROP_NEWEST`), or reclaim the oldest still-unmatched
  in-flight block (:data:`OVERFLOW_DROP_OLDEST`).  With ``write_timeout``
  left at ``None`` (the default) the acquisition path is byte-identical to
  the non-tolerant stream.
* ``fail_endpoint`` / ``adopt_endpoint`` / ``adopt_peer`` support analyzer
  failover: a writer detaches a crashed reader (reclaiming in-flight
  buffers) and attaches a survivor; the survivor's read endpoint adopts the
  orphaned writer, posting fresh NA buffers and expecting its close marker.
* A ``set_tamper`` hook lets fault injection corrupt or drop blocks at the
  transport boundary; every drop path is accounted in :meth:`stats`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.codec.frame import frame_content_size, peek_provenance
from repro.errors import PackFormatError, StreamClosedError, VMPIError
from repro.mpi.status import Status
from repro.mpi.world import ProgramAPI
from repro.simt.primitives import SimEvent
from repro.simt.resources import Resource
from repro.telemetry import NULL_TELEMETRY, hostprof, rank_pid
from repro.util.rng import derive_rng
from repro.vmpi.mapping import VMPIMap

#: Return value of a non-blocking read with no data available.
EAGAIN = -11
#: Return value of a read once all remote endpoints closed (paper: 0).
EOF = 0

BALANCE_NONE = "none"
BALANCE_RANDOM = "random"
BALANCE_ROUND_ROBIN = "round_robin"

_VALID_POLICIES = (BALANCE_NONE, BALANCE_RANDOM, BALANCE_ROUND_ROBIN)

#: Overflow policies applied when a timed write exhausts its retries.
OVERFLOW_BLOCK = "block"
OVERFLOW_DROP_NEWEST = "drop-newest"
OVERFLOW_DROP_OLDEST = "drop-oldest"

_VALID_OVERFLOW = (OVERFLOW_BLOCK, OVERFLOW_DROP_NEWEST, OVERFLOW_DROP_OLDEST)

_TAG_STREAM_BASE = 800_000

#: payload marker of a close message
_CLOSE = "__vmpi_stream_close__"
#: payload tombstone of a block reclaimed by OVERFLOW_DROP_OLDEST — the
#: reader consumes the buffer but discards the (now meaningless) block.
_DROPPED = "__vmpi_stream_dropped__"


class _InFlight:
    """One committed output buffer, until its send completes.

    ``live`` means the buffer still holds a slot; fault handling (endpoint
    crash, drop-oldest reclaim) clears it so the completion callback knows
    the slot was already taken care of.  ``flow_id`` names the provenance
    flow riding in the buffer (None when tracing is off or unsampled) so
    reclaim and crash-loss paths can terminate the flow record.
    """

    __slots__ = ("dest", "nbytes", "env", "live", "flow_id")

    def __init__(self, dest: int, nbytes: int, flow_id: int | None = None):
        self.dest = dest
        self.nbytes = nbytes
        self.env = None  # Envelope, set once _raw_isend returns
        self.live = True
        self.flow_id = flow_id


class VMPIStream:
    """One endpoint of a persistent asynchronous stream."""

    def __init__(
        self,
        block_size: int = 1024 * 1024,
        balance: str = BALANCE_ROUND_ROBIN,
        na_buffers: int = 3,
        channel: int = 0,
        write_timeout: float | None = None,
        max_retries: int = 3,
        backoff_factor: float = 2.0,
        overflow: str = OVERFLOW_BLOCK,
    ):
        if block_size <= 0:
            raise VMPIError(f"block_size must be > 0, got {block_size}")
        if balance not in _VALID_POLICIES:
            raise VMPIError(f"unknown balance policy {balance!r}")
        if na_buffers < 1:
            raise VMPIError(f"na_buffers must be >= 1, got {na_buffers}")
        if not (0 <= channel < 10_000):
            raise VMPIError(f"channel must be in [0, 10000), got {channel}")
        if write_timeout is not None and write_timeout <= 0:
            raise VMPIError(f"write_timeout must be > 0, got {write_timeout}")
        if max_retries < 0:
            raise VMPIError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_factor < 1.0:
            raise VMPIError(f"backoff_factor must be >= 1, got {backoff_factor}")
        if overflow not in _VALID_OVERFLOW:
            raise VMPIError(f"unknown overflow policy {overflow!r}")
        self.block_size = block_size
        self.balance = balance
        self.na = na_buffers
        self.channel = channel
        self.write_timeout = write_timeout
        self.max_retries = max_retries
        self.backoff_factor = backoff_factor
        self.overflow = overflow
        self.mode: str | None = None
        self.endpoints: list[int] = []  # peer global ranks
        self.blocks_written = 0
        self.blocks_read = 0
        self.bytes_written = 0
        self.bytes_read = 0
        # Physical frame bytes (wire) next to the modelled content bytes
        # above; equal shapes of traffic diverge once a reduction chain
        # shrinks payloads.  Only bytes-like payloads count (synthetic
        # stream programs write payload=None).
        self.bytes_wire_written = 0
        self.bytes_wire_read = 0
        self._ratio_sum = 0.0  # per-pack wire/content compression ratios
        self._ratio_packs = 0
        # Lightweight always-on introspection (see stats()).
        self.eagain_returns = 0
        self.write_stall_s = 0.0
        self.read_wait_s = 0.0
        # Intra-node buffer copy time charged on each side: the transfer
        # cost the metrics engine separates from stall/wait time.
        self.write_copy_s = 0.0
        self.read_copy_s = 0.0
        # Receive-buffer residence: total dwell of consumed blocks, and of
        # blocks that arrived but were discarded (drop-oldest tombstones,
        # close-time strays) — dropped data keeps its latency accounting.
        self.read_dwell_s = 0.0
        self.dropped_dwell_s = 0.0
        self.write_buffers_hwm = 0
        self.read_buffers_hwm = 0
        # Failure-tolerance accounting (all zero in healthy runs).
        self.write_retries = 0
        self.write_timeouts = 0
        self.blocks_dropped = 0
        self.bytes_dropped = 0
        self.injected_drops = 0
        self.injected_corruptions = 0
        self.blocks_lost_to_crash = 0
        self.bytes_lost_to_crash = 0
        self.endpoints_failed = 0
        self.peers_adopted = 0
        self.endpoints_retargeted = 0
        self.blocks_discarded_at_close = 0
        self.bytes_discarded_at_close = 0
        self.stale_blocks_discarded = 0
        self._tel = NULL_TELEMETRY
        self._pid = 0
        # writer state
        self._slots: Resource | None = None
        self._rr_next = 0
        self._rng = None
        self._inflight: list[_InFlight] = []
        self._tamper: Callable[["VMPIStream", int, Any], tuple[str | None, Any]] | None = None
        # Readers this writer stopped targeting (steering remap) but still
        # owes a close marker to — their EOF protocol counts this writer.
        self._retired_peers: set[int] = set()
        # provenance state (None unless the world carries a FlowRegistry)
        self._flows = None
        self._last_retry_delay = 0.0
        # reader state: (status, arrival time) pairs
        self._ready: deque[tuple[Status, float]] | None = None
        self._wake: SimEvent | None = None
        self._closes_pending = 0
        self._stall_until: float | None = None
        self._mpi: ProgramAPI | None = None
        self._closed = False
        # Hot-path caches, filled at open(): the kernel and the intra-node
        # bandwidth (four attribute hops otherwise), plus lazily-created
        # telemetry instrument handles so the per-block accounting never
        # repeats the name->metric registry lookups.
        self._kernel = None
        self._bw = 0.0
        self._wmet: tuple | None = None
        self._rmet: tuple | None = None

    # -- opening ---------------------------------------------------------------------

    def open_map(self, mpi: ProgramAPI, vmap: VMPIMap, mode: str):
        """Generator: connect to every peer of a ``VMPI_Map``."""
        yield from self.open_ranks(mpi, list(vmap.entries), mode)

    def open_ranks(self, mpi: ProgramAPI, peers: list[int], mode: str):
        """Generator: connect to explicit peer global ranks."""
        if self.mode is not None:
            raise VMPIError("stream already open")
        if mode not in ("r", "w"):
            raise VMPIError(f"mode must be 'r' or 'w', got {mode!r}")
        if not peers:
            raise VMPIError("stream needs at least one endpoint")
        if len(set(peers)) != len(peers):
            raise VMPIError("duplicate endpoints in stream")
        self.mode = mode
        self.endpoints = list(peers)
        self._mpi = mpi
        self._tel = mpi.ctx.telemetry
        self._pid = rank_pid(mpi.ctx.global_rank)
        self._flows = mpi.ctx.world.flows
        kernel = mpi.ctx.kernel
        self._kernel = kernel
        self._bw = mpi.ctx.world.machine.intra_node_bandwidth
        if mode == "w":
            self._slots = Resource(kernel, capacity=self.na, name="vmpi.wbuf")
            self._rng = derive_rng(
                mpi.ctx.world.seed, "stream", mpi.ctx.global_rank, self.channel
            )
        else:
            self._ready = deque()
            self._closes_pending = len(peers)
            # NA receive buffers per incoming stream: pre-post NA receives
            # from every writer so reception never hits an unexpected path.
            for peer in peers:
                for _ in range(self.na):
                    self._post_recv(peer)
        world = mpi.ctx.world
        world.streams.append((mpi.ctx.global_rank, self))
        if world.faults is not None:
            world.faults.on_stream_open(mpi.ctx.global_rank, self)
        yield kernel.timeout(0.0)

    @property
    def tag(self) -> int:
        return _TAG_STREAM_BASE + self.channel

    # -- writer side ---------------------------------------------------------------------

    def write(self, nbytes: int | None = None, payload: Any = None):
        """Generator: write one block; returns the block size written.

        Blocks only when all ``NA`` shared output buffers are in flight
        (i.e. unmatched by any reader) — the paper's adaptation window.
        With ``write_timeout`` set, the wait for a buffer is bounded: after
        ``max_retries`` exponentially backed-off retries the configured
        ``overflow`` policy applies; a dropped block returns 0.
        """
        self._require("w", "write")
        nbytes = self.block_size if nbytes is None else int(nbytes)
        if not (0 < nbytes <= self.block_size):
            raise VMPIError(f"write of {nbytes} outside (0, {self.block_size}]")
        mpi = self._mpi
        kernel = self._kernel
        tel = self._tel
        hp = hostprof.ACTIVE
        # Host-time plane: charge only this path's straight-line Python cost
        # — the segment is paused across every virtual-time wait below.
        seg = hp.segment("stream.write") if hp.enabled else None
        # Provenance: recover the flow id from the pack's own provenance
        # section and stamp the enqueue hop.  Peeking precedes tampering so
        # injected drops are attributed to their flow.
        flow_id = None
        if self._flows is not None:
            prov = peek_provenance(payload)
            if prov is not None:
                flow_id = prov.flow_id
                self._flows.on_enqueue(flow_id, kernel.now)
        # Fault-injection hook: corrupt or swallow blocks at the transport
        # boundary.  None (the default) costs a single attribute check.
        if self._tamper is not None:
            action, payload = self._tamper(self, nbytes, payload)
            if action == "drop":
                self.injected_drops += 1
                if flow_id is not None:
                    self._flows.on_drop(flow_id, "tamper", kernel.now)
                if seg is not None:
                    seg.done(items=0)
                return 0
            if action == "corrupt":
                self.injected_corruptions += 1
        span = (
            tel.span("stream.write", pid=self._pid, cat="stream", args={"nbytes": nbytes})
            if tel.enabled
            else None
        )
        t_acquire = kernel.now
        self._last_retry_delay = 0.0
        slot_ev = self._slots.acquire()
        if not slot_ev.triggered:
            if seg is not None:
                seg.pause()
            if self.write_timeout is None:
                yield slot_ev
            else:
                dropped = yield from self._acquire_with_retry(slot_ev, nbytes)
                if dropped:
                    if seg is not None:
                        seg.resume()
                        seg.done(items=0)
                    if flow_id is not None:
                        self._flows.on_drop(flow_id, "overflow", kernel.now)
                    if span is not None:
                        span.end(dropped=True)
                    return 0
            if seg is not None:
                seg.resume()
        # Time spent waiting for a free output buffer: the rendezvous-driven
        # backpressure stall of a slow reader.
        stall = kernel.now - t_acquire
        self.write_stall_s += stall
        if self._slots.in_use > self.write_buffers_hwm:
            self.write_buffers_hwm = self._slots.in_use
        # Copy into the asynchronous output buffer.
        copy_time = nbytes / self._bw
        if copy_time > 0:
            self.write_copy_s += copy_time
            if seg is not None:
                seg.pause()
            yield kernel.timeout(copy_time)
            if seg is not None:
                seg.resume()
        if not self.endpoints:
            # Every reader crashed with no failover target: the block has
            # nowhere to go.  Account it as crash loss and keep running.
            self._slots.release()
            self.blocks_lost_to_crash += 1
            self.bytes_lost_to_crash += nbytes
            if flow_id is not None:
                self._flows.on_drop(flow_id, "crash", kernel.now)
            if tel.enabled:
                tel.counter("stream.blocks_lost_to_crash").inc()
                span.end(lost=True)
            if seg is not None:
                seg.done(items=0)
            return 0
        if flow_id is not None:
            # The send hop: buffer acquired and copied, transit begins.  The
            # stall stage absorbed any bounded-retry backoff; attribute it.
            self._flows.on_send(flow_id, kernel.now, self._last_retry_delay)
        dest = self._pick_endpoint()
        # Register the in-flight record *before* the send: fail_endpoint()
        # must see a buffer committed to a crashed peer even while this
        # process is suspended inside the send's CPU charge.
        rec = _InFlight(dest, nbytes, flow_id=flow_id)
        self._inflight.append(rec)
        if seg is not None:
            seg.pause()
        req = yield from mpi.comm_universe._raw_isend(
            dest, nbytes=nbytes, tag=self.tag, payload=payload
        )
        if seg is not None:
            seg.resume()
        rec.env = req.envelope
        req.event.add_callback(lambda _ev, rec=rec: self._send_done(rec))
        self.blocks_written += 1
        self.bytes_written += nbytes
        if isinstance(payload, (bytes, bytearray, memoryview)):
            wire = len(payload)
            self.bytes_wire_written += wire
            try:
                content = frame_content_size(payload)
            except PackFormatError:
                content = 0
            if content > 0:
                self._ratio_sum += wire / content
                self._ratio_packs += 1
        if tel.enabled:
            mets = self._wmet
            if mets is None:
                mets = self._wmet = (
                    tel.counter("stream.blocks_written"),
                    tel.counter("stream.bytes_written"),
                    tel.histogram("stream.write_stall_s"),
                    tel.gauge("stream.write_buffers_in_flight", pid=self._pid),
                )
            mets[0].inc()
            mets[1].inc(nbytes)
            mets[2].observe(stall)
            mets[3].set(self._slots.in_use)
            span.end(stall_s=stall)
        if seg is not None:
            seg.done(items=1, nbytes=nbytes)
        return nbytes

    def _acquire_with_retry(self, slot_ev: SimEvent, nbytes: int):
        """Generator: bounded, backed-off wait for ``slot_ev``.

        Returns True when the block must be dropped (drop-newest exhausted),
        False once a slot is held — via grant, reclaim, or blocking fallback.
        """
        kernel = self._mpi.ctx.kernel
        tel = self._tel
        t_enter = kernel.now
        attempt = 0
        while True:
            wait = self.write_timeout * (self.backoff_factor ** attempt)
            yield kernel.any_of([slot_ev, kernel.timeout(wait)])
            if slot_ev.triggered:
                if attempt > 0:
                    self._last_retry_delay = kernel.now - t_enter
                return False
            self.write_timeouts += 1
            if tel.enabled:
                tel.counter("stream.write_timeouts").inc()
            if attempt >= self.max_retries:
                break
            attempt += 1
            self.write_retries += 1
            if tel.enabled:
                tel.counter("stream.write_retries").inc()
        # Retries exhausted; cancel() returning False means the queued
        # acquire was granted concurrently — then we already hold a slot.
        if self.overflow == OVERFLOW_BLOCK:
            yield slot_ev
            self._last_retry_delay = kernel.now - t_enter
            return False
        if self.overflow == OVERFLOW_DROP_NEWEST:
            if self._slots.cancel(slot_ev):
                self._count_drop(nbytes)
                return True
            self._last_retry_delay = kernel.now - t_enter
            return False
        # OVERFLOW_DROP_OLDEST: reclaim the slot of the oldest block no
        # reader has matched yet; its payload is tombstoned so the reader
        # discards it on arrival.
        if self._slots.cancel(slot_ev):
            if not self._steal_oldest():
                # Everything in flight is already matched (arriving soon);
                # nothing to reclaim — fall back to blocking.
                retry_ev = self._slots.acquire()
                if not retry_ev.triggered:
                    yield retry_ev
        self._last_retry_delay = kernel.now - t_enter
        return False

    def _steal_oldest(self) -> bool:
        """Tombstone the oldest unmatched in-flight block; inherit its slot."""
        for rec in self._inflight:
            if rec.live and rec.env is not None and not rec.env.matched:
                rec.live = False
                rec.env.payload = _DROPPED
                self._count_drop(rec.nbytes)
                if rec.flow_id is not None:
                    self._flows.on_drop(
                        rec.flow_id, "overflow", self._mpi.ctx.kernel.now
                    )
                return True
        return False

    def _count_drop(self, nbytes: int) -> None:
        self.blocks_dropped += 1
        self.bytes_dropped += nbytes
        if self._tel.enabled:
            self._tel.counter("stream.blocks_dropped").inc()
            self._tel.counter("stream.bytes_dropped").inc(nbytes)

    def _send_done(self, rec: _InFlight) -> None:
        if rec.live:
            rec.live = False
            self._slots.release()
        try:
            self._inflight.remove(rec)
        except ValueError:
            pass  # already reclaimed by fail_endpoint()

    def _pick_endpoint(self) -> int:
        if len(self.endpoints) == 1 or self.balance == BALANCE_NONE:
            return self.endpoints[0]
        if self.balance == BALANCE_RANDOM:
            return self._rng.choice(self.endpoints)
        dest = self.endpoints[self._rr_next % len(self.endpoints)]
        self._rr_next += 1
        return dest

    # -- failover (driven by fault handling, not by applications) ------------------------

    def fail_endpoint(self, peer: int) -> bool:
        """Detach a crashed reader; reclaim buffers committed to it.

        Blocks already in flight toward the dead peer are written off as
        crash loss and their slots released, so a writer blocked on
        backpressure from the dead reader resumes immediately.  Returns
        True if the peer was connected.
        """
        if self.mode != "w":
            raise VMPIError("fail_endpoint() on a non-writer stream")
        if peer not in self.endpoints:
            return False
        self.endpoints.remove(peer)
        self.endpoints_failed += 1
        for rec in list(self._inflight):
            if rec.dest == peer and rec.live:
                rec.live = False
                self._slots.release()
                self.blocks_lost_to_crash += 1
                self.bytes_lost_to_crash += rec.nbytes
                if rec.flow_id is not None:
                    self._flows.on_drop(rec.flow_id, "crash", self._mpi.ctx.kernel.now)
                self._inflight.remove(rec)
        if self._tel.enabled:
            self._tel.counter("stream.endpoints_failed").inc()
        return True

    def adopt_endpoint(self, peer: int) -> None:
        """Attach a surviving reader as a new write destination."""
        if self.mode != "w":
            raise VMPIError("adopt_endpoint() on a non-writer stream")
        if peer in self.endpoints:
            return
        self.endpoints.append(peer)
        self.peers_adopted += 1

    def retarget_endpoint(self, old: int, new: int) -> bool:
        """Steering-driven writer remap: stop sending to ``old``, send to ``new``.

        Unlike :meth:`fail_endpoint` the old reader is alive: blocks already
        in flight toward it stay valid and are consumed normally, and the
        old peer is remembered so :meth:`close` still delivers its close
        marker — the reader-side EOF protocol survives any number of
        remaps, including ping-pong back to a previously retired reader.
        The adopting reader must take over with :meth:`adopt_peer`.
        Returns False when there is nothing to do (``old`` not currently
        targeted, ``old == new``, or the stream already closed).
        """
        if self.mode != "w":
            raise VMPIError("retarget_endpoint() on a non-writer stream")
        if self._closed or old == new or old not in self.endpoints:
            return False
        self.endpoints.remove(old)
        self._retired_peers.add(old)
        if new not in self.endpoints:
            self.endpoints.append(new)
            self.peers_adopted += 1
        self._retired_peers.discard(new)
        self.endpoints_retargeted += 1
        if self._tel.enabled:
            self._tel.counter("stream.endpoints_retargeted").inc()
        return True

    def adopt_peer(self, writer_global: int) -> None:
        """Reader side of failover: accept an orphaned writer.

        Posts the writer's NA receive buffers and expects one more close
        marker, exactly as if the writer had been connected at open time.
        """
        if self.mode != "r":
            raise VMPIError("adopt_peer() on a non-reader stream")
        if writer_global in self.endpoints:
            return
        self.endpoints.append(writer_global)
        self.peers_adopted += 1
        self._closes_pending += 1
        for _ in range(self.na):
            self._post_recv(writer_global)

    def set_tamper(
        self, fn: Callable[["VMPIStream", int, Any], tuple[str | None, Any]] | None
    ) -> None:
        """Install a transport-fault hook on the write path.

        ``fn(stream, nbytes, payload)`` returns ``(action, payload)`` with
        action ``"drop"`` (swallow the block), ``"corrupt"`` (send the
        returned payload instead) or ``None`` (pass through).
        """
        if self.mode != "w":
            raise VMPIError("set_tamper() on a non-writer stream")
        self._tamper = fn

    def stall_until(self, t: float) -> None:
        """Inject a one-shot stall: the next read does not start before ``t``."""
        if self.mode != "r":
            raise VMPIError("stall_until() on a non-reader stream")
        self._stall_until = t

    # -- reader side ----------------------------------------------------------------------

    def _post_recv(self, peer: int) -> None:
        mpi = self._mpi
        comm = mpi.comm_universe
        peer_comm_rank = comm.group.rank_of_global[peer]
        completion = mpi.ctx.mailbox.post(
            comm.id, peer_comm_rank, self.tag, mpi.ctx.world.cost.o_recv
        )
        completion.add_callback(self._on_block)

    def _on_block(self, ev: SimEvent) -> None:
        hp = hostprof.ACTIVE
        t0 = hp.now() if hp.enabled else 0.0
        status: Status = ev.value
        now = self._kernel.now
        self._ready.append((status, now))
        if self._flows is not None:
            prov = peek_provenance(status.payload)
            if prov is not None:
                self._flows.on_arrive(prov.flow_id, now)
        if len(self._ready) > self.read_buffers_hwm:
            self.read_buffers_hwm = len(self._ready)
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()
            self._wake = None
        if hp.enabled:
            hp.timer("stream.transit").add(
                hp.now() - t0, items=1, nbytes=status.nbytes
            )

    def read(self, nonblock: bool = False):
        """Generator: read one block.

        Returns ``(nbytes, payload)``; ``(EOF, None)`` once all writers have
        closed and data is drained; ``(EAGAIN, None)`` if ``nonblock`` and no
        block is available (paper: try the next endpoint, avoid circular
        waits).
        """
        self._require("r", "read")
        mpi = self._mpi
        kernel = self._kernel
        tel = self._tel
        hp = hostprof.ACTIVE
        seg = hp.segment("stream.read") if hp.enabled else None
        if self._stall_until is not None:
            # Injected slow-analyzer fault: freeze this consumer until the
            # stall deadline, then resume normally.
            delay = self._stall_until - kernel.now
            self._stall_until = None
            if delay > 0:
                if seg is not None:
                    seg.pause()
                yield kernel.timeout(delay)
                if seg is not None:
                    seg.resume()
        span = (
            tel.span("stream.read", pid=self._pid, cat="stream") if tel.enabled else None
        )
        while True:
            while self._ready:
                status, t_arrive = self._ready.popleft()
                result = self._consume(status, t_arrive)
                if result is not None:
                    # Charge the copy out of the reception buffer.
                    copy_time = result[0] / self._bw
                    if copy_time > 0:
                        self.read_copy_s += copy_time
                        if seg is not None:
                            seg.pause()
                        yield kernel.timeout(copy_time)
                        if seg is not None:
                            seg.resume()
                    if self._flows is not None:
                        prov = peek_provenance(result[1])
                        if prov is not None:
                            self._flows.on_read(
                                prov.flow_id, kernel.now, mpi.ctx.global_rank
                            )
                    if tel.enabled:
                        mets = self._rmet
                        if mets is None:
                            mets = self._rmet = (
                                tel.counter("stream.blocks_read"),
                                tel.counter("stream.bytes_read"),
                                tel.gauge("stream.read_buffers_ready", pid=self._pid),
                            )
                        mets[0].inc()
                        mets[1].inc(result[0])
                        mets[2].set(len(self._ready))
                        span.end(nbytes=result[0])
                    if seg is not None:
                        seg.done(items=1, nbytes=result[0])
                    return result
            if self._closes_pending == 0:
                if span is not None:
                    span.end(eof=True)
                if seg is not None:
                    seg.done(items=0)
                return (EOF, None)
            if nonblock:
                self.eagain_returns += 1
                if tel.enabled:
                    tel.counter("stream.eagain_returns").inc()
                    span.end(eagain=True)
                if seg is not None:
                    seg.pause()
                yield kernel.timeout(0.0)
                if seg is not None:
                    seg.resume()
                    seg.done(items=0)
                return (EAGAIN, None)
            t_wait = kernel.now
            self._wake = SimEvent(kernel, name="stream.wake")
            if seg is not None:
                seg.pause()
            yield self._wake
            if seg is not None:
                seg.resume()
            self.read_wait_s += kernel.now - t_wait
            if tel.enabled:
                tel.histogram("stream.read_wait_s").observe(kernel.now - t_wait)

    def _consume(self, status: Status, t_arrive: float) -> tuple[int, Any] | None:
        """Handle one arrived message; None for protocol (close) markers.

        ``t_arrive`` is the block's receive-buffer entry time: its dwell is
        accounted whether the block is consumed (``read_dwell_s``) or turns
        out to be a drop-oldest tombstone (``dropped_dwell_s``) — dropped
        data never vanishes from the latency books.
        """
        peer_global = self._mpi.comm_universe.global_rank_of(status.source)
        if status.payload is _CLOSE:
            self._closes_pending -= 1
            return None
        # Re-post the consumed buffer for this peer to keep NA outstanding.
        self._post_recv(peer_global)
        dwell = self._kernel.now - t_arrive
        if status.payload is _DROPPED:
            # Block reclaimed by the writer's drop-oldest policy after it
            # was committed: consume the buffer, discard the tombstone.
            self.stale_blocks_discarded += 1
            self.dropped_dwell_s += dwell
            if self._tel.enabled:
                self._tel.counter("stream.stale_blocks_discarded").inc()
            return None
        self.blocks_read += 1
        self.bytes_read += status.nbytes
        if isinstance(status.payload, (bytes, bytearray, memoryview)):
            wire = len(status.payload)
            self.bytes_wire_read += wire
            try:
                content = frame_content_size(status.payload)
            except PackFormatError:
                content = 0
            if content > 0:
                self._ratio_sum += wire / content
                self._ratio_packs += 1
        self.read_dwell_s += dwell
        return (status.nbytes, status.payload)

    # -- shutdown -----------------------------------------------------------------------------

    def close(self):
        """Generator: close the stream.

        Writers drain their output buffers and notify every endpoint
        (readers then see EOF); readers account any blocks that arrived but
        were never read.  Closing an already-closed stream is a no-op, so
        failure-path cleanup can run unconditionally.
        """
        if self.mode is None:
            raise StreamClosedError("close() on unopened stream")
        mpi = self._mpi
        kernel = mpi.ctx.kernel
        if self._closed:
            yield kernel.timeout(0.0)
            return
        self._closed = True
        if self.mode == "w":
            # Drain: wait until every output buffer is free again, so close
            # cannot overtake pending data (FIFO per (src, tag) guarantees
            # the close marker arrives last).
            for _ in range(self.na):
                yield self._slots.acquire()
            for _ in range(self.na):
                self._slots.release()
            # Current endpoints plus readers retired by retarget_endpoint():
            # each connected-at-any-point reader expects exactly one close.
            close_peers = list(self.endpoints)
            close_peers += [p for p in sorted(self._retired_peers) if p not in close_peers]
            for peer in close_peers:
                yield from mpi.comm_universe._raw_isend(
                    peer, nbytes=1, tag=self.tag, payload=_CLOSE
                )
        else:
            # Anything still queued was received but never consumed by the
            # application — count it (and its accumulated buffer dwell) so
            # shutdown data loss is visible.
            while self._ready:
                status, t_arrive = self._ready.popleft()
                if status.payload is _CLOSE:
                    self._closes_pending -= 1
                    continue
                dwell = kernel.now - t_arrive
                if status.payload is _DROPPED:
                    self.stale_blocks_discarded += 1
                    self.dropped_dwell_s += dwell
                else:
                    self.blocks_discarded_at_close += 1
                    self.bytes_discarded_at_close += status.nbytes
                    self.dropped_dwell_s += dwell
                    if self._flows is not None:
                        prov = peek_provenance(status.payload)
                        if prov is not None:
                            self._flows.on_drop(prov.flow_id, "stranded", kernel.now)
            yield kernel.timeout(0.0)

    # -- introspection ------------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Lightweight endpoint introspection, available with telemetry off.

        Byte-counter naming contract: every ``*_bytes`` / ``bytes_*``
        counter except the ``bytes_wire_*`` pair — ``bytes_written``,
        ``bytes_read``, ``bytes_dropped``, ``bytes_lost_to_crash``,
        ``bytes_discarded_at_close`` — measures **modelled content bytes**
        (the ``nbytes`` argument of :meth:`write`: logical header + event
        records, scaled by the cost model), which is the quantity all
        simulated timing uses.  ``bytes_wire_written`` / ``bytes_wire_read``
        measure the **physical frame bytes** of bytes-like payloads
        (framing, CRC, provenance, codec output; ``payload=None`` writers
        contribute zero), and ``pack_ratio`` is the mean per-pack
        wire/content compression ratio of the frames that passed through —
        above 1.0 for unreduced packs (framing overhead), well below 1.0
        once a reduction chain is active.

        ``write_buffers_in_flight`` counts output buffers not yet matched by
        a reader (the paper's adaptation window in use);
        ``read_buffers_ready`` counts received blocks waiting to be consumed;
        ``write_stall_s`` is the accumulated backpressure stall,
        ``read_wait_s`` the accumulated blocking-read wait and
        ``eagain_returns`` the number of empty non-blocking reads.
        ``write_copy_s`` / ``read_copy_s`` total the intra-node buffer copy
        time charged on each side (pure transfer, no waiting).
        ``read_dwell_s`` totals the receive-buffer residence of consumed
        blocks; ``dropped_dwell_s`` the residence of blocks that were
        received but discarded (drop-oldest tombstones and close-time
        strays), so dropped data keeps consistent per-hop dwell
        accounting.  The
        ``*_hwm`` keys are buffer-occupancy high-water marks, so saturation
        (hwm pinned at ``NA``) is visible without telemetry enabled.

        The failure-tolerance keys (retries, timeouts, drop and crash-loss
        accounting, failover counters) are all zero in healthy runs.
        """
        return {
            "mode": self.mode,
            "endpoints": len(self.endpoints),
            "overflow": self.overflow,
            "blocks_written": self.blocks_written,
            "bytes_written": self.bytes_written,
            "blocks_read": self.blocks_read,
            "bytes_read": self.bytes_read,
            "bytes_wire_written": self.bytes_wire_written,
            "bytes_wire_read": self.bytes_wire_read,
            "pack_ratio": (
                self._ratio_sum / self._ratio_packs if self._ratio_packs else 0.0
            ),
            "eagain_returns": self.eagain_returns,
            "write_stall_s": self.write_stall_s,
            "read_wait_s": self.read_wait_s,
            "write_copy_s": self.write_copy_s,
            "read_copy_s": self.read_copy_s,
            "read_dwell_s": self.read_dwell_s,
            "dropped_dwell_s": self.dropped_dwell_s,
            "write_buffers_in_flight": self._slots.in_use if self._slots else 0,
            "read_buffers_ready": len(self._ready) if self._ready else 0,
            "write_buffers_hwm": self.write_buffers_hwm,
            "read_buffers_hwm": self.read_buffers_hwm,
            "write_retries": self.write_retries,
            "write_timeouts": self.write_timeouts,
            "blocks_dropped": self.blocks_dropped,
            "bytes_dropped": self.bytes_dropped,
            "injected_drops": self.injected_drops,
            "injected_corruptions": self.injected_corruptions,
            "blocks_lost_to_crash": self.blocks_lost_to_crash,
            "bytes_lost_to_crash": self.bytes_lost_to_crash,
            "endpoints_failed": self.endpoints_failed,
            "peers_adopted": self.peers_adopted,
            "endpoints_retargeted": self.endpoints_retargeted,
            "blocks_discarded_at_close": self.blocks_discarded_at_close,
            "bytes_discarded_at_close": self.bytes_discarded_at_close,
            "stale_blocks_discarded": self.stale_blocks_discarded,
            "closed": self._closed,
        }

    # -- helpers ----------------------------------------------------------------------------

    def _require(self, mode: str, op: str) -> None:
        if self.mode is None:
            raise StreamClosedError(f"{op}() on unopened stream")
        if self._closed:
            raise StreamClosedError(f"{op}() on closed stream")
        if self.mode != mode:
            raise VMPIError(f"{op}() on a {self.mode!r}-mode stream")
