"""Versioned pack frames and the composable measurements-reduction pipeline.

:mod:`repro.codec.frame` owns the wire format: one header plus typed,
length-prefixed sections (payload, CRC, provenance, codec descriptor,
sampling accounting).  It is the *only* place frame bytes are parsed;
``instrument.packer``, ``vmpi.stream``, fault tampering and analyzer
ingest all go through it.

:mod:`repro.codec.stages` owns the reduction pipeline: pluggable,
symmetric encode/decode stages composed into a :class:`CodecChain` from a
spec string such as ``"delta+dict+zlib"``.  The chain's spec travels in
the frame's codec-descriptor section, so a receiver needs no out-of-band
configuration to decode.

This package deliberately imports nothing from :mod:`repro.instrument`,
:mod:`repro.vmpi` or :mod:`repro.analysis` — it sits below all of them.
"""

from repro.codec.frame import (
    FRAME_HEADER_SIZE,
    FRAME_MAGIC,
    FRAME_VERSION,
    SEC_CODEC,
    SEC_CRC,
    SEC_PAYLOAD,
    SEC_PROVENANCE,
    SEC_SAMPLING,
    SECTION_HEADER_SIZE,
    Frame,
    PackProvenance,
    build_frame,
    frame_content_size,
    parse_frame,
    peek_provenance,
    section_name,
)
from repro.codec.stages import (
    REGISTERED_CHAINS,
    CodecChain,
    CodecContext,
    EncodeResult,
    Stage,
    available_stages,
    build_chain,
    decode_chain,
    register_stage,
)

__all__ = [
    "FRAME_HEADER_SIZE",
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "SEC_CODEC",
    "SEC_CRC",
    "SEC_PAYLOAD",
    "SEC_PROVENANCE",
    "SEC_SAMPLING",
    "SECTION_HEADER_SIZE",
    "Frame",
    "PackProvenance",
    "build_frame",
    "frame_content_size",
    "parse_frame",
    "peek_provenance",
    "section_name",
    "REGISTERED_CHAINS",
    "CodecChain",
    "CodecContext",
    "EncodeResult",
    "Stage",
    "available_stages",
    "build_chain",
    "decode_chain",
    "register_stage",
]
