"""Density map module: per-rank behaviour comparison (paper Fig. 18).

For every MPI (and POSIX) call name the module maintains three vectors over
application ranks — hits, total time and total size — "useful to identify
spatial imbalances".  Maps can be rendered as 2D ASCII heat grids when the
application's rank layout is a square/rectangular mesh (as the paper's PNG
density maps are).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ReproError
from repro.instrument.events import CALL_IDS, CALL_NAMES


class DensityMaps:
    """Mergeable per-rank x per-call density statistics."""

    METRICS = ("hits", "time", "size")

    def __init__(self, app: str, app_size: int):
        if app_size <= 0:
            raise ReproError(f"app_size must be > 0, got {app_size}")
        self.app = app
        self.app_size = app_size
        # call id -> metric -> vector over ranks
        self.maps: dict[int, dict[str, np.ndarray]] = {}

    def _vectors(self, call: int) -> dict[str, np.ndarray]:
        entry = self.maps.get(call)
        if entry is None:
            entry = {
                "hits": np.zeros(self.app_size),
                "time": np.zeros(self.app_size),
                "size": np.zeros(self.app_size),
            }
            self.maps[call] = entry
        return entry

    # -- accumulation --------------------------------------------------------------

    def update(self, rank: int, events: np.ndarray) -> None:
        if not (0 <= rank < self.app_size):
            raise ReproError(f"batch from rank {rank} outside app of {self.app_size}")
        if len(events) == 0:
            return
        durations = events["t_end"] - events["t_start"]
        for call in np.unique(events["call"]):
            mask = events["call"] == call
            vecs = self._vectors(int(call))
            vecs["hits"][rank] += int(mask.sum())
            vecs["time"][rank] += float(durations[mask].sum())
            vecs["size"][rank] += float(events["nbytes"][mask].clip(min=0).sum())

    def merge(self, other: "DensityMaps") -> None:
        if other.app != self.app or other.app_size != self.app_size:
            raise ReproError("merging density maps of different applications")
        for call, vecs in other.maps.items():
            mine = self._vectors(call)
            for metric in self.METRICS:
                mine[metric] += vecs[metric]

    # -- queries -----------------------------------------------------------------------

    def map_for(self, call_name: str, metric: str = "hits") -> np.ndarray:
        """The per-rank vector for one call/metric (zeros if never seen)."""
        if metric not in self.METRICS:
            raise ReproError(f"unknown metric {metric!r}; choose from {self.METRICS}")
        call = CALL_IDS.get(call_name)
        if call is None:
            raise ReproError(f"unknown call name {call_name!r}")
        vecs = self.maps.get(call)
        if vecs is None:
            return np.zeros(self.app_size)
        return vecs[metric].copy()

    def aggregate(self, call_names: list[str], metric: str) -> np.ndarray:
        """Sum of maps over several calls (e.g. all collectives)."""
        total = np.zeros(self.app_size)
        for name in call_names:
            total += self.map_for(name, metric)
        return total

    def imbalance(self, call_name: str, metric: str = "time") -> float:
        """(max - min) / mean over ranks; 0 for a perfectly flat map."""
        vec = self.map_for(call_name, metric)
        mean = vec.mean()
        if mean == 0:
            return 0.0
        return float((vec.max() - vec.min()) / mean)

    def calls_seen(self) -> list[str]:
        return sorted(
            CALL_NAMES[c] if c < len(CALL_NAMES) else f"call#{c}" for c in self.maps
        )

    # -- rendering ------------------------------------------------------------------------

    def render_grid(
        self,
        call_name: str,
        metric: str = "hits",
        columns: int | None = None,
        levels: str = " .:-=+*#%@",
    ) -> str:
        """ASCII heat grid over the rank mesh (row-major rank order)."""
        vec = self.map_for(call_name, metric)
        n = self.app_size
        if columns is None:
            columns = int(math.isqrt(n))
            if columns * columns != n:
                columns = min(n, 32)
        rows = -(-n // columns)
        lo, hi = float(vec.min()), float(vec.max())
        span = hi - lo
        out = [f"{self.app}: {call_name} [{metric}]  min={lo:.4g} max={hi:.4g}"]
        for r in range(rows):
            cells = []
            for c in range(columns):
                idx = r * columns + c
                if idx >= n:
                    break
                if span == 0:
                    cells.append(levels[0])
                else:
                    level = int((vec[idx] - lo) / span * (len(levels) - 1))
                    cells.append(levels[level])
            out.append("".join(cells))
        return "\n".join(out)
