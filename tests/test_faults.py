"""Fault injection: plans, the injector, failover, and chaos resilience."""

import json

import pytest

from repro.apps.nas import SP
from repro.core.session import CouplingSession
from repro.errors import ConfigError, ProcessCrashError, SimulationError
from repro.faults import (
    ANALYZER_CRASH,
    ANALYZER_STALL,
    CANNED_PLANS,
    LINK_DEGRADE,
    PACK_CORRUPT,
    PACK_DROP,
    FaultPlan,
    FaultSpec,
    make_plan,
)
from repro.instrument.overhead import InstrumentationCost
from repro.telemetry import Telemetry


# ---------------------------------------------------------------------------------
# Plan validation and serialization
# ---------------------------------------------------------------------------------


def test_fault_spec_validation():
    with pytest.raises(ConfigError):
        FaultSpec("meteor_strike", at=1.0)
    with pytest.raises(ConfigError):
        FaultSpec(ANALYZER_CRASH, at=0.0)
    with pytest.raises(ConfigError):
        FaultSpec(ANALYZER_CRASH, at=1.0, target=0)  # gather root is off-limits
    with pytest.raises(ConfigError):
        FaultSpec(LINK_DEGRADE, at=1.0, factor=0.0)
    with pytest.raises(ConfigError):
        FaultSpec(LINK_DEGRADE, at=1.0)  # neither knob changes anything
    with pytest.raises(ConfigError):
        FaultSpec(PACK_CORRUPT, at=1.0, every=0)
    with pytest.raises(ConfigError):
        FaultSpec(ANALYZER_STALL, at=1.0, duration=0.0)


def test_plan_json_roundtrip():
    plan = make_plan("mixed", at=2.0, seed=7)
    data = json.loads(plan.to_json())
    back = FaultPlan.from_json(data)
    assert back == plan
    assert back.name == "mixed"
    assert back.seed == 7
    assert len(back) == 3


def test_plan_from_json_rejects_garbage():
    with pytest.raises(ConfigError):
        FaultPlan.from_json({"nofaults": []})
    with pytest.raises(ConfigError):
        FaultPlan.from_json({"faults": [{"kind": ANALYZER_CRASH, "bogus": 1}]})


def test_every_canned_plan_builds():
    for name in CANNED_PLANS:
        plan = make_plan(name, at=1.5, seed=3)
        assert len(plan) >= 1
        assert not plan.empty
    with pytest.raises(ConfigError):
        make_plan("nonesuch")


# ---------------------------------------------------------------------------------
# Session-level behavior
# ---------------------------------------------------------------------------------


def _session(machine, *, telemetry=None, nprocs=4, readers=2):
    cost = InstrumentationCost(block_size=4096, na_buffers=2)
    session = CouplingSession(
        machine=machine, seed=0, instrumentation=cost, telemetry=telemetry
    )
    name = session.add_application(SP(nprocs, "C", iterations=3))
    session.set_analyzer(nprocs=readers)
    return session, name


def _anchor(machine):
    """Healthy wall-time of the reference workload, for mid-run fault anchors."""
    session, name = _session(machine)
    return session.run().app(name).walltime


def test_empty_plan_is_bit_identical(machine):
    baseline, _ = _session(machine)
    base = baseline.run()

    planned, _ = _session(machine)
    planned.inject_faults(FaultPlan(specs=()))
    res = planned.run()

    assert res.degraded is False
    assert res.faults is None  # empty plan: injector never constructed
    assert res.data_loss_fraction == 0.0
    for name, run in base.apps.items():
        other = res.apps[name]
        assert (run.walltime, run.events, run.packs) == (
            other.walltime,
            other.events,
            other.packs,
        )
    assert base.analyzer_walltime == res.analyzer_walltime
    assert base.analyzer_stats["packs"] == res.analyzer_stats["packs"]


@pytest.mark.chaos
def test_crash_failover_completes_and_remaps(machine):
    at = _anchor(machine) * 0.35
    telemetry = Telemetry()
    session, name = _session(machine, telemetry=telemetry)
    monitor = session.enable_monitor()
    session.inject_faults(make_plan("crash1", at=at, seed=0))
    res = session.run()

    assert res.degraded is True
    assert res.apps[name].walltime > 0  # the application completed
    assert res.faults["dead_ranks"], "the crash must actually land"
    assert res.faults["remapped"], "orphan writers must be re-routed"
    survivors = set(res.faults["remapped"].values())
    assert not survivors & set(res.faults["dead_ranks"])
    assert res.analyzer_stats["degraded"] is True
    assert res.analyzer_stats["dead_analyzer_ranks"]
    # The run still reports a data-loss fraction (possibly zero: failover
    # can be lossless when no block was in flight to the dead rank).
    assert 0.0 <= res.data_loss_fraction < 1.0
    kinds = {a.kind for a in monitor.alerts}
    assert "analyzer_crash" in kinds
    assert "analyzer_failover" in kinds


@pytest.mark.chaos
def test_crash_is_deterministic(machine):
    at = _anchor(machine) * 0.35

    def run_once():
        session, _ = _session(machine)
        session.inject_faults(make_plan("mixed", at=at, seed=5))
        res = session.run()
        times = tuple(r["t"] for r in res.faults["records"])
        return (
            times,
            res.faults["injected"],
            tuple(sorted(res.faults["dead_ranks"])),
            res.data_loss_fraction,
            res.analyzer_stats["packs"],
            res.analyzer_stats["packs_rejected"],
        )

    assert run_once() == run_once()


@pytest.mark.chaos
def test_corrupt_packs_rejected_not_crashing(machine):
    at = _anchor(machine) * 0.3
    session, name = _session(machine)
    session.inject_faults(
        FaultPlan(specs=(FaultSpec(PACK_CORRUPT, at=at, every=2),), name="corrupt2")
    )
    res = session.run()
    assert res.degraded is True
    assert res.analyzer_stats["packs_rejected"] >= 1
    # Rejected packs count as loss but never poison the analyzer.
    assert res.data_loss_fraction > 0.0
    assert res.analyzer_stats["packs"] >= 1
    assert res.apps[name].walltime > 0


@pytest.mark.chaos
def test_dropped_packs_accounted(machine):
    at = _anchor(machine) * 0.3
    session, name = _session(machine)
    session.inject_faults(
        FaultPlan(specs=(FaultSpec(PACK_DROP, at=at, every=2),), name="drop2")
    )
    res = session.run()
    assert res.apps[name].packs_dropped >= 1
    assert res.data_loss_fraction > 0.0
    attempted = res.apps[name].packs + res.apps[name].packs_dropped
    assert res.analyzer_stats["packs"] == attempted - res.apps[name].packs_dropped


@pytest.mark.chaos
def test_degrade_slows_the_coupling(machine):
    healthy, name = _session(machine)
    base = healthy.run()

    at = base.app(name).walltime * 0.2
    session, name = _session(machine)
    session.inject_faults(
        FaultPlan(
            specs=(FaultSpec(LINK_DEGRADE, at=at, target=-1, factor=0.05),),
            name="brutal-degrade",
        )
    )
    res = session.run()
    assert res.degraded is True
    # Analysis finishes later on a 20x-slower link; the app itself survives.
    assert res.analyzer_walltime >= base.analyzer_walltime
    assert res.analyzer_stats["packs"] == base.analyzer_stats["packs"]


@pytest.mark.chaos
def test_stall_fault_freezes_consumer(machine):
    base_session, name = _session(machine)
    base = base_session.run()
    at = base.app(name).walltime * 0.3

    session, name = _session(machine)
    session.inject_faults(
        FaultPlan(
            specs=(FaultSpec(ANALYZER_STALL, at=at, target=-1, duration=5.0),),
            name="stall5",
        )
    )
    res = session.run()
    assert res.degraded is True
    assert res.faults["by_kind"].get(ANALYZER_STALL) == 1
    # No data is lost to a stall: backpressure absorbs it.
    assert res.analyzer_stats["packs"] == base.analyzer_stats["packs"]


def test_injector_misuse_rejected(machine):
    session, _ = _session(machine)
    with pytest.raises(ConfigError):
        session.inject_faults("crash1")
    session.inject_faults(FaultPlan(specs=()))
    with pytest.raises(ConfigError):
        session.inject_faults(FaultPlan(specs=()))


def test_crash_target_resolution_bounds(machine):
    plan = FaultPlan(specs=(FaultSpec(ANALYZER_CRASH, at=1.0, target=99),))
    session, _ = _session(machine)
    session.inject_faults(plan)
    with pytest.raises(ConfigError):
        session.run()


# ---------------------------------------------------------------------------------
# Kernel-level crash surfacing
# ---------------------------------------------------------------------------------


def test_unabsorbed_crash_is_typed(kernel):
    from repro.simt import Process

    def boom():
        yield kernel.timeout(1.0)
        raise RuntimeError("meteor")

    Process(kernel, boom(), name="doomed")
    with pytest.raises(ProcessCrashError) as exc:
        kernel.run()
    assert isinstance(exc.value, SimulationError)
    assert "doomed" in str(exc.value)


# ---------------------------------------------------------------------------------
# Chaos bench driver
# ---------------------------------------------------------------------------------


@pytest.mark.chaos
def test_chaos_bench_single_plan(machine):
    from repro.bench.chaos import chaos_resilience

    result = chaos_resilience(scale="small", seed=0, plan="crash1")
    assert [p.plan for p in result.points] == ["none", "crash1"]
    healthy, chaotic = result.points
    assert healthy.degraded is False and healthy.data_loss_fraction == 0.0
    assert chaotic.degraded is True
    assert chaotic.completed is True
    assert chaotic.dead_ranks == 1
    table = result.table()
    assert "data_loss_pct" in table.columns
    assert len(table.rows) == 2


def test_chaos_plan_loader(tmp_path):
    from repro.bench.chaos import load_plan

    plan = load_plan("degrade", at=3.0, seed=2)
    assert plan.name == "degrade"

    path = tmp_path / "custom.json"
    path.write_text(make_plan("drop", at=1.0).to_json())
    loaded = load_plan(str(path), at=99.0)
    assert loaded.name == "drop"
    assert loaded.specs[0].at == 1.0  # file timestamps used verbatim

    with pytest.raises(ConfigError):
        load_plan("not-a-plan-or-file", at=1.0)
