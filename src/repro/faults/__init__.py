"""Fault injection: deterministic failure schedules for chaos testing.

* :mod:`~repro.faults.plan` — :class:`FaultPlan` / :class:`FaultSpec`:
  declarative, JSON-serializable fault schedules in virtual time.
* :mod:`~repro.faults.injector` — :class:`FaultInjector`: arms a plan
  against a running world, journals every fault applied, and drives the
  failover machinery (stream endpoint remapping, degraded collectives).

An empty plan is free: attaching it schedules nothing and the simulation
stays bit-identical to an un-attached run.
"""

from repro.faults.plan import (
    ANALYZER_CRASH,
    ANALYZER_STALL,
    CANNED_PLANS,
    FAULT_KINDS,
    LINK_DEGRADE,
    PACK_CORRUPT,
    PACK_DROP,
    FaultPlan,
    FaultSpec,
    make_plan,
)
from repro.faults.injector import FaultInjector, FaultRecord

__all__ = [
    "ANALYZER_CRASH",
    "ANALYZER_STALL",
    "CANNED_PLANS",
    "FAULT_KINDS",
    "LINK_DEGRADE",
    "PACK_CORRUPT",
    "PACK_DROP",
    "FaultPlan",
    "FaultSpec",
    "make_plan",
    "FaultInjector",
    "FaultRecord",
]
