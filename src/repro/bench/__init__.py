"""Benchmark drivers regenerating every figure and table of the paper.

Each driver returns a result object carrying the raw series and a rendered
:class:`~repro.util.tables.Table` printing the same rows the paper plots.
Drivers accept a ``scale``:

* ``"small"`` — reduced process counts / volumes, minutes of CPU; the
  default for the pytest-benchmark suite;
* ``"paper"`` — the paper's own parameter grid (2560-writer streams,
  4096-rank SP.D, 8281-rank BT.D); expect long runtimes.
"""

from repro.bench.compare import (
    BenchComparison,
    MetricDelta,
    compare_bench,
    compare_files,
    load_bench_json,
    metric_direction,
)
from repro.bench.chaos import ChaosPoint, ChaosResult, chaos_resilience, load_plan
from repro.bench.codec import CodecPoint, CodecResult, codec_reduction
from repro.bench.flow import FlowPoint, FlowResult, flow_attribution
from repro.bench.metrics import MetricsPoint, MetricsResult, metrics_timeline
from repro.bench.obs import ObsResult, obs_roundtrip
from repro.bench.selfperf import SelfPerfPoint, SelfPerfResult, selfperf_sweep
from repro.bench.steering import (
    SteeringBenchPoint,
    SteeringBenchResult,
    bench_policy,
    steering_adaptation,
)
from repro.bench.harness import OverheadPoint, measure_overhead, sweep
from repro.bench.figures import (
    fig14_stream_throughput,
    fig15_overhead,
    fig16_tool_comparison,
    fig17_topology,
    fig18_density,
)
from repro.bench.tables import (
    bi_bandwidth_table,
    trace_size_table,
    fs_comparison_table,
)

__all__ = [
    "BenchComparison",
    "MetricDelta",
    "compare_bench",
    "compare_files",
    "load_bench_json",
    "metric_direction",
    "OverheadPoint",
    "measure_overhead",
    "sweep",
    "ChaosPoint",
    "ChaosResult",
    "chaos_resilience",
    "load_plan",
    "CodecPoint",
    "CodecResult",
    "codec_reduction",
    "FlowPoint",
    "FlowResult",
    "flow_attribution",
    "MetricsPoint",
    "MetricsResult",
    "metrics_timeline",
    "ObsResult",
    "obs_roundtrip",
    "SelfPerfPoint",
    "SelfPerfResult",
    "selfperf_sweep",
    "SteeringBenchPoint",
    "SteeringBenchResult",
    "bench_policy",
    "steering_adaptation",
    "fig14_stream_throughput",
    "fig15_overhead",
    "fig16_tool_comparison",
    "fig17_topology",
    "fig18_density",
    "bi_bandwidth_table",
    "trace_size_table",
    "fs_comparison_table",
]
