"""Multi-level blackboard: concurrent application profiling (paper Fig. 5).

One physical blackboard hosts several *levels*, one per instrumented
application; type ids are hashes of (level, type name), so identical
knowledge sources and data types cohabit per level without interfering.  A
dispatcher knowledge source reads each incoming event pack's application id
and re-submits the payload on that application's level — providing direct
multi-instrumentation support.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import BlackboardError
from repro.blackboard.board import Blackboard
from repro.blackboard.entry import DataEntry
from repro.blackboard.ks import KnowledgeSource
from repro.telemetry import Telemetry


class MultiLevelBlackboard:
    """A blackboard plus per-level namespaces and the dispatcher KS."""

    #: type name of the undispatched, level-less input entries
    INBOX_TYPE = "event_pack_raw"

    def __init__(
        self,
        levels: list[str],
        nqueues: int = 8,
        seed: int = 0,
        classify: Callable[[DataEntry], str] | None = None,
        telemetry: Telemetry | None = None,
        track_pid: int = 0,
    ):
        if not levels:
            raise BlackboardError("multi-level blackboard needs at least one level")
        if len(set(levels)) != len(levels):
            raise BlackboardError("duplicate level names")
        self.board = Blackboard(
            nqueues=nqueues, seed=seed, telemetry=telemetry, track_pid=track_pid
        )
        self.levels = list(levels)
        self._classify = classify or _classify_by_app_id(levels)
        self._inbox_id = self.board.register_type(self.INBOX_TYPE)
        self._level_pack_ids: dict[str, int] = {
            level: self.board.register_type("event_pack", level) for level in levels
        }
        self.board.register_ks(
            "KS_Dispatcher", [self._inbox_id], self._dispatch
        )
        self.dispatched: dict[str, int] = {level: 0 for level in levels}

    # -- level-scoped helpers ----------------------------------------------------------

    def type_id(self, name: str, level: str) -> int:
        self._check_level(level)
        return self.board.register_type(name, level)

    def register_ks(
        self, name: str, sensitivities: list[tuple[str, str]], operation
    ) -> KnowledgeSource:
        """Register a KS with (type name, level) sensitivities."""
        ids = [self.type_id(n, lv) for n, lv in sensitivities]
        return self.board.register_ks(name, ids, operation)

    def register_ks_all_levels(self, name: str, type_name: str, operation) -> list[KnowledgeSource]:
        """Instantiate the same KS once per level (paper Figure 5)."""
        return [
            self.board.register_ks(
                f"{name}[{level}]", [self.type_id(type_name, level)], operation
            )
            for level in self.levels
        ]

    def submit_pack(self, payload, size: int | None = None, meta=None) -> None:
        """Push an undispatched event pack (as read from a stream).

        ``meta`` may carry the pack's already-parsed frame; the dispatcher
        forwards it to the level entry so the unpacker never re-parses.
        """
        self.board.submit(self._inbox_id, payload, size, meta=meta)

    # -- the dispatcher KS ---------------------------------------------------------------

    def _dispatch(self, board: Blackboard, entries: list[DataEntry]) -> None:
        for entry in entries:
            level = self._classify(entry)
            self._check_level(level)
            board.submit(
                self._level_pack_ids[level], entry.payload, entry.size, meta=entry.meta
            )
            self.dispatched[level] += 1

    def _check_level(self, level: str) -> None:
        if level not in self._level_pack_ids:
            raise BlackboardError(f"unknown blackboard level {level!r}")


def _classify_by_app_id(levels: list[str]) -> Callable[[DataEntry], str]:
    """Default classifier: read the frame header's app id, index into levels.

    Dispatch needs only the 20-byte header peek — decoding the payload
    (and inverting its codec chain) is the unpacker KS's job, once, after
    the pack has been routed to its level.
    """
    from repro.codec.frame import peek_header

    def classify(entry: DataEntry) -> str:
        frame = entry.meta
        app_id = frame.app_id if frame is not None else peek_header(entry.payload).app_id
        if app_id >= len(levels):
            raise BlackboardError(
                f"pack app_id {app_id} has no level (have {len(levels)})"
            )
        return levels[app_id]

    return classify
