"""Tool comparison harness (drives Figure 16).

Runs one application kernel under each tool model — reference (no tool),
online coupling, mpiP, Score-P profile, Score-P trace + SIONlib, Scalasca —
on the same machine model and reports the relative overhead between
``MPI_Init`` and ``MPI_Finalize``, exactly as the paper measures it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError
from repro.analysis.engine import AnalysisConfig
from repro.apps.base import AppKernel, NASKernel
from repro.baselines.mpip import MPIPInterceptor
from repro.baselines.scalasca import ScalascaInterceptor
from repro.baselines.scorep import ScorePProfileInterceptor, ScorePTraceInterceptor
from repro.core.session import CouplingSession
from repro.instrument.overhead import InstrumentationCost
from repro.iosim.filesystem import ParallelFS
from repro.iosim.sionlib import SionFile
from repro.network.machine import CURIE, MachineSpec
from repro.telemetry import Telemetry
from repro.vmpi.virtualization import VirtualizedLauncher

TOOLS = (
    "reference",
    "online",
    "mpip",
    "scorep_profile",
    "scorep_trace",
    "scalasca",
)


@dataclass
class ToolRunResult:
    """Outcome of one (application, tool) run."""

    tool: str
    app: str
    nprocs: int
    walltime: float
    overhead_pct: float | None = None
    full_run_volume_bytes: int = 0
    extras: dict[str, Any] = field(default_factory=dict)


def _iteration_scale(kernel: AppKernel) -> float:
    if isinstance(kernel, NASKernel):
        return kernel.iteration_scale
    return 1.0


def run_tool(
    kernel: AppKernel,
    tool: str,
    machine: MachineSpec = CURIE,
    *,
    seed: int = 0,
    ratio: float = 1.0,
    instrumentation: InstrumentationCost | None = None,
    analysis: AnalysisConfig | None = None,
    amortize_fixed_costs: bool = True,
    telemetry: Telemetry | None = None,
) -> ToolRunResult:
    """Run ``kernel`` under one tool model; returns its wall-time result."""
    if tool not in TOOLS:
        raise ConfigError(f"unknown tool {tool!r}; choose from {TOOLS}")
    scale = _iteration_scale(kernel)
    amortize = 1.0 / scale if (amortize_fixed_costs and scale > 1) else 1.0

    if tool == "online":
        session = CouplingSession(
            machine=machine,
            seed=seed,
            instrumentation=instrumentation,
            analysis=analysis,
            telemetry=telemetry,
        )
        name = session.add_application(kernel)
        session.set_analyzer(ratio=ratio)
        result = session.run()
        run = result.app(name)
        return ToolRunResult(
            tool=tool,
            app=name,
            nprocs=kernel.nprocs,
            walltime=run.walltime,
            full_run_volume_bytes=int(run.modeled_stream_bytes * scale),
            extras={
                "events": run.events,
                "bi_bandwidth": run.bi_bandwidth,
                "analyzer_nprocs": result.analyzer_nprocs,
            },
        )

    launcher = VirtualizedLauncher(machine=machine, seed=seed, telemetry=telemetry)
    shared: dict[str, Any] = {"interceptors": []}
    if tool == "reference":
        launcher.add_program(kernel.label, nprocs=kernel.nprocs, main=kernel.main)
    else:
        launcher.add_program(
            kernel.label,
            nprocs=kernel.nprocs,
            main=_tool_main,
            kernel=kernel,
            tool=tool,
            shared=shared,
            amortize_fixed=amortize,
        )
    world = launcher.run()
    walltime = world.app_walltime(kernel.label)

    volume = 0
    extras: dict[str, Any] = {}
    interceptors = shared["interceptors"]
    if tool == "scorep_trace":
        volume = int(sum(i.trace_bytes for i in interceptors) * scale)
        extras["sion_containers"] = shared["sion"].containers_used
    elif tool in ("scorep_profile", "scalasca"):
        volume = sum(
            getattr(type(i), "PROFILE_BYTES_PER_RANK", 0) for i in interceptors
        )
    elif tool == "mpip":
        volume = MPIPInterceptor.REPORT_BYTES_PER_RANK * kernel.nprocs
    if "fs" in shared:
        extras["fs_metadata_ops"] = shared["fs"].metadata_ops
        extras["fs_bytes_written"] = shared["fs"].bytes_written
    return ToolRunResult(
        tool=tool,
        app=kernel.label,
        nprocs=kernel.nprocs,
        walltime=walltime,
        full_run_volume_bytes=volume,
        extras=extras,
    )


def compare_tools(
    kernel_factory,
    tools: tuple[str, ...] = TOOLS,
    machine: MachineSpec = CURIE,
    **kwargs: Any,
) -> list[ToolRunResult]:
    """Run each tool on a fresh kernel; fills ``overhead_pct`` vs reference.

    ``kernel_factory`` is a zero-argument callable returning the kernel, so
    every tool sees an identical fresh workload.
    """
    results: list[ToolRunResult] = []
    reference: ToolRunResult | None = None
    ordered = ("reference",) + tuple(t for t in tools if t != "reference")
    for tool in ordered:
        if tool not in tools and tool != "reference":
            continue
        result = run_tool(kernel_factory(), tool, machine, **kwargs)
        if tool == "reference":
            reference = result
            result.overhead_pct = 0.0
        else:
            if reference is None or reference.walltime <= 0:
                raise ConfigError("reference run missing or degenerate")
            result.overhead_pct = (
                (result.walltime - reference.walltime) / reference.walltime * 100.0
            )
        if tool in tools:
            results.append(result)
    return results


def _tool_main(mpi, kernel: AppKernel, tool: str, shared: dict, amortize_fixed: float):
    """Program wrapper attaching the requested baseline interceptor."""
    world = mpi.ctx.world
    if "fs" not in shared:
        shared["fs"] = ParallelFS(world.kernel, world.machine, world.nranks)
        if tool == "scorep_trace":
            shared["sion"] = SionFile(shared["fs"], "trace.sion", tasks_per_file=512)
    fs = shared["fs"]
    if tool == "mpip":
        interceptor = MPIPInterceptor(mpi, fs, amortize_fixed)
    elif tool == "scorep_profile":
        interceptor = ScorePProfileInterceptor(mpi, fs, amortize_fixed)
    elif tool == "scorep_trace":
        interceptor = ScorePTraceInterceptor(mpi, fs, shared["sion"], amortize_fixed)
    elif tool == "scalasca":
        interceptor = ScalascaInterceptor(mpi, fs, amortize_fixed)
    else:  # pragma: no cover - guarded by run_tool
        raise ConfigError(f"unknown tool {tool!r}")
    mpi.ctx.pmpi.attach(interceptor)
    shared["interceptors"].append(interceptor)
    result = yield from kernel.main(mpi)
    return result
