"""Bench regression gate: payload diffing and the compare CLI."""

import json

import pytest

from repro.bench.compare import (
    compare_bench,
    compare_files,
    load_bench_json,
    metric_direction,
)
from repro.bench.__main__ import main as bench_main
from repro.errors import ConfigError


def payload(rows, columns=("writers", "throughput_GBps", "overhead_pct"),
            experiment="fig14"):
    return {
        "experiment": experiment,
        "scale": "small",
        "seed": 0,
        "elapsed_s": 1.0,
        "columns": list(columns),
        "rows": [list(r) for r in rows],
    }


BASE = payload([["64", "10.0", "5.0"], ["128", "20.0", "5.0"]])


class TestDirection:
    def test_classification(self):
        assert metric_direction("throughput_GBps") == "higher"
        assert metric_direction("fs_scaled_GBps") == "higher"
        assert metric_direction("bi_bandwidth") == "higher"
        assert metric_direction("overhead_pct") == "lower"
        assert metric_direction("walltime_s") == "lower"
        assert metric_direction("trace_size_MB") == "lower"
        assert metric_direction("writers") == "either"
        assert metric_direction("ratio") == "either"

    def test_selfperf_throughputs_are_higher_better(self):
        assert metric_direction("kernel_events_per_s") == "higher"
        assert metric_direction("stream_mb_per_s") == "higher"
        assert metric_direction("codec_mb_per_s") == "higher"
        assert metric_direction("frame_mb_per_s") == "higher"


class TestCompare:
    def test_identical_passes(self):
        cmp = compare_bench(BASE, payload([["64", "10.0", "5.0"], ["128", "20.0", "5.0"]]))
        assert cmp.ok
        assert cmp.regressions == []
        assert "PASS" in cmp.render()

    def test_throughput_drop_regresses(self):
        cand = payload([["64", "8.0", "5.0"], ["128", "20.0", "5.0"]])
        cmp = compare_bench(BASE, cand, tolerance=0.05)
        assert not cmp.ok
        assert len(cmp.regressions) == 1
        d = cmp.regressions[0]
        assert d.column == "throughput_GBps" and d.row == 0
        assert d.rel_delta == pytest.approx(-0.2)
        assert "FAIL" in cmp.render()

    def test_throughput_gain_improves_never_fails(self):
        cand = payload([["64", "15.0", "5.0"], ["128", "40.0", "5.0"]])
        cmp = compare_bench(BASE, cand)
        assert cmp.ok
        assert len(cmp.improvements) == 2

    def test_overhead_growth_regresses_and_shrink_improves(self):
        worse = payload([["64", "10.0", "6.0"], ["128", "20.0", "5.0"]])
        assert not compare_bench(BASE, worse).ok
        better = payload([["64", "10.0", "4.0"], ["128", "20.0", "5.0"]])
        cmp = compare_bench(BASE, better)
        assert cmp.ok and len(cmp.improvements) == 1

    def test_parameter_drift_regresses_both_directions(self):
        cand = payload([["70", "10.0", "5.0"], ["128", "20.0", "5.0"]])
        cmp = compare_bench(BASE, cand)
        assert not cmp.ok
        assert cmp.regressions[0].column == "writers"

    def test_within_tolerance_is_ok(self):
        cand = payload([["64", "9.8", "5.1"], ["128", "20.0", "5.0"]])
        cmp = compare_bench(BASE, cand, tolerance=0.05)
        assert cmp.ok
        assert cmp.improvements == []

    def test_per_metric_tolerance_overrides_default(self):
        cand = payload([["64", "8.0", "5.0"], ["128", "20.0", "5.0"]])
        loose = compare_bench(BASE, cand, per_metric={"throughput_GBps": 0.3})
        assert loose.ok
        tight = compare_bench(
            BASE, payload([["64", "9.9", "5.0"], ["128", "20.0", "5.0"]]),
            per_metric={"throughput_GBps": 0.001},
        )
        assert not tight.ok

    def test_zero_baseline_handles_divide(self):
        base = payload([["64", "0.0", "5.0"]])
        same = payload([["64", "0.0", "5.0"]])
        assert compare_bench(base, same).ok
        grew = payload([["64", "3.0", "5.0"]])
        cmp = compare_bench(base, grew)
        assert cmp.ok  # higher-better from zero is an improvement
        assert cmp.improvements[0].rel_delta == float("inf")

    def test_textual_cells_must_match(self):
        cols = ("tool", "overhead_pct")
        base = payload([["mpiP", "5.0"]], columns=cols, experiment="fig16")
        ok = payload([["mpiP", "5.0"]], columns=cols, experiment="fig16")
        assert compare_bench(base, ok).ok
        renamed = payload([["Scalasca", "5.0"]], columns=cols, experiment="fig16")
        assert not compare_bench(base, renamed).ok

    def test_elapsed_is_never_compared(self):
        cols = ("writers", "elapsed_s")
        base = payload([["64", "1.0"]], columns=cols)
        cand = payload([["64", "99.0"]], columns=cols)
        assert compare_bench(base, cand).ok


HOST = {
    "python": "3.11.7", "implementation": "CPython",
    "platform": "Linux-x86_64", "machine": "x86_64", "cpu_count": 8,
}


class TestEnvironmentWarnings:
    def test_matching_hosts_are_silent(self):
        base, cand = dict(BASE, host=dict(HOST)), dict(BASE, host=dict(HOST))
        cmp = compare_bench(base, cand)
        assert cmp.ok and cmp.warnings == []

    def test_mismatch_warns_but_never_fails(self):
        other = dict(HOST, python="3.12.1", cpu_count=2)
        cmp = compare_bench(dict(BASE, host=dict(HOST)), dict(BASE, host=other))
        assert cmp.ok  # warnings are informational only
        assert len(cmp.warnings) == 2
        rendered = cmp.render()
        assert "[~] warning" in rendered and "PASS" in rendered
        assert any("python" in w and "3.12.1" in w for w in cmp.warnings)

    def test_artefacts_without_header_compare_silently(self):
        assert compare_bench(BASE, dict(BASE, host=dict(HOST))).warnings == []
        assert compare_bench(dict(BASE, host=dict(HOST)), BASE).warnings == []


class TestStructural:
    def test_experiment_mismatch(self):
        cmp = compare_bench(BASE, payload([["64", "10.0", "5.0"]], experiment="fig15"))
        assert not cmp.ok
        assert "experiment mismatch" in cmp.structural[0]

    def test_row_count_change(self):
        cmp = compare_bench(BASE, payload([["64", "10.0", "5.0"]]))
        assert not cmp.ok
        assert any("row count" in s for s in cmp.structural)

    def test_column_changes(self):
        cand = payload(
            [["64", "10.0"], ["128", "20.0"]], columns=("writers", "throughput_GBps")
        )
        cmp = compare_bench(BASE, cand)
        assert not cmp.ok
        assert any("lost columns" in s for s in cmp.structural)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigError):
            compare_bench(BASE, BASE, tolerance=-1.0)
        with pytest.raises(ConfigError):
            compare_bench(BASE, BASE, per_metric={"x": -0.1})


class TestFiles:
    def test_load_validates_shape(self, tmp_path):
        with pytest.raises(ConfigError):
            load_bench_json(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(ConfigError):
            load_bench_json(bad)
        partial = tmp_path / "partial.json"
        partial.write_text(json.dumps({"experiment": "x"}))
        with pytest.raises(ConfigError):
            load_bench_json(partial)

    def test_compare_files_roundtrip(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(BASE))
        b.write_text(json.dumps(payload([["64", "8.0", "5.0"], ["128", "20.0", "5.0"]])))
        assert compare_files(a, a).ok
        assert not compare_files(a, b).ok


class TestCLI:
    def test_compare_exit_codes(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(BASE))
        b.write_text(json.dumps(payload([["64", "8.0", "5.0"], ["128", "20.0", "5.0"]])))
        assert bench_main(["compare", str(a), str(a)]) == 0
        assert "PASS" in capsys.readouterr().out
        assert bench_main(["compare", str(a), str(b)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_compare_cli_tolerance_flags(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(BASE))
        b.write_text(json.dumps(payload([["64", "8.0", "5.0"], ["128", "20.0", "5.0"]])))
        assert bench_main(["compare", str(a), str(b), "--tolerance", "0.5"]) == 0
        capsys.readouterr()
        assert bench_main(
            ["compare", str(a), str(b), "--metric-tolerance", "throughput_GBps=0.3"]
        ) == 0

    def test_compare_cli_bad_metric_tolerance(self, tmp_path):
        a = tmp_path / "a.json"
        a.write_text(json.dumps(BASE))
        with pytest.raises(ConfigError):
            bench_main(["compare", str(a), str(a), "--metric-tolerance", "nope"])

    def test_baseline_flag_rejected_with_all(self):
        with pytest.raises(SystemExit):
            bench_main(["all", "--baseline", "x.json"])

    def test_committed_baseline_matches_regeneration(self, tmp_path, capsys):
        # The CI gate in miniature: regenerate fig14 small and self-gate
        # against the committed baseline artefact.
        rc = bench_main([
            "fig14", "--scale", "small", "--json",
            "--outdir", str(tmp_path),
            "--baseline", "benchmarks/baselines/BENCH_fig14.json",
        ])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "PASS" in out
