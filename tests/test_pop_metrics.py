"""Time-resolved POP efficiency metrics: windowing, telescoping sums,
online phase detection, NDJSON streaming export, bit-identity."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.base import AppKernel
from repro.apps.nas import SP
from repro.core.session import CouplingSession
from repro.errors import ConfigError, SimulationError
from repro.simt.kernel import Kernel
from repro.telemetry import Telemetry
from repro.telemetry.popmetrics import (
    METRIC_KEYS,
    SUM_KEYS,
    PopConfig,
    PopMetricsEngine,
    metrics_from_sums,
)
from repro.telemetry.stream_export import (
    METRICS_SCHEMA,
    MetricsStreamWriter,
    iter_metrics_stream,
    read_metrics_stream,
)

pytestmark = pytest.mark.metrics


def _session(telemetry=None, seed=7, iterations=3):
    from repro.instrument.overhead import InstrumentationCost

    session = CouplingSession(
        seed=seed,
        instrumentation=InstrumentationCost(block_size=4096, na_buffers=2),
        telemetry=telemetry,
    )
    name = session.add_application(SP(16, "C", iterations=iterations), name="sp")
    session.set_analyzer(nprocs=4)
    return session, name


class TwoPhase(AppKernel):
    """Synthetic workload with a sharp efficiency cliff at a known time.

    Phase A: balanced compute-heavy iterations (PE near 1).  Phase B:
    imbalanced compute plus chatty collectives (PE collapses).  The
    change-point detector must find the seam.
    """

    name = "TWOPHASE"

    def __init__(self, nprocs=8, iters_a=40, iters_b=40):
        super().__init__(nprocs, iters_a + iters_b)
        self.iters_a = iters_a
        self.iters_b = iters_b

    def main(self, mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        for _ in range(self.iters_a):
            yield from mpi.compute(2e-3)
            yield from comm.allreduce(nbytes=8)
        for _ in range(self.iters_b):
            # Rank-dependent compute spread: load balance degrades.
            yield from mpi.compute(2e-4 + 6e-4 * comm.rank / comm.size)
            for _ in range(4):
                yield from comm.allreduce(nbytes=65536)
        yield from mpi.finalize()


# -- configuration surface ---------------------------------------------------------


def test_pop_config_validation():
    with pytest.raises(ConfigError):
        PopConfig(window=0.0)
    with pytest.raises(ConfigError):
        PopConfig(capacity=1)
    with pytest.raises(ConfigError):
        PopConfig(signal="walltime")
    with pytest.raises(ConfigError):
        PopConfig(min_phase_windows=0)
    with pytest.raises(ConfigError):
        PopConfig(z_threshold=0.0)
    with pytest.raises(ConfigError):
        PopConfig(confirm_windows=0)
    PopConfig()  # defaults are valid


def test_engine_requires_live_telemetry():
    from repro.telemetry.core import NULL_TELEMETRY

    with pytest.raises(ConfigError):
        PopMetricsEngine(NULL_TELEMETRY)
    session, _ = _session(telemetry=None)  # NULL_TELEMETRY session
    with pytest.raises(ConfigError):
        session.enable_pop_metrics()


def test_double_enable_and_double_attach_error():
    session, _ = _session(telemetry=Telemetry())
    session.enable_pop_metrics()
    with pytest.raises(ConfigError):
        session.enable_pop_metrics()
    tel = Telemetry()
    engine = PopMetricsEngine(tel)
    kernel = Kernel(telemetry=tel)
    engine.attach(kernel)
    with pytest.raises(ConfigError):
        engine.attach(kernel)
    with pytest.raises(ConfigError):  # foreign telemetry rejected
        PopMetricsEngine(Telemetry()).attach(kernel)


def test_sink_requires_on_window():
    engine = PopMetricsEngine(Telemetry())

    class Bad:
        pass

    with pytest.raises(ConfigError):
        engine.add_sink(Bad())


# -- the metric math ---------------------------------------------------------------


def test_metrics_from_sums_empty_is_zero():
    zeros = metrics_from_sums({})
    assert set(zeros) == set(METRIC_KEYS)
    assert all(v == 0.0 for v in zeros.values())
    # Ranks that never became active are filtered the same way.
    idle = {"a/0": {k: 0.0 for k in SUM_KEYS}}
    assert metrics_from_sums(idle) == zeros


def test_pop_identity_holds_by_construction():
    per_rank = {
        "a/0": dict(active_s=1.0, useful_s=0.9, mpi_s=0.1, instr_s=0.0, stall_s=0.0),
        "a/1": dict(active_s=1.0, useful_s=0.5, mpi_s=0.4, instr_s=0.1, stall_s=0.2),
        "a/2": dict(active_s=0.8, useful_s=0.7, mpi_s=0.1, instr_s=0.0, stall_s=0.0),
    }
    m = metrics_from_sums(per_rank)
    assert m["parallel_efficiency"] == pytest.approx(
        m["load_balance"] * m["communication_efficiency"], abs=1e-12
    )
    assert 0.0 < m["parallel_efficiency"] < 1.0


# -- windowing on the real coupled workload ----------------------------------------


def test_session_windows_and_report(tmp_path):
    session, name = _session(telemetry=Telemetry())
    session.enable_pop_metrics(PopConfig(window=0.01))
    run = session.run()
    summary = run.efficiency
    assert summary is not None
    assert summary["windows"] > 10
    assert summary["phases"], "at least one phase must be sealed"
    eor = summary["end_of_run"]
    assert 0.0 < eor["parallel_efficiency"] <= 1.0
    # Windows tile the active span: t0/t1 chain without gaps.
    engine = session.pop_metrics
    for prev, cur in zip(engine.windows, engine.windows[1:]):
        assert cur.t0 == pytest.approx(prev.t1)
    # Report section renders.
    text = run.report.render()
    assert "Efficiency timeline" in text
    assert "Per-phase efficiency" in text


def test_end_of_run_matches_phase_recombination():
    """Acceptance gate: per-phase sums recombine to end-of-run to 1e-6."""
    session, _ = _session(telemetry=Telemetry())
    session.enable_pop_metrics(PopConfig(window=0.005))
    run = session.run()
    combined = {}
    for phase in run.efficiency["phases"]:
        for rank_key, sums in phase["ranks"].items():
            entry = combined.setdefault(rank_key, {k: 0.0 for k in SUM_KEYS})
            for key in SUM_KEYS:
                entry[key] += sums[key]
    recombined = metrics_from_sums(combined)
    for key in METRIC_KEYS:
        assert recombined[key] == pytest.approx(
            run.efficiency["end_of_run"][key], abs=1e-6
        )


@settings(max_examples=5, deadline=None)
@given(
    window=st.sampled_from([0.003, 0.007, 0.013, 0.05]),
    seed=st.integers(min_value=0, max_value=3),
)
def test_telescoping_property(window, seed):
    """Telescoping holds for arbitrary window widths and seeds: windows
    sum to phases, phases sum to the run, regardless of where boundaries
    fall relative to MPI calls."""
    session, _ = _session(telemetry=Telemetry(), seed=seed, iterations=2)
    session.enable_pop_metrics(PopConfig(window=window))
    run = session.run()
    summary = run.efficiency
    engine = session.pop_metrics
    # Window sums -> global totals.
    window_totals = {k: 0.0 for k in SUM_KEYS}
    for w in engine.windows:
        for key in SUM_KEYS:
            window_totals[key] += w.sums[key]
    for key in SUM_KEYS:
        assert window_totals[key] == pytest.approx(summary["totals"][key], abs=1e-6)
    # Phase sums -> global totals.
    phase_totals = {k: 0.0 for k in SUM_KEYS}
    for phase in summary["phases"]:
        for key in SUM_KEYS:
            phase_totals[key] += phase["sums"][key]
    for key in SUM_KEYS:
        assert phase_totals[key] == pytest.approx(summary["totals"][key], abs=1e-6)


def test_bit_identical_with_metrics_disabled():
    """The observer bar: enabling the engine must not move the simulation."""
    plain, name = _session(telemetry=Telemetry(), iterations=2)
    base = plain.run()
    metered, name2 = _session(telemetry=Telemetry(), iterations=2)
    metered.enable_pop_metrics(PopConfig(window=0.004))
    run = metered.run()
    assert run.app(name2).walltime == base.app(name).walltime
    assert run.app(name2).events == base.app(name).events
    assert run.analyzer_walltime == base.analyzer_walltime
    assert run.efficiency is not None and base.efficiency is None


# -- phase detection ---------------------------------------------------------------


def test_two_phase_workload_detects_boundary():
    tel = Telemetry()
    session = CouplingSession(telemetry=tel, seed=3)
    session.add_application(TwoPhase(), name="twophase")
    session.set_analyzer(nprocs=2)
    session.enable_pop_metrics(PopConfig(window=0.004))
    run = session.run()
    phases = run.efficiency["phases"]
    assert len(phases) >= 2
    # Phase A is compute-heavy (~2ms x 40 iters ends near t=0.08); the
    # first boundary must land within a few windows of the true seam.
    boundary = phases[0]["t1"]
    assert boundary == pytest.approx(0.08, abs=0.02)
    pe_a = phases[0]["metrics"]["parallel_efficiency"]
    pe_b = phases[1]["metrics"]["parallel_efficiency"]
    assert pe_a > 0.9
    assert pe_b < pe_a - 0.3


def test_uniform_workload_stays_single_phase():
    session, _ = _session(telemetry=Telemetry())
    session.enable_pop_metrics(PopConfig(window=0.01))
    run = session.run()
    assert len(run.efficiency["phases"]) == 1


def test_glitch_folds_back_without_split():
    """A single outlier window (below confirm_windows) must not split."""
    tel = Telemetry()
    engine = PopMetricsEngine(tel, PopConfig(confirm_windows=2, shift_min=0.01))
    # Drive _detect_phase directly with synthetic windows.
    from repro.telemetry.popmetrics import WindowMetrics

    def window(i, pe):
        metrics = {k: 0.0 for k in METRIC_KEYS}
        metrics["parallel_efficiency"] = pe
        return WindowMetrics(
            index=i, t0=i * 0.01, t1=(i + 1) * 0.01, nranks=1,
            metrics=metrics, sums={k: 0.0 for k in SUM_KEYS}, stream={},
            per_rank={"a/0": {k: 0.0 for k in SUM_KEYS}},
        )

    for i in range(8):
        engine._detect_phase(window(i, 0.9 + 0.001 * (i % 2)))
    engine._detect_phase(window(8, 0.2))  # glitch
    engine._detect_phase(window(9, 0.9))  # back to normal: folds in
    assert not engine.phases  # still one open phase, nothing sealed
    assert engine._current.windows == 10

    # A fresh engine seeing two *consecutive* outliers confirms the split
    # (the glitch above widened the variance, which is the point: folded
    # glitches make the detector harder to trip — hysteresis by design).
    sharp = PopMetricsEngine(tel, PopConfig(confirm_windows=2, shift_min=0.01))
    for i in range(8):
        sharp._detect_phase(window(i, 0.9 + 0.001 * (i % 2)))
    sharp._detect_phase(window(8, 0.2))
    assert not sharp.phases  # pending, not yet confirmed
    sharp._detect_phase(window(9, 0.2))
    assert len(sharp.phases) == 1
    assert sharp._current.windows == 2
    assert sharp._current.t0 == pytest.approx(0.08)  # boundary at outlier #1


# -- kernel hook alignment ---------------------------------------------------------


def test_call_every_first_pins_alignment():
    tel = Telemetry()
    kernel = Kernel(telemetry=tel)
    fired = []
    kernel.timeout(0.0123)  # move the clock off-grid
    kernel.run()
    kernel.call_every(0.01, fired.append, first=0.02)
    kernel.timeout(0.05 - kernel.now)
    kernel.run()
    assert fired[:3] == [pytest.approx(0.02), pytest.approx(0.03), pytest.approx(0.04)]
    with pytest.raises(SimulationError):
        kernel.call_every(0.01, fired.append, first=kernel.now - 0.01)


def test_attach_aligns_to_window_grid():
    tel = Telemetry()
    kernel = Kernel(telemetry=tel)
    kernel.timeout(0.0123)
    kernel.run()
    engine = PopMetricsEngine(tel, PopConfig(window=0.005))
    engine.attach(kernel)
    kernel.timeout(0.03 - kernel.now)
    kernel.run()
    assert engine.windows
    assert engine.windows[0].t1 == pytest.approx(0.015)  # grid-aligned
    for w in engine.windows:
        assert math.isclose(w.t1 / 0.005, round(w.t1 / 0.005), abs_tol=1e-6)


# -- NDJSON streaming export -------------------------------------------------------


def test_ndjson_streams_incrementally(tmp_path):
    """Records hit the file as windows close, not at teardown."""
    path = tmp_path / "metrics.ndjson"
    writer = MetricsStreamWriter(str(path))
    writer.on_window({"index": 0, "t0": 0.0, "t1": 0.01})
    # Readable immediately, before close: the streaming contract.
    first = path.read_text().strip().splitlines()
    assert len(first) == 1
    rec = json.loads(first[0])
    assert rec["schema"] == METRICS_SCHEMA
    assert rec["kind"] == "window"
    writer.on_phase({"index": 0})
    writer.on_run_summary({"windows": 1})
    writer.close()
    writer.close()  # idempotent
    with pytest.raises(ConfigError):
        writer.on_window({})
    records = read_metrics_stream(str(path))
    assert [r["kind"] for r in records] == ["window", "phase", "run_summary"]


def test_ndjson_rejects_foreign_schema(tmp_path):
    path = tmp_path / "bad.ndjson"
    path.write_text('{"schema": "someone-else/9", "kind": "window"}\n')
    with pytest.raises(ConfigError):
        read_metrics_stream(str(path))
    path.write_text('{"schema": "%s", "kind": "mystery"}\n' % METRICS_SCHEMA)
    with pytest.raises(ConfigError):
        read_metrics_stream(str(path))
    path.write_text("not json\n")
    with pytest.raises(ConfigError):
        read_metrics_stream(str(path))
    path.write_text("\n\n")  # blank lines alone are fine
    assert read_metrics_stream(str(path)) == []


def test_session_stream_round_trip(tmp_path):
    path = tmp_path / "session.ndjson"
    session, _ = _session(telemetry=Telemetry(), iterations=2)
    session.enable_pop_metrics(PopConfig(window=0.01), stream=str(path))
    run = session.run()
    records = read_metrics_stream(str(path))
    kinds = [r["kind"] for r in records]
    assert kinds.count("window") == run.efficiency["windows"]
    assert kinds.count("phase") == len(run.efficiency["phases"])
    assert kinds[-1] == "run_summary"
    # The streamed run summary is the session's own summary.
    tail = records[-1]
    assert tail["windows"] == run.efficiency["windows"]
    assert tail["end_of_run"] == run.efficiency["end_of_run"]
    # Iterator and list loaders agree.
    assert list(iter_metrics_stream(str(path))) == records


# -- Chrome-trace counters ---------------------------------------------------------


def test_pop_gauges_export_as_counter_events(tmp_path):
    tel = Telemetry()
    session, _ = _session(telemetry=tel, iterations=2)
    session.enable_pop_metrics(PopConfig(window=0.01))
    session.run()
    trace = tmp_path / "trace.json"
    tel.write_chrome_trace(trace)
    events = json.loads(trace.read_text())["traceEvents"]
    counters = [
        e for e in events
        if e.get("ph") == "C" and e.get("name", "").startswith("pop.")
    ]
    assert counters, "pop.* gauges must appear as Chrome counter tracks"
    names = {e["name"] for e in counters}
    assert "pop.parallel_efficiency" in names
