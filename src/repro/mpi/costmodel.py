"""Timing constants and collective cost formulas.

Point-to-point overheads follow the LogGP tradition: a CPU overhead on each
side (``o_send``/``o_recv``), eager copies below the rendezvous threshold,
and network time from the flow model.  Collectives are charged with the
standard log-tree / ring formulas used by every MPI performance model; the
bandwidth term uses the per-rank NIC share implied by the node's occupancy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.network.machine import MachineSpec


@dataclass(frozen=True)
class CostModel:
    """All tunable timing constants of the simulated MPI library."""

    o_send: float = 0.4e-6  # CPU time to issue a send
    o_recv: float = 0.4e-6  # CPU time to complete a receive
    eager_threshold: int = 64 * 1024  # rendezvous above this size
    eager_copy_bandwidth: float = 5.0e9  # memcpy into MPI buffering
    alpha: float = 2.0e-6  # collective per-stage latency
    beta: float = 1.0 / 0.8e9  # collective per-byte time (per-rank share)
    reduce_gamma: float = 1.0 / 4.0e9  # per-byte local reduction arithmetic

    @classmethod
    def for_machine(cls, machine: MachineSpec, ranks_per_node: int | None = None) -> "CostModel":
        """Derive constants from a machine spec.

        The collective byte-term uses the per-rank NIC share when every core
        of a node participates (the common fully-packed case).
        """
        cpn = ranks_per_node if ranks_per_node is not None else machine.cores_per_node
        if cpn < 1:
            raise ConfigError(f"ranks_per_node must be >= 1, got {cpn}")
        share = machine.nic_effective_bandwidth(cpn) / cpn
        return cls(
            alpha=machine.nic_latency,
            beta=1.0 / share,
            eager_copy_bandwidth=machine.intra_node_bandwidth,
        )

    # -- collective durations ------------------------------------------------------

    def collective_cost(self, op: str, nranks: int, nbytes: int) -> float:
        """Modelled duration of a collective once all participants arrived."""
        if nranks < 1:
            raise ConfigError(f"collective over {nranks} ranks")
        if nbytes < 0:
            raise ConfigError(f"negative collective payload: {nbytes}")
        if nranks == 1:
            return self.o_send
        p = nranks
        n = nbytes
        log_p = math.ceil(math.log2(p))
        if op == "barrier":
            return 2.0 * log_p * self.alpha
        if op == "bcast":
            return log_p * (self.alpha + n * self.beta)
        if op == "reduce":
            return log_p * (self.alpha + n * self.beta + n * self.reduce_gamma)
        if op == "allreduce":
            # Rabenseifner: reduce-scatter + allgather.
            return 2.0 * log_p * self.alpha + 2.0 * n * self.beta * (p - 1) / p + n * self.reduce_gamma
        if op in ("gather", "scatter"):
            return log_p * self.alpha + n * self.beta * (p - 1)
        if op in ("allgather", "reduce_scatter"):
            return log_p * self.alpha + n * self.beta * (p - 1)
        if op == "alltoall":
            return log_p * self.alpha + n * self.beta * (p - 1)
        raise ConfigError(f"unknown collective op: {op!r}")
