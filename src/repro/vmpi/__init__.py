"""VMPI: MPI virtualization, partition mapping and streams (paper Sec. III-A).

Three components, mirroring the paper's library:

* :mod:`~repro.vmpi.virtualization` — launch several programs in one MPMD
  job, each transparently running in its own ``MPI_COMM_WORLD`` while the
  real world communicator remains available as ``MPI_COMM_UNIVERSE``.
* :mod:`~repro.vmpi.mapping` — ``VMPI_Map``: associate the processes of two
  partitions through a *pivot* (the smaller partition's root) under a
  round-robin / random / fixed / user-defined policy; maps are additive.
* :mod:`~repro.vmpi.stream` — ``VMPI_Stream``: persistent asynchronous
  UNIX-pipe-like channels between mapped processes, with ``NA`` receive
  buffers per incoming stream, shared write-side buffers, load-balancing
  policies and non-blocking reads returning ``EAGAIN``.
"""

from repro.vmpi.virtualization import VirtualizedLauncher
from repro.vmpi.mapping import (
    VMPIMap,
    MapPolicy,
    ROUND_ROBIN,
    RANDOM,
    FIXED,
    map_partitions,
    remap_orphans,
)
from repro.vmpi.stream import (
    VMPIStream,
    BALANCE_NONE,
    BALANCE_RANDOM,
    BALANCE_ROUND_ROBIN,
    OVERFLOW_BLOCK,
    OVERFLOW_DROP_NEWEST,
    OVERFLOW_DROP_OLDEST,
    EAGAIN,
    EOF,
)

__all__ = [
    "VirtualizedLauncher",
    "VMPIMap",
    "MapPolicy",
    "ROUND_ROBIN",
    "RANDOM",
    "FIXED",
    "map_partitions",
    "remap_orphans",
    "VMPIStream",
    "BALANCE_NONE",
    "BALANCE_RANDOM",
    "BALANCE_ROUND_ROBIN",
    "OVERFLOW_BLOCK",
    "OVERFLOW_DROP_NEWEST",
    "OVERFLOW_DROP_OLDEST",
    "EAGAIN",
    "EOF",
]
