"""Job-scoped cluster instance: placement + per-node pipes + transfers.

A :class:`Cluster` is built for one simulated job: the launcher places ranks
on nodes (block placement, one rank per core, exactly as Slurm would for an
MPMD job description), then each *used* node gets an egress and an ingress
:class:`~repro.simt.resources.Pipe` whose bandwidth reflects how many ranks
share the NIC (see :meth:`MachineSpec.nic_effective_bandwidth`).

``transfer(src_rank, dst_rank, nbytes)`` returns a simulation event that
fires when the message's payload would have fully arrived.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.network.fattree import FatTree
from repro.network.machine import MachineSpec
from repro.simt import Kernel, Pipe
from repro.simt.primitives import SimEvent


@dataclass(frozen=True)
class Placement:
    """Where each global rank lives."""

    node_of_rank: tuple[int, ...]
    ranks_per_node: dict[int, int]

    @property
    def nranks(self) -> int:
        return len(self.node_of_rank)

    @property
    def nodes_used(self) -> int:
        return len(self.ranks_per_node)


def block_placement(nranks: int, machine: MachineSpec) -> Placement:
    """Fill nodes sequentially, one rank per core (standard batch placement)."""
    if nranks <= 0:
        raise ConfigError(f"placement needs nranks > 0, got {nranks}")
    cpn = machine.cores_per_node
    needed_nodes = -(-nranks // cpn)
    if needed_nodes > machine.nodes:
        raise ConfigError(
            f"job of {nranks} ranks needs {needed_nodes} nodes; "
            f"{machine.name} has {machine.nodes}"
        )
    node_of_rank = tuple(r // cpn for r in range(nranks))
    per_node: dict[int, int] = {}
    for node in node_of_rank:
        per_node[node] = per_node.get(node, 0) + 1
    return Placement(node_of_rank=node_of_rank, ranks_per_node=per_node)


class Cluster:
    """Simulated allocation of a machine for one job."""

    def __init__(
        self,
        kernel: Kernel,
        machine: MachineSpec,
        nranks: int,
        placement: Placement | None = None,
    ):
        self.kernel = kernel
        self.machine = machine
        self.placement = placement or block_placement(nranks, machine)
        if self.placement.nranks != nranks:
            raise ConfigError(
                f"placement covers {self.placement.nranks} ranks, job has {nranks}"
            )
        self.nranks = nranks
        self.topology = FatTree(machine.nodes)
        # Per used node: (egress pipe, ingress pipe).  NIC bandwidth is set
        # from the static per-node rank count (flow-level approximation).
        self._nic: dict[int, tuple[Pipe, Pipe]] = {}
        self._mem: dict[int, Pipe] = {}
        for node, count in self.placement.ranks_per_node.items():
            bw = machine.nic_effective_bandwidth(count)
            self._nic[node] = (
                Pipe(kernel, bw, name=f"node{node}.out"),
                Pipe(kernel, bw, name=f"node{node}.in"),
            )
            self._mem[node] = Pipe(
                kernel, machine.intra_node_bandwidth, name=f"node{node}.mem"
            )
        # Cross-leaf traffic shares the job's effective bisection capacity.
        self._bisection = Pipe(
            kernel,
            machine.bisection_bandwidth(self.placement.nodes_used),
            name="bisection",
        )
        self.bytes_internode = 0
        self.bytes_intranode = 0
        self.bytes_crossleaf = 0
        # Fault-injected extra per-node latency; empty in healthy runs so
        # the latency() hot path stays untouched (pay-for-what-you-use).
        self._extra_latency: dict[int, float] = {}
        self.degraded_nodes = 0

    # -- queries ---------------------------------------------------------------

    def node_of(self, rank: int) -> int:
        if not (0 <= rank < self.nranks):
            raise ConfigError(f"rank {rank} outside job of {self.nranks}")
        return self.placement.node_of_rank[rank]

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def latency(self, src: int, dst: int) -> float:
        src_n, dst_n = self.node_of(src), self.node_of(dst)
        if src_n == dst_n:
            return self.machine.intra_node_latency
        # Per-hop share of the end-to-end budget; 4 hops is the common case.
        per_hop = self.machine.nic_latency / 4.0
        lat = self.topology.latency(src_n, dst_n, per_hop, base=self.machine.nic_latency)
        if self._extra_latency:
            lat += self._extra_latency.get(src_n, 0.0) + self._extra_latency.get(dst_n, 0.0)
        return lat

    # -- fault injection -----------------------------------------------------------

    def degrade_node(
        self, node: int, *, bandwidth_factor: float = 1.0, extra_latency: float = 0.0
    ) -> None:
        """Degrade one node's links: cut NIC bandwidth and/or add latency.

        Models a flaky link or failing switch port next to ``node``.  Only
        future transfers are affected; already-committed ones complete at
        their original times, so injection at time *t* is deterministic.
        """
        if node not in self._nic:
            raise ConfigError(f"node {node} hosts no ranks in this job")
        if bandwidth_factor <= 0:
            raise ConfigError(f"bandwidth_factor must be > 0, got {bandwidth_factor}")
        if extra_latency < 0:
            raise ConfigError(f"extra_latency must be >= 0, got {extra_latency}")
        out_pipe, in_pipe = self._nic[node]
        if bandwidth_factor != 1.0:
            out_pipe.scale_bandwidth(bandwidth_factor)
            in_pipe.scale_bandwidth(bandwidth_factor)
        if extra_latency > 0:
            self._extra_latency[node] = self._extra_latency.get(node, 0.0) + extra_latency
        self.degraded_nodes += 1

    # -- data movement -----------------------------------------------------------

    def transfer(self, src: int, dst: int, nbytes: int) -> SimEvent:
        """Event firing when ``nbytes`` from ``src`` has arrived at ``dst``.

        Pipes are deterministic FIFO channels, so the completion instant is
        known at commit time: one timeout covers egress + ingress + latency.
        """
        if nbytes < 0:
            raise ConfigError(f"negative transfer: {nbytes}")
        src_n, dst_n = self.node_of(src), self.node_of(dst)
        lat = self.latency(src, dst)
        if src_n == dst_n:
            self.bytes_intranode += nbytes
            done = self._mem[src_n].commit(nbytes)
        else:
            self.bytes_internode += nbytes
            out_pipe, _ = self._nic[src_n]
            _, in_pipe = self._nic[dst_n]
            done = max(out_pipe.commit(nbytes), in_pipe.commit(nbytes))
            if self.topology.leaf_of(src_n) != self.topology.leaf_of(dst_n):
                # Leaf-local traffic never touches the core layer; only
                # cross-leaf flows share the bisection capacity.
                self.bytes_crossleaf += nbytes
                done = max(done, self._bisection.commit(nbytes))
        return self.kernel.timeout(done + lat - self.kernel.now)

    def injection_eta(self, src: int, nbytes: int) -> float:
        """When the source NIC would finish injecting ``nbytes`` issued now."""
        out_pipe, _ = self._nic[self.node_of(src)]
        return out_pipe.eta(nbytes)

    def nic_utilization(self) -> dict[int, tuple[float, float]]:
        """Per-node (egress, ingress) utilization fractions so far."""
        return {
            node: (pout.utilization(), pin.utilization())
            for node, (pout, pin) in self._nic.items()
        }


