#!/usr/bin/env python
"""Standalone parallel blackboard: the data-centric task engine by itself.

The analysis engine of the paper (Sections II-B / III-B) is a reusable
component: data entries trigger knowledge sources through a sensitivity
table, jobs flow through an array of locked FIFOs, and a pool of worker
threads drains them with back-off.  This example builds the exact data-flow
of paper Figure 4 — event packs -> unpacker -> {MPI profiler, topological
analysis} -> reduced summaries — over real packed bytes, with real threads.

Run:  python examples/blackboard_standalone.py
"""

import threading

from repro.blackboard import Blackboard, ThreadPool
from repro.instrument.events import CALL_IDS, CALL_NAMES
from repro.instrument.packer import EventPackBuilder, decode_pack
from repro.mpi.pmpi import CallRecord
from repro.util.rng import derive_rng


def synthesize_packs(nranks: int = 32, events_per_rank: int = 400) -> list[bytes]:
    """Fake instrumented ranks emitting realistic event packs."""
    rng = derive_rng(123, "standalone")
    packs = []
    for rank in range(nranks):
        builder = EventPackBuilder(app_id=0, rank=rank, capacity_bytes=16 * 1024)
        t = 0.0
        for _ in range(events_per_rank):
            call = rng.choice(("MPI_Send", "MPI_Irecv", "MPI_Waitall", "MPI_Allreduce"))
            dur = rng.uniform(1e-6, 5e-4)
            builder.add(
                CallRecord(
                    name=call,
                    t_start=t,
                    t_end=t + dur,
                    comm_id=0,
                    comm_rank=rank,
                    comm_size=nranks,
                    peer=(rank + rng.choice((1, -1))) % nranks,
                    tag=0,
                    nbytes=rng.randrange(64, 64 * 1024),
                )
            )
            t += dur * 3
            if builder.full:
                packs.append(builder.emit())
        if builder.count:
            packs.append(builder.emit())
    return packs


def main() -> None:
    board = Blackboard(nqueues=8, seed=1)
    t_pack = board.register_type("event_pack")
    t_events = board.register_type("mpi_events")

    lock = threading.Lock()
    profile: dict[str, list[float]] = {}
    matrix: dict[tuple[int, int], int] = {}

    def ks_unpacker(b, entries):
        for entry in entries:
            header, events = decode_pack(entry.payload)
            b.submit(t_events, (header.rank, events), size=events.nbytes)

    def ks_profiler(b, entries):
        for entry in entries:
            _rank, events = entry.payload
            with lock:
                for call_id in set(events["call"].tolist()):
                    name = CALL_NAMES[call_id]
                    mask = events["call"] == call_id
                    slot = profile.setdefault(name, [0, 0.0])
                    slot[0] += int(mask.sum())
                    slot[1] += float((events["t_end"] - events["t_start"])[mask].sum())

    def ks_topology(b, entries):
        send_id = CALL_IDS["MPI_Send"]
        for entry in entries:
            rank, events = entry.payload
            with lock:
                for peer in events["peer"][events["call"] == send_id].tolist():
                    matrix[(rank, peer)] = matrix.get((rank, peer), 0) + 1

    board.register_ks("KS_Unpacker", [t_pack], ks_unpacker)
    board.register_ks("KS_MPIProfiler", [t_events], ks_profiler)
    board.register_ks("KS_Topology", [t_events], ks_topology)

    packs = synthesize_packs()
    print(f"feeding {len(packs)} event packs to 4 worker threads...")
    with ThreadPool(board, nworkers=4, seed=3) as pool:
        for pack in packs:
            board.submit_named("event_pack", pack)

    stats = board.stats()
    print(f"jobs executed: {stats['jobs_executed']}; "
          f"peak blackboard storage: {stats['bytes_peak']} bytes; "
          f"per-worker jobs: {pool.jobs_per_worker}")
    print()
    print("call            hits      total time (s)")
    for name, (hits, total) in sorted(profile.items(), key=lambda kv: -kv[1][1]):
        print(f"{name:<15s} {hits:>6d}      {total:.4f}")
    print()
    print(f"communication matrix: {len(matrix)} pairs, "
          f"{sum(matrix.values())} point-to-point messages")


if __name__ == "__main__":
    main()
