"""Cross-module integration: full coupling runs, overhead behaviour,
determinism, failure injection."""

import pytest

from repro.analysis import AnalysisConfig
from repro.apps import EulerMHD
from repro.apps.nas import CG, LU, SP
from repro.bench.harness import measure_overhead, readers_for
from repro.core.session import CouplingSession
from repro.instrument import InstrumentationCost
from repro.network.machine import small_test_machine

MACHINE = small_test_machine(nodes=256, cores_per_node=4)


class TestFullPipeline:
    def test_profile_matches_ground_truth_counts(self):
        """Analyzer-side counts equal instrumentation-side counts."""
        session = CouplingSession(machine=MACHINE, seed=7)
        kernel = SP(16, "C", iterations=2)
        name = session.add_application(kernel)
        session.set_analyzer(ratio=1.0)
        result = session.run()
        profile = result.report.chapter(name).profile
        assert profile.events_total == result.app(name).events
        # SP does 6*sqrt(P) sends per rank per iteration.
        import math
        q = math.isqrt(16)
        expected_sends = 16 * 2 * 6 * q
        send_rows = {r[0]: r for r in profile.rows()}
        assert send_rows["MPI_Isend"][1] == expected_sends
        assert send_rows["MPI_Irecv"][1] == expected_sends
        assert send_rows["MPI_Waitall"][1] == expected_sends  # one per exchange
        assert send_rows["MPI_Allreduce"][1] == 16 * 2

    def test_topology_volume_matches_matrix(self):
        session = CouplingSession(machine=MACHINE, seed=7)
        kernel = LU(16, "C", iterations=1)
        name = session.add_application(kernel)
        session.set_analyzer(ratio=1.0)
        result = session.run()
        topo = result.report.chapter(name).topology
        profile = result.report.chapter(name).profile
        send_bytes = next(r[6] for r in profile.rows() if r[0] == "MPI_Send")
        assert topo.totals()[1] == pytest.approx(send_bytes)

    def test_determinism_same_seed(self):
        def run():
            session = CouplingSession(machine=MACHINE, seed=13)
            name = session.add_application(CG(16, "C", iterations=3))
            session.set_analyzer(ratio=2.0)
            result = session.run()
            return (
                result.app(name).walltime,
                result.app(name).events,
                result.analyzer_walltime,
            )

        assert run() == run()

    def test_walltimes_scale_with_iterations(self):
        t = {}
        for iters in (2, 8):
            session = CouplingSession(machine=MACHINE, seed=1)
            name = session.add_application(SP(16, "C", iterations=iters))
            session.set_analyzer(ratio=1.0)
            t[iters] = session.run().app(name).walltime
        assert t[8] > 3.0 * t[2]


class TestOverheadBehaviour:
    def test_overhead_positive_and_bounded(self):
        point = measure_overhead(SP(16, "C", iterations=3), MACHINE, ratio=1.0)
        assert 0.0 <= point.overhead_pct < 30.0

    def test_higher_bi_higher_overhead(self):
        """Class C (higher event rate) costs more than class D — Fig. 15."""
        c = measure_overhead(SP(16, "C", iterations=3), MACHINE, ratio=1.0)
        d = measure_overhead(SP(16, "D", iterations=3), MACHINE, ratio=1.0)
        assert c.bi_bandwidth > d.bi_bandwidth
        assert c.overhead_pct > d.overhead_pct

    def test_undersized_analyzer_increases_overhead(self):
        """Backpressure: a starved analyzer slows the application.

        Small stream blocks force flushes *during* the run; an expensive
        analysis on a single analyzer rank then throttles 16 producers.
        """
        from repro.mpi.costmodel import CostModel

        instr = InstrumentationCost(block_size=4096, na_buffers=1)
        expensive = AnalysisConfig(per_byte_cpu=5e-5, per_pack_cpu=1e-4, na_buffers=1)
        # Blocks must use the rendezvous path (as the paper's 1 MB blocks
        # do) for reader speed to throttle writers.
        rendezvous = CostModel(eager_threshold=2048)
        kwargs = dict(instrumentation=instr, analysis=expensive, mpi_cost=rendezvous)
        fat = measure_overhead(SP(16, "C", iterations=8), MACHINE, ratio=1.0, **kwargs)
        starved = measure_overhead(
            SP(16, "C", iterations=8), MACHINE, ratio=16.0, **kwargs
        )
        assert fat.overhead_pct < 5.0
        assert starved.overhead_pct > 100.0  # writers throttled to reader pace

    def test_reader_floor_of_one(self):
        point = measure_overhead(CG(8, "C", iterations=2), MACHINE, ratio=64.0)
        assert point.events > 0  # ran with a single analyzer rank

    def test_readers_for_formula(self):
        assert readers_for(2560, 1) == 2560
        assert readers_for(2560, 64) == 40
        assert readers_for(4, 64) == 1
        with pytest.raises(ValueError):
            readers_for(0, 1)


class TestMultiApplication:
    def test_three_concurrent_apps(self):
        session = CouplingSession(machine=MACHINE, seed=5)
        session.add_application(CG(8, "C", iterations=3))
        session.add_application(SP(9, "C", iterations=2))
        session.add_application(EulerMHD(8, grid=512, iterations=3))
        session.set_analyzer(nprocs=8)
        result = session.run()
        assert len(result.report.chapters) == 3
        for chapter in result.report.chapters:
            assert chapter.profile.events_total > 0

    def test_apps_with_same_kernel_need_distinct_names(self):
        session = CouplingSession(machine=MACHINE)
        session.add_application(CG(8, "C"), name="cg-one")
        session.add_application(CG(8, "C"), name="cg-two")
        session.set_analyzer(nprocs=4)
        result = session.run()
        assert "cg-one" in result.report and "cg-two" in result.report


class TestFailureInjection:
    def test_collective_mismatch_inside_app_surfaces(self):
        class BrokenApp(CG):
            def main(self, mpi):
                yield from mpi.init()
                comm = mpi.comm_world
                if comm.rank == 0:
                    yield from comm.barrier()
                else:
                    yield from comm.allreduce(nbytes=8)
                yield from mpi.finalize()

        session = CouplingSession(machine=MACHINE)
        session.add_application(BrokenApp(4, "C"), name="broken")
        session.set_analyzer(nprocs=2)
        with pytest.raises(Exception, match="collective mismatch"):
            session.run()

    def test_corrupt_pack_detected_by_analyzer(self):
        """A corrupted event pack fails loudly, not silently."""
        from repro.blackboard.multilevel import MultiLevelBlackboard
        from repro.errors import PackFormatError, ReproError

        ml = MultiLevelBlackboard(levels=["app"])
        ml.register_ks("sink", [("event_pack", "app")], lambda b, e: None)
        with pytest.raises((PackFormatError, ReproError)):
            ml.submit_pack(b"garbage-bytes-not-a-pack")
            ml.board.run_until_idle()

    def test_app_crash_propagates(self):
        class CrashingApp(CG):
            def main(self, mpi):
                yield from mpi.init()
                if mpi.rank == 1:
                    raise RuntimeError("segfault simulation")
                yield from mpi.comm_world.barrier()
                yield from mpi.finalize()

        session = CouplingSession(machine=MACHINE)
        session.add_application(CrashingApp(4, "C"), name="crash")
        session.set_analyzer(nprocs=2)
        with pytest.raises(Exception):
            session.run()


class TestAnalyzerEconomy:
    def test_analyzer_finishes_briefly_after_apps(self):
        """Paper: reports available 'briefly after execution ends'."""
        session = CouplingSession(machine=MACHINE, seed=2)
        name = session.add_application(SP(16, "C", iterations=3))
        session.set_analyzer(ratio=4.0)
        result = session.run()
        lag = result.analyzer_walltime - result.app(name).walltime
        assert lag >= 0
        assert lag < 0.5 * result.app(name).walltime

    def test_blackboard_storage_freed(self):
        session = CouplingSession(machine=MACHINE, seed=2)
        session.add_application(CG(8, "C", iterations=3))
        session.set_analyzer(ratio=1.0)
        result = session.run()
        board_stats = result.analyzer_stats["board"]
        assert board_stats["bytes_current"] == 0
        assert board_stats["bytes_peak"] > 0
