"""Differential test: the zero-copy frame parser vs. a frozen legacy copy.

The hot-path refactor replaced the copying EVF2 parser with a
memoryview-based zero-copy one.  This module pins the new parser to a
*frozen, verbatim* copy of the pre-refactor implementation: both are run
over a seeded fuzz corpus of valid, truncated and corrupted frames, and
must agree byte-for-byte on every parsed section and raise the exact same
typed error (`FrameTruncatedError` / `SectionLengthError` /
`ChecksumError` / `PackFormatError`) on every malformed input.

The frozen parser below is deliberately self-contained (own struct
formats, no imports from `repro.codec.frame` beyond the error types and
constants that define the wire format) so a regression in the live module
cannot mask itself here.
"""

from __future__ import annotations

import random
import struct
import zlib

import pytest

from repro.codec.frame import (
    CRC_BODY_SIZE,
    FRAME_HEADER_SIZE,
    PROVENANCE_BODY_SIZE,
    SAMPLING_BODY_SIZE,
    SEC_CODEC,
    SEC_CRC,
    SEC_PAYLOAD,
    SEC_PROVENANCE,
    SEC_SAMPLING,
    SECTION_HEADER_SIZE,
    parse_frame,
    peek_provenance,
)
from repro.errors import (
    ChecksumError,
    FrameTruncatedError,
    PackFormatError,
    SectionLengthError,
)

pytestmark = pytest.mark.codec


# -- frozen legacy parser (pre-refactor copy; do not "fix") -------------------

_MAGIC = 0x45564632  # "EVF2"
_VERSION = 2
_HEADER_FMT = "<IHHIIHH"
_SECTION_FMT = "<HHI"
_CRC_FMT = "<I"


class _LegacyFrame:
    def __init__(self, app_id, rank, count, flags):
        self.app_id = app_id
        self.rank = rank
        self.count = count
        self.flags = flags
        self.sections = []
        self.offsets = []
        self.stored_crc = None
        self.crc_ok = None


def _section_name(kind: int) -> str:
    names = {1: "PAYLOAD", 2: "CRC", 3: "PROVENANCE", 4: "CODEC", 5: "SAMPLING"}
    return names.get(kind, f"UNKNOWN({kind})")


def legacy_parse_frame(blob, verify: bool = True) -> _LegacyFrame:
    """Verbatim copy of the copying parser this PR replaced (probes removed)."""
    try:
        view = memoryview(blob)
    except TypeError:
        raise PackFormatError(f"pack payload is not bytes: {type(blob).__name__}")
    total = len(view)
    if total < FRAME_HEADER_SIZE:
        raise FrameTruncatedError(
            f"frame of {total} bytes shorter than {FRAME_HEADER_SIZE}-byte header"
        )
    magic, version, app_id, rank, count, nsections, flags = struct.unpack_from(
        _HEADER_FMT, view, 0
    )
    if magic != _MAGIC:
        raise PackFormatError(f"bad pack magic {magic:#010x}")
    if version != _VERSION:
        raise PackFormatError(f"unsupported pack version {version}")
    frame = _LegacyFrame(app_id, rank, count, flags)
    offset = FRAME_HEADER_SIZE
    crc_covered_end = None
    for _ in range(nsections):
        if offset + SECTION_HEADER_SIZE > total:
            raise FrameTruncatedError(
                f"frame ended at byte {total} inside a section header at {offset}"
            )
        stype, _reserved, length = struct.unpack_from(_SECTION_FMT, view, offset)
        body_start = offset + SECTION_HEADER_SIZE
        if body_start + length > total:
            raise FrameTruncatedError(
                f"section {_section_name(stype)} declares {length} bytes at offset "
                f"{body_start} but frame has {total}"
            )
        body = bytes(view[body_start : body_start + length])
        if stype == SEC_CRC:
            if length != CRC_BODY_SIZE:
                raise SectionLengthError(
                    f"CRC section of {length} bytes, expected {CRC_BODY_SIZE}"
                )
            if crc_covered_end is None:
                crc_covered_end = offset
                frame.stored_crc = struct.unpack(_CRC_FMT, body)[0]
        else:
            if stype == SEC_PROVENANCE and length != PROVENANCE_BODY_SIZE:
                raise SectionLengthError(
                    f"provenance section of {length} bytes, "
                    f"expected {PROVENANCE_BODY_SIZE}"
                )
            if stype == SEC_SAMPLING and length != SAMPLING_BODY_SIZE:
                raise SectionLengthError(
                    f"sampling section of {length} bytes, expected {SAMPLING_BODY_SIZE}"
                )
            frame.sections.append((stype, body))
            frame.offsets.append(body_start)
        offset = body_start + length
    if offset != total:
        raise SectionLengthError(
            f"{total - offset} trailing bytes after the {nsections} declared sections"
        )
    if crc_covered_end is not None:
        frame.crc_ok = zlib.crc32(view[:crc_covered_end]) == frame.stored_crc
    if verify:
        if frame.stored_crc is None:
            raise ChecksumError("frame has no CRC section")
        if not frame.crc_ok:
            computed = zlib.crc32(view[:crc_covered_end])
            raise ChecksumError(
                f"pack checksum mismatch: stored {frame.stored_crc:#010x}, "
                f"computed {computed:#010x}"
            )
    return frame


# -- fuzz corpus ---------------------------------------------------------------


def _raw_frame(rng: random.Random) -> bytes:
    """Build a structurally random frame straight from struct.pack."""
    sections: list[tuple[int, bytes]] = []
    sections.append((SEC_PAYLOAD, rng.randbytes(rng.randrange(0, 200))))
    if rng.random() < 0.5:
        sections.append((SEC_CODEC, rng.choice([b"", b"delta+dict", b"zlib"])))
    if rng.random() < 0.5:
        sections.append((SEC_SAMPLING, struct.pack("<I", rng.randrange(0, 1 << 16))))
    if rng.random() < 0.5:
        sections.append(
            (
                SEC_PROVENANCE,
                struct.pack(
                    "<QHId",
                    rng.randrange(0, 1 << 64),
                    rng.randrange(0, 1 << 16),
                    rng.randrange(0, 1 << 32),
                    rng.random() * 100.0,
                ),
            )
        )
    if rng.random() < 0.3:  # unknown forward-compat section
        sections.append((rng.randrange(6, 100), rng.randbytes(rng.randrange(0, 40))))
    rng.shuffle(sections)
    add_crc = rng.random() < 0.9
    header = struct.pack(
        _HEADER_FMT,
        _MAGIC,
        _VERSION,
        rng.randrange(0, 1 << 16),
        rng.randrange(0, 1 << 32),
        rng.randrange(0, 1 << 16),
        len(sections) + (1 if add_crc else 0),
        rng.randrange(0, 4),
    )
    parts = [header]
    for stype, body in sections:
        parts.append(struct.pack(_SECTION_FMT, stype, 0, len(body)))
        parts.append(body)
    covered = b"".join(parts)
    if not add_crc:
        return covered
    crc = zlib.crc32(covered)
    return (
        covered
        + struct.pack(_SECTION_FMT, SEC_CRC, 0, CRC_BODY_SIZE)
        + struct.pack(_CRC_FMT, crc)
    )


def _mutate(blob: bytes, rng: random.Random) -> bytes:
    """Damage a frame in one of the ways the parser must type precisely."""
    kind = rng.randrange(6)
    if not blob:
        return blob
    if kind == 0:  # truncate anywhere
        return blob[: rng.randrange(0, len(blob))]
    if kind == 1:  # flip one byte anywhere (header, lengths, body, crc)
        out = bytearray(blob)
        out[rng.randrange(len(out))] ^= 0xFF
        return bytes(out)
    if kind == 2:  # trailing junk
        return blob + rng.randbytes(rng.randrange(1, 8))
    if kind == 3:  # lie about nsections
        out = bytearray(blob)
        struct.pack_into("<H", out, 16, rng.randrange(0, 8))
        return bytes(out)
    if kind == 4:  # corrupt a section length field
        if len(blob) >= FRAME_HEADER_SIZE + SECTION_HEADER_SIZE:
            out = bytearray(blob)
            struct.pack_into(
                "<I", out, FRAME_HEADER_SIZE + 4, rng.randrange(0, 1 << 20)
            )
            return bytes(out)
        return blob
    return rng.randbytes(rng.randrange(0, 64))  # pure garbage


def _corpus(n: int = 400) -> list[bytes]:
    rng = random.Random(0xEBF2)
    blobs: list[bytes] = [b"", b"EVF2", b"\x00" * FRAME_HEADER_SIZE]
    for _ in range(n):
        blob = _raw_frame(rng)
        blobs.append(blob)
        blobs.append(_mutate(blob, rng))
    return blobs


# -- the differential assertions ----------------------------------------------


def _outcome(parser, blob, verify):
    try:
        return ("ok", parser(blob, verify=verify))
    except (PackFormatError,) as exc:
        return ("err", type(exc), str(exc))


@pytest.mark.parametrize("verify", [True, False])
def test_new_parser_matches_frozen_legacy(verify):
    agreed_ok = agreed_err = 0
    for blob in _corpus():
        legacy = _outcome(legacy_parse_frame, blob, verify)
        current = _outcome(parse_frame, blob, verify)
        if legacy[0] == "err":
            # identical typed error, identical message
            assert current[0] == "err", (blob.hex(), legacy)
            assert current[1] is legacy[1], (blob.hex(), legacy, current)
            assert current[2] == legacy[2], (blob.hex(), legacy, current)
            agreed_err += 1
            continue
        assert current[0] == "ok", (blob.hex(), current)
        old, new = legacy[1], current[1]
        assert (new.app_id, new.rank, new.count, new.flags) == (
            old.app_id,
            old.rank,
            old.count,
            old.flags,
        )
        assert new.stored_crc == old.stored_crc
        assert new.crc_ok == old.crc_ok
        assert new.offsets == old.offsets
        assert len(new.sections) == len(old.sections)
        for (nt, nb), (ot, ob) in zip(new.sections, old.sections):
            assert nt == ot
            # byte-identical bodies, whatever buffer type the new parser uses
            assert bytes(nb) == ob, (blob.hex(), nt)
        agreed_ok += 1
    assert agreed_ok > 100  # the corpus must actually exercise the happy path
    assert agreed_err > 100  # ... and the error paths


def test_peek_provenance_matches_legacy_semantics():
    for blob in _corpus(200):
        try:
            frame = legacy_parse_frame(blob, verify=False)
        except PackFormatError:
            expected = None
        else:
            body = next(
                (b for t, b in frame.sections if t == SEC_PROVENANCE), None
            )
            if body is None:
                expected = None
            else:
                flow_id, app_id, rank, t_seal = struct.unpack("<QHId", body)
                expected = (flow_id, app_id, rank, t_seal)
        got = peek_provenance(blob)
        if expected is None:
            assert got is None, blob.hex()
        else:
            assert got is not None, blob.hex()
            assert (got.flow_id, got.app_id, got.rank, got.t_seal) == expected


def test_roundtrip_reemit_is_byte_identical():
    rng = random.Random(7)
    for _ in range(50):
        blob = _raw_frame(rng)
        try:
            frame = parse_frame(blob)
        except PackFormatError:
            continue
        assert frame.to_bytes() == blob
