"""Kernel event-loop semantics."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.simt import Kernel


def test_time_starts_at_zero(kernel):
    assert kernel.now == 0.0


def test_timeout_advances_time(kernel):
    done = []

    def proc(k):
        yield k.timeout(2.5)
        done.append(k.now)

    kernel.spawn(proc(kernel), name="p")
    kernel.run()
    assert done == [2.5]
    assert kernel.now == 2.5


def test_zero_timeout_fires_same_instant(kernel):
    def proc(k):
        yield k.timeout(0.0)
        return k.now

    p = kernel.spawn(proc(kernel))
    kernel.run()
    assert p.value == 0.0


def test_negative_timeout_rejected(kernel):
    with pytest.raises(SimulationError):
        kernel.timeout(-1.0)


def test_events_fire_in_timestamp_order(kernel):
    order = []

    def proc(k, name, delay):
        yield k.timeout(delay)
        order.append(name)

    kernel.spawn(proc(kernel, "c", 3.0))
    kernel.spawn(proc(kernel, "a", 1.0))
    kernel.spawn(proc(kernel, "b", 2.0))
    kernel.run()
    assert order == ["a", "b", "c"]


def test_ties_break_by_schedule_order(kernel):
    order = []

    def proc(k, name):
        yield k.timeout(1.0)
        order.append(name)

    for name in ("first", "second", "third"):
        kernel.spawn(proc(kernel, name))
    kernel.run()
    assert order == ["first", "second", "third"]


def test_run_until_deadline_stops_exactly(kernel):
    fired = []

    def proc(k):
        for _ in range(10):
            yield k.timeout(1.0)
            fired.append(k.now)

    kernel.spawn(proc(kernel))
    kernel.run(until=4.5)
    assert fired == [1.0, 2.0, 3.0, 4.0]
    assert kernel.now == 4.5


def test_run_until_event_returns_value(kernel):
    def child(k):
        yield k.timeout(1.0)
        return 42

    p = kernel.spawn(child(kernel))
    assert kernel.run(until=p) == 42


def test_run_until_past_deadline_rejected(kernel):
    kernel.spawn(iter([]) and _noop(kernel))
    kernel.run()
    with pytest.raises(SimulationError):
        kernel.run(until=kernel.now - 1.0)


def _noop(k):
    yield k.timeout(0.0)


def test_deadlock_detection_names_blocked_process(kernel):
    def stuck(k):
        yield k.event()

    kernel.spawn(stuck(kernel), name="stucky")
    with pytest.raises(DeadlockError) as excinfo:
        kernel.run()
    assert "stucky" in str(excinfo.value)


def test_unhandled_crash_surfaces(kernel):
    def boom(k):
        yield k.timeout(1.0)
        raise ValueError("broken")

    kernel.spawn(boom(kernel), name="boom")
    with pytest.raises(SimulationError, match="boom"):
        kernel.run()


def test_joined_crash_propagates_to_joiner(kernel):
    caught = []

    def boom(k):
        yield k.timeout(1.0)
        raise ValueError("inner")

    def joiner(k):
        child = k.spawn(boom(k), name="boom")
        try:
            yield child
        except ValueError as exc:
            caught.append(str(exc))

    kernel.spawn(joiner(kernel), name="joiner")
    kernel.run()
    assert caught == ["inner"]


def test_events_dispatched_counter(kernel):
    def proc(k):
        yield k.timeout(1.0)
        yield k.timeout(1.0)

    kernel.spawn(proc(kernel))
    kernel.run()
    assert kernel.events_dispatched >= 2


def test_step_on_empty_schedule_raises(kernel):
    with pytest.raises(SimulationError):
        kernel.step()


def test_many_processes_complete(kernel):
    results = []

    def proc(k, i):
        yield k.timeout(i * 0.001)
        results.append(i)

    for i in range(200):
        kernel.spawn(proc(kernel, i))
    kernel.run()
    assert results == list(range(200))
