"""The reduction pipeline end to end: session wiring, bit-identity,
wire-volume guarantees, fault interplay, diagnostics."""

import pytest

from repro.apps.nas import SP
from repro.analysis.engine import AnalysisConfig
from repro.core.session import CouplingSession
from repro.errors import ConfigError
from repro.faults import make_plan
from repro.instrument.overhead import InstrumentationCost
from repro.packdump import dump
from repro.telemetry import Telemetry

pytestmark = pytest.mark.codec


def _session(reduction=None, seed=7, analysis=None, telemetry=None):
    session = CouplingSession(
        seed=seed,
        instrumentation=InstrumentationCost(block_size=4096, na_buffers=2),
        analysis=analysis,
        telemetry=telemetry,
    )
    name = session.add_application(SP(16, "C", iterations=3), name="sp")
    session.set_analyzer(nprocs=4)
    if reduction is not None:
        session.set_reduction(reduction)
    return session, name


# -- configuration surface ---------------------------------------------------------


def test_set_reduction_normalizes_and_validates():
    session, _ = _session()
    assert session.set_reduction(["delta", "dict", "zlib"]) == "delta+dict+zlib"
    assert session.instrumentation.reduction == "delta+dict+zlib"
    assert session.set_reduction(None) == ""
    with pytest.raises(ConfigError):
        session.set_reduction("delta+nope")
    with pytest.raises(ConfigError):
        session.set_reduction("zlib+delta")  # phase order


def test_instrumentation_cost_validates_reduction():
    with pytest.raises(ConfigError):
        InstrumentationCost(reduction="bogus-stage")
    with pytest.raises(ConfigError):
        InstrumentationCost(codec_per_byte_cpu=-1.0)


# -- bit-identity of the identity chain --------------------------------------------


def test_identity_chain_is_bit_identical():
    """set_reduction("") leaves every simulated figure untouched."""
    plain, name = _session()
    base = plain.run()
    ident, _ = _session(reduction="")
    res = ident.run()
    assert base.app(name).walltime == res.app(name).walltime
    assert base.analyzer_walltime == res.analyzer_walltime
    assert base.analyzer_stats["bytes"] == res.analyzer_stats["bytes"]
    assert base.analyzer_stats["board"] == res.analyzer_stats["board"]
    assert res.reduction is None and base.reduction is None


def test_reduction_preserves_analysis_results():
    """Lossless chains change wire bytes, never the analyzed events."""
    plain, name = _session()
    base = plain.run()
    red, _ = _session(reduction="delta+dict+zlib")
    res = red.run()
    assert res.analyzer_stats["packs_rejected"] == 0
    assert res.app(name).events == base.app(name).events
    base_profile = base.report.chapter(name).profile
    red_profile = res.report.chapter(name).profile
    assert red_profile.events_total == base_profile.events_total
    assert {k: (s.hits, s.nbytes) for k, s in red_profile.calls.items()} == {
        k: (s.hits, s.nbytes) for k, s in base_profile.calls.items()
    }


# -- wire-volume guarantees --------------------------------------------------------


def test_full_chain_halves_wire_volume():
    """ISSUE acceptance: delta+dict+zlib on the fig14-style workload."""
    session, _ = _session(reduction="delta+dict+zlib")
    result = session.run()
    r = result.reduction
    assert r["chain"] == "delta+dict+zlib"
    assert r["bytes_wire"] / r["bytes_content"] <= 0.5
    assert r["ratio"] == r["bytes_wire"] / r["bytes_content"]
    assert r["encode_cpu_s"] > 0 and r["decode_cpu_s"] > 0
    assert r["codecs_seen"] == {"delta+dict+zlib": result.analyzer_stats["packs"]}
    # Analyzer-side wire accounting telescopes with the writer side.
    assert result.analyzer_stats["bytes_wire"] == r["bytes_wire"]


def test_stream_stats_expose_wire_bytes():
    session, _ = _session(reduction="delta+dict+zlib")
    result = session.run()
    stream = result.analyzer_stats["stream"]
    assert stream["bytes_wire_read"] > 0
    assert stream["bytes_wire_read"] < stream["bytes_read"]  # compressed
    assert 0.0 < stream["pack_ratio"] < 1.0
    plain, _ = _session()
    stream = plain.run().analyzer_stats["stream"]
    assert stream["pack_ratio"] > 1.0  # framing overhead, no reduction


def test_report_renders_reduction_section():
    session, _ = _session(reduction="delta+dict+zlib")
    text = session.run().report.render()
    assert "## Reduction" in text
    assert "delta+dict+zlib" in text
    plain, _ = _session()
    assert "## Reduction" not in plain.run().report.render()


# -- interplay with faults and acceptance gates ------------------------------------


def test_corruption_is_rejected_with_chain_active():
    """Tampered reduced packs fail the CRC, not the decoder."""
    healthy, name = _session()
    anchor = healthy.run().app(name).walltime * 0.35
    session, _ = _session(reduction="delta+dict+zlib")
    session.inject_faults(make_plan("corrupt", at=anchor, seed=7))
    result = session.run()
    stats = result.analyzer_stats
    assert stats["packs_rejected"] > 0
    assert stats["rejects_by_cause"] == {
        "ChecksumError": stats["packs_rejected"]
    }


def test_accept_codecs_rejects_foreign_descriptors():
    session, _ = _session(
        reduction="delta+dict+zlib",
        analysis=AnalysisConfig(
            block_size=4096, na_buffers=2, accept_codecs=("delta",)
        ),
    )
    result = session.run()
    stats = result.analyzer_stats
    assert stats["packs"] == 0
    assert stats["packs_rejected"] > 0
    assert stats["rejects_by_cause"] == {
        "UnknownCodecError": stats["packs_rejected"]
    }


def test_accept_codecs_validated_up_front():
    with pytest.raises(ConfigError):
        AnalysisConfig(accept_codecs=("delta", "wat"))


# -- telemetry ---------------------------------------------------------------------


def test_codec_telemetry_histograms():
    telemetry = Telemetry()
    session, _ = _session(reduction="delta+zlib", telemetry=telemetry)
    session.run()
    summary = telemetry.summary()
    names = set()
    for section in summary.values():
        if isinstance(section, dict):
            names.update(section)
    assert any("codec.encode_s" in n for n in names)
    assert any("codec.decode_s" in n for n in names)
    assert any("codec.pack_ratio" in n for n in names)


# -- packdump on real session artefacts --------------------------------------------


def test_packdump_renders_a_real_pack():
    from repro.codec.stages import build_chain
    from repro.instrument.packer import EventPackBuilder
    from repro.mpi.pmpi import CallRecord

    builder = EventPackBuilder(
        app_id=0, rank=5, capacity_bytes=4096, chain=build_chain("delta+dict+zlib")
    )
    for i in range(12):
        builder.add(CallRecord(
            name="MPI_Send", t_start=i * 1e-3, t_end=i * 1e-3 + 1e-6, comm_id=0,
            comm_rank=5, comm_size=16, peer=6, tag=i, nbytes=256,
        ))
    text = dump(builder.emit(now=1.0))
    assert "v2 frame" in text
    assert "codec chain: delta+dict+zlib" in text
    assert "crc32:" in text and "OK" in text
    assert "PAYLOAD" in text and "CODEC" in text
