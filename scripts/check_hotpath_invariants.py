#!/usr/bin/env python
"""Hot-path invariant lint: clock discipline and zero-copy decode paths.

Two structural rules the hot-path refactor relies on, enforced over the
AST so comments and strings never trip them:

1. **Clock discipline** — ``time.perf_counter`` (and its ``_ns``
   variant) may only be referenced inside ``telemetry/hostprof.py``.
   Every other module must go through the hostprof plane, otherwise its
   timings escape the self-overhead accounting that the selfperf gate
   budgets (<5%), and virtual-time code could silently couple to the
   host clock.

2. **Zero-copy decode paths** — the EVF2 decode-path functions in
   ``codec/frame.py`` (``parse_frame``, ``peek_header``,
   ``peek_provenance``, ``frame_content_size``, ``_header_fields``)
   must never call ``bytes(...)``: a ``bytes()`` call on a memoryview
   slice is a hidden copy, which is exactly what the zero-copy parse
   contract (DESIGN 14) forbids.  Encode-side code (``to_bytes``,
   ``build_frame``, ``materialize``) may copy freely.

Exit status 0 when clean; 1 with one ``path:line: message`` per
violation otherwise.  Run from the repository root::

    python scripts/check_hotpath_invariants.py

An optional argument overrides the source root (used by the tests).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: the only module allowed to touch the host clock directly
CLOCK_OWNER = Path("repro") / "telemetry" / "hostprof.py"

#: module holding the zero-copy decode paths
FRAME_MODULE = Path("repro") / "codec" / "frame.py"

#: frame.py functions that must stay copy-free (the decode paths)
DECODE_PATH_FUNCTIONS = frozenset(
    {
        "parse_frame",
        "peek_header",
        "peek_provenance",
        "frame_content_size",
        "_header_fields",
    }
)

#: forbidden host-clock attribute names on the ``time`` module
CLOCK_NAMES = frozenset({"perf_counter", "perf_counter_ns"})


def _check_clock_discipline(tree: ast.AST, rel: Path) -> list[str]:
    """Flag any reachable reference to time.perf_counter outside hostprof."""
    problems = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and node.attr in CLOCK_NAMES
            and isinstance(node.value, ast.Name)
            and node.value.id == "time"
        ):
            problems.append(
                f"{rel}:{node.lineno}: time.{node.attr} outside "
                f"{CLOCK_OWNER} — route host timings through the "
                "hostprof plane"
            )
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in CLOCK_NAMES:
                    problems.append(
                        f"{rel}:{node.lineno}: from time import "
                        f"{alias.name} outside {CLOCK_OWNER} — route "
                        "host timings through the hostprof plane"
                    )
    return problems


def _check_decode_paths(tree: ast.AST, rel: Path) -> list[str]:
    """Flag bytes(...) calls inside frame.py's decode-path functions."""
    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name not in DECODE_PATH_FUNCTIONS:
            continue
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "bytes"
            ):
                problems.append(
                    f"{rel}:{sub.lineno}: bytes() call inside decode-path "
                    f"function {node.name}() — decode must stay zero-copy "
                    "(materialize()/to_bytes() are the sanctioned copies)"
                )
    return problems


def check_tree(src_root: Path) -> list[str]:
    """All invariant violations under ``src_root`` (a ``src/`` directory)."""
    problems = []
    for path in sorted(src_root.rglob("*.py")):
        rel = path.relative_to(src_root)
        tree = ast.parse(path.read_text(), filename=str(path))
        if rel != CLOCK_OWNER:
            problems.extend(_check_clock_discipline(tree, rel))
        if rel == FRAME_MODULE:
            problems.extend(_check_decode_paths(tree, rel))
    return problems


def main(argv: list[str]) -> int:
    src_root = Path(argv[1]) if len(argv) > 1 else Path("src")
    if not src_root.is_dir():
        print(f"source root {src_root} not found", file=sys.stderr)
        return 2
    problems = check_tree(src_root)
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} hot-path invariant violation(s)")
        return 1
    print("hot-path invariants hold (clock discipline, zero-copy decode)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
