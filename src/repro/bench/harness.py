"""Measurement helpers shared by the figure drivers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.analysis.engine import AnalysisConfig
from repro.apps.base import AppKernel
from repro.core.session import CouplingSession
from repro.instrument.overhead import InstrumentationCost
from repro.network.machine import MachineSpec, TERA100
from repro.telemetry import Telemetry


@dataclass(frozen=True)
class OverheadPoint:
    """One (application, scale) overhead measurement."""

    app: str
    nprocs: int
    t_reference: float
    t_instrumented: float
    events: int
    modeled_stream_bytes: int

    @property
    def overhead_pct(self) -> float:
        if self.t_reference <= 0:
            return 0.0
        return (self.t_instrumented - self.t_reference) / self.t_reference * 100.0

    @property
    def bi_bandwidth(self) -> float:
        """Aggregate instrumentation bandwidth over the instrumented run."""
        if self.t_instrumented <= 0:
            return 0.0
        return self.modeled_stream_bytes / self.t_instrumented


def measure_overhead(
    kernel: AppKernel,
    machine: MachineSpec = TERA100,
    *,
    ratio: float = 1.0,
    seed: int = 0,
    instrumentation: InstrumentationCost | None = None,
    analysis: AnalysisConfig | None = None,
    mpi_cost=None,
    telemetry: Telemetry | None = None,
) -> OverheadPoint:
    """Instrumented-vs-reference wall-time between MPI_Init and Finalize."""
    session = CouplingSession(
        machine=machine,
        seed=seed,
        instrumentation=instrumentation,
        analysis=analysis,
        mpi_cost=mpi_cost,
        telemetry=telemetry,
    )
    name = session.add_application(kernel)
    session.set_analyzer(ratio=ratio)
    instrumented = session.run()
    reference = session.run_reference()
    run = instrumented.app(name)
    return OverheadPoint(
        app=name,
        nprocs=kernel.nprocs,
        t_reference=reference.app(name).walltime,
        t_instrumented=run.walltime,
        events=run.events,
        modeled_stream_bytes=run.modeled_stream_bytes,
    )


def sweep(
    configs: Iterable[Any],
    runner: Callable[[Any], Any],
    *,
    progress: Callable[[str], None] | None = None,
) -> list[Any]:
    """Run ``runner`` over configs, optionally reporting progress."""
    results = []
    for config in configs:
        if progress is not None:
            progress(f"running {config}")
        results.append(runner(config))
    return results


#: The paper's reader-count rule (Figure 14 caption):
#: ``Nr = floor(Nw / ratio)`` with a floor of one reading process.
def readers_for(writers: int, ratio: float) -> int:
    if writers < 1 or ratio <= 0:
        raise ValueError("writers must be >= 1 and ratio > 0")
    return max(1, int(writers // ratio))
