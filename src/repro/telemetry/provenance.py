"""Causal flow tracing: end-to-end provenance of event packs.

A *flow* is the life of one event pack, from the moment the instrumentation
seals it on an application rank to the moment the analyzer's blackboard
pipeline has fully consumed it.  Each flow is stamped with virtual-time
timestamps at every hop of the streaming pipeline:

==========  ============================================================
hop stamp   meaning
==========  ============================================================
t_seal      pack sealed by the interceptor's builder (flush begins)
t_enqueue   ``VMPIStream.write`` entered (pack offered to the transport)
t_send      output buffer acquired and copied; send posted
t_arrive    block landed in the reader's receive buffer
t_read      analyzer's ``read`` returned the block to the application
t_dispatch  analyzer loop dispatched the pack toward the blackboard
t_done      blackboard pipeline drained for this pack (all KS ran)
==========  ============================================================

Consecutive stamps define the per-stage latencies (:data:`STAGES`):
``seal`` (flush bookkeeping before the write), ``stall`` (output-buffer
backpressure, including bounded-retry backoff), ``transit`` (network),
``dwell`` (receive-buffer residence until the analyzer consumed it),
``dispatch`` (read return to blackboard hand-off) and ``analyze`` (modelled
analysis CPU plus the inline KS pipeline).  Because the stages telescope,
their per-flow sum equals the end-to-end latency exactly — stage
attributions always account for all of a flow's time.

The :class:`FlowRegistry` is the one context object threaded through
instrument, transport, engine and reporting (``World.flows``).  All stamps
are virtual kernel seconds, so two same-seed runs produce identical flow
records; with no registry attached every call site reduces to a single
``is None`` check and runs are bit-identical to a provenance-free build.

Sampling (``sample_rate``) bounds tracing overhead: the decision is drawn
from a per-writer RNG derived from the experiment seed
(:func:`repro.util.rng.derive_rng`), so the sampled subset is itself
deterministic and disjoint flow-id spaces per writer are preserved.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import ConfigError
from repro.util.rng import derive_rng

#: Stage names, in pipeline order.  Each stage is the latency between two
#: consecutive hop stamps (see the module docstring).
STAGE_SEAL = "seal"
STAGE_STALL = "stall"
STAGE_TRANSIT = "transit"
STAGE_DWELL = "dwell"
STAGE_DISPATCH = "dispatch"
STAGE_ANALYZE = "analyze"

STAGES = (
    STAGE_SEAL,
    STAGE_STALL,
    STAGE_TRANSIT,
    STAGE_DWELL,
    STAGE_DISPATCH,
    STAGE_ANALYZE,
)

#: hop-stamp attribute feeding each stage: stage i = _STAMPS[i+1] - _STAMPS[i]
_STAMPS = (
    "t_seal",
    "t_enqueue",
    "t_send",
    "t_arrive",
    "t_read",
    "t_dispatch",
    "t_done",
)

#: Loss labels a flow can terminate with instead of completing.
DROP_TAMPER = "tamper"  # injected transport fault swallowed the pack
DROP_OVERFLOW = "overflow"  # drop-newest/drop-oldest reclaimed it
DROP_CRASH = "crash"  # every reader endpoint was dead
DROP_REJECT = "reject"  # checksum rejection at the analyzer
DROP_STRANDED = "stranded"  # arrived but never consumed before close

_SEQ_BITS = 24
_RANK_BITS = 24


def make_flow_id(app_id: int, rank: int, seq: int) -> int:
    """Pack (application, writer rank, per-writer sequence) into a u64.

    Writers own disjoint id spaces by construction — interleaved writers
    can never collide, and a flow id alone names its origin.
    """
    return (
        (app_id & 0xFFFF) << (_RANK_BITS + _SEQ_BITS)
        | (rank & (2**_RANK_BITS - 1)) << _SEQ_BITS
        | (seq & (2**_SEQ_BITS - 1))
    )


def split_flow_id(flow_id: int) -> tuple[int, int, int]:
    """Inverse of :func:`make_flow_id`: ``(app_id, rank, seq)``."""
    return (
        flow_id >> (_RANK_BITS + _SEQ_BITS) & 0xFFFF,
        flow_id >> _SEQ_BITS & (2**_RANK_BITS - 1),
        flow_id & (2**_SEQ_BITS - 1),
    )


class FlowRecord:
    """One pack's provenance: origin, hop stamps, and outcome."""

    __slots__ = (
        "flow_id",
        "app_id",
        "origin_rank",
        "origin_global",
        "consumer_global",
        "t_seal",
        "t_enqueue",
        "t_send",
        "t_arrive",
        "t_read",
        "t_dispatch",
        "t_done",
        "retry_delay_s",
        "dropped",
    )

    def __init__(
        self, flow_id: int, app_id: int, origin_rank: int, origin_global: int, t_seal: float
    ):
        self.flow_id = flow_id
        self.app_id = app_id
        self.origin_rank = origin_rank
        self.origin_global = origin_global
        self.consumer_global: int | None = None
        self.t_seal = t_seal
        self.t_enqueue: float | None = None
        self.t_send: float | None = None
        self.t_arrive: float | None = None
        self.t_read: float | None = None
        self.t_dispatch: float | None = None
        self.t_done: float | None = None
        #: portion of the stall stage spent in bounded-retry backoff
        self.retry_delay_s = 0.0
        #: loss label (``DROP_*``) when the flow terminated early
        self.dropped: str | None = None

    @property
    def complete(self) -> bool:
        return self.t_done is not None and self.dropped is None

    @property
    def end_to_end_s(self) -> float | None:
        if self.t_done is None:
            return None
        return self.t_done - self.t_seal

    def stages(self) -> dict[str, float]:
        """Per-stage latencies over the hops this flow actually reached."""
        out: dict[str, float] = {}
        prev = self.t_seal
        for stage, stamp in zip(STAGES, _STAMPS[1:]):
            t = getattr(self, stamp)
            if t is None or prev is None:
                break
            out[stage] = t - prev
            prev = t
        return out

    def last_stamp(self) -> tuple[str, float]:
        """The furthest hop reached: ``(stamp name, time)``."""
        last = ("t_seal", self.t_seal)
        for stamp in _STAMPS[1:]:
            t = getattr(self, stamp)
            if t is not None:
                last = (stamp, t)
        return last

    def as_dict(self) -> dict[str, Any]:
        return {
            "flow_id": self.flow_id,
            "app_id": self.app_id,
            "origin_rank": self.origin_rank,
            "origin_global": self.origin_global,
            "consumer_global": self.consumer_global,
            "stamps": {name: getattr(self, name) for name in _STAMPS},
            "retry_delay_s": self.retry_delay_s,
            "dropped": self.dropped,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self.dropped or ("done" if self.complete else "in-flight")
        return f"<FlowRecord {self.flow_id:#x} {state}>"


class FlowRegistry:
    """The shared flow-tracing context, one per simulated session.

    Hot-path contract: every ``on_*`` stamp is O(1) dict work and tolerates
    unknown flow ids (unsampled packs look like any other payload), so call
    sites never have to distinguish sampled from unsampled traffic.
    """

    def __init__(self, seed: int = 0, sample_rate: float = 1.0):
        if not (0.0 <= sample_rate <= 1.0):
            raise ConfigError(f"flow sample_rate must be in [0, 1], got {sample_rate}")
        self.seed = seed
        self.sample_rate = sample_rate
        self.flows: dict[int, FlowRecord] = {}
        #: packs sealed per writer, sampled or not (the flow-id sequence)
        self.sealed: dict[tuple[int, int], int] = {}
        self._samplers: dict[tuple[int, int], Any] = {}

    # -- producer side -----------------------------------------------------------

    def begin(
        self, app_id: int, rank: int, global_rank: int, t: float
    ) -> FlowRecord | None:
        """Register one sealed pack; None when sampling skipped it.

        The per-writer sequence number advances for *every* sealed pack so
        flow ids stay stable under any sample rate.
        """
        key = (app_id, rank)
        seq = self.sealed.get(key, 0)
        self.sealed[key] = seq + 1
        if self.sample_rate < 1.0:
            sampler = self._samplers.get(key)
            if sampler is None:
                sampler = self._samplers[key] = derive_rng(
                    self.seed, "flow", app_id, rank
                )
            if sampler.random() >= self.sample_rate:
                return None
        record = FlowRecord(
            flow_id=make_flow_id(app_id, rank, seq),
            app_id=app_id,
            origin_rank=rank,
            origin_global=global_rank,
            t_seal=t,
        )
        self.flows[record.flow_id] = record
        return record

    # -- hop stamping ------------------------------------------------------------

    def on_enqueue(self, flow_id: int, t: float) -> None:
        record = self.flows.get(flow_id)
        if record is not None:
            record.t_enqueue = t

    def on_send(self, flow_id: int, t: float, retry_delay_s: float = 0.0) -> None:
        record = self.flows.get(flow_id)
        if record is not None:
            record.t_send = t
            record.retry_delay_s += retry_delay_s

    def on_arrive(self, flow_id: int, t: float) -> None:
        record = self.flows.get(flow_id)
        if record is not None:
            record.t_arrive = t

    def on_read(self, flow_id: int, t: float, consumer_global: int | None = None) -> None:
        record = self.flows.get(flow_id)
        if record is not None:
            record.t_read = t
            if consumer_global is not None:
                record.consumer_global = consumer_global

    def on_dispatch(self, flow_id: int, t: float) -> None:
        record = self.flows.get(flow_id)
        if record is not None:
            record.t_dispatch = t

    def on_done(self, flow_id: int, t: float) -> None:
        record = self.flows.get(flow_id)
        if record is not None:
            record.t_done = t

    def on_drop(self, flow_id: int, reason: str, t: float) -> None:
        """Terminate a flow early (pack lost before full analysis)."""
        record = self.flows.get(flow_id)
        if record is not None and record.dropped is None:
            record.dropped = reason

    # -- views -------------------------------------------------------------------

    def get(self, flow_id: int) -> FlowRecord | None:
        return self.flows.get(flow_id)

    def completed(self) -> list[FlowRecord]:
        return [f for f in self.flows.values() if f.complete]

    def dropped(self) -> list[FlowRecord]:
        return [f for f in self.flows.values() if f.dropped is not None]

    def records(self) -> Iterable[FlowRecord]:
        return self.flows.values()

    def __len__(self) -> int:
        return len(self.flows)

    def summary(self) -> dict[str, Any]:
        """Stage attribution, watermarks and critical path as plain dicts."""
        from repro.telemetry.flow import summarize_flows

        return summarize_flows(self)
