"""Parallel blackboard: the data-centric task engine (paper Sec. II-B, III-B).

Data entries ``{type, size, payload}`` trigger knowledge sources
``{sensitivities, operation}``; a control component matches entries to
sensitivities through a hash table, bundles complete input sets into *jobs*
pushed onto an array of individually-locked FIFOs, and a pool of workers
sweeps the FIFOs from random starting points with exponential back-off.
Payload buffers are ref-counted: writable only while the count is 1, freed
when the last consumer finishes — which is what lets the blackboard double
as the temporary storage medium that frees the VMPI stream buffers.

Two execution modes:

* :class:`~repro.blackboard.workers.ThreadPool` — real ``threading`` workers
  (the paper's Pthread engine) for standalone use;
* inline (:meth:`Blackboard.run_until_idle`) — deterministic single-threaded
  drain, used inside the simulated analyzer where CPU cost is charged to
  simulated time.
"""

from repro.blackboard.entry import DataEntry, TypeRegistry
from repro.blackboard.ks import KnowledgeSource
from repro.blackboard.board import Blackboard
from repro.blackboard.workers import ThreadPool
from repro.blackboard.multilevel import MultiLevelBlackboard

__all__ = [
    "DataEntry",
    "TypeRegistry",
    "KnowledgeSource",
    "Blackboard",
    "ThreadPool",
    "MultiLevelBlackboard",
]
