"""Hot-path kernel semantics: batched dispatch, hook grids, edge cases.

The telemetry-off drain (``_drain_fast``) batches same-timestamp events
and reduces the periodic-hook test to one float compare.  These tests pin
the observable contract both drains must share: hook firing points
relative to batches, ``call_every(first=)`` grid alignment, and the
stale-cache edges around cancellation and empty schedules.
"""

import pytest

from repro.errors import SimulationError
from repro.simt import Kernel
from repro.telemetry import Telemetry


def _instrumented_kernel() -> Kernel:
    return Kernel(telemetry=Telemetry())


def _both_kernels():
    """The two drain implementations under test: fast path and step()."""
    return [Kernel(), _instrumented_kernel()]


def _sleeper(k, log, name, delays):
    def proc(kk):
        for d in delays:
            yield kk.timeout(d)
            log.append((name, kk.now))

    return k.spawn(proc(k), name=name)


# -- hook ordering under batched same-timestamp dispatch ---------------------------


@pytest.mark.parametrize("make_kernel", [Kernel, _instrumented_kernel])
def test_hook_fires_once_before_first_event_of_a_tie_batch(make_kernel):
    k = make_kernel()
    log = []
    for name in ("a", "b", "c"):
        _sleeper(k, log, name, [1.0])
    k.call_every(10.0, lambda now: log.append(("hook", now)), first=1.0)
    k.run()
    assert log == [("hook", 1.0), ("a", 1.0), ("b", 1.0), ("c", 1.0)]


@pytest.mark.parametrize("make_kernel", [Kernel, _instrumented_kernel])
def test_hook_interleaves_between_timestamp_batches(make_kernel):
    k = make_kernel()
    log = []
    _sleeper(k, log, "a", [1.0, 1.0])
    _sleeper(k, log, "b", [1.0, 1.0])
    k.call_every(1.0, lambda now: log.append(("hook", now)))
    k.run()
    assert log == [
        ("hook", 1.0), ("a", 1.0), ("b", 1.0),
        ("hook", 2.0), ("a", 2.0), ("b", 2.0),
    ]


@pytest.mark.parametrize("make_kernel", [Kernel, _instrumented_kernel])
def test_hook_registered_mid_batch_fires_within_the_batch(make_kernel):
    # A callback dispatched at t may register a hook due exactly at t; the
    # per-event due compare must catch it before the batch's next event.
    k = make_kernel()
    log = []

    def registrar(kk):
        yield kk.timeout(1.0)
        log.append(("registrar", kk.now))
        kk.call_every(5.0, lambda now: log.append(("hook", now)), first=kk.now)

    k.spawn(registrar(k), name="registrar")
    _sleeper(k, log, "b", [1.0])
    k.run()
    assert log == [("registrar", 1.0), ("hook", 1.0), ("b", 1.0)]


def test_fast_and_instrumented_drains_agree():
    logs = []
    for k in _both_kernels():
        log = []
        _sleeper(k, log, "a", [0.5, 0.5, 1.0])
        _sleeper(k, log, "b", [1.0, 1.0])
        k.call_every(0.7, lambda now, log=log: log.append(("hook", now)))
        k.run()
        logs.append((log, k.now, k.events_dispatched))
    assert logs[0] == logs[1]


@pytest.mark.parametrize("make_kernel", [Kernel, _instrumented_kernel])
def test_hook_catches_up_across_an_event_gap(make_kernel):
    # Events at 0.5 and 3.5 with a 1.0 hook: the 3.5 dispatch owes three
    # grid points, each fired with the clock reading its exact due time.
    k = make_kernel()
    seen = []
    k.call_every(1.0, lambda now: seen.append((now, k.now)))

    def proc(kk):
        yield kk.timeout(0.5)
        yield kk.timeout(3.0)

    k.spawn(proc(k))
    k.run()
    assert seen == [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]
    assert k.now == 3.5


# -- call_every(first=) grid alignment ----------------------------------------------


def test_first_pins_the_firing_grid_absolutely():
    k = Kernel()
    k.run(until=0.3)  # attach late, off-grid
    fired = []
    k.call_every(2.0, fired.append, first=5.0)

    def ticker(kk):
        while kk.now < 9.8:
            yield kk.timeout(0.5)

    k.spawn(ticker(k))
    k.run()
    assert fired == [5.0, 7.0, 9.0]


def test_first_in_the_past_rejected():
    k = Kernel()
    k.run(until=2.0)
    with pytest.raises(SimulationError, match="in the past"):
        k.call_every(1.0, lambda now: None, first=1.5)


def test_first_exactly_now_fires_on_next_dispatch():
    k = Kernel()
    k.run(until=2.0)
    fired = []
    k.call_every(1.0, fired.append, first=2.0)
    _sleeper(k, [], "a", [0.0])
    k.run()
    assert fired == [2.0]


def test_default_first_is_one_interval_from_attach():
    k = Kernel()
    k.run(until=1.25)
    fired = []
    k.call_every(0.5, fired.append)
    _sleeper(k, [], "a", [1.0])
    k.run()
    assert fired == [1.75, 2.25]


# -- cancellation and empty-schedule edges ------------------------------------------


@pytest.mark.parametrize("make_kernel", [Kernel, _instrumented_kernel])
def test_cancel_every_from_inside_the_hook(make_kernel):
    k = make_kernel()
    fired = []

    def fn(now):
        fired.append(now)
        if len(fired) == 2:
            k.cancel_every(hook)

    hook = k.call_every(1.0, fn)
    _sleeper(k, [], "a", [1.0] * 6)
    k.run()
    assert fired == [1.0, 2.0]
    assert hook.fired == 2


@pytest.mark.parametrize("make_kernel", [Kernel, _instrumented_kernel])
def test_directly_cancelled_hook_leaves_stale_low_cache_harmless(make_kernel):
    # hook.cancel() skips cancel_every()'s cache recompute, leaving
    # _hooks_due stale-LOW: the drain takes the slow branch once, fires
    # nothing, and repairs the cache.  It must never fire the dead hook.
    k = make_kernel()
    fired = []
    hook = k.call_every(1.0, fired.append)
    hook.cancel()
    _sleeper(k, [], "a", [1.0, 1.0, 1.0])
    k.run()
    assert fired == []
    assert k.now == 3.0


def test_hooks_alone_do_not_keep_the_simulation_alive():
    k = Kernel()
    fired = []
    k.call_every(1.0, fired.append)
    k.run()  # empty schedule, no live processes: clean return
    assert fired == []
    assert k.now == 0.0


@pytest.mark.parametrize("make_kernel", [Kernel, _instrumented_kernel])
def test_no_hook_fires_in_the_idle_gap_before_a_deadline(make_kernel):
    k = make_kernel()
    fired = []
    k.call_every(1.0, fired.append)
    _sleeper(k, [], "a", [1.0])
    k.run(until=5.0)
    assert fired == [1.0]
    assert k.now == 5.0


@pytest.mark.parametrize("make_kernel", [Kernel, _instrumented_kernel])
def test_stop_event_leaves_same_timestamp_peers_schedulable(make_kernel):
    # run(until=<event>) stops as soon as the event triggers, even inside
    # a same-timestamp tie; the peers must fire on the next run().
    k = make_kernel()
    log = []
    target = _sleeper(k, log, "target", [1.0])
    _sleeper(k, log, "late", [1.0])
    k.run(until=target)
    assert ("target", 1.0) in log
    k.run()
    assert ("late", 1.0) in log


def test_cache_recomputes_after_cancelling_the_earliest_hook():
    k = Kernel()
    early_fired, late_fired = [], []
    early = k.call_every(1.0, early_fired.append)
    k.call_every(2.5, late_fired.append)
    k.cancel_every(early)
    _sleeper(k, [], "a", [1.0] * 6)
    k.run()
    assert early_fired == []
    assert late_fired == [2.5, 5.0]
