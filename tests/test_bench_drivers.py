"""Benchmark-driver plumbing: validation, result accessors, tiny runs.

The heavy figure regenerations live in benchmarks/; here we exercise the
drivers' result containers and error paths, plus one genuinely tiny
end-to-end stream point so the figure code itself is covered by the unit
suite.
"""

import pytest

from repro.errors import ConfigError
from repro.bench.figures import (
    Fig14Result,
    Fig16Result,
    _stream_point,
    fig14_stream_throughput,
    fig15_overhead,
    fig16_tool_comparison,
    fig17_topology,
    fig18_density,
)
from repro.bench.tables import bi_bandwidth_table, fs_comparison_table, trace_size_table
from repro.core.comparison import ToolRunResult
from repro.network.machine import small_test_machine
from repro.util.units import MIB


class TestScaleValidation:
    @pytest.mark.parametrize(
        "driver",
        [
            fig14_stream_throughput,
            fig15_overhead,
            fig16_tool_comparison,
            fig17_topology,
            fig18_density,
            bi_bandwidth_table,
            trace_size_table,
            fs_comparison_table,
        ],
    )
    def test_unknown_scale_rejected(self, driver):
        with pytest.raises(ConfigError):
            driver(scale="galactic")


class TestStreamPoint:
    def test_tiny_point_end_to_end(self):
        machine = small_test_machine(nodes=64, cores_per_node=4)
        point = _stream_point(
            machine, writers=8, ratio=4, bytes_per_writer=4 * MIB,
            block_size=MIB, seed=0,
        )
        assert point["readers"] == 2
        assert point["bytes"] == 8 * 4 * MIB
        assert point["throughput"] > 0
        assert point["fs_scaled"] == machine.fs_job_bandwidth(8)

    def test_reader_floor(self):
        machine = small_test_machine(nodes=64, cores_per_node=4)
        point = _stream_point(machine, 2, 64, 1 * MIB, MIB, 0)
        assert point["readers"] == 1


class TestResultContainers:
    def test_fig14_result_accessors(self):
        result = Fig14Result(machine="X")
        result.points.append(
            {"writers": 8.0, "ratio": 1.0, "readers": 8.0, "throughput": 5.0,
             "fs_scaled": 1.0, "bytes": 100.0}
        )
        result.points.append(
            {"writers": 8.0, "ratio": 2.0, "readers": 4.0, "throughput": 9.0,
             "fs_scaled": 1.0, "bytes": 100.0}
        )
        assert result.throughput(8, 2.0) == 9.0
        assert result.peak()["ratio"] == 2.0
        with pytest.raises(KeyError):
            result.throughput(16, 1.0)
        rendered = result.table().render()
        assert "Figure 14" in rendered

    def test_fig16_result_accessors(self):
        result = Fig16Result(machine="X")
        result.runs.append(
            ToolRunResult(tool="online", app="SP.D", nprocs=64, walltime=1.0,
                          overhead_pct=2.0)
        )
        assert result.overhead("online", 64) == 2.0
        assert result.by_tool()["online"][0].nprocs == 64
        with pytest.raises(KeyError):
            result.overhead("online", 128)
        assert "Figure 16" in result.table().render()
