"""Exporter edge cases: unfinished spans, nested-unclosed spans, empty state."""

import json

import pytest

from repro.telemetry import Telemetry
from repro.telemetry.export import chrome_trace_dict, jsonl_records


class ManualClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def tel(clock):
    return Telemetry(clock=clock)


class TestEmptyTelemetry:
    def test_chrome_trace_of_empty_registry_is_valid(self, tel):
        trace = chrome_trace_dict(tel)
        json.dumps(trace)
        assert trace["traceEvents"] == []

    def test_jsonl_of_empty_registry_is_empty_list(self, tel):
        assert jsonl_records(tel) == []

    def test_empty_files_written(self, tel, tmp_path):
        trace_path = tel.write_chrome_trace(str(tmp_path / "t.trace.json"))
        jsonl_path = tel.write_jsonl(str(tmp_path / "t.jsonl"))
        assert json.loads(open(trace_path).read())["traceEvents"] == []
        assert open(jsonl_path).read() == ""


class TestUnfinishedSpans:
    def test_open_span_is_clamped_and_tagged(self, tel, clock):
        span = tel.span("stuck", pid=1, cat="stream")
        clock.advance(2.0)
        trace = chrome_trace_dict(tel)
        json.dumps(trace)
        rows = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(rows) == 1
        assert rows[0]["dur"] == pytest.approx(2.0 * 1e6)  # clamped to now
        assert rows[0]["args"]["unfinished"] is True
        assert span.t1 is None  # export did not close the span

    def test_nested_unclosed_spans_all_export(self, tel, clock):
        outer = tel.span("outer", pid=1)
        clock.advance(1.0)
        tel.span("inner", pid=1)  # nested and never closed
        clock.advance(1.0)
        trace = chrome_trace_dict(tel)
        rows = {e["name"]: e for e in trace["traceEvents"] if e["ph"] == "X"}
        assert set(rows) == {"outer", "inner"}
        assert rows["outer"]["dur"] == pytest.approx(2.0 * 1e6)
        assert rows["inner"]["dur"] == pytest.approx(1.0 * 1e6)
        assert outer.t1 is None

    def test_jsonl_marks_open_spans(self, tel, clock):
        tel.span("open", pid=1)
        clock.advance(0.5)
        records = jsonl_records(tel)
        spans = [r for r in records if r["kind"] == "span"]
        assert len(spans) == 1
        assert spans[0]["t1"] is None
        assert spans[0]["unfinished"] is True
        json.dumps(records)

    def test_mixed_closed_and_open(self, tel, clock):
        done = tel.span("done", pid=1)
        clock.advance(1.0)
        done.end()
        tel.span("open", pid=1)
        clock.advance(1.0)
        records = [r for r in jsonl_records(tel) if r["kind"] == "span"]
        by_name = {r["name"]: r for r in records}
        assert by_name["done"]["t1"] == 1.0
        assert "unfinished" not in by_name["done"]
        assert by_name["open"]["unfinished"] is True

    def test_ending_after_export_moves_span_to_closed(self, tel, clock):
        span = tel.span("late", pid=1)
        clock.advance(1.0)
        chrome_trace_dict(tel)  # export while open
        span.end()
        assert tel.open_spans() == []
        rows = [
            e for e in chrome_trace_dict(tel)["traceEvents"] if e["ph"] == "X"
        ]
        assert len(rows) == 1  # not duplicated
        assert "args" not in rows[0] or "unfinished" not in rows[0].get("args", {})

    def test_open_span_counts_once(self, tel, clock):
        tel.span("only", pid=1)
        clock.advance(1.0)
        rows = [
            e for e in chrome_trace_dict(tel)["traceEvents"] if e["ph"] == "X"
        ]
        assert len(rows) == 1

    def test_reset_clears_open_spans(self, tel, clock):
        tel.span("gone", pid=1)
        tel.reset()
        assert tel.open_spans() == []
        assert jsonl_records(tel) == []

    def test_open_span_before_clock_regression_keeps_nonnegative_dur(self, tel, clock):
        # A span opened "in the future" relative to the export clock (clock
        # rebind mid-run) must still clamp to a non-negative duration.
        clock.advance(5.0)
        tel.span("future", pid=1)
        clock.t = 1.0
        rows = [
            e for e in chrome_trace_dict(tel)["traceEvents"] if e["ph"] == "X"
        ]
        assert rows[0]["dur"] == 0.0
