"""Analysis modules: profiler, topology, density, wait-state — unit level."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.analysis import CommMatrix, DensityMaps, MPIProfile, WaitState
from repro.instrument.events import CALL_IDS, EVENT_DTYPE


def make_events(rows):
    """rows: list of (call_name, peer, tag, nbytes, t_start, t_end)."""
    arr = np.zeros(len(rows), dtype=EVENT_DTYPE)
    for i, (name, peer, tag, nbytes, t0, t1) in enumerate(rows):
        arr[i] = (CALL_IDS[name], 0, peer, tag, 4, nbytes, t0, t1)
    return arr


class TestMPIProfile:
    def test_accumulates_per_call(self):
        p = MPIProfile("app", 4)
        p.update(0, make_events([
            ("MPI_Send", 1, 0, 100, 0.0, 0.5),
            ("MPI_Send", 2, 0, 200, 1.0, 1.25),
            ("MPI_Recv", 1, 0, 50, 2.0, 2.1),
        ]))
        rows = {r[0]: r for r in p.rows()}
        assert rows["MPI_Send"][1] == 2  # hits
        assert rows["MPI_Send"][2] == pytest.approx(0.75)  # total time
        assert rows["MPI_Send"][6] == 300  # bytes
        assert p.events_total == 3

    def test_walltime_estimate_spans_events(self):
        p = MPIProfile("app", 2)
        p.update(0, make_events([("MPI_Init", -1, -1, 0, 0.0, 0.0)]))
        p.update(0, make_events([("MPI_Finalize", -1, -1, 0, 9.5, 10.0)]))
        assert p.walltime_estimate == pytest.approx(10.0)

    def test_merge_equivalent_to_single(self):
        rows = [("MPI_Send", 1, 0, 100, float(i), float(i) + 0.1) for i in range(10)]
        whole = MPIProfile("a", 2)
        whole.update(0, make_events(rows))
        left, right = MPIProfile("a", 2), MPIProfile("a", 2)
        left.update(0, make_events(rows[:5]))
        right.update(0, make_events(rows[5:]))
        left.merge(right)
        assert left.events_total == whole.events_total
        assert left.mpi_time_total == pytest.approx(whole.mpi_time_total)
        assert left.walltime_estimate == pytest.approx(whole.walltime_estimate)

    def test_merge_app_mismatch_rejected(self):
        with pytest.raises(ReproError):
            MPIProfile("a", 2).merge(MPIProfile("b", 2))

    def test_rank_bounds_checked(self):
        p = MPIProfile("a", 2)
        with pytest.raises(ReproError):
            p.update(2, make_events([("MPI_Send", 0, 0, 1, 0, 1)]))

    def test_bi_bandwidth(self):
        p = MPIProfile("a", 1)
        p.update(0, make_events([("MPI_Send", 0, 0, 1, 0.0, 2.0)] * 5))
        assert p.instrumentation_bandwidth(record_bytes=40) == pytest.approx(100.0)

    def test_empty_profile(self):
        p = MPIProfile("a", 2)
        assert p.walltime_estimate == 0.0
        assert p.instrumentation_bandwidth() == 0.0
        assert p.rows() == []


class TestCommMatrix:
    def test_send_events_fill_matrix(self):
        m = CommMatrix("a", 4)
        m.update(0, make_events([
            ("MPI_Send", 1, 0, 100, 0.0, 0.1),
            ("MPI_Isend", 2, 0, 200, 0.0, 0.1),
            ("MPI_Recv", 3, 0, 999, 0.0, 0.1),  # receives are not edges
        ]))
        assert (0, 1) in m.cells and (0, 2) in m.cells
        assert (0, 3) not in m.cells
        dense = m.dense("size")
        assert dense[0, 1] == 100 and dense[0, 2] == 200

    def test_collectives_excluded(self):
        m = CommMatrix("a", 4)
        m.update(1, make_events([("MPI_Allreduce", -1, -1, 64, 0, 1)]))
        assert m.cells == {}

    def test_weights(self):
        m = CommMatrix("a", 2)
        m.update(0, make_events([
            ("MPI_Send", 1, 0, 100, 0.0, 0.5),
            ("MPI_Send", 1, 0, 300, 1.0, 1.5),
        ]))
        assert m.dense("hits")[0, 1] == 2
        assert m.dense("size")[0, 1] == 400
        assert m.dense("time")[0, 1] == pytest.approx(1.0)
        with pytest.raises(ReproError):
            m.dense("mass")

    def test_merge(self):
        a, b = CommMatrix("x", 3), CommMatrix("x", 3)
        a.update(0, make_events([("MPI_Send", 1, 0, 10, 0, 1)]))
        b.update(0, make_events([("MPI_Send", 1, 0, 20, 0, 1)]))
        b.update(1, make_events([("MPI_Send", 2, 0, 5, 0, 1)]))
        a.merge(b)
        assert a.dense("size")[0, 1] == 30
        assert a.dense("size")[1, 2] == 5

    def test_graph_and_degrees(self):
        m = CommMatrix("ring", 4)
        for r in range(4):
            m.update(r, make_events([("MPI_Send", (r + 1) % 4, 0, 8, 0, 1)]))
        g = m.graph("hits")
        assert g.number_of_edges() == 4
        assert m.degree_histogram() == {1: 4}
        assert m.is_symmetric("hits") is False  # directed ring

    def test_symmetry_detection(self):
        m = CommMatrix("pair", 2)
        m.update(0, make_events([("MPI_Send", 1, 0, 8, 0, 1)]))
        m.update(1, make_events([("MPI_Send", 0, 0, 8, 0, 1)]))
        assert m.is_symmetric("hits")

    def test_top_pairs(self):
        m = CommMatrix("a", 3)
        m.update(0, make_events([("MPI_Send", 1, 0, 10, 0, 1)]))
        m.update(0, make_events([("MPI_Send", 2, 0, 99, 0, 1)]))
        top = m.top_pairs("size", k=1)
        assert top == [(0, 2, 99.0)]

    def test_to_dot(self):
        m = CommMatrix("tiny", 2)
        m.update(0, make_events([("MPI_Send", 1, 0, 8, 0, 1)]))
        dot = m.to_dot("size")
        assert "digraph" in dot and "0 -> 1" in dot

    def test_to_dot_size_guard(self):
        m = CommMatrix("big", 1000)
        with pytest.raises(ReproError):
            m.to_dot(max_nodes=256)

    def test_out_of_range_peer_rejected(self):
        m = CommMatrix("a", 2)
        with pytest.raises(ReproError):
            m.update(0, make_events([("MPI_Send", 5, 0, 8, 0, 1)]))


class TestDensityMaps:
    def test_per_rank_vectors(self):
        d = DensityMaps("a", 4)
        d.update(1, make_events([("MPI_Send", 0, 0, 100, 0.0, 0.5)] * 3))
        hits = d.map_for("MPI_Send", "hits")
        assert hits.tolist() == [0, 3, 0, 0]
        assert d.map_for("MPI_Send", "time")[1] == pytest.approx(1.5)
        assert d.map_for("MPI_Send", "size")[1] == 300

    def test_unknown_call_or_metric_rejected(self):
        d = DensityMaps("a", 2)
        with pytest.raises(ReproError):
            d.map_for("MPI_Nope")
        with pytest.raises(ReproError):
            d.map_for("MPI_Send", "volume")

    def test_unseen_call_is_zero_map(self):
        d = DensityMaps("a", 3)
        assert d.map_for("MPI_Barrier", "hits").tolist() == [0, 0, 0]

    def test_aggregate(self):
        d = DensityMaps("a", 2)
        d.update(0, make_events([("MPI_Wait", -1, -1, 0, 0.0, 1.0)]))
        d.update(0, make_events([("MPI_Waitall", -1, -1, 0, 0.0, 2.0)]))
        total = d.aggregate(["MPI_Wait", "MPI_Waitall"], "time")
        assert total[0] == pytest.approx(3.0)

    def test_imbalance_flat_map_is_zero(self):
        d = DensityMaps("a", 4)
        for r in range(4):
            d.update(r, make_events([("MPI_Send", 0, 0, 8, 0.0, 1.0)]))
        assert d.imbalance("MPI_Send", "time") == 0.0

    def test_imbalance_detects_hotspot(self):
        d = DensityMaps("a", 4)
        for r in range(4):
            t1 = 4.0 if r == 2 else 1.0
            d.update(r, make_events([("MPI_Send", 0, 0, 8, 0.0, t1)]))
        assert d.imbalance("MPI_Send", "time") > 1.0

    def test_merge(self):
        a, b = DensityMaps("x", 2), DensityMaps("x", 2)
        a.update(0, make_events([("MPI_Send", 1, 0, 8, 0, 1)]))
        b.update(1, make_events([("MPI_Send", 0, 0, 8, 0, 1)]))
        a.merge(b)
        assert a.map_for("MPI_Send", "hits").tolist() == [1, 1]

    def test_render_grid(self):
        d = DensityMaps("grid", 16)
        for r in range(16):
            d.update(r, make_events([("MPI_Send", 0, 0, 8, 0.0, float(r))]))
        text = d.render_grid("MPI_Send", "time")
        lines = text.splitlines()
        assert len(lines) == 5  # header + 4x4 grid
        assert "min=0" in lines[0]


class TestWaitState:
    def test_wait_attribution(self):
        w = WaitState("a", 2)
        w.update(0, make_events([
            ("MPI_Wait", -1, -1, 0, 0.0, 2.0),
            ("MPI_Recv", 1, 0, 8, 2.0, 3.0),
            ("MPI_Send", 1, 0, 8, 3.0, 3.1),  # not waiting
        ]))
        assert w.wait_time[0] == pytest.approx(3.0)

    def test_collective_time_tracked_separately(self):
        w = WaitState("a", 1)
        w.update(0, make_events([("MPI_Allreduce", -1, -1, 8, 0.0, 1.0)]))
        assert w.collective_time[0] == pytest.approx(1.0)
        assert w.wait_time[0] == 0.0

    def test_waiting_fraction(self):
        w = WaitState("a", 1)
        w.update(0, make_events([
            ("MPI_Init", -1, -1, 0, 0.0, 0.0),
            ("MPI_Wait", -1, -1, 0, 1.0, 6.0),
            ("MPI_Finalize", -1, -1, 0, 10.0, 10.0),
        ]))
        assert w.waiting_fraction()[0] == pytest.approx(0.5)

    def test_late_ranks(self):
        w = WaitState("a", 4)
        for r in range(4):
            dur = 10.0 if r == 3 else 1.0
            w.update(r, make_events([("MPI_Wait", -1, -1, 0, 0.0, dur)]))
        assert w.late_ranks(factor=1.5) == [3]
        with pytest.raises(ReproError):
            w.late_ranks(factor=0)

    def test_merge_and_summary(self):
        a, b = WaitState("x", 2), WaitState("x", 2)
        a.update(0, make_events([("MPI_Wait", -1, -1, 0, 0.0, 1.0)]))
        b.update(1, make_events([("MPI_Wait", -1, -1, 0, 0.0, 2.0)]))
        a.merge(b)
        s = a.summary()
        assert s["wait_time_total"] == pytest.approx(3.0)
        assert s["wait_time_max"] == pytest.approx(2.0)
