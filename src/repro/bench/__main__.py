"""Command-line driver: regenerate any paper figure/table from a shell.

Usage::

    python -m repro.bench fig14 [--scale small|paper] [--seed N]
    python -m repro.bench fig15
    python -m repro.bench fig16
    python -m repro.bench fig17
    python -m repro.bench fig18
    python -m repro.bench bi
    python -m repro.bench trace-sizes
    python -m repro.bench fs-comparison
    python -m repro.bench chaos [--chaos PLAN]
    python -m repro.bench codec
    python -m repro.bench flow
    python -m repro.bench metrics
    python -m repro.bench obs
    python -m repro.bench selfperf
    python -m repro.bench steering
    python -m repro.bench all
    python -m repro.bench compare BASELINE.json CANDIDATE.json [--tolerance T]

Every experiment sub-command shares one argparse parent, so the common
flags (``--scale/--seed/--csv/--json/--telemetry/--profile/--outdir/
--baseline/--tolerance/--metric-tolerance``) are defined exactly once;
experiment-specific flags (``chaos --chaos PLAN``) live on their own
sub-command.

With ``--json`` each experiment additionally writes ``BENCH_<name>.json``
(table rows + metadata + a host-environment header); adding
``--telemetry`` runs the measurement pipeline itself instrumented, embeds
the self-telemetry summary in the JSON, and dumps
``BENCH_<name>.trace.json`` — a Chrome trace-event file loadable in
Perfetto or ``chrome://tracing``.  ``metrics --json`` also streams
``BENCH_metrics.ndjson``, the incremental NDJSON window/phase export;
``selfperf --json`` dumps the host profiler's Chrome trace and JSONL;
``steering --json`` dumps the adaptive run's decision log.
``--profile`` wraps the driver in ``cProfile``, prints a top-N hotspot
table and dumps ``BENCH_<name>.pstats`` for ``snakeviz``/``pstats``.

``compare`` diffs two such artefacts with direction-aware per-metric
tolerances, warns on host-environment mismatch, and exits non-zero on
regression — the CI gate.  Experiment runs can self-gate in one step with
``--baseline BENCH_ref.json`` (plus ``--metric-tolerance`` overrides for
host-speed-dependent throughput columns).
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import pstats
import sys
from pathlib import Path

from repro.bench import (
    bi_bandwidth_table,
    chaos_resilience,
    codec_reduction,
    fig14_stream_throughput,
    flow_attribution,
    fig15_overhead,
    fig16_tool_comparison,
    fig17_topology,
    fig18_density,
    fs_comparison_table,
    metrics_timeline,
    obs_roundtrip,
    selfperf_sweep,
    steering_adaptation,
    trace_size_table,
)
from repro.bench.compare import compare_bench, compare_files, load_bench_json
from repro.errors import ConfigError
from repro.telemetry import Telemetry
from repro.telemetry.hostprof import host_environment, host_now

_DRIVERS = {
    "fig14": fig14_stream_throughput,
    "fig15": fig15_overhead,
    "fig16": fig16_tool_comparison,
    "fig17": fig17_topology,
    "fig18": fig18_density,
    "bi": bi_bandwidth_table,
    "trace-sizes": trace_size_table,
    "fs-comparison": fs_comparison_table,
    "chaos": chaos_resilience,
    "codec": codec_reduction,
    "flow": flow_attribution,
    "metrics": metrics_timeline,
    "obs": obs_roundtrip,
    "selfperf": selfperf_sweep,
    "steering": steering_adaptation,
}

#: functions shown in the --profile hotspot table
PROFILE_TOP_N = 15


def _common_parser() -> argparse.ArgumentParser:
    """The shared flag set every experiment sub-command inherits."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--scale",
        choices=("small", "paper"),
        default="small",
        help="parameter grid: reduced (default) or the paper's own",
    )
    common.add_argument("--seed", type=int, default=0, help="experiment seed")
    common.add_argument(
        "--csv", action="store_true", help="emit CSV instead of an aligned table"
    )
    common.add_argument(
        "--json",
        action="store_true",
        help="also write BENCH_<name>.json with rows and metadata",
    )
    common.add_argument(
        "--telemetry",
        action="store_true",
        help="instrument the measurement pipeline itself; dumps a Chrome "
        "trace next to the JSON (implies --json)",
    )
    common.add_argument(
        "--profile",
        action="store_true",
        help="run the experiment under cProfile: print a top-N hotspot "
        "table and dump BENCH_<name>.pstats into --outdir",
    )
    common.add_argument(
        "--outdir",
        default=".",
        help="directory for --json/--telemetry artefacts (default: cwd)",
    )
    common.add_argument(
        "--baseline",
        metavar="BENCH_ref.json",
        help="after running, diff the fresh payload against this artefact "
        "and exit non-zero on regression (single experiment only)",
    )
    common.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="allowed relative drift for --baseline (default 0.05)",
    )
    common.add_argument(
        "--metric-tolerance",
        action="append",
        default=[],
        metavar="COLUMN=FLOAT",
        help="per-column tolerance override for --baseline; repeatable",
    )
    return common


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures and tables.",
    )
    sub = parser.add_subparsers(dest="experiment", required=True, metavar="experiment")
    common = _common_parser()
    for name in sorted(_DRIVERS) + ["all"]:
        experiment = sub.add_parser(
            name,
            parents=[common],
            help=f"run the {name} sweep" if name != "all" else "run every experiment",
        )
        if name == "chaos":
            experiment.add_argument(
                "--chaos",
                metavar="PLAN",
                help="fault plan: a canned name (crash1, degrade, corrupt, "
                "drop, stall, mixed) or a JSON plan file; default: sweep "
                "every canned plan",
            )
    compare = sub.add_parser(
        "compare",
        help="diff two BENCH_*.json artefacts; exit 1 on regression",
    )
    compare.add_argument("baseline", help="reference BENCH_*.json")
    compare.add_argument("candidate", help="freshly produced BENCH_*.json")
    compare.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="allowed relative drift in the bad direction (default 0.05)",
    )
    compare.add_argument(
        "--metric-tolerance",
        action="append",
        default=[],
        metavar="COLUMN=FLOAT",
        help="per-column tolerance override; repeatable",
    )
    compare.add_argument(
        "--json",
        action="store_true",
        help="emit the full diff (deltas, ratios, host-env warnings) as "
        "JSON on stdout instead of the text report",
    )
    return parser


def _parse_metric_tolerances(pairs: list[str]) -> dict[str, float]:
    out: dict[str, float] = {}
    for pair in pairs:
        column, sep, value = pair.partition("=")
        if not sep or not column:
            raise ConfigError(
                f"--metric-tolerance wants COLUMN=FLOAT, got {pair!r}"
            )
        try:
            out[column] = float(value)
        except ValueError:
            raise ConfigError(
                f"--metric-tolerance {column!r}: {value!r} is not a float"
            ) from None
    return out


def _compare_main(args: argparse.Namespace) -> int:
    comparison = compare_files(
        args.baseline,
        args.candidate,
        tolerance=args.tolerance,
        per_metric=_parse_metric_tolerances(args.metric_tolerance),
    )
    if args.json:
        print(json.dumps(comparison.to_dict(), indent=2, sort_keys=True))
    else:
        print(comparison.render())
    return 0 if comparison.ok else 1


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment == "compare":
        return _compare_main(args)
    if args.telemetry:
        args.json = True
    if args.baseline and args.experiment == "all":
        parser.error("--baseline gates a single experiment, not 'all'")

    outdir = Path(args.outdir)
    if args.json or args.profile:
        outdir.mkdir(parents=True, exist_ok=True)

    names = sorted(_DRIVERS) if args.experiment == "all" else [args.experiment]
    for name in names:
        driver = _DRIVERS[name]
        telemetry = Telemetry() if args.telemetry else None
        kwargs = {}
        if name == "chaos" and getattr(args, "chaos", None):
            kwargs["plan"] = args.chaos
        if name == "metrics" and args.json:
            kwargs["ndjson_dir"] = str(outdir)
        if name == "obs" and args.json:
            kwargs["ndjson_dir"] = str(outdir)
        if name == "selfperf" and args.json:
            kwargs["trace_dir"] = str(outdir)
        if name == "steering" and args.json:
            kwargs["decisions_dir"] = str(outdir)
        stem = name.replace("-", "_")
        profiler = cProfile.Profile() if args.profile else None
        t0 = host_now()
        if profiler is not None:
            profiler.enable()
        try:
            result = driver(
                scale=args.scale, seed=args.seed, telemetry=telemetry, **kwargs
            )
        finally:
            if profiler is not None:
                profiler.disable()
        elapsed = host_now() - t0
        table = result.table()
        print(table.to_csv() if args.csv else table.render())
        print(f"[{name}: regenerated in {elapsed:.1f}s at scale={args.scale}]")
        hotspots = None
        if profiler is not None:
            hotspots = _report_profile(profiler, name, outdir)
        payload = {
            "experiment": name,
            "scale": args.scale,
            "seed": args.seed,
            "elapsed_s": elapsed,
            "host": host_environment(),
            "columns": table.columns,
            "rows": table.rows,
        }
        if args.json:
            if telemetry is not None:
                payload["telemetry"] = telemetry.summary()
                trace_path = outdir / f"BENCH_{stem}.trace.json"
                telemetry.write_chrome_trace(trace_path)
                print(f"[{name}: Chrome trace -> {trace_path}]")
            if name == "selfperf":
                payload["hostprof"] = result.profile
                payload["overhead_ratio"] = result.overhead_ratio
            if name == "obs":
                payload["bus"] = result.bus
                payload["overhead_ratio"] = result.overhead_ratio
            if hotspots is not None:
                payload["profile"] = hotspots
            json_path = outdir / f"BENCH_{stem}.json"
            json_path.write_text(json.dumps(payload, indent=2, default=str))
            print(f"[{name}: JSON -> {json_path}]")
        if args.baseline:
            comparison = compare_bench(
                load_bench_json(args.baseline),
                payload,
                tolerance=args.tolerance,
                per_metric=_parse_metric_tolerances(args.metric_tolerance),
            )
            print(comparison.render())
            if not comparison.ok:
                return 1
        print()
    return 0


def _report_profile(profiler: cProfile.Profile, name: str, outdir: Path) -> list[dict]:
    """Dump pstats, print the hotspot table, return top rows for the JSON."""
    stem = name.replace("-", "_")
    pstats_path = outdir / f"BENCH_{stem}.pstats"
    profiler.dump_stats(pstats_path)
    stats = pstats.Stats(profiler, stream=io.StringIO())
    stats.sort_stats("cumulative")
    buf = io.StringIO()
    stats.stream = buf
    stats.print_stats(PROFILE_TOP_N)
    print(buf.getvalue().rstrip())
    print(f"[{name}: pstats -> {pstats_path}]")
    hotspots = []
    for func, (cc, nc, tt, ct, _callers) in sorted(
        stats.stats.items(), key=lambda kv: kv[1][3], reverse=True
    )[:PROFILE_TOP_N]:
        filename, lineno, funcname = func
        hotspots.append(
            {
                "function": f"{filename}:{lineno}({funcname})",
                "ncalls": nc,
                "tottime_s": tt,
                "cumtime_s": ct,
            }
        )
    return hotspots


if __name__ == "__main__":
    sys.exit(main())
