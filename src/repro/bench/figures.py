"""Drivers for the paper's evaluation figures (14 through 18)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError
from repro.analysis.report import ProfileReport
from repro.apps.eulermhd import EulerMHD
from repro.apps.nas import BT, CG, LU, SP, nas_kernel
from repro.apps.synthetic import stream_reader_program, stream_writer_program
from repro.bench.harness import OverheadPoint, measure_overhead, readers_for
from repro.core.comparison import ToolRunResult, compare_tools
from repro.core.session import CouplingSession
from repro.network.machine import CURIE, MachineSpec, TERA100
from repro.telemetry import Telemetry
from repro.util.tables import Table
from repro.util.units import GB, GIB, MIB
from repro.vmpi.virtualization import VirtualizedLauncher

# --------------------------------------------------------------------------------------
# Figure 14 — VMPI Stream global throughput vs writer/reader ratio
# --------------------------------------------------------------------------------------


@dataclass
class Fig14Result:
    machine: str
    points: list[dict[str, float]] = field(default_factory=list)

    def throughput(self, writers: int, ratio: float) -> float:
        for p in self.points:
            if p["writers"] == writers and p["ratio"] == ratio:
                return p["throughput"]
        raise KeyError(f"no point for writers={writers} ratio={ratio}")

    def peak(self) -> dict[str, float]:
        return max(self.points, key=lambda p: p["throughput"])

    def table(self) -> Table:
        t = Table(
            ["writers", "ratio", "readers", "throughput_GBps", "fs_scaled_GBps"],
            title=f"Figure 14 — VMPI Stream throughput ({self.machine})",
        )
        for p in self.points:
            t.add_row(
                int(p["writers"]),
                int(p["ratio"]),
                int(p["readers"]),
                p["throughput"] / GB,
                p["fs_scaled"] / GB,
            )
        return t


def _stream_point(
    machine: MachineSpec,
    writers: int,
    ratio: float,
    bytes_per_writer: int,
    block_size: int,
    seed: int,
    telemetry: Telemetry | None = None,
) -> dict[str, float]:
    readers = readers_for(writers, ratio)
    stats: dict[str, Any] = {}
    launcher = VirtualizedLauncher(machine=machine, seed=seed, telemetry=telemetry)
    launcher.add_program(
        "Writers",
        nprocs=writers,
        main=stream_writer_program,
        total_bytes=bytes_per_writer,
        block_size=block_size,
        reader_partition="Analyzer",
        stats=stats,
    )
    launcher.add_program(
        "Analyzer",
        nprocs=readers,
        main=stream_reader_program,
        block_size=block_size,
        stats=stats,
    )
    launcher.run()
    total = stats["bytes_read"]
    span = stats["t_last_read"] - stats["t_first_write"]
    throughput = total / span if span > 0 else 0.0
    # The paper's file-system comparison: aggregate FS bandwidth scaled to
    # the writer cores (500 GB/s over 140k cores -> 9.1 GB/s at 2560).
    fs_scaled = machine.fs_job_bandwidth(writers)
    return {
        "writers": float(writers),
        "ratio": float(ratio),
        "readers": float(readers),
        "throughput": throughput,
        "fs_scaled": fs_scaled,
        "bytes": float(total),
    }


def fig14_stream_throughput(
    scale: str = "small",
    machine: MachineSpec = TERA100,
    seed: int = 0,
    telemetry: Telemetry | None = None,
) -> Fig14Result:
    """Throughput surface over (writer count, writer/reader ratio).

    Paper peak: 98.5 GB/s at 2560 writers + 2560 readers; competitive with
    the scaled file system until a ratio of ~1/25.
    """
    if scale == "paper":
        writer_counts = [64, 96, 160, 320, 960, 1600, 2560]
        ratios = [1, 2, 4, 8, 16, 32, 64]
        bytes_per_writer = 1 * GIB
    elif scale == "small":
        writer_counts = [64, 160, 320]
        ratios = [1, 4, 16, 32]
        bytes_per_writer = 32 * MIB
    else:
        raise ConfigError(f"unknown scale {scale!r}")
    result = Fig14Result(machine=machine.name)
    for writers in writer_counts:
        for ratio in ratios:
            result.points.append(
                _stream_point(
                    machine, writers, ratio, bytes_per_writer, MIB, seed,
                    telemetry=telemetry,
                )
            )
    return result


# --------------------------------------------------------------------------------------
# Figure 15 — relative overhead, NAS + EulerMHD, ratio 1/1, Tera 100
# --------------------------------------------------------------------------------------


@dataclass
class Fig15Result:
    machine: str
    points: list[OverheadPoint] = field(default_factory=list)

    def by_app(self) -> dict[str, list[OverheadPoint]]:
        out: dict[str, list[OverheadPoint]] = {}
        for p in self.points:
            out.setdefault(p.app, []).append(p)
        return out

    def table(self) -> Table:
        t = Table(
            ["benchmark", "nprocs", "t_ref_s", "t_instr_s", "overhead_pct", "Bi_MBps"],
            title=f"Figure 15 — relative overhead at ratio 1/1 ({self.machine})",
        )
        for p in self.points:
            t.add_row(
                p.app,
                p.nprocs,
                p.t_reference,
                p.t_instrumented,
                p.overhead_pct,
                p.bi_bandwidth / 1e6,
            )
        return t


def _fig15_workloads(scale: str) -> list[Any]:
    if scale == "paper":
        square = [256, 484, 900, 1156]
        pow2 = [128, 256, 512, 1024]
        workloads = []
        for n in square:
            workloads += [
                BT(n, "C", iterations=3),
                BT(n, "D", iterations=3),
                SP(n, "C", iterations=3),
                SP(n, "D", iterations=3),
            ]
        for n in pow2:
            workloads += [
                CG(n, "C", iterations=6),
                nas_kernel("FT", n, "C", iterations=4),
                LU(n, "C", iterations=2),
                LU(n, "D", iterations=2),
                EulerMHD(n, iterations=6),
            ]
        return workloads
    if scale == "small":
        return [
            BT(64, "C", iterations=3),
            BT(64, "D", iterations=3),
            SP(64, "C", iterations=3),
            SP(64, "D", iterations=3),
            SP(256, "C", iterations=3),
            SP(256, "D", iterations=3),
            CG(128, "C", iterations=6),
            nas_kernel("FT", 128, "C", iterations=4),
            LU(256, "C", iterations=2),
            LU(256, "D", iterations=2),
            EulerMHD(256, iterations=6),
        ]
    raise ConfigError(f"unknown scale {scale!r}")


def fig15_overhead(
    scale: str = "small",
    machine: MachineSpec = TERA100,
    seed: int = 0,
    telemetry: Telemetry | None = None,
) -> Fig15Result:
    """Overhead of online instrumentation at ratio 1/1 (paper: all < 25 %,
    class C above class D for the same benchmark)."""
    result = Fig15Result(machine=machine.name)
    for kernel in _fig15_workloads(scale):
        result.points.append(
            measure_overhead(kernel, machine, ratio=1.0, seed=seed, telemetry=telemetry)
        )
    return result


# --------------------------------------------------------------------------------------
# Figure 16 — tool comparison on SP.D, Curie
# --------------------------------------------------------------------------------------


@dataclass
class Fig16Result:
    machine: str
    runs: list[ToolRunResult] = field(default_factory=list)

    def by_tool(self) -> dict[str, list[ToolRunResult]]:
        out: dict[str, list[ToolRunResult]] = {}
        for r in self.runs:
            out.setdefault(r.tool, []).append(r)
        return out

    def overhead(self, tool: str, nprocs: int) -> float:
        for r in self.runs:
            if r.tool == tool and r.nprocs == nprocs:
                return r.overhead_pct
        raise KeyError(f"no run for {tool} at {nprocs}")

    def table(self) -> Table:
        t = Table(
            ["tool", "nprocs", "walltime_s", "overhead_pct", "volume_GB"],
            title=f"Figure 16 — SP.D tool comparison ({self.machine})",
        )
        for r in sorted(self.runs, key=lambda r: (r.nprocs, r.tool)):
            t.add_row(
                r.tool,
                r.nprocs,
                r.walltime,
                r.overhead_pct if r.overhead_pct is not None else 0.0,
                r.full_run_volume_bytes / GB,
            )
        return t


def fig16_tool_comparison(
    scale: str = "small",
    machine: MachineSpec = CURIE,
    seed: int = 0,
    tools: tuple[str, ...] = (
        "reference",
        "online",
        "scorep_profile",
        "scorep_trace",
        "scalasca",
    ),
    telemetry: Telemetry | None = None,
) -> Fig16Result:
    """SP.D under each tool model (paper: online cheaper than file-based
    traces at scale despite moving ~2.9x the data)."""
    if scale == "paper":
        counts = [256, 1024, 2025, 4096]
        iterations = 3
    elif scale == "small":
        counts = [64, 256]
        iterations = 3
    else:
        raise ConfigError(f"unknown scale {scale!r}")
    result = Fig16Result(machine=machine.name)
    for nprocs in counts:
        runs = compare_tools(
            lambda n=nprocs: SP(n, "D", iterations=iterations),
            tools=tools,
            machine=machine,
            seed=seed,
            telemetry=telemetry,
        )
        result.runs.extend(runs)
    return result


# --------------------------------------------------------------------------------------
# Figure 17 — topological module outputs
# --------------------------------------------------------------------------------------


@dataclass
class Fig17Result:
    reports: dict[str, ProfileReport] = field(default_factory=dict)

    def matrix(self, app: str):
        report = self.reports[app]
        return report.chapter(app).topology

    def table(self) -> Table:
        t = Table(
            ["application", "nprocs", "pairs", "messages", "size_GB", "symmetric"],
            title="Figure 17 — topological module outputs",
        )
        for app, report in self.reports.items():
            topo = report.chapter(app).topology
            hits, size, _time = topo.totals()
            t.add_row(
                app,
                topo.app_size,
                len(topo.cells),
                int(hits),
                size / GB,
                topo.is_symmetric("hits"),
            )
        return t


def _profile_app(
    kernel,
    machine: MachineSpec,
    seed: int,
    name: str | None = None,
    telemetry: Telemetry | None = None,
) -> ProfileReport:
    session = CouplingSession(machine=machine, seed=seed, telemetry=telemetry)
    session.add_application(kernel, name=name)
    session.set_analyzer(ratio=1.0)
    result = session.run()
    if result.report is None:
        raise ConfigError("session produced no report")
    return result.report


def fig17_topology(
    scale: str = "small",
    machine: MachineSpec = TERA100,
    seed: int = 0,
    telemetry: Telemetry | None = None,
) -> Fig17Result:
    """Communication matrices/graphs: CG.D, EulerMHD, SP, LU (paper 17a-e)."""
    if scale == "paper":
        workloads = [
            ("CG.D", CG(128, "D", iterations=6)),
            ("EulerMHD", EulerMHD(2048, iterations=4)),
            ("SP.C", SP(2025, "C", iterations=2)),
            ("LU.D", LU(1024, "D", iterations=2)),
        ]
    elif scale == "small":
        workloads = [
            ("CG.D", CG(128, "D", iterations=6)),
            ("EulerMHD", EulerMHD(256, iterations=4)),
            ("SP.C", SP(225, "C", iterations=2)),
            ("LU.D", LU(256, "D", iterations=2)),
        ]
    else:
        raise ConfigError(f"unknown scale {scale!r}")
    result = Fig17Result()
    for name, kernel in workloads:
        result.reports[name] = _profile_app(
            kernel, machine, seed, name=name, telemetry=telemetry
        )
    return result


# --------------------------------------------------------------------------------------
# Figure 18 — density maps
# --------------------------------------------------------------------------------------


@dataclass
class Fig18Result:
    reports: dict[str, ProfileReport] = field(default_factory=dict)

    def density(self, app: str):
        return self.reports[app].chapter(app).density

    def waitstate(self, app: str):
        return self.reports[app].chapter(app).waitstate

    def table(self) -> Table:
        t = Table(
            ["application", "map", "metric", "min", "max", "imbalance"],
            title="Figure 18 — density maps",
        )
        for app, report in self.reports.items():
            density = report.chapter(app).density
            for call, metric in (
                ("MPI_Send", "hits"),
                ("MPI_Send", "size"),
                ("MPI_Isend", "hits"),
                ("MPI_Isend", "size"),
                ("MPI_Waitall", "time"),
                ("MPI_Allreduce", "time"),
            ):
                if call not in density.calls_seen():
                    continue
                vec = density.map_for(call, metric)
                t.add_row(app, call, metric, vec.min(), vec.max(), density.imbalance(call, metric))
        return t


def fig18_density(
    scale: str = "small",
    machine: MachineSpec = TERA100,
    seed: int = 0,
    telemetry: Telemetry | None = None,
) -> Fig18Result:
    """Density maps for LU.D and BT.D (paper 18a-e: Send-hit correlation
    with mesh neighbourhood, p2p size imbalance, collective/wait symmetry).
    """
    if scale == "paper":
        workloads = [
            ("LU.D", LU(1024, "D", iterations=2)),
            ("BT.D", BT(8281, "D", iterations=2)),
        ]
    elif scale == "small":
        workloads = [
            ("LU.D", LU(256, "D", iterations=2)),
            ("BT.D", BT(1024, "D", iterations=2)),
        ]
    else:
        raise ConfigError(f"unknown scale {scale!r}")
    result = Fig18Result()
    for name, kernel in workloads:
        result.reports[name] = _profile_app(
            kernel, machine, seed, name=name, telemetry=telemetry
        )
    return result
