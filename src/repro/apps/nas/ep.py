"""EP: embarrassingly parallel random-number kernel.

Almost pure computation; communication is limited to a handful of final
reductions — the degenerate low-``Bi`` baseline of the suite.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.apps.base import ClassSpec, NASKernel


class EP(NASKernel):
    name = "EP"
    CLASSES = {
        "C": ClassSpec(size=2**32, niter=1, gops=137.0),
        "D": ClassSpec(size=2**36, niter=1, gops=2197.0),
    }

    def __init__(self, nprocs: int, klass: str = "C", iterations: int = 1):
        super().__init__(nprocs, klass, iterations)

    def main(self, mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        if comm.size != self.nprocs:
            raise ConfigError(
                f"{self.label} built for {self.nprocs} ranks, launched on {comm.size}"
            )
        step_cpu = self.step_compute_seconds(mpi)
        for _it in range(self.iterations):
            yield from mpi.compute(step_cpu)
            # Gaussian pair counts and sums.
            yield from comm.allreduce(nbytes=8)
            yield from comm.allreduce(nbytes=16)
            yield from comm.allreduce(nbytes=80)
        yield from comm.barrier()
        yield from mpi.finalize()
