"""Benchmark-suite configuration.

``REPRO_BENCH_SCALE`` selects the parameter grid:

* ``small`` (default) — reduced process counts; the full suite runs in a few
  minutes and still checks every paper *shape* assertion.
* ``paper`` — the paper's own grids (2560-writer streams, 4096-rank SP.D,
  8281-rank BT.D); budget hours.

Each benchmark prints the regenerated table (use ``pytest -s``) and asserts
the shape criteria from DESIGN.md section 4.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    value = os.environ.get("REPRO_BENCH_SCALE", "small")
    if value not in ("small", "paper"):
        raise ValueError(f"REPRO_BENCH_SCALE must be small|paper, got {value!r}")
    return value


@pytest.fixture(scope="session")
def show():
    """Print a rendered table so ``pytest -s`` reproduces the figure."""

    def _show(table) -> None:
        print()
        print(table.render())

    return _show
