"""Binary event records.

The paper's trace format is deliberately trivial: "the C structure is
directly sent".  One event is a fixed 40-byte little-endian record::

    u16 call_id | u16 flags | i32 peer | i32 tag | u32 comm_size
    | i64 nbytes | f64 t_start | f64 t_end

Records decode zero-copy into a numpy structured array
(:data:`EVENT_DTYPE`), which is what all analysis knowledge sources consume.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import InstrumentationError
from repro.mpi.pmpi import CallRecord

_STRUCT_FMT = "<HHiiIqdd"
_RECORD_STRUCT = struct.Struct(_STRUCT_FMT)
EVENT_RECORD_SIZE = _RECORD_STRUCT.size
assert EVENT_RECORD_SIZE == 40
# The codec layer hardcodes the record layout (24-byte call-site prefix +
# two f64 timestamps) without importing this module; keep them in lockstep.
from repro.codec.frame import CONTENT_RECORD_SIZE as _CODEC_RECORD_SIZE  # noqa: E402
from repro.codec.stages import RECORD_SIZE as _STAGE_RECORD_SIZE  # noqa: E402

assert EVENT_RECORD_SIZE == _CODEC_RECORD_SIZE == _STAGE_RECORD_SIZE

EVENT_DTYPE = np.dtype(
    [
        ("call", "<u2"),
        ("flags", "<u2"),
        ("peer", "<i4"),
        ("tag", "<i4"),
        ("comm_size", "<u4"),
        ("nbytes", "<i8"),
        ("t_start", "<f8"),
        ("t_end", "<f8"),
    ]
)
assert EVENT_DTYPE.itemsize == EVENT_RECORD_SIZE

#: Call name registry.  Order is the wire format; only append.
CALL_NAMES: tuple[str, ...] = (
    "MPI_Init",
    "MPI_Finalize",
    "MPI_Send",
    "MPI_Isend",
    "MPI_Recv",
    "MPI_Irecv",
    "MPI_Wait",
    "MPI_Waitall",
    "MPI_Sendrecv",
    "MPI_Iprobe",
    "MPI_Barrier",
    "MPI_Bcast",
    "MPI_Reduce",
    "MPI_Allreduce",
    "MPI_Gather",
    "MPI_Allgather",
    "MPI_Scatter",
    "MPI_Alltoall",
    "MPI_Reduce_scatter",
    "MPI_Comm_split",
    "MPI_Comm_dup",
    # POSIX-ish calls the paper's density module also covers.
    "open",
    "read",
    "write",
    "close",
)

CALL_IDS: dict[str, int] = {name: i for i, name in enumerate(CALL_NAMES)}

#: Classification used by the analysis modules.
P2P_SEND_CALLS = frozenset(
    CALL_IDS[n] for n in ("MPI_Send", "MPI_Isend", "MPI_Sendrecv")
)
P2P_RECV_CALLS = frozenset(CALL_IDS[n] for n in ("MPI_Recv", "MPI_Irecv"))
WAIT_CALLS = frozenset(CALL_IDS[n] for n in ("MPI_Wait", "MPI_Waitall"))
COLLECTIVE_CALLS = frozenset(
    CALL_IDS[n]
    for n in (
        "MPI_Barrier",
        "MPI_Bcast",
        "MPI_Reduce",
        "MPI_Allreduce",
        "MPI_Gather",
        "MPI_Allgather",
        "MPI_Scatter",
        "MPI_Alltoall",
        "MPI_Reduce_scatter",
    )
)
POSIX_CALLS = frozenset(CALL_IDS[n] for n in ("open", "read", "write", "close"))


def call_id(name: str) -> int:
    """Wire id of a call name; raises on unknown names."""
    try:
        return CALL_IDS[name]
    except KeyError:
        raise InstrumentationError(f"unknown MPI call name {name!r}") from None


def encode_event(record: CallRecord) -> bytes:
    """Encode one PMPI call record into its 40-byte wire form."""
    return _RECORD_STRUCT.pack(
        call_id(record.name),
        0,
        record.peer,
        record.tag,
        max(0, record.comm_size),
        record.nbytes,
        record.t_start,
        record.t_end,
    )


def encode_event_into(buf: bytearray, offset: int, record: CallRecord) -> None:
    """Encode one record at ``offset`` of a preallocated buffer.

    The allocation-free variant of :func:`encode_event` the pack builder's
    hot loop uses: no intermediate 40-byte ``bytes`` object per event.
    """
    _RECORD_STRUCT.pack_into(
        buf,
        offset,
        call_id(record.name),
        0,
        record.peer,
        record.tag,
        max(0, record.comm_size),
        record.nbytes,
        record.t_start,
        record.t_end,
    )


def decode_events(buffer: bytes | memoryview, count: int | None = None) -> np.ndarray:
    """Zero-copy decode of concatenated event records.

    Raises :class:`InstrumentationError` if the buffer is not a whole number
    of records or shorter than ``count`` records.
    """
    view = memoryview(buffer)
    if count is None:
        if len(view) % EVENT_RECORD_SIZE:
            raise InstrumentationError(
                f"event buffer of {len(view)} bytes is not a record multiple"
            )
        count = len(view) // EVENT_RECORD_SIZE
    needed = count * EVENT_RECORD_SIZE
    if len(view) < needed:
        raise InstrumentationError(
            f"event buffer of {len(view)} bytes shorter than {count} records"
        )
    return np.frombuffer(view[:needed], dtype=EVENT_DTYPE)
