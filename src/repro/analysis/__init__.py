"""Analysis knowledge sources and profiling reports.

The data-flow of paper Figure 4, instantiated per blackboard level (one per
instrumented application):

* ``KS_Unpacker`` — decodes event packs into typed event batches;
* ``KS_MPIProfiler`` — per-call-name statistics (hits, time, bytes);
* ``KS_Topology`` — point-to-point communication matrices/graphs weighted in
  hits, total size and total time (paper Figure 17);
* ``KS_DensityMap`` — per-rank hits/time/size maps for MPI calls
  (paper Figure 18);
* ``KS_WaitState`` — the preliminary wait-state analysis the paper describes
  as work-in-progress (Section IV-D).

Each module keeps a mergeable *state* so per-analyzer-rank partial results
reduce into one report at the analyzer root.
"""

from repro.analysis.profiler import MPIProfile
from repro.analysis.topology import CommMatrix
from repro.analysis.density import DensityMaps
from repro.analysis.waitstate import WaitState
from repro.analysis.otf2proxy import OTF2Proxy, SelectionConfig
from repro.analysis.alerts import Alert, AlertConfig, AlertMonitor
from repro.analysis.latesender import LateSenderAnalysis
from repro.analysis.engine import AnalyzerEngine, AnalysisConfig
from repro.analysis.report import ApplicationReport, ProfileReport

__all__ = [
    "MPIProfile",
    "CommMatrix",
    "DensityMaps",
    "WaitState",
    "OTF2Proxy",
    "SelectionConfig",
    "Alert",
    "AlertConfig",
    "AlertMonitor",
    "LateSenderAnalysis",
    "AnalyzerEngine",
    "AnalysisConfig",
    "ApplicationReport",
    "ProfileReport",
]
