"""MPI virtualization (paper Section III-A, Figure 6).

The paper intercepts every MPI call through PMPI and replaces references to
``MPI_COMM_WORLD`` with a per-program sub-communicator, so unmodified
programs can cohabit inside one MPMD job; the real world stays reachable as
``MPI_COMM_UNIVERSE`` for inter-application communication.

Here the same remapping happens at launch time: the
:class:`VirtualizedLauncher` hands every program a
:class:`~repro.mpi.world.ProgramAPI` whose ``comm_world`` covers only its
own partition while ``comm_universe`` is the real world communicator.  A
program written against ``mpi.comm_world`` therefore runs bit-identically
whether launched alone or co-launched with other programs — the paper's
transparent-cohabitation requirement.
"""

from __future__ import annotations

from repro.mpi.communicator import Comm
from repro.mpi.launcher import MPMDLauncher
from repro.mpi.world import PartitionInfo, ProgramAPI, RankContext, World


class VirtualizedLauncher(MPMDLauncher):
    """MPMD launcher applying VMPI virtualization to every program."""

    def _make_api(self, world: World, ctx: RankContext, partition: PartitionInfo) -> ProgramAPI:
        universe = Comm(world.universe_group, ctx.global_rank, ctx)
        partition_group = world.intern_group(
            tuple(partition.global_ranks),
            f"VMPI_WORLD[{partition.name}]",
            key=("vmpi-world", partition.index),
        )
        local_rank = ctx.global_rank - partition.first_global_rank
        virtual_world = Comm(partition_group, local_rank, ctx)
        return ProgramAPI(ctx, comm_world=virtual_world, comm_universe=universe)
