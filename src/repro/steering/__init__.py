"""Adaptive runtime steering: the observe → decide → act control loop.

PR 2's :class:`~repro.telemetry.monitor.HealthMonitor` *detects* stream
stalls, backlog growth and imbalance; PR 5's codec layer can *reduce* the
stream volume; PR 3's failover primitives can *re-route* writers.  This
package closes the loop: a :class:`SteeringController` subscribes to
health alerts and acts online inside the simulation, under a declarative
JSON-serializable :class:`SteeringPolicy` — escalating/relaxing the
reduction chain with hysteresis, autoscaling the analyzer's modelled
worker pool, and remapping writers across analyzer ranks.  Every decision
is journalled as a :class:`SteeringDecision` with its triggering alert and
before/after flow latencies.
"""

from repro.steering.policy import (
    ESCALATE_REDUCTION,
    REBALANCE_WRITERS,
    RELAX_REDUCTION,
    SCALE_DOWN_WORKERS,
    SCALE_UP_WORKERS,
    STEERING_ACTIONS,
    SteeringPolicy,
)
from repro.steering.controller import SteeringController, SteeringDecision

__all__ = [
    "ESCALATE_REDUCTION",
    "RELAX_REDUCTION",
    "SCALE_UP_WORKERS",
    "SCALE_DOWN_WORKERS",
    "REBALANCE_WRITERS",
    "STEERING_ACTIONS",
    "SteeringPolicy",
    "SteeringController",
    "SteeringDecision",
]
