"""Extension modules: the OTF2 selective-trace proxy and real-time alerts."""

import numpy as np
import pytest

from repro.errors import ConfigError, ReproError
from repro.analysis import (
    Alert,
    AlertConfig,
    AlertMonitor,
    AnalysisConfig,
    OTF2Proxy,
    SelectionConfig,
)
from repro.iosim import ParallelFS
from repro.simt import Kernel


def events(rows):
    """Build a structured event array from (name, peer, tag, nbytes, t0, t1)."""
    from repro.instrument.events import CALL_IDS, EVENT_DTYPE

    arr = np.zeros(len(rows), dtype=EVENT_DTYPE)
    for i, (name, peer, tag, nbytes, t0, t1) in enumerate(rows):
        arr[i] = (CALL_IDS[name], 0, peer, tag, 4, nbytes, t0, t1)
    return arr


class TestSelectionConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SelectionConfig(calls=frozenset({"MPI_Nope"}))
        with pytest.raises(ConfigError):
            SelectionConfig(rank_lo=-1)
        with pytest.raises(ConfigError):
            SelectionConfig(rank_lo=4, rank_hi=2)
        with pytest.raises(ConfigError):
            SelectionConfig(t_min=5.0, t_max=1.0)

    def test_call_ids_sorted(self):
        cfg = SelectionConfig(calls=frozenset({"MPI_Send", "MPI_Recv"}))
        ids = cfg.call_ids()
        assert list(ids) == sorted(ids)


class TestOTF2Proxy:
    def test_selects_by_call(self):
        proxy = OTF2Proxy("app", 4, SelectionConfig(calls=frozenset({"MPI_Send"})))
        proxy.update(0, events([
            ("MPI_Send", 1, 0, 10, 0.0, 0.1),
            ("MPI_Allreduce", -1, -1, 8, 0.2, 0.3),
        ]))
        assert proxy.events_selected == 1
        assert proxy.selectivity == pytest.approx(0.5)

    def test_selects_by_rank_window(self):
        cfg = SelectionConfig(calls=None, rank_lo=1, rank_hi=2)
        proxy = OTF2Proxy("app", 4, cfg)
        proxy.update(0, events([("MPI_Send", 1, 0, 10, 0.0, 0.1)]))
        proxy.update(1, events([("MPI_Send", 2, 0, 10, 0.0, 0.1)]))
        assert proxy.events_selected == 1

    def test_selects_by_time_window(self):
        cfg = SelectionConfig(calls=None, t_min=1.0, t_max=2.0)
        proxy = OTF2Proxy("app", 2, cfg)
        proxy.update(0, events([
            ("MPI_Send", 1, 0, 10, 0.5, 0.6),   # before window
            ("MPI_Send", 1, 0, 10, 1.2, 1.3),   # inside
            ("MPI_Send", 1, 0, 10, 1.9, 2.4),   # straddles the end -> dropped
        ]))
        assert proxy.events_selected == 1

    def test_serialize_roundtrip(self):
        proxy = OTF2Proxy("app", 4)
        proxy.update(2, events([("MPI_Send", 1, 7, 99, 0.0, 0.5)] * 3))
        proxy.update(3, events([("MPI_Irecv", 2, 7, 99, 0.0, 0.5)]))
        blob = proxy.serialize()
        assert len(blob) == proxy.trace_bytes()
        back = OTF2Proxy.deserialize(blob)
        assert set(back) == {2, 3}
        assert len(back[2]) == 3 and len(back[3]) == 1
        assert back[2]["nbytes"][0] == 99

    def test_deserialize_rejects_garbage(self):
        with pytest.raises(ReproError):
            OTF2Proxy.deserialize(b"nope")
        with pytest.raises(ReproError):
            OTF2Proxy.deserialize(b"\x00" * 32)

    def test_merge(self):
        a = OTF2Proxy("x", 2)
        b = OTF2Proxy("x", 2)
        a.update(0, events([("MPI_Send", 1, 0, 8, 0, 1)]))
        b.update(1, events([("MPI_Send", 0, 0, 8, 0, 1)]))
        a.merge(b)
        assert a.events_selected == 2
        with pytest.raises(ReproError):
            a.merge(OTF2Proxy("y", 2))

    def test_write_through_fs(self, machine):
        kernel = Kernel()
        fs = ParallelFS(kernel, machine, job_cores=4)
        proxy = OTF2Proxy("app", 2)
        proxy.update(0, events([("MPI_Send", 1, 0, 8, 0, 1)] * 10))
        proc = kernel.spawn(proxy.write_through(fs, "sel.otf2"))
        kernel.run()
        assert proc.value == proxy.trace_bytes()
        assert fs.bytes_written == proxy.trace_bytes()
        assert fs.metadata_ops == 2

    def test_available_as_engine_module(self):
        from repro.analysis.engine import AnalyzerEngine

        cfg = AnalysisConfig(modules=("profile", "otf2proxy"))
        engine = AnalyzerEngine([("app", 4)], cfg)
        assert "otf2proxy" in engine.states["app"]


class TestAlertConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            AlertConfig(wait_threshold=0)
        with pytest.raises(ConfigError):
            AlertConfig(rate_threshold=-1)
        with pytest.raises(ConfigError):
            AlertConfig(window=0)


class TestAlertMonitor:
    def test_waiting_alert(self):
        monitor = AlertMonitor("app", 2, AlertConfig(wait_threshold=0.5, window=0.01))
        raised = monitor.update(0, events([
            ("MPI_Wait", -1, -1, 0, 0.0, 0.9),
            ("MPI_Send", 1, 0, 8, 0.9, 1.0),
        ]))
        assert len(raised) == 1
        assert raised[0].kind == "waiting" and raised[0].rank == 0
        assert "waiting" in raised[0].describe()

    def test_no_alert_below_threshold(self):
        monitor = AlertMonitor("app", 2, AlertConfig(wait_threshold=0.99))
        raised = monitor.update(0, events([
            ("MPI_Wait", -1, -1, 0, 0.0, 0.1),
            ("MPI_Send", 1, 0, 8, 0.1, 1.0),
        ]))
        assert raised == []

    def test_message_rate_alert(self):
        monitor = AlertMonitor(
            "app", 2, AlertConfig(rate_threshold=10.0, window=0.01)
        )
        burst = events([("MPI_Send", 1, 0, 8, 0.0, 0.001)] * 50)
        raised = monitor.update(1, burst)
        assert any(a.kind == "message_rate" for a in raised)

    def test_silence_alert_on_finalize(self):
        monitor = AlertMonitor("app", 2, AlertConfig(silence_threshold=1.0))
        monitor.update(0, events([("MPI_Send", 1, 0, 8, 0.0, 0.1)]))
        monitor.update(1, events([("MPI_Send", 0, 0, 8, 0.0, 9.9)]))
        raised = monitor.finalize(t_end=10.0)
        assert [a.rank for a in raised] == [0]
        assert raised[0].kind == "silence"

    def test_dedup_within_window(self):
        monitor = AlertMonitor("app", 1, AlertConfig(wait_threshold=0.5, window=0.5))
        first = monitor.update(0, events([("MPI_Wait", -1, -1, 0, 0.0, 1.0)]))
        # A second offending batch inside the suppression horizon is deduped.
        again = monitor.update(0, events([("MPI_Wait", -1, -1, 0, 1.0, 1.4)]))
        later = monitor.update(0, events([("MPI_Wait", -1, -1, 0, 2.0, 3.0)]))
        assert len(first) == 1
        assert len(again) == 0
        assert len(later) == 1

    def test_merge_and_by_kind(self):
        a = AlertMonitor("x", 2)
        b = AlertMonitor("x", 2)
        a.alerts.append(Alert("waiting", "x", 0, 1.0, 0.9, 0.6))
        b.alerts.append(Alert("silence", "x", 1, 2.0, 9.0, 5.0))
        a.merge(b)
        assert a.by_kind() == {"waiting": 1, "silence": 1}

    def test_engine_integration(self):
        from repro.analysis.engine import AnalyzerEngine
        from repro.instrument.packer import EventPackBuilder
        from repro.mpi.pmpi import CallRecord

        cfg = AnalysisConfig(modules=("alerts",))
        engine = AnalyzerEngine([("app", 4)], cfg)
        pb = EventPackBuilder(app_id=0, rank=0)
        pb.add(CallRecord("MPI_Wait", 0.0, 0.95, 0, 0, 4, peer=-1, tag=-1, nbytes=0))
        engine.ingest(pb.emit())
        monitor = engine.states["app"]["alerts"]
        assert monitor.by_kind().get("waiting", 0) >= 1
