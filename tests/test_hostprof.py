"""Host-time observability plane: clock injection, profiler, selfperf lane."""

from __future__ import annotations

import gc
import json

import pytest

from repro.apps.nas import SP
from repro.bench.selfperf import CHAINS, _run_once, selfperf_sweep
from repro.blackboard import Blackboard
from repro.core.session import CouplingSession
from repro.errors import ConfigError
from repro.network.machine import TERA100
from repro.telemetry import hostprof
from repro.telemetry.hostprof import (
    HOST_PID,
    HOSTPROF_SCHEMA,
    HostProfiler,
    HostSegment,
    HostTimer,
    NULL_HOSTPROF,
    fake_host_clock,
    host_environment,
    host_now,
    set_host_clock,
)

pytestmark = pytest.mark.selfperf


class ManualClock:
    """A host clock the test advances by hand."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# -- the injectable host clock --------------------------------------------------------


class TestHostClock:
    def test_fake_clock_scopes_and_restores(self):
        clock = ManualClock()
        clock.t = 41.5
        with fake_host_clock(clock):
            assert host_now() == 41.5
            clock.advance(0.5)
            assert host_now() == 42.0
        # Restored: back on perf_counter, which moves.
        a, b = host_now(), host_now()
        assert b >= a

    def test_set_host_clock_returns_previous_and_none_resets(self):
        clock = ManualClock()
        prev = set_host_clock(clock)
        try:
            assert host_now() == 0.0
        finally:
            set_host_clock(None)
        assert prev is not clock
        assert host_now() != pytest.approx(0.0, abs=0.0) or host_now() > 0

    def test_environment_header_keys(self):
        env = host_environment()
        assert set(env) == {
            "python", "implementation", "platform", "machine", "cpu_count",
        }
        assert env["cpu_count"] >= 1


# -- accumulators ---------------------------------------------------------------------


class TestAccumulators:
    def test_timer_math(self):
        t = HostTimer("x")
        t.add(2.0, items=4, nbytes=8_000_000)
        t.add(2.0, items=0, nbytes=0)
        assert t.calls == 2
        assert t.total_s == 4.0
        assert t.max_s == 2.0
        assert t.items_per_s == pytest.approx(1.0)
        assert t.mb_per_s == pytest.approx(2.0)
        d = t.as_dict()
        assert d["items"] == 4 and d["bytes"] == 8_000_000

    def test_empty_timer_rates_are_zero(self):
        t = HostTimer("x")
        assert t.items_per_s == 0.0
        assert t.mb_per_s == 0.0

    def test_segment_excludes_paused_time(self):
        clock = ManualClock()
        with fake_host_clock(clock):
            timer = HostTimer("seg")
            seg = HostSegment(timer)
            clock.advance(1.0)          # charged
            seg.pause()
            clock.advance(5.0)          # a virtual-time wait: not charged
            seg.resume()
            clock.advance(2.0)          # charged
            seg.done(items=3, nbytes=30)
        assert timer.total_s == pytest.approx(3.0)
        assert timer.items == 3 and timer.nbytes == 30

    def test_profiler_timer_get_or_create_and_counts(self):
        hp = HostProfiler()
        assert hp.timer("a") is hp.timer("a")
        hp.count("c", 2)
        hp.count("c")
        assert hp.counts["c"] == 3


# -- activation lifecycle -------------------------------------------------------------


class TestActivation:
    def test_default_is_null_and_disabled(self):
        assert hostprof.ACTIVE is NULL_HOSTPROF
        assert not NULL_HOSTPROF.enabled

    def test_profiled_installs_and_restores(self):
        with hostprof.profiled() as hp:
            assert hostprof.ACTIVE is hp
            assert hp.enabled
        assert hostprof.ACTIVE is NULL_HOSTPROF
        assert hp.t_stop is not None

    def test_profiled_restores_on_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with hostprof.profiled():
                raise RuntimeError("boom")
        assert hostprof.ACTIVE is NULL_HOSTPROF

    def test_double_activate_rejected(self):
        with hostprof.profiled():
            with pytest.raises(RuntimeError, match="already active"):
                hostprof.activate(HostProfiler())

    def test_disabled_profiler_cannot_activate(self):
        with pytest.raises(ValueError):
            hostprof.activate(HostProfiler(enabled=False))

    def test_gc_pauses_are_captured(self):
        with hostprof.profiled() as hp:
            gc.collect()
        assert hp.gc_pauses >= 1
        assert hp.gc_pause_total_s >= 0.0
        # Callback is gone: further collections are not attributed.
        pauses = hp.gc_pauses
        gc.collect()
        assert hp.gc_pauses == pauses

    def test_stop_captures_rss(self):
        with hostprof.profiled() as hp:
            pass
        assert hp.rss_peak_bytes >= hp.rss_bytes >= 0


# -- export ---------------------------------------------------------------------------


class TestExport:
    def test_summary_shape(self):
        with hostprof.profiled() as hp:
            hp.timer("t").add(0.5, items=2, nbytes=10)
            hp.count("c", 1)
        s = hp.summary()
        assert s["schema"] == HOSTPROF_SCHEMA
        assert set(s["host"]) == set(host_environment())
        assert s["timers"]["t"]["items"] == 2
        assert s["counts"]["c"] == 1
        assert {"pauses", "pause_total_s", "pause_max_s", "collections"} <= set(s["gc"])
        assert {"rss_bytes", "rss_peak_bytes", "malloc_peak_bytes"} <= set(s["process"])

    def test_chrome_trace_rides_the_host_pid(self, tmp_path):
        with hostprof.profiled() as hp:
            with hp.span("work", chain="identity"):
                pass
        path = tmp_path / "host.trace.json"
        hp.write_chrome_trace(str(path))
        trace = json.loads(path.read_text())
        events = trace["traceEvents"]
        assert all(e["pid"] == HOST_PID for e in events)
        spans = [e for e in events if e["ph"] == "X"]
        assert spans and spans[0]["name"] == "work"
        assert spans[0]["args"]["schema"] == HOSTPROF_SCHEMA
        assert any(e["name"] == "hostprof.summary" for e in events)

    def test_jsonl_records_are_schema_tagged(self, tmp_path):
        with hostprof.profiled() as hp:
            hp.timer("t").add(0.1)
        path = tmp_path / "host.jsonl"
        hp.write_jsonl(str(path))
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert all(r["schema"] == HOSTPROF_SCHEMA for r in records)
        kinds = {r["kind"] for r in records}
        assert {"meta", "timer", "gc", "process"} <= kinds

    def test_track_malloc_records_peak(self):
        with hostprof.profiled(track_malloc=True) as hp:
            _junk = [bytes(1000) for _ in range(100)]
        assert hp.malloc_peak_bytes is not None and hp.malloc_peak_bytes > 0


# -- the disabled path: observation-only guarantee ------------------------------------


def _session_fingerprint(profiler=None):
    session = CouplingSession(machine=TERA100, seed=0)
    name = session.add_application(SP(16, "C", iterations=1))
    session.set_analyzer(ratio=4.0)
    session.set_reduction("delta+dict")
    if profiler is not None:
        with hostprof.profiled(profiler):
            run = session.run()
    else:
        run = session.run()
    app = run.app(name)
    stats = run.analyzer_stats
    return (app.walltime, app.events, app.packs, stats["packs"], stats["bytes"])


class TestObservationOnly:
    def test_profiler_on_off_bit_identical(self):
        assert _session_fingerprint() == _session_fingerprint(HostProfiler())

    def test_disabled_profiler_books_nothing(self):
        before = dict(NULL_HOSTPROF.timers)
        _session_fingerprint()  # no active profiler anywhere
        assert NULL_HOSTPROF.timers == before == {}

    def test_profiled_run_populates_every_hot_path_timer(self):
        hp = HostProfiler()
        _session_fingerprint(hp)
        names = set(hp.timers)
        assert {
            "kernel.dispatch", "stream.write", "stream.transit", "stream.read",
            "codec.encode", "codec.decode", "frame.parse", "frame.emit",
            "blackboard.submit", "blackboard.execute", "analysis.ingest",
        } <= names
        dispatch = hp.timers["kernel.dispatch"]
        assert dispatch.items > 0 and dispatch.total_s > 0
        assert hp.counts["kernel.heap_pops"] == dispatch.items

    def test_blackboard_probe_is_fake_clock_deterministic(self):
        clock = ManualClock()
        with fake_host_clock(clock), hostprof.profiled() as hp:
            board = Blackboard()
            tid = board.register_type("x")
            board.submit(tid, b"0123456789")
        timer = hp.timers["blackboard.submit"]
        assert timer.calls == 1 and timer.nbytes == 10
        assert timer.total_s == 0.0  # the clock never moved


# -- the selfperf lane ----------------------------------------------------------------


class TestSelfPerfLane:
    def test_sweep_smoke_and_artifacts(self, tmp_path):
        result = selfperf_sweep(
            scale="small", chains=("", "delta+dict"), repeats=1,
            overhead_budget=10.0, trace_dir=str(tmp_path),
        )
        assert [p.chain for p in result.points] == ["", "delta+dict"]
        for p in result.points:
            assert p.events > 0 and p.packs > 0
            assert p.kernel_events_per_s > 0
            assert p.stream_mb_per_s > 0
            assert p.frame_mb_per_s > 0
        assert result.points[1].codec_mb_per_s > 0
        assert result.host == host_environment()
        assert result.profile["schema"] == HOSTPROF_SCHEMA
        table = result.table()
        assert table.columns == [
            "chain", "events", "packs", "kernel_events_per_s",
            "stream_mb_per_s", "codec_mb_per_s", "frame_mb_per_s",
            "kernel_allocs", "stream_allocs", "codec_allocs", "frame_allocs",
            "elapsed_s",
        ]
        for p in result.points:
            assert p.kernel_allocs > 0 and p.frame_allocs > 0
            assert p.stream_allocs >= 0 and p.codec_allocs >= 0
        assert (tmp_path / "BENCH_selfperf.hostprof.trace.json").exists()
        assert (tmp_path / "BENCH_selfperf.hostprof.jsonl").exists()

    def test_sweep_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            selfperf_sweep(scale="huge")
        with pytest.raises(ConfigError):
            selfperf_sweep(repeats=0)

    def test_run_once_matches_chain_grid(self):
        assert CHAINS[0] == ""  # the identity row anchors both self-gates
        app, stats, wall = _run_once("", "small", TERA100, 0)
        assert app.events > 0 and wall > 0 and stats["packs_rejected"] == 0


class TestBenchCLI:
    def test_cli_selfperf_gates_against_committed_baseline(self, tmp_path, capsys):
        # The CI lane in miniature: regenerate, self-gate the profiler,
        # stamp the host header, diff against the committed baseline with
        # the host-speed columns on generous tolerances.
        from repro.bench.__main__ import main as bench_main

        rc = bench_main([
            "selfperf", "--scale", "small", "--json", "--outdir", str(tmp_path),
            "--baseline", "benchmarks/baselines/BENCH_selfperf.json",
            "--metric-tolerance", "kernel_events_per_s=0.9",
            "--metric-tolerance", "stream_mb_per_s=0.9",
            "--metric-tolerance", "codec_mb_per_s=0.9",
            "--metric-tolerance", "frame_mb_per_s=0.9",
            "--metric-tolerance", "kernel_allocs=0.5",
            "--metric-tolerance", "stream_allocs=0.5",
            "--metric-tolerance", "codec_allocs=0.5",
            "--metric-tolerance", "frame_allocs=0.5",
        ])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "PASS" in out
        payload = json.loads((tmp_path / "BENCH_selfperf.json").read_text())
        assert payload["host"] == host_environment()
        assert payload["hostprof"]["schema"] == HOSTPROF_SCHEMA
        assert (tmp_path / "BENCH_selfperf.hostprof.trace.json").exists()

    def test_report_profile_dumps_pstats_and_hotspots(self, tmp_path, capsys):
        import cProfile

        from repro.bench.__main__ import _report_profile

        profiler = cProfile.Profile()
        profiler.enable()
        sum(range(10_000))
        profiler.disable()
        hotspots = _report_profile(profiler, "selfperf", tmp_path)
        out = capsys.readouterr().out
        assert (tmp_path / "BENCH_selfperf.pstats").exists()
        assert "Ordered by: cumulative time" in out
        assert hotspots
        assert {"function", "ncalls", "tottime_s", "cumtime_s"} <= set(hotspots[0])
