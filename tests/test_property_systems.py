"""Property-based tests over subsystem behaviours (mailbox, mapping, blackboard)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.topology import CommMatrix
from repro.blackboard import Blackboard
from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG
from repro.mpi.message import Envelope, Mailbox
from repro.simt import Kernel
from repro.simt.primitives import SimEvent
from repro.vmpi.mapping import FIXED, MapPolicy, RANDOM, ROUND_ROBIN


# ---------------------------------------------------------------------------
# Mailbox: every message matches exactly one receive; FIFO per (src, tag)
# ---------------------------------------------------------------------------


def _deliver(kernel, mailbox, src, tag, seq):
    arrival = SimEvent(kernel)
    env = Envelope(
        comm_id=0, src=src, tag=tag, nbytes=8, payload=seq, arrival=arrival,
        match_event=None,
    )
    mailbox.deliver(env)
    arrival.succeed()
    return env


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=1, max_size=40
    ),
    st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_mailbox_conserves_messages(messages, recv_first):
    kernel = Kernel()
    mailbox = Mailbox(kernel, owner_rank=0)
    received = []

    def on_done(ev):
        received.append(ev.value.payload)

    if recv_first:
        for _ in messages:
            mailbox.post(0, ANY_SOURCE, ANY_TAG, 0.0).add_callback(on_done)
    for seq, (src, tag) in enumerate(messages):
        _deliver(kernel, mailbox, src, tag, seq)
    if not recv_first:
        for _ in messages:
            mailbox.post(0, ANY_SOURCE, ANY_TAG, 0.0).add_callback(on_done)
    kernel.run()
    assert sorted(received) == list(range(len(messages)))
    unexpected, posted = mailbox.pending_counts()
    assert unexpected == 0 and posted == 0


@given(st.lists(st.integers(0, 2), min_size=2, max_size=30))
@settings(max_examples=60, deadline=None)
def test_mailbox_fifo_per_source(srcs):
    """Messages from the same source on one tag arrive in send order."""
    kernel = Kernel()
    mailbox = Mailbox(kernel, owner_rank=0)
    received = []
    for seq, src in enumerate(srcs):
        _deliver(kernel, mailbox, src, 0, (src, seq))
    for _ in srcs:
        mailbox.post(0, ANY_SOURCE, 0, 0.0).add_callback(
            lambda ev: received.append(ev.value.payload)
        )
    kernel.run()
    for src in set(srcs):
        seqs = [s for (m_src, s) in received if m_src == src]
        assert seqs == sorted(seqs)


# ---------------------------------------------------------------------------
# Mapping policies: validity invariants
# ---------------------------------------------------------------------------


@given(
    st.integers(1, 200),
    st.integers(1, 50),
    st.sampled_from([ROUND_ROBIN, FIXED, RANDOM]),
    st.integers(0, 2**31),
)
def test_policy_assignments_in_range(slaves, masters, policy, seed):
    for i in range(slaves):
        local = policy.assign(i, masters, seed)
        assert 0 <= local < masters


@given(st.integers(1, 300), st.integers(1, 60))
def test_round_robin_covers_all_masters(slaves, masters):
    targets = {ROUND_ROBIN.assign(i, masters, 0) for i in range(slaves)}
    assert targets == set(range(min(slaves, masters)))


@given(st.integers(1, 100), st.integers(1, 20), st.integers(0, 1000))
def test_random_policy_deterministic(slaves, masters, seed):
    a = [RANDOM.assign(i, masters, seed) for i in range(slaves)]
    b = [RANDOM.assign(i, masters, seed) for i in range(slaves)]
    assert a == b


# ---------------------------------------------------------------------------
# Blackboard: entry conservation and ref-count hygiene under chained KSs
# ---------------------------------------------------------------------------


@given(st.lists(st.integers(0, 5), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_blackboard_conserves_entries(fanouts):
    board = Blackboard(seed=1)
    t_in = board.register_type("in")
    t_out = board.register_type("out")
    sunk = []

    def splitter(b, entries):
        for e in entries:
            for j in range(e.payload):
                b.submit(t_out, j, size=1)

    board.register_ks("split", [t_in], splitter)
    board.register_ks("sink", [t_out], lambda b, es: sunk.append(es[0].payload))
    submitted = []
    for fanout in fanouts:
        entry = board.submit(t_in, fanout, size=4)
        submitted.append(entry)
    board.run_until_idle()
    assert len(sunk) == sum(fanouts)
    assert all(e.freed for e in submitted)
    assert board.stats()["bytes_current"] == 0


# ---------------------------------------------------------------------------
# CommMatrix: merge commutes with update order
# ---------------------------------------------------------------------------

edges = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(1, 10**6)),
    min_size=1,
    max_size=50,
)


@given(edges, st.integers(0, 50))
@settings(max_examples=50, deadline=None)
def test_comm_matrix_merge_equals_single(edge_list, cut):
    import numpy as np
    from repro.instrument.events import CALL_IDS, EVENT_DTYPE

    def events_for(e_list):
        by_src = {}
        for src, dst, nbytes in e_list:
            by_src.setdefault(src, []).append((dst, nbytes))
        out = {}
        for src, items in by_src.items():
            arr = np.zeros(len(items), dtype=EVENT_DTYPE)
            for i, (dst, nbytes) in enumerate(items):
                arr[i] = (CALL_IDS["MPI_Send"], 0, dst, 0, 8, nbytes, 0.0, 1.0)
            out[src] = arr
        return out

    cut = min(cut, len(edge_list))
    whole = CommMatrix("app", 8)
    for src, arr in events_for(edge_list).items():
        whole.update(src, arr)
    left, right = CommMatrix("app", 8), CommMatrix("app", 8)
    for src, arr in events_for(edge_list[:cut]).items():
        left.update(src, arr)
    for src, arr in events_for(edge_list[cut:]).items():
        right.update(src, arr)
    left.merge(right)
    assert left.cells.keys() == whole.cells.keys()
    for key in whole.cells:
        assert left.cells[key] == pytest.approx(whole.cells[key])
    total_bytes = sum(n for _s, _d, n in edge_list)
    assert whole.totals()[1] == pytest.approx(total_bytes)
