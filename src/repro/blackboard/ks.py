"""Knowledge sources.

A knowledge source is the paper's couple ``{{Sensitivities}, Operation}``:
a set of data-type ids whose joint availability triggers the operation.  A
KS may declare the same type several times (it then consumes that many
entries per firing) and may, from inside its operation, submit new entries
and register or remove knowledge sources — the paper's simplified form of
opportunistic reasoning.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from typing import TYPE_CHECKING, Callable

from repro.errors import BlackboardError
from repro.blackboard.entry import DataEntry

if TYPE_CHECKING:  # pragma: no cover
    from repro.blackboard.board import Blackboard

Operation = Callable[["Blackboard", list[DataEntry]], None]


class KnowledgeSource:
    """One expert around the blackboard."""

    def __init__(self, name: str, sensitivities: list[int], operation: Operation):
        if not sensitivities:
            raise BlackboardError(f"KS {name!r} needs at least one sensitivity")
        if not callable(operation):
            raise BlackboardError(f"KS {name!r}: operation must be callable")
        self.name = name
        self.sensitivities = list(sensitivities)
        self.operation = operation
        self._needs = Counter(sensitivities)
        self._pending: dict[int, deque[DataEntry]] = {t: deque() for t in self._needs}
        self._lock = threading.Lock()
        self.fired = 0

    @property
    def sensitivity_types(self) -> set[int]:
        return set(self._needs)

    def offer(self, entry: DataEntry) -> list[DataEntry] | None:
        """Offer an entry; returns the job's input list once complete.

        The entry must already be retained for this KS by the caller.  When
        every sensitivity slot has enough pending entries, one entry per
        declared slot is consumed (FIFO) and returned in sensitivity
        declaration order.
        """
        if entry.type_id not in self._needs:
            raise BlackboardError(
                f"KS {self.name!r} offered entry of foreign type {entry.type_id:#x}"
            )
        with self._lock:
            self._pending[entry.type_id].append(entry)
            if any(len(self._pending[t]) < n for t, n in self._needs.items()):
                return None
            taken: dict[int, deque[DataEntry]] = {}
            for t, n in self._needs.items():
                taken[t] = deque(self._pending[t].popleft() for _ in range(n))
        return [taken[t].popleft() for t in self.sensitivities]

    def pending_count(self) -> int:
        with self._lock:
            return sum(len(q) for q in self._pending.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KS {self.name} sens={len(self.sensitivities)} fired={self.fired}>"
