"""Event packs: the ~1 MB blocks travelling through VMPI streams.

Wire layout::

    u32 magic | u16 version | u16 app_id | u32 rank | u32 count | <count records>

``app_id`` is the partition index of the producing application (the
multi-level blackboard dispatch key), ``rank`` its virtual (per-application)
rank.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import PackFormatError
from repro.instrument.events import EVENT_RECORD_SIZE, decode_events
from repro.mpi.pmpi import CallRecord
from repro.instrument.events import encode_event

_MAGIC = 0x45564E54  # "EVNT"
_VERSION = 1
_HEADER_FMT = "<IHHII"
PACK_HEADER_SIZE = struct.calcsize(_HEADER_FMT)
assert PACK_HEADER_SIZE == 16


@dataclass(frozen=True)
class PackHeader:
    app_id: int
    rank: int
    count: int

    @property
    def payload_bytes(self) -> int:
        return self.count * EVENT_RECORD_SIZE


class EventPackBuilder:
    """Accumulates encoded events until the block budget is reached."""

    def __init__(self, app_id: int, rank: int, capacity_bytes: int = 1024 * 1024):
        min_capacity = PACK_HEADER_SIZE + EVENT_RECORD_SIZE
        if capacity_bytes < min_capacity:
            raise PackFormatError(
                f"pack capacity {capacity_bytes} below minimum {min_capacity}"
            )
        if not (0 <= app_id < 2**16):
            raise PackFormatError(f"app_id {app_id} outside u16")
        if not (0 <= rank < 2**32):
            raise PackFormatError(f"rank {rank} outside u32")
        self.app_id = app_id
        self.rank = rank
        self.capacity_bytes = capacity_bytes
        self.max_records = (capacity_bytes - PACK_HEADER_SIZE) // EVENT_RECORD_SIZE
        self._records: list[bytes] = []
        self.total_events = 0
        self.packs_emitted = 0

    @property
    def count(self) -> int:
        return len(self._records)

    @property
    def full(self) -> bool:
        return len(self._records) >= self.max_records

    @property
    def size_bytes(self) -> int:
        return PACK_HEADER_SIZE + len(self._records) * EVENT_RECORD_SIZE

    def add(self, record: CallRecord) -> bool:
        """Append one event; returns True when the pack is now full."""
        self._records.append(encode_event(record))
        self.total_events += 1
        return self.full

    def emit(self) -> bytes:
        """Serialize and reset; empty packs serialize with count == 0."""
        header = struct.pack(
            _HEADER_FMT, _MAGIC, _VERSION, self.app_id, self.rank, len(self._records)
        )
        blob = header + b"".join(self._records)
        self._records.clear()
        self.packs_emitted += 1
        return blob


def decode_pack(blob: bytes | memoryview) -> tuple[PackHeader, np.ndarray]:
    """Decode one pack into its header and event array.

    Raises :class:`PackFormatError` on bad magic/version/size.
    """
    view = memoryview(blob)
    if len(view) < PACK_HEADER_SIZE:
        raise PackFormatError(f"pack of {len(view)} bytes shorter than header")
    magic, version, app_id, rank, count = struct.unpack_from(_HEADER_FMT, view, 0)
    if magic != _MAGIC:
        raise PackFormatError(f"bad pack magic {magic:#010x}")
    if version != _VERSION:
        raise PackFormatError(f"unsupported pack version {version}")
    expected = PACK_HEADER_SIZE + count * EVENT_RECORD_SIZE
    if len(view) != expected:
        raise PackFormatError(
            f"pack of {len(view)} bytes, header implies {expected}"
        )
    header = PackHeader(app_id=app_id, rank=rank, count=count)
    events = decode_events(view[PACK_HEADER_SIZE:], count)
    return header, events
