"""Non-blocking operation handles (``MPI_Request`` analogue)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import MPIError
from repro.mpi.status import Status
from repro.simt.primitives import SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.simt.kernel import Kernel


class Request:
    """Handle on a pending send or receive.

    ``yield from req.wait()`` blocks the calling process until completion and
    returns the :class:`~repro.mpi.status.Status` (receives) or ``None``
    (sends).  ``test()`` polls without blocking.
    """

    __slots__ = ("kernel", "event", "kind", "envelope", "_consumed")

    def __init__(self, kernel: "Kernel", event: SimEvent, kind: str):
        self.kernel = kernel
        self.event = event
        self.kind = kind  # "send" | "recv"
        #: For sends: the in-flight Envelope, until delivery consumes it.
        #: Lets transport-level fault handling reach unmatched messages.
        self.envelope = None
        self._consumed = False

    @property
    def complete(self) -> bool:
        return self.event.triggered

    def wait(self):
        """Generator: block until the operation completes."""
        if self._consumed:
            raise MPIError(f"wait() on already-waited {self.kind} request")
        self._consumed = True
        value = yield self.event
        return value if isinstance(value, Status) else None

    def test(self) -> tuple[bool, Status | None]:
        """Non-blocking completion check (``MPI_Test`` without the free)."""
        if not self.event.triggered:
            return False, None
        value = self.event.value
        return True, value if isinstance(value, Status) else None


def waitall(kernel: "Kernel", requests: list[Request]):
    """Generator: block until every request in the list completes.

    Returns the list of statuses (``None`` entries for sends), in request
    order — mirrors ``MPI_Waitall``.
    """
    if not requests:
        return []
    for req in requests:
        if req._consumed:
            raise MPIError("waitall() includes an already-waited request")
        req._consumed = True
    yield kernel.all_of([r.event for r in requests])
    out: list[Status | None] = []
    for req in requests:
        value = req.event.value
        out.append(value if isinstance(value, Status) else None)
    return out


def waitany(kernel: "Kernel", requests: list[Request]):
    """Generator: block until one request completes; returns (index, status).

    The completed request is marked consumed; the others stay waitable —
    mirrors ``MPI_Waitany``.
    """
    if not requests:
        raise MPIError("waitany() on empty request list")
    live = [r for r in requests if not r._consumed]
    if not live:
        raise MPIError("waitany() with all requests already waited")
    yield kernel.any_of([r.event for r in live])
    for idx, req in enumerate(requests):
        if not req._consumed and req.event.triggered:
            req._consumed = True
            value = req.event.value
            return idx, (value if isinstance(value, Status) else None)
    raise MPIError("waitany() woke with no completed request (kernel bug)")
