"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.mpi.costmodel import CostModel
from repro.network.machine import small_test_machine
from repro.simt import Kernel


@pytest.fixture
def kernel() -> Kernel:
    return Kernel()


@pytest.fixture
def machine():
    """Small deterministic machine: 8 nodes x 4 cores, 1 GB/s NICs."""
    return small_test_machine()


@pytest.fixture
def big_machine():
    """Enough nodes for medium integration runs."""
    return small_test_machine(nodes=256, cores_per_node=4)


@pytest.fixture
def cost() -> CostModel:
    return CostModel()


def run_programs(machine, *programs, seed=0, virtualize=True, cost=None):
    """Launch helper: programs are (name, nprocs, main, kwargs) tuples."""
    from repro.mpi.launcher import MPMDLauncher
    from repro.vmpi.virtualization import VirtualizedLauncher

    cls = VirtualizedLauncher if virtualize else MPMDLauncher
    launcher = cls(machine=machine, seed=seed, cost=cost)
    for name, nprocs, main, kwargs in programs:
        launcher.add_program(name, nprocs=nprocs, main=main, **kwargs)
    return launcher.run()
