"""Worker pool sweeping the job FIFOs (paper Sec. III-B).

Real ``threading`` workers for standalone blackboard use — mirroring the
paper's Pthread implementation: each worker sweeps the FIFO array from a
random starting point; an exponential back-off prevents idle threads from
spinning over the locks in the absence of jobs.
"""

from __future__ import annotations

import random
import threading
import time

from repro.errors import BlackboardError
from repro.blackboard.board import Blackboard
from repro.telemetry.hostprof import host_now


class ThreadPool:
    """Pool of worker threads draining a blackboard's job queues."""

    #: initial back-off sleep when no job is found
    BACKOFF_MIN = 50e-6
    #: back-off ceiling
    BACKOFF_MAX = 2e-3

    def __init__(self, board: Blackboard, nworkers: int = 4, seed: int = 0):
        if nworkers < 1:
            raise BlackboardError(f"nworkers must be >= 1, got {nworkers}")
        self.board = board
        self.nworkers = nworkers
        self.seed = seed
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self.jobs_per_worker = [0] * nworkers
        # Host-clock busy/idle accounting, always on (see utilization()).
        self.busy_s = [0.0] * nworkers
        self.idle_s = [0.0] * nworkers
        # Per-worker queue-dwell: how long the jobs a worker picked up had
        # been sitting in the FIFOs (needs telemetry on for submit stamps).
        self.dwell_s = [0.0] * nworkers
        self._started = False

    def start(self) -> None:
        if self._started:
            raise BlackboardError("thread pool already started")
        self._started = True
        for i in range(self.nworkers):
            t = threading.Thread(
                target=self._worker_loop, args=(i,), name=f"bb-worker-{i}", daemon=True
            )
            self._threads.append(t)
            t.start()

    def _worker_loop(self, index: int) -> None:
        rng = random.Random((self.seed << 8) | index)
        backoff = self.BACKOFF_MIN
        while not self._stop.is_set():
            t0 = host_now()
            job = self.board.queues.try_pop(start=rng.randrange(self.board.queues.nqueues))
            if job is not None:
                if job.t_submitted is not None:
                    self.dwell_s[index] += max(
                        0.0, self.board.telemetry.now() - job.t_submitted
                    )
                self.board.execute(job)
                self.busy_s[index] += host_now() - t0
                self.jobs_per_worker[index] += 1
                backoff = self.BACKOFF_MIN
                continue
            time.sleep(backoff)
            self.idle_s[index] += host_now() - t0
            backoff = min(backoff * 2.0, self.BACKOFF_MAX)

    def utilization(self) -> float:
        """Fraction of accounted worker time spent executing jobs."""
        busy, idle = sum(self.busy_s), sum(self.idle_s)
        if busy + idle <= 0:
            return 0.0
        return busy / (busy + idle)

    def drain(self, timeout: float = 30.0) -> None:
        """Wait until the board is idle (all submitted work executed)."""
        if not self.board.wait_idle(timeout=timeout):
            raise BlackboardError(f"blackboard did not drain within {timeout}s")

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        had_workers = bool(self._threads)
        for t in self._threads:
            t.join(timeout=timeout)
            if t.is_alive():  # pragma: no cover - only on pathological stalls
                raise BlackboardError(f"worker {t.name} failed to stop")
        self._threads.clear()
        tel = self.board.telemetry
        if had_workers and tel.enabled:
            tel.counter("blackboard.worker_busy_s").inc(sum(self.busy_s))
            tel.counter("blackboard.worker_idle_s").inc(sum(self.idle_s))

    def __enter__(self) -> "ThreadPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            if not any(exc_info):
                self.drain()
        finally:
            self.stop()
