"""Plain-text table rendering for benchmark-harness output.

The benchmark drivers print the same rows/series as the paper's tables and
figures; :class:`Table` renders them with aligned columns in a form that is
both human-readable and trivially machine-parseable (``to_csv``).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


class Table:
    """A small column-aligned text table."""

    def __init__(self, columns: Sequence[str], title: str | None = None):
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([_fmt_cell(v) for v in values])

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        out = [",".join(self.columns)]
        out.extend(",".join(row) for row in self.rows)
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()


def _fmt_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.4g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
