"""v2 pack frame: wire layout, typed decode errors, rejection accounting."""

import struct

import pytest

from repro.analysis.engine import AnalysisConfig, AnalyzerEngine
from repro.codec.frame import (
    CRC_BODY_SIZE,
    FRAME_HEADER_SIZE,
    SEC_CODEC,
    SEC_CRC,
    SEC_PAYLOAD,
    SEC_PROVENANCE,
    SECTION_HEADER_SIZE,
    PackProvenance,
    build_frame,
    frame_content_size,
    parse_frame,
    peek_header,
    peek_provenance,
    section_name,
)
from repro.errors import (
    ChecksumError,
    FrameTruncatedError,
    PackFormatError,
    SectionLengthError,
    UnknownCodecError,
)
from repro.instrument.events import encode_event
from repro.instrument.packer import decode_pack, verify_pack
from repro.mpi.pmpi import CallRecord

pytestmark = pytest.mark.codec


def _records(n):
    return b"".join(
        encode_event(CallRecord(
            name="MPI_Send", t_start=i * 1e-3, t_end=i * 1e-3 + 2e-6, comm_id=0,
            comm_rank=0, comm_size=4, peer=1, tag=i, nbytes=64,
        ))
        for i in range(n)
    )


def _frame(n=3, app_id=1, **kw):
    return build_frame(app_id, 2, n, _records(n), **kw)


def _insert_section(blob: bytes, stype: int, body: bytes) -> bytes:
    """Splice a raw section in front of the CRC section, bumping nsections."""
    frame = parse_frame(blob)
    nsections = len(frame.sections) + 2  # + new one + CRC
    crc_at = len(blob) - (SECTION_HEADER_SIZE + CRC_BODY_SIZE)
    head = bytearray(blob[:crc_at])
    struct.pack_into("<H", head, 16, nsections)
    head += struct.pack("<HHI", stype, 0, len(body)) + body
    import zlib

    return bytes(head) + struct.pack("<HHI", SEC_CRC, 0, 4) + struct.pack(
        "<I", zlib.crc32(bytes(head))
    )


# -- structure ---------------------------------------------------------------------


def test_minimal_frame_is_header_payload_crc():
    blob = _frame(2)
    assert len(blob) == (
        FRAME_HEADER_SIZE
        + SECTION_HEADER_SIZE + 2 * 40
        + SECTION_HEADER_SIZE + CRC_BODY_SIZE
    )
    frame = parse_frame(blob)
    assert (frame.app_id, frame.rank, frame.count) == (1, 2, 2)
    assert frame.codec == "" and frame.provenance is None
    assert frame.crc_ok is True


def test_parse_emit_is_byte_stable():
    blob = _frame(
        4,
        codec="delta+zlib",
        provenance=PackProvenance(flow_id=9, app_id=1, rank=2, t_seal=0.5),
        events_dropped=3,
    )
    assert parse_frame(blob).to_bytes() == blob


def test_content_size_ignores_optional_sections():
    plain = _frame(5)
    stamped = _frame(
        5, codec="zlib", provenance=PackProvenance(7, 1, 2, 1.0), events_dropped=1
    )
    assert frame_content_size(plain) == frame_content_size(stamped) == 16 + 5 * 40


def test_peek_header_reads_only_the_header():
    blob = _frame(3)
    info = peek_header(blob[:FRAME_HEADER_SIZE])  # sections absent: still fine
    assert (info.app_id, info.rank, info.count) == (1, 2, 3)


def test_section_names():
    assert section_name(SEC_PAYLOAD) == "PAYLOAD"
    assert section_name(99) == "UNKNOWN(99)"


# -- typed decode errors -----------------------------------------------------------


def test_truncated_header_rejected():
    with pytest.raises(FrameTruncatedError):
        parse_frame(_frame()[: FRAME_HEADER_SIZE - 1])


def test_truncated_section_rejected():
    blob = _frame(3)
    with pytest.raises(FrameTruncatedError):
        parse_frame(blob[:-1])
    with pytest.raises(FrameTruncatedError):
        parse_frame(blob[: FRAME_HEADER_SIZE + 3])


def test_bad_magic_and_version_rejected():
    blob = bytearray(_frame())
    blob[0] ^= 0xFF
    with pytest.raises(PackFormatError, match="magic"):
        parse_frame(bytes(blob))
    blob = bytearray(_frame())
    struct.pack_into("<H", blob, 4, 99)
    with pytest.raises(PackFormatError, match="version"):
        parse_frame(bytes(blob))


def test_trailing_garbage_rejected():
    with pytest.raises(SectionLengthError):
        parse_frame(_frame() + b"xx")


def test_bad_provenance_length_rejected():
    blob = _insert_section(_frame(), SEC_PROVENANCE, b"\x00" * 10)
    with pytest.raises(SectionLengthError):
        parse_frame(blob)


def test_crc_mismatch_rejected_and_recorded():
    blob = bytearray(_frame(3))
    blob[FRAME_HEADER_SIZE + SECTION_HEADER_SIZE + 5] ^= 0xFF
    with pytest.raises(ChecksumError):
        parse_frame(bytes(blob))
    frame = parse_frame(bytes(blob), verify=False)  # diagnostics still work
    assert frame.crc_ok is False and frame.stored_crc is not None


def test_missing_crc_rejected():
    frame = parse_frame(_frame())
    naked = frame.to_bytes()[: -(SECTION_HEADER_SIZE + CRC_BODY_SIZE)]
    fixed = bytearray(naked)
    struct.pack_into("<H", fixed, 16, len(frame.sections))  # honest nsections
    with pytest.raises(ChecksumError, match="no CRC"):
        parse_frame(bytes(fixed))


def test_unknown_codec_rejected():
    blob = _frame(3, codec="quantum-entangler")
    with pytest.raises(UnknownCodecError):
        verify_pack(blob)
    with pytest.raises(UnknownCodecError):
        decode_pack(blob)


def test_not_bytes_rejected():
    with pytest.raises(PackFormatError, match="not bytes"):
        parse_frame(12345)


def test_all_decode_errors_are_pack_format_errors():
    for exc in (FrameTruncatedError, SectionLengthError, ChecksumError,
                UnknownCodecError):
        assert issubclass(exc, PackFormatError)


# -- forward compatibility ---------------------------------------------------------


def test_unknown_section_is_skipped_and_preserved():
    blob = _insert_section(_frame(3), 77, b"future-data")
    frame = parse_frame(blob)  # no error: unknown types are tolerated
    assert frame.section(77) == b"future-data"
    assert frame.count == 3
    header, events = decode_pack(blob)  # decoding ignores it entirely
    assert header.count == 3 and len(events) == 3
    # ... and it survives a parse -> emit round trip.
    assert parse_frame(frame.to_bytes()).section(77) == b"future-data"


# -- provenance peeks never raise --------------------------------------------------


def test_peek_provenance_robustness():
    assert peek_provenance(b"") is None
    assert peek_provenance(None) is None
    assert peek_provenance(_frame()) is None
    stamped = _frame(2, provenance=PackProvenance(0xAB, 1, 2, 3.5))
    prov = peek_provenance(stamped)
    assert (prov.flow_id, prov.app_id, prov.rank, prov.t_seal) == (0xAB, 1, 2, 3.5)
    corrupt = bytearray(stamped)
    corrupt[-1] ^= 0xFF
    assert peek_provenance(bytes(corrupt)) is not None  # CRC not required to peek


# -- rejection accounting in the analyzer ------------------------------------------


class TestEngineRejection:
    def _engine(self, **cfg):
        return AnalyzerEngine([("app", 4)], AnalysisConfig(**cfg))

    def _reject(self, engine, blob, cause):
        before = engine.packs_rejected
        assert engine.ingest(blob) is False
        assert engine.packs_rejected == before + 1
        assert engine.rejects_by_cause.get(cause, 0) >= 1

    def test_each_error_counted_by_cause(self):
        engine = self._engine()
        self._reject(engine, _frame(app_id=0)[:10], "FrameTruncatedError")
        self._reject(engine, _frame(app_id=0) + b"!", "SectionLengthError")
        bad_crc = bytearray(_frame(app_id=0))
        bad_crc[FRAME_HEADER_SIZE + SECTION_HEADER_SIZE] ^= 0xFF
        self._reject(engine, bytes(bad_crc), "ChecksumError")
        self._reject(engine, _frame(app_id=0, codec="no-such-codec"),
                     "UnknownCodecError")
        assert engine.packs_rejected == 4
        assert sum(engine.rejects_by_cause.values()) == 4
        assert engine.packs_ingested == 0

    def test_accept_codecs_gate(self):
        engine = self._engine(accept_codecs=("delta",))
        self._reject(engine, _frame(app_id=0), "UnknownCodecError")
        engine2 = self._engine(accept_codecs=("", "delta"))
        assert engine2.ingest(_frame(app_id=0)) is True

    def test_healthy_pack_accepted(self):
        engine = self._engine()
        assert engine.ingest(_frame(5, app_id=0)) is True
        assert engine.packs_rejected == 0
        assert engine.bytes_wire_ingested == len(_frame(5, app_id=0))
        assert engine.codecs_seen == {"identity": 1}
