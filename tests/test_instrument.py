"""Event records, pack wire format, cost model, streaming interceptor."""

import struct

import numpy as np
import pytest

from repro.codec.frame import (
    CRC_BODY_SIZE,
    FRAME_HEADER_SIZE,
    SECTION_HEADER_SIZE,
)
from repro.errors import ConfigError, InstrumentationError, PackFormatError
from repro.instrument import (
    CALL_IDS,
    EVENT_DTYPE,
    EVENT_RECORD_SIZE,
    EventPackBuilder,
    InstrumentationCost,
    PACK_HEADER_SIZE,
    call_id,
    decode_events,
    decode_pack,
    encode_event,
)
from repro.mpi.pmpi import CallRecord

def _frame_size(nrecords: int) -> int:
    """Physical v2 frame bytes around an n-record identity payload."""
    return (
        FRAME_HEADER_SIZE
        + SECTION_HEADER_SIZE + nrecords * EVENT_RECORD_SIZE
        + SECTION_HEADER_SIZE + CRC_BODY_SIZE
    )


def _record(name="MPI_Send", peer=3, tag=7, nbytes=1024, t0=1.0, t1=1.5, size=16):
    return CallRecord(
        name=name,
        t_start=t0,
        t_end=t1,
        comm_id=0,
        comm_rank=0,
        comm_size=size,
        peer=peer,
        tag=tag,
        nbytes=nbytes,
    )


class TestEvents:
    def test_record_size_is_40_bytes(self):
        assert EVENT_RECORD_SIZE == 40
        assert EVENT_DTYPE.itemsize == 40

    def test_encode_decode_roundtrip(self):
        blob = encode_event(_record())
        events = decode_events(blob)
        assert len(events) == 1
        e = events[0]
        assert e["call"] == CALL_IDS["MPI_Send"]
        assert e["peer"] == 3 and e["tag"] == 7
        assert e["nbytes"] == 1024
        assert e["comm_size"] == 16
        assert e["t_start"] == 1.0 and e["t_end"] == 1.5

    def test_negative_peer_and_tag_survive(self):
        blob = encode_event(_record(name="MPI_Allreduce", peer=-1, tag=-1))
        e = decode_events(blob)[0]
        assert e["peer"] == -1 and e["tag"] == -1

    def test_unknown_call_rejected(self):
        with pytest.raises(InstrumentationError):
            call_id("MPI_Bogus")
        with pytest.raises(InstrumentationError):
            encode_event(_record(name="MPI_Bogus"))

    def test_decode_partial_buffer_rejected(self):
        blob = encode_event(_record())[:-1]
        with pytest.raises(InstrumentationError):
            decode_events(blob)

    def test_decode_count_overrun_rejected(self):
        blob = encode_event(_record())
        with pytest.raises(InstrumentationError):
            decode_events(blob, count=2)

    def test_decode_is_zero_copy_view(self):
        blob = encode_event(_record()) * 3
        events = decode_events(blob)
        assert len(events) == 3
        assert events.base is not None  # view, not copy


class TestPackBuilder:
    def test_header_roundtrip(self):
        pb = EventPackBuilder(app_id=2, rank=17, capacity_bytes=4096)
        for _ in range(5):
            pb.add(_record())
        blob = pb.emit()
        header, events = decode_pack(blob)
        assert header.app_id == 2 and header.rank == 17 and header.count == 5
        assert len(events) == 5
        assert len(blob) == _frame_size(5)

    def test_full_flag_at_capacity(self):
        capacity = PACK_HEADER_SIZE + 3 * EVENT_RECORD_SIZE
        pb = EventPackBuilder(app_id=0, rank=0, capacity_bytes=capacity)
        assert pb.add(_record()) is False
        assert pb.add(_record()) is False
        assert pb.add(_record()) is True
        assert pb.full

    def test_emit_resets(self):
        pb = EventPackBuilder(app_id=0, rank=0)
        pb.add(_record())
        pb.emit()
        assert pb.count == 0
        header, events = decode_pack(pb.emit())
        assert header.count == 0 and len(events) == 0
        assert pb.packs_emitted == 2
        assert pb.total_events == 1

    def test_capacity_validation(self):
        with pytest.raises(PackFormatError):
            EventPackBuilder(app_id=0, rank=0, capacity_bytes=10)

    def test_id_bounds(self):
        with pytest.raises(PackFormatError):
            EventPackBuilder(app_id=2**16, rank=0)
        with pytest.raises(PackFormatError):
            EventPackBuilder(app_id=0, rank=2**32)

    def test_decode_rejects_bad_magic(self):
        pb = EventPackBuilder(app_id=0, rank=0)
        pb.add(_record())
        blob = bytearray(pb.emit())
        blob[0] ^= 0xFF
        with pytest.raises(PackFormatError, match="magic"):
            decode_pack(bytes(blob))

    def test_decode_rejects_truncated(self):
        pb = EventPackBuilder(app_id=0, rank=0)
        pb.add(_record())
        blob = pb.emit()
        with pytest.raises(PackFormatError):
            decode_pack(blob[:-5])
        with pytest.raises(PackFormatError):
            decode_pack(blob[: PACK_HEADER_SIZE - 2])

    def test_decode_rejects_bad_version(self):
        pb = EventPackBuilder(app_id=0, rank=0)
        blob = bytearray(pb.emit())
        struct.pack_into("<H", blob, 4, 99)
        with pytest.raises(PackFormatError, match="version"):
            decode_pack(bytes(blob))


class TestInstrumentationCost:
    def test_defaults_valid(self):
        cost = InstrumentationCost()
        assert cost.per_event_cpu > 0
        assert cost.volume_multiplier >= 1.0

    def test_modeled_bytes(self):
        cost = InstrumentationCost(volume_multiplier=2.0)
        assert cost.modeled_bytes(100) == 200

    def test_validation(self):
        with pytest.raises(ConfigError):
            InstrumentationCost(per_event_cpu=-1)
        with pytest.raises(ConfigError):
            InstrumentationCost(volume_multiplier=0.5)
        with pytest.raises(ConfigError):
            InstrumentationCost(block_size=16)
        with pytest.raises(ConfigError):
            InstrumentationCost(na_buffers=0)


class TestStreamingInterceptor:
    def _run_session(self, machine, iterations=3, **cost_kw):
        from repro.apps.nas import CG
        from repro.core.session import CouplingSession

        session = CouplingSession(
            machine=machine,
            seed=0,
            instrumentation=InstrumentationCost(**cost_kw) if cost_kw else None,
        )
        name = session.add_application(CG(8, "C", iterations=iterations))
        session.set_analyzer(ratio=1.0)
        return name, session.run()

    def test_every_call_captured(self, big_machine):
        name, result = self._run_session(big_machine)
        run = result.app(name)
        # Events were captured and fully delivered to the analyzer.
        assert run.events > 0
        profile = result.report.chapter(name).profile
        assert profile.events_total == run.events

    def test_small_blocks_mean_more_packs(self, big_machine):
        _, result_big = self._run_session(
            big_machine, iterations=40, block_size=1024 * 1024
        )
        _, result_small = self._run_session(big_machine, iterations=40, block_size=4096)
        big_packs = list(result_big.apps.values())[0].packs
        small_packs = list(result_small.apps.values())[0].packs
        assert small_packs > big_packs

    def test_modeled_volume_tracks_multiplier(self, big_machine):
        name1, r1 = self._run_session(big_machine, volume_multiplier=1.0)
        name2, r2 = self._run_session(big_machine, volume_multiplier=3.0)
        v1 = r1.app(name1).modeled_stream_bytes
        v2 = r2.app(name2).modeled_stream_bytes
        assert v2 > 2.5 * v1

    def test_zero_cost_instrumentation_has_tiny_overhead(self, big_machine):
        from repro.apps.nas import CG
        from repro.core.session import CouplingSession

        session = CouplingSession(
            machine=big_machine,
            instrumentation=InstrumentationCost(
                per_event_cpu=0.0, pack_flush_cpu=0.0
            ),
        )
        name = session.add_application(CG(8, "C", iterations=3))
        session.set_analyzer(ratio=1.0)
        instrumented = session.run().app(name).walltime
        reference = session.run_reference().app(name).walltime
        assert instrumented <= reference * 1.05
