"""Exception hierarchy for the :mod:`repro` package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event simulation kernel."""


class ProcessCrashError(SimulationError):
    """A process crashed with no other process joining it.

    Carries the crashed process name and the original exception (also
    chained as ``__cause__``) so callers can distinguish a genuine crash
    from a deadlock or a kernel bug.
    """

    def __init__(self, process_name: str, original: BaseException):
        self.process_name = process_name
        self.original = original
        super().__init__(
            f"unhandled crash in process {process_name}: {original!r}"
        )


class DeadlockError(SimulationError):
    """The kernel ran out of events while processes were still blocked."""

    def __init__(self, blocked: list[str]):
        self.blocked = list(blocked)
        preview = ", ".join(blocked[:8])
        more = "" if len(blocked) <= 8 else f" (+{len(blocked) - 8} more)"
        super().__init__(f"deadlock: {len(blocked)} blocked process(es): {preview}{more}")


class MPIError(ReproError):
    """Errors raised by the simulated MPI runtime."""


class CommunicatorError(MPIError):
    """Invalid communicator usage (bad rank, freed communicator, ...)."""


class TruncationError(MPIError):
    """A receive buffer was smaller than the matched message."""


class VMPIError(ReproError):
    """Errors raised by the VMPI virtualization / mapping / stream layer."""


class MappingError(VMPIError):
    """Invalid partition mapping request."""


class StreamClosedError(VMPIError):
    """Operation attempted on a closed VMPI stream."""


class BlackboardError(ReproError):
    """Errors raised by the parallel blackboard engine."""


class UnknownTypeError(BlackboardError):
    """A data entry referenced an unregistered data type."""


class InstrumentationError(ReproError):
    """Errors raised by the event instrumentation layer."""


class PackFormatError(InstrumentationError):
    """An event pack failed to decode (corrupt header or payload)."""


class FrameTruncatedError(PackFormatError):
    """A pack frame ended before its declared sections did."""


class SectionLengthError(PackFormatError):
    """A frame section declared a length inconsistent with its type or blob."""


class ChecksumError(PackFormatError):
    """A frame's CRC-32 section is missing or does not match its bytes."""


class UnknownCodecError(PackFormatError):
    """A frame's codec descriptor names a reduction stage this build lacks."""


class IOSimError(ReproError):
    """Errors raised by the parallel file-system model."""


class ConfigError(ReproError):
    """Invalid user-facing configuration."""
