#!/usr/bin/env python
"""Adaptive steering tour: close the control loop inside a running session.

Two congested sessions back to back.  Both stream an instrumented SP kernel
into a 4-rank analyzer on its own node, and both suffer the same mid-run
fault: the analyzer node's NIC degrades sharply, so rendezvous pack
transfers crawl, writers exhaust their asynchronous buffers, and write
timeouts start dropping packs.

1. **static** — the policy observes but may not act.  Packs are dropped
   until the link recovers; the analyzer sees fewer events.
2. **adaptive** — the same :class:`SteeringPolicy` with its actuators
   enabled.  The controller reacts to the monitor's ``stream_write_timeout``
   alerts by escalating the reduction chain (identity -> delta+dict ->
   delta+dict+zlib): compressed packs shrink below the congested link's
   pain threshold, drops stop, and once the monitor's alerts go quiet the
   controller relaxes the chain back to identity, one hysteresis step at a
   time.

Every decision is journalled with its triggering alert and before/after
flow latency, lands in the report's "Steering" section, and marks the
Chrome trace with an instant event.

Run:  python examples/adaptive_steering.py
"""

import dataclasses

from repro import CouplingSession
from repro.apps import SP
from repro.faults import LINK_DEGRADE, FaultPlan, FaultSpec
from repro.instrument.overhead import InstrumentationCost
from repro.mpi.costmodel import CostModel
from repro.network.machine import TERA100
from repro.steering import SteeringPolicy
from repro.steering.policy import static_policy
from repro.telemetry import Telemetry

# Writers on nodes 0-1, the analyzer alone on node 2: only inter-node
# traffic crosses the NIC the fault degrades.
MACHINE = dataclasses.replace(TERA100, cores_per_node=8)

POLICY = SteeringPolicy(
    name="congestion-response",
    reduction_steps=("", "delta+dict", "delta+dict+zlib"),
    escalate_on=("stream_stall", "stream_write_timeout",
                 "stream_overflow_drop", "backlog_growth"),
    autoscale_on=("backlog_growth", "analyzer_stall"),
    enable_rebalance=False,
)


def run_session(label: str, policy) -> None:
    print(f"=== {label} (policy: {policy.name}) ===")
    cost = dataclasses.replace(
        CostModel.for_machine(MACHINE, ranks_per_node=8),
        eager_threshold=2048,  # 4 KiB packs rendezvous: congestion is felt
    )
    session = CouplingSession(
        machine=MACHINE, seed=7, telemetry=Telemetry(), mpi_cost=cost,
        instrumentation=InstrumentationCost(
            block_size=4096, na_buffers=2, write_timeout=2e-3,
            max_retries=2, overflow="drop-newest",
        ),
    )
    name = session.add_application(SP(16, "C", iterations=12))
    session.set_analyzer(nprocs=4)
    session.enable_monitor()
    session.enable_steering(policy)

    # Degrade the analyzer node's NIC to a trickle mid-streaming-phase.
    session.inject_faults(FaultPlan(
        specs=(FaultSpec(LINK_DEGRADE, at=1.35, target=-1, factor=2e-5),),
        name="congestion",
    ))

    result = session.run()
    run = result.app(name)
    dropped = sum(st.stats()["blocks_dropped"]
                  for _, st in result.world.streams if st.mode == "w")
    events = result.report.chapter(name).profile.events_total
    print(f"  walltime={run.walltime:.4f}s  analyzed_events={events}"
          f"  packs_dropped={dropped}")
    steering = result.steering
    print(f"  alerts seen: {steering['alerts_seen']},"
          f" decisions: {len(steering['decisions'])}")
    for d in steering["decisions"]:
        print(f"    [{d['t']:.4f}s] {d['action']}"
              f" <- {d['trigger_kind']} {d['detail']}")
    report = result.report.render()
    if "## Steering" in report:
        print()
        print(report[report.index("## Steering"):])
    print()


def main() -> None:
    run_session("static baseline", static_policy())
    run_session("adaptive", POLICY)

    # Policies are declarative and JSON round-trippable, like fault plans:
    print("=== the policy, as you would commit it next to a fault plan ===")
    print(POLICY.to_json())


if __name__ == "__main__":
    main()
