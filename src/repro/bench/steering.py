"""Steering bench: the adaptive control loop versus a static configuration.

Four rows of the same coupled workload (an instrumented SP kernel streaming
into a multi-rank analyzer): static and adaptive policies, each run healthy
and under a congestion fault plan that degrades the analyzer node's NIC
mid-streaming-phase.  The topology deliberately splits writers and
analyzers across nodes (``cores_per_node=8``) and lowers the rendezvous
threshold so every 4 KiB pack crosses the degraded link as a rendezvous
transfer — eager sends would complete into MPI buffering and writers would
never feel the congestion.

The lane self-gates: under congestion the adaptive policy must make at
least one decision, lose strictly fewer packs than the static run and hold
at least the static analyzed-event throughput; on the healthy workload it
must make *zero* decisions and reproduce the static run bit-identically
(same virtual wall-time, analyzed events and sealed packs).  A violated
gate raises :class:`~repro.errors.ConfigError`, so ``python -m repro.bench
steering`` fails loudly in CI without needing a baseline diff.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.apps.nas import SP
from repro.core.session import CouplingSession, SessionResult
from repro.errors import ConfigError
from repro.faults import LINK_DEGRADE, FaultPlan, FaultSpec
from repro.instrument.overhead import InstrumentationCost
from repro.mpi.costmodel import CostModel
from repro.network.machine import MachineSpec, TERA100
from repro.steering import SteeringPolicy
from repro.steering.policy import static_policy
from repro.telemetry import Telemetry
from repro.util.tables import Table

#: where in the healthy run's app wall-time the congestion plan anchors
_ANCHOR_FRACTION = 0.35
#: NIC bandwidth multiplier of the degraded analyzer node
_DEGRADE_FACTOR = 2e-5
#: ranks per node — writers on nodes 0-1, the 4-rank analyzer alone on node 2
_CORES_PER_NODE = 8
#: rendezvous threshold: below the pack size, so stream packs never go eager
_EAGER_THRESHOLD = 2048


def bench_policy() -> SteeringPolicy:
    """The adaptive policy the lane benchmarks.

    Escalation triggers are limited to genuine transport distress: the
    healthy reference workload legitimately raises ``load_imbalance`` /
    ``worker_starvation`` / ``critical_path`` alerts, and a policy that
    acted on those would fail the zero-decision gate on the healthy rows.
    """
    return SteeringPolicy(
        name="bench-congestion",
        reduction_steps=("", "delta+dict", "delta+dict+zlib"),
        escalate_on=(
            "stream_stall",
            "stream_write_timeout",
            "stream_overflow_drop",
            "backlog_growth",
        ),
        autoscale_on=("backlog_growth", "analyzer_stall"),
        enable_rebalance=False,
    )


@dataclass
class SteeringBenchPoint:
    """One (policy, plan) run of the reference coupled workload."""

    policy: str
    plan: str
    decisions: int
    escalations: int
    relaxes: int
    packs_written: int
    packs_dropped: int
    packs_stranded: int
    write_timeouts: int
    events_analyzed: int
    app_walltime: float
    events_per_s: float


@dataclass
class SteeringBenchResult:
    """Static-versus-adaptive sweep, plus the adaptive decision log."""

    machine: str
    scale: str
    seed: int
    points: list[SteeringBenchPoint] = field(default_factory=list)
    #: ``SteeringController.summary()`` of the adaptive congested run
    decision_log: dict | None = field(default=None, repr=False)

    def table(self) -> Table:
        t = Table(
            [
                "policy", "plan", "decisions", "escalations", "relaxes",
                "packs_written", "packs_dropped", "packs_stranded",
                "write_timeouts", "events_analyzed", "app_walltime_s",
                "events_per_s",
            ],
            title=f"Adaptive steering ({self.machine}, scale={self.scale})",
        )
        for p in self.points:
            t.add_row(
                p.policy, p.plan, p.decisions, p.escalations, p.relaxes,
                p.packs_written, p.packs_dropped, p.packs_stranded,
                p.write_timeouts, p.events_analyzed,
                f"{p.app_walltime:.6f}", f"{p.events_per_s:.1f}",
            )
        return t


def _workload(scale: str):
    """(kernel, analyzer ranks): enough iterations for sustained packs."""
    if scale == "paper":
        return SP(16, "C", iterations=40), 4
    if scale == "small":
        return SP(16, "C", iterations=12), 4
    raise ConfigError(f"unknown scale {scale!r}")


def _run(kernel, readers: int, machine: MachineSpec, seed: int,
         policy: SteeringPolicy, plan: FaultPlan | None,
         telemetry: Telemetry | None) -> tuple[SessionResult, str]:
    # Writers must share nodes 0-1 while the analyzer sits alone on node 2:
    # only inter-node traffic touches the NIC the congestion plan degrades.
    mach = dataclasses.replace(machine, cores_per_node=_CORES_PER_NODE)
    cost = dataclasses.replace(
        CostModel.for_machine(mach, ranks_per_node=_CORES_PER_NODE),
        eager_threshold=_EAGER_THRESHOLD,
    )
    icost = InstrumentationCost(
        block_size=4096, na_buffers=2,
        write_timeout=2e-3, max_retries=2, overflow="drop-newest",
    )
    session = CouplingSession(
        machine=mach, seed=seed, instrumentation=icost, mpi_cost=cost,
        telemetry=telemetry if telemetry is not None else Telemetry(),
    )
    name = session.add_application(kernel)
    session.set_analyzer(nprocs=readers)
    session.enable_monitor()
    session.enable_steering(policy)
    if plan is not None:
        session.inject_faults(plan)
    return session.run(), name


def _point(result: SessionResult, name: str, policy: str, plan: str) -> SteeringBenchPoint:
    run = result.app(name)
    by_action = {}
    decisions = 0
    if result.steering:
        decisions = len(result.steering["decisions"])
        by_action = result.steering["by_action"]
    writers = [st.stats() for _, st in result.world.streams if st.mode == "w"]
    readers = [st.stats() for _, st in result.world.streams if st.mode == "r"]
    events = result.report.chapter(name).profile.events_total
    return SteeringBenchPoint(
        policy=policy,
        plan=plan,
        decisions=decisions,
        escalations=by_action.get("escalate_reduction", 0),
        relaxes=by_action.get("relax_reduction", 0),
        packs_written=sum(st["blocks_written"] for st in writers),
        packs_dropped=sum(st["blocks_dropped"] for st in writers),
        packs_stranded=sum(st["blocks_discarded_at_close"] for st in readers),
        write_timeouts=sum(st["write_timeouts"] for st in writers),
        events_analyzed=events,
        app_walltime=run.walltime,
        events_per_s=events / run.walltime if run.walltime > 0 else 0.0,
    )


def _lost(p: SteeringBenchPoint) -> int:
    return p.packs_dropped + p.packs_stranded


def _gate(healthy_static: SteeringBenchPoint, healthy_adaptive: SteeringBenchPoint,
          congested_static: SteeringBenchPoint,
          congested_adaptive: SteeringBenchPoint) -> None:
    """The lane's acceptance criteria; ConfigError names the broken gate."""
    if healthy_adaptive.decisions != 0:
        raise ConfigError(
            f"steering gate: adaptive policy made {healthy_adaptive.decisions} "
            "decisions on the healthy workload (expected none)"
        )
    same = (
        healthy_static.app_walltime == healthy_adaptive.app_walltime
        and healthy_static.events_analyzed == healthy_adaptive.events_analyzed
        and healthy_static.packs_written == healthy_adaptive.packs_written
    )
    if not same:
        raise ConfigError(
            "steering gate: enabled-but-never-triggered steering changed the "
            f"healthy run (static {healthy_static.app_walltime:.9f}s/"
            f"{healthy_static.events_analyzed}ev/{healthy_static.packs_written}pk "
            f"vs adaptive {healthy_adaptive.app_walltime:.9f}s/"
            f"{healthy_adaptive.events_analyzed}ev/{healthy_adaptive.packs_written}pk)"
        )
    if congested_adaptive.decisions < 1:
        raise ConfigError(
            "steering gate: congestion plan triggered no adaptive decisions"
        )
    if not _lost(congested_adaptive) < _lost(congested_static):
        raise ConfigError(
            "steering gate: adaptive policy did not cut pack loss "
            f"({_lost(congested_adaptive)} lost vs static {_lost(congested_static)})"
        )
    if congested_adaptive.events_per_s < congested_static.events_per_s:
        raise ConfigError(
            "steering gate: adaptive throughput "
            f"{congested_adaptive.events_per_s:.1f} ev/s fell below static "
            f"{congested_static.events_per_s:.1f} ev/s under congestion"
        )


def steering_adaptation(
    scale: str = "small",
    machine: MachineSpec = TERA100,
    seed: int = 0,
    telemetry: Telemetry | None = None,
    decisions_dir: str | None = None,
) -> SteeringBenchResult:
    """Run the static/adaptive × healthy/congested grid and self-gate.

    With ``decisions_dir`` the adaptive congested run's full decision log
    (policy, alerts seen, per-decision trigger/latency data) is written to
    ``steering_decisions.json`` for artefact upload.
    """
    kernel, readers = _workload(scale)
    result = SteeringBenchResult(machine=machine.name, scale=scale, seed=seed)

    # Healthy rows anchor the congestion plan and feed the bit-identity gate.
    rows: dict[tuple[str, str], SteeringBenchPoint] = {}
    run, name = _run(kernel, readers, machine, seed, static_policy(), None, telemetry)
    rows[("static", "none")] = _point(run, name, "static", "none")
    anchor = run.app(name).walltime * _ANCHOR_FRACTION

    run, name = _run(kernel, readers, machine, seed, bench_policy(), None, telemetry)
    rows[("adaptive", "none")] = _point(run, name, "adaptive", "none")

    plan = FaultPlan(
        specs=(FaultSpec(LINK_DEGRADE, at=anchor, target=-1,
                         factor=_DEGRADE_FACTOR),),
        name="congestion",
    )
    run, name = _run(kernel, readers, machine, seed, static_policy(), plan, telemetry)
    rows[("static", "congestion")] = _point(run, name, "static", "congestion")

    run, name = _run(kernel, readers, machine, seed, bench_policy(), plan, telemetry)
    rows[("adaptive", "congestion")] = _point(run, name, "adaptive", "congestion")
    result.decision_log = run.steering

    for key in (("static", "none"), ("adaptive", "none"),
                ("static", "congestion"), ("adaptive", "congestion")):
        result.points.append(rows[key])

    _gate(rows[("static", "none")], rows[("adaptive", "none")],
          rows[("static", "congestion")], rows[("adaptive", "congestion")])

    if decisions_dir is not None:
        path = Path(decisions_dir) / "steering_decisions.json"
        path.write_text(json.dumps(result.decision_log, indent=2, default=str))
    return result
