"""Incremental NDJSON export of the online efficiency-metrics stream.

A visual-analytics frontend (or the future analyzer service) cannot wait
for teardown: it tails a file and renders windows as they close.  The
:class:`MetricsStreamWriter` is a :class:`~repro.telemetry.popmetrics.
PopMetricsEngine` sink that appends one schema-versioned JSON object per
line — and flushes after every record — the moment each virtual-time
window (or detected phase, or the final run summary) is sealed, so

    tail -f session.ndjson | jq -c 'select(.kind == "window")'

shows efficiency evolving *during* the simulation, in emission order:
``window`` records as windows close, a ``phase`` record whenever the
change-point detector seals a phase, one ``run_summary`` at finalize.

Every record carries ``schema`` (:data:`METRICS_SCHEMA`) so readers can
reject streams they do not understand; :func:`read_metrics_stream` is the
matching loader/validator.
"""

from __future__ import annotations

import json
from typing import IO, Any, Iterator

from repro.errors import ConfigError
from repro.obs.archive import iter_ndjson
from repro.obs.registry import METRICS_KINDS, METRICS_SCHEMA, make_record

__all__ = [
    "METRICS_SCHEMA",
    "STREAM_KINDS",
    "MetricsStreamWriter",
    "iter_metrics_stream",
    "read_metrics_stream",
]

#: record kinds a version-1 metrics stream may contain (the authoritative
#: set lives in the schema registry, :mod:`repro.obs.registry`)
STREAM_KINDS = ("window", "phase", "run_summary")
assert frozenset(STREAM_KINDS) == METRICS_KINDS


class MetricsStreamWriter:
    """Engine sink that streams NDJSON records as they are produced.

    ``target`` is a path (opened/truncated immediately, closed by
    :meth:`close`) or an already-open text file object (caller keeps
    ownership).  Records are flushed line by line, never buffered to
    teardown — the whole point of the streaming export.
    """

    def __init__(self, target: str | IO[str]):
        if hasattr(target, "write"):
            self._fh: IO[str] = target
            self._owns = False
            self.path = getattr(target, "name", None)
        else:
            self._fh = open(target, "w")
            self._owns = True
            self.path = str(target)
        self.records_written = 0
        self._closed = False

    # -- engine sink protocol -----------------------------------------------------

    def on_window(self, window: dict[str, Any]) -> None:
        self._emit("window", window)

    def on_phase(self, phase: dict[str, Any]) -> None:
        self._emit("phase", phase)

    def on_run_summary(self, summary: dict[str, Any]) -> None:
        self._emit("run_summary", summary)

    # -- plumbing -----------------------------------------------------------------

    def _emit(self, kind: str, payload: dict[str, Any]) -> None:
        if self._closed:
            raise ConfigError("metrics stream writer is closed")
        record = make_record(METRICS_SCHEMA, kind, **payload)
        self._fh.write(json.dumps(record))
        self._fh.write("\n")
        self._fh.flush()
        self.records_written += 1

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns:
            self._fh.close()


def _validate_stream_record(path: str, offset: int, record: Any) -> dict[str, Any]:
    schema = record.get("schema") if isinstance(record, dict) else None
    if schema != METRICS_SCHEMA:
        raise ConfigError(
            f"{path}:+{offset}: schema {schema!r}, expected {METRICS_SCHEMA!r}"
        )
    if record.get("kind") not in STREAM_KINDS:
        raise ConfigError(
            f"{path}:+{offset}: unknown record kind {record.get('kind')!r}"
        )
    return record


def iter_metrics_stream(
    path: str, *, tail: bool = False, start: int = 0
) -> Iterator[Any]:
    """Yield validated records from one NDJSON metrics stream.

    Raises :class:`ConfigError` on a record with a missing/foreign schema
    tag or an unknown kind — a tailing frontend should fail loudly rather
    than render garbage.  Blank lines (a partially flushed tail) are
    skipped.

    With ``tail=False`` (the default) the file is treated as finished and
    bare record dicts are yielded.  With ``tail=True`` the stream yields
    ``(next_offset, record)`` pairs instead: ``next_offset`` is the byte
    position to pass back as ``start`` to resume where this pass stopped,
    and exactly one trailing *partial* line (torn mid-flush by the live
    writer, no newline yet) ends the iteration silently instead of
    raising.  A malformed line that is newline-terminated is mid-file
    corruption and fails loudly in both modes.
    """
    prev = start
    for offset, record in iter_ndjson(path, tail=tail, start=start):
        _validate_stream_record(str(path), prev, record)
        prev = offset
        yield (offset, record) if tail else record


def read_metrics_stream(path: str) -> list[dict[str, Any]]:
    """Load a whole metrics stream (see :func:`iter_metrics_stream`)."""
    return list(iter_metrics_stream(path))
