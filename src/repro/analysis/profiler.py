"""MPI profile module: per-call-name statistics.

Reduces event batches to an ``mpiP``-style interface profile: hits, total /
mean / min / max time, and byte volume per MPI call name, plus per-rank
wall-clock estimates.  States merge across analyzer ranks.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ReproError
from repro.instrument.events import CALL_NAMES
from repro.util.stats import RunningStats
from repro.util.tables import Table


class _CallStats:
    __slots__ = ("hits", "time", "nbytes", "t_min", "t_max")

    def __init__(self) -> None:
        self.hits = 0
        self.time = 0.0
        self.nbytes = 0
        self.t_min = math.inf
        self.t_max = 0.0

    def merge(self, other: "_CallStats") -> None:
        self.hits += other.hits
        self.time += other.time
        self.nbytes += other.nbytes
        self.t_min = min(self.t_min, other.t_min)
        self.t_max = max(self.t_max, other.t_max)


class MPIProfile:
    """Mergeable per-application MPI interface profile."""

    def __init__(self, app: str, app_size: int):
        if app_size <= 0:
            raise ReproError(f"app_size must be > 0, got {app_size}")
        self.app = app
        self.app_size = app_size
        self.calls: dict[int, _CallStats] = {}
        self.events_total = 0
        self.bytes_total = 0
        # Per-rank first/last event timestamps -> wall-time estimates.
        self.rank_t0 = np.full(app_size, np.inf)
        self.rank_t1 = np.zeros(app_size)
        self.rank_events = np.zeros(app_size, dtype=np.int64)

    # -- accumulation ------------------------------------------------------------

    def update(self, rank: int, events: np.ndarray) -> None:
        """Fold one event batch from one application rank."""
        if not (0 <= rank < self.app_size):
            raise ReproError(f"event batch from rank {rank} outside app of {self.app_size}")
        if len(events) == 0:
            return
        durations = events["t_end"] - events["t_start"]
        self.events_total += len(events)
        self.bytes_total += int(events["nbytes"].clip(min=0).sum())
        self.rank_t0[rank] = min(self.rank_t0[rank], float(events["t_start"].min()))
        self.rank_t1[rank] = max(self.rank_t1[rank], float(events["t_end"].max()))
        self.rank_events[rank] += len(events)
        for call in np.unique(events["call"]):
            mask = events["call"] == call
            stats = self.calls.setdefault(int(call), _CallStats())
            stats.hits += int(mask.sum())
            d = durations[mask]
            stats.time += float(d.sum())
            stats.nbytes += int(events["nbytes"][mask].clip(min=0).sum())
            stats.t_min = min(stats.t_min, float(d.min()))
            stats.t_max = max(stats.t_max, float(d.max()))

    def merge(self, other: "MPIProfile") -> None:
        if other.app != self.app or other.app_size != self.app_size:
            raise ReproError("merging profiles of different applications")
        for call, stats in other.calls.items():
            self.calls.setdefault(call, _CallStats()).merge(stats)
        self.events_total += other.events_total
        self.bytes_total += other.bytes_total
        np.minimum(self.rank_t0, other.rank_t0, out=self.rank_t0)
        np.maximum(self.rank_t1, other.rank_t1, out=self.rank_t1)
        self.rank_events += other.rank_events

    # -- results ------------------------------------------------------------------

    @property
    def walltime_estimate(self) -> float:
        """Max first-to-last event span across ranks."""
        spans = self.rank_t1 - np.where(np.isfinite(self.rank_t0), self.rank_t0, 0.0)
        valid = self.rank_events > 0
        return float(spans[valid].max()) if valid.any() else 0.0

    @property
    def mpi_time_total(self) -> float:
        return sum(s.time for s in self.calls.values())

    def instrumentation_bandwidth(self, record_bytes: int = 40) -> float:
        """``Bi = total event size / execution time`` (paper Sec. IV-C)."""
        wall = self.walltime_estimate
        if wall <= 0:
            return 0.0
        return self.events_total * record_bytes / wall

    def rows(self) -> list[tuple[str, int, float, float, float, float, int]]:
        """(name, hits, total time, mean, min, max, bytes), by time desc."""
        out = []
        for call, stats in self.calls.items():
            name = CALL_NAMES[call] if call < len(CALL_NAMES) else f"call#{call}"
            mean = stats.time / stats.hits if stats.hits else 0.0
            tmin = stats.t_min if stats.hits else 0.0
            out.append((name, stats.hits, stats.time, mean, tmin, stats.t_max, stats.nbytes))
        out.sort(key=lambda row: row[2], reverse=True)
        return out

    def table(self) -> Table:
        t = Table(
            ["call", "hits", "time_s", "mean_s", "min_s", "max_s", "bytes"],
            title=f"MPI profile — {self.app} ({self.app_size} ranks)",
        )
        for row in self.rows():
            t.add_row(*row)
        return t
