"""MPI datatypes and wildcard constants.

The simulation transfers byte counts, but profiling reports speak in typed
element counts, so the common predefined datatypes are kept around.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Wildcard source for receives.
ANY_SOURCE = -1
#: Wildcard tag for receives.
ANY_TAG = -1


@dataclass(frozen=True)
class Datatype:
    """A predefined MPI datatype: a name and an extent in bytes."""

    name: str
    size: int

    def count_bytes(self, count: int) -> int:
        if count < 0:
            raise ValueError(f"negative element count: {count}")
        return count * self.size

    def __str__(self) -> str:
        return self.name


BYTE = Datatype("MPI_BYTE", 1)
CHAR = Datatype("MPI_CHAR", 1)
INT = Datatype("MPI_INT", 4)
FLOAT = Datatype("MPI_FLOAT", 4)
LONG = Datatype("MPI_LONG", 8)
DOUBLE = Datatype("MPI_DOUBLE", 8)
COMPLEX = Datatype("MPI_COMPLEX", 16)

PREDEFINED = {d.name: d for d in (BYTE, CHAR, INT, FLOAT, LONG, DOUBLE, COMPLEX)}
