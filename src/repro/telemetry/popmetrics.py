"""Time-resolved POP efficiency metrics with online phase detection.

End-of-run aggregates hide everything interesting: an application that is
90% efficient for nine tenths of the run and collapses in the last tenth
reports the same average as one that is uniformly mediocre.  This engine
computes the POP standard efficiency metrics *online*, over fixed windows
of virtual time, from the per-rank accounting the instrumentation layer
already keeps:

* **parallel efficiency** — useful compute per active rank-second,
* **load balance** — mean over max of per-rank useful time,
* **communication efficiency** — share of the busiest rank's active time
  spent outside MPI (``PE = LB x CommE`` holds exactly by construction),
* **serialization efficiency** — active time not lost to stream
  backpressure stalls,
* **instrumentation share** — the measurement system's own footprint,

plus stream-health rates (EAGAIN storms, streamed bytes, analyzer pack
throughput, blackboard backlog) read from the same bounded
:class:`~repro.telemetry.timeline.Timeline` ring series the health
monitor uses.

Accounting is *sum-based end to end*: every window stores per-rank sums of
active/useful/MPI/instrumentation/stall seconds, phases accumulate those
sums, and the end-of-run totals are the same sums once more — so per-phase
metrics recombine to the end-of-run metrics exactly (the telescoping
property the bench gate asserts to 1e-6).  A window that straddles an MPI
call charges the whole call to the window where it completed; boundary
windows can therefore read slightly above 1.0 or below 0.0 — sums, not the
per-window ratios, are the ground truth.

Phase boundaries are detected with an online change-point test: each new
window's signal (parallel efficiency by default) is z-scored against the
running Welford mean/std of the open phase; a window that is both
statistically surprising (``z > z_threshold``) and practically different
(``|shift| > shift_min``, guarding near-constant series) becomes a
*pending* boundary, confirmed only after ``confirm_windows`` consecutive
outliers — single-window glitches fold back into the open phase.

The engine is an observer in the same sense as the health monitor: it
rides :meth:`Kernel.call_every`, never schedules events, and a run with
the engine attached is bit-identical to one without.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigError
from repro.telemetry.core import KERNEL_PID, Telemetry
from repro.telemetry.timeline import Timeline

if TYPE_CHECKING:  # pragma: no cover
    from repro.instrument.interceptor import StreamingInstrumentation
    from repro.simt.kernel import Kernel, PeriodicHook

#: metric keys computed for every window, phase and the whole run
METRIC_KEYS = (
    "parallel_efficiency",
    "load_balance",
    "communication_efficiency",
    "serialization_efficiency",
    "instrumentation_share",
)

#: per-rank accounting dimensions (virtual seconds), summed everywhere
SUM_KEYS = ("active_s", "useful_s", "mpi_s", "instr_s", "stall_s")

#: timeline series feeding the per-window stream-health block
STREAM_HEALTH_SERIES = {
    "eagain_per_s": "counter.stream.eagain_returns",
    "stream_bytes_per_s": "counter.stream.bytes_written",
    "packs_analyzed_per_s": "counter.analysis.packs_decoded",
}

#: gauge names mirrored per window (exported as Chrome ``ph:"C"`` tracks)
GAUGE_PREFIX = "pop."


@dataclass
class PopConfig:
    """Window cadence and change-point thresholds (virtual seconds)."""

    window: float = 0.005  # metric window / tick interval
    capacity: int = 512  # ring length per timeline series
    signal: str = "parallel_efficiency"  # change-point input metric
    min_phase_windows: int = 3  # windows before a phase can split
    z_threshold: float = 3.0  # surprise bar (running z-score)
    shift_min: float = 0.05  # practical-difference bar (abs units)
    confirm_windows: int = 2  # consecutive outliers to confirm a boundary

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ConfigError(f"metrics window must be > 0, got {self.window}")
        if self.capacity < 2:
            raise ConfigError("metrics capacity must be >= 2")
        if self.signal not in METRIC_KEYS:
            raise ConfigError(
                f"unknown change-point signal {self.signal!r}; "
                f"choose from {METRIC_KEYS}"
            )
        if self.min_phase_windows < 1:
            raise ConfigError("min_phase_windows must be >= 1")
        if self.z_threshold <= 0 or self.shift_min < 0:
            raise ConfigError("z_threshold must be > 0 and shift_min >= 0")
        if self.confirm_windows < 1:
            raise ConfigError("confirm_windows must be >= 1")


def metrics_from_sums(per_rank: dict[Any, dict[str, float]]) -> dict[str, float]:
    """The POP metric set from per-rank second sums (shared by every level).

    Uses the classic POP decomposition with the mean active time as the
    elapsed reference, so ``PE = LB x CommE`` is an identity::

        PE    = sum(useful) / sum(active)
        LB    = mean(useful) / max(useful)
        CommE = max(useful) / mean(active)
    """
    ranks = [s for s in per_rank.values() if s["active_s"] > 0]
    if not ranks:
        return {key: 0.0 for key in METRIC_KEYS}
    n = len(ranks)
    active = sum(s["active_s"] for s in ranks)
    useful = sum(s["useful_s"] for s in ranks)
    stall = sum(s["stall_s"] for s in ranks)
    instr = sum(s["instr_s"] for s in ranks)
    max_useful = max(s["useful_s"] for s in ranks)
    mean_active = active / n
    pe = useful / active
    if max_useful > 0:
        lb = (useful / n) / max_useful
        comm = max_useful / mean_active
    else:
        lb = 0.0
        comm = 0.0
    return {
        "parallel_efficiency": pe,
        "load_balance": lb,
        "communication_efficiency": comm,
        "serialization_efficiency": 1.0 - stall / active,
        "instrumentation_share": instr / active,
    }


def _zero_sums() -> dict[str, float]:
    return {key: 0.0 for key in SUM_KEYS}


def _merge_sums(
    into: dict[Any, dict[str, float]], update: dict[Any, dict[str, float]]
) -> None:
    for rank_key, sums in update.items():
        entry = into.setdefault(rank_key, _zero_sums())
        for key in SUM_KEYS:
            entry[key] += sums[key]


@dataclass
class WindowMetrics:
    """One closed window: metrics, sums and stream health."""

    index: int
    t0: float
    t1: float
    nranks: int
    metrics: dict[str, float]
    sums: dict[str, float]
    stream: dict[str, float]
    #: per-rank sums, keyed ``"app/rank"`` (kept for phase accumulation)
    per_rank: dict[str, dict[str, float]] = field(repr=False, default_factory=dict)

    @property
    def signal(self) -> dict[str, float]:
        return self.metrics

    def as_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "t0": self.t0,
            "t1": self.t1,
            "elapsed_s": self.t1 - self.t0,
            "nranks": self.nranks,
            "metrics": dict(self.metrics),
            "sums": dict(self.sums),
            "stream": dict(self.stream),
        }


class PhaseStats:
    """One detected phase: accumulated per-rank sums + signal statistics."""

    def __init__(self, index: int, t0: float):
        self.index = index
        self.t0 = t0
        self.t1 = t0
        self.windows = 0
        self.per_rank: dict[str, dict[str, float]] = {}
        # Welford running statistics of the change-point signal.
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def absorb(self, window: WindowMetrics, signal_value: float) -> None:
        self.windows += 1
        self.t1 = window.t1
        _merge_sums(self.per_rank, window.per_rank)
        self._n += 1
        delta = signal_value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (signal_value - self._mean)

    @property
    def signal_mean(self) -> float:
        return self._mean

    @property
    def signal_std(self) -> float:
        if self._n < 2:
            return 0.0
        return math.sqrt(self._m2 / (self._n - 1))

    def metrics(self) -> dict[str, float]:
        return metrics_from_sums(self.per_rank)

    def sums(self) -> dict[str, float]:
        totals = _zero_sums()
        for sums in self.per_rank.values():
            for key in SUM_KEYS:
                totals[key] += sums[key]
        return totals

    def as_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "t0": self.t0,
            "t1": self.t1,
            "elapsed_s": self.t1 - self.t0,
            "windows": self.windows,
            "signal_mean": self.signal_mean,
            "signal_std": self.signal_std,
            "metrics": self.metrics(),
            "sums": self.sums(),
            "ranks": {key: dict(sums) for key, sums in sorted(self.per_rank.items())},
        }


class PopMetricsEngine:
    """Online POP-metric computation over kernel-hook windows."""

    def __init__(self, telemetry: Telemetry, config: PopConfig | None = None):
        if not telemetry.enabled:
            raise ConfigError(
                "pop metrics need live telemetry; pass telemetry=Telemetry()"
            )
        self.tel = telemetry
        self.config = config or PopConfig()
        self.timeline = Timeline(
            telemetry, resolution=self.config.window, capacity=self.config.capacity
        )
        self.windows: list[WindowMetrics] = []
        self.phases: list[PhaseStats] = []
        self._totals: dict[str, dict[str, float]] = {}
        self._registry: dict[str, list["StreamingInstrumentation"]] | None = None
        self._prev: dict[str, tuple[float, float, float]] = {}
        self._sinks: list[Any] = []
        self._hook: "PeriodicHook | None" = None
        self._t_last = 0.0
        self._current: PhaseStats | None = None
        self._pending: list[tuple[WindowMetrics, float]] = []
        self._finalized = False

    # -- wiring -------------------------------------------------------------------

    def add_sink(self, sink: Any) -> Any:
        """Register a sink (``on_window`` required; ``on_phase`` /
        ``on_run_summary`` optional)."""
        if not hasattr(sink, "on_window"):
            raise ConfigError(f"metrics sink {sink!r} lacks an on_window method")
        self._sinks.append(sink)
        return sink

    def bind_sources(self, registry: dict[str, list["StreamingInstrumentation"]]) -> None:
        """Point the engine at the session's interceptor registry.

        The registry's lists fill lazily as instrumented programs reach
        ``MPI_Init``, so the engine re-enumerates them at every tick; a
        rank that joined mid-window contributes from zero baselines.
        """
        self._registry = registry

    def attach(self, kernel: "Kernel") -> "PeriodicHook":
        """Subscribe to the kernel's periodic hook on the window grid."""
        if self._hook is not None:
            raise ConfigError("metrics engine already attached to a kernel")
        if kernel.telemetry is not self.tel:
            raise ConfigError("metrics engine and kernel must share one Telemetry")
        window = self.config.window
        # Align boundaries to the window grid regardless of attach time.
        first = math.floor(kernel.now / window + 1e-9) * window + window
        self._t_last = first - window
        # Baseline sample: cumulative counters carried from earlier use of
        # this Telemetry must not be charged to the first window's rates.
        self.timeline.sample(kernel.now, force=True)
        self._hook = kernel.call_every(window, self._tick, first=first)
        return self._hook

    def detach(self) -> None:
        if self._hook is not None:
            self._hook.cancel()
            self._hook = None

    # -- window pipeline ----------------------------------------------------------

    def _tick(self, now: float) -> None:
        self.timeline.sample(now, force=True)
        self._close_window(now)

    def finalize(self, now: float | None = None) -> None:
        """Close the partial tail window and the open phase (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        if now is None:
            now = self.tel.now()
        if now - self._t_last > 1e-12:
            self.timeline.sample(now, force=True)
            self._close_window(now)
        # A pending boundary that never confirmed belongs to the open phase.
        current = self._current
        for window, signal_value in self._pending:
            if current is None:
                current = self._current = PhaseStats(0, window.t0)
            current.absorb(window, signal_value)
        self._pending.clear()
        if current is not None:
            self._seal_phase(current)
            self._current = None
        summary = self.summary()
        for sink in self._sinks:
            hook = getattr(sink, "on_run_summary", None)
            if hook is not None:
                hook(summary)

    def _interceptors(self):
        if not self._registry:
            return
        for app, interceptors in self._registry.items():
            for interceptor in interceptors:
                yield f"{app}/{interceptor.builder.rank}", interceptor

    def _close_window(self, now: float) -> None:
        t0, t1 = self._t_last, now
        self._t_last = now
        per_rank: dict[str, dict[str, float]] = {}
        for key, interceptor in self._interceptors():
            cum = (
                interceptor.mpi_time_s,
                interceptor.overhead_s,
                interceptor.stream.write_stall_s,
            )
            prev = self._prev.get(key, (0.0, 0.0, 0.0))
            self._prev[key] = cum
            d_mpi, d_instr, d_stall = (c - p for c, p in zip(cum, prev))
            start = interceptor.t_active_start
            if start is None:
                continue
            end = interceptor.t_active_end
            active = min(t1, end if end is not None else t1) - max(t0, start)
            active = max(0.0, active)
            if active <= 0.0 and d_mpi == 0.0 and d_instr == 0.0 and d_stall == 0.0:
                continue
            per_rank[key] = {
                "active_s": active,
                # Unclamped on purpose: a call completing just after a
                # boundary charges here, keeping the sums telescoping.
                "useful_s": active - d_mpi - d_instr,
                "mpi_s": d_mpi,
                "instr_s": d_instr,
                "stall_s": d_stall,
            }
        metrics = metrics_from_sums(per_rank)
        sums = _zero_sums()
        for entry in per_rank.values():
            for key in SUM_KEYS:
                sums[key] += entry[key]
        window = WindowMetrics(
            index=len(self.windows),
            t0=t0,
            t1=t1,
            nranks=len(per_rank),
            metrics=metrics,
            sums=sums,
            stream=self._stream_health(t0, t1),
            per_rank=per_rank,
        )
        self.windows.append(window)
        _merge_sums(self._totals, per_rank)
        for name in METRIC_KEYS:
            self.tel.gauge(GAUGE_PREFIX + name, pid=KERNEL_PID).set(metrics[name])
        self._detect_phase(window)
        payload = window.as_dict()
        for sink in self._sinks:
            sink.on_window(payload)

    def _stream_health(self, t0: float, t1: float) -> dict[str, float]:
        dt = t1 - t0
        out: dict[str, float] = {}
        for label, series_key in STREAM_HEALTH_SERIES.items():
            out[label] = self._cum_rate(series_key, t0, t1) if dt > 0 else 0.0
        depth = self.timeline.get("gauge.blackboard.fifo_depth")
        latest = depth.latest() if depth is not None else None
        out["backlog_depth"] = latest[1] if latest is not None else 0.0
        return out

    def _cum_rate(self, key: str, t0: float, t1: float) -> float:
        """First derivative of a cumulative series over [t0, t1].

        The value at each boundary is the last sample at or before it; a
        series born mid-run reads 0.0 before its first sample (cumulative
        counters start from zero).
        """
        series = self.timeline.get(key)
        if series is None:
            return 0.0
        v0 = v1 = 0.0
        for t, value in series.points():
            if t <= t0:
                v0 = value
            if t <= t1:
                v1 = value
            else:
                break
        return (v1 - v0) / (t1 - t0)

    # -- phase detection ----------------------------------------------------------

    def _detect_phase(self, window: WindowMetrics) -> None:
        cfg = self.config
        signal_value = window.metrics[cfg.signal]
        current = self._current
        if current is None:
            current = self._current = PhaseStats(0, window.t0)
        if current.windows >= cfg.min_phase_windows:
            shift = abs(signal_value - current.signal_mean)
            std = max(current.signal_std, 1e-9)
            if shift / std > cfg.z_threshold and shift > cfg.shift_min:
                self._pending.append((window, signal_value))
                if len(self._pending) >= cfg.confirm_windows:
                    self._split_phase()
                return
        # Not an outlier (or phase still warming up): any pending windows
        # were a glitch — fold them back in before absorbing this one.
        for pending_window, pending_value in self._pending:
            current.absorb(pending_window, pending_value)
        self._pending.clear()
        current.absorb(window, signal_value)

    def _split_phase(self) -> None:
        confirmed = self._pending
        self._pending = []
        self._seal_phase(self._current)
        fresh = PhaseStats(len(self.phases), confirmed[0][0].t0)
        self._current = fresh
        for window, signal_value in confirmed:
            fresh.absorb(window, signal_value)

    def _seal_phase(self, phase: PhaseStats) -> None:
        if phase.windows == 0:
            return
        phase.index = len(self.phases)
        self.phases.append(phase)
        payload = phase.as_dict()
        for sink in self._sinks:
            hook = getattr(sink, "on_phase", None)
            if hook is not None:
                hook(payload)

    # -- presentation -------------------------------------------------------------

    def end_of_run(self) -> dict[str, float]:
        """The POP metrics over the whole run (from the global sums)."""
        return metrics_from_sums(self._totals)

    def summary(self) -> dict[str, Any]:
        """Everything reduced to plain dicts (report section, NDJSON tail)."""
        totals = _zero_sums()
        for sums in self._totals.values():
            for key in SUM_KEYS:
                totals[key] += sums[key]
        return {
            "window_s": self.config.window,
            "signal": self.config.signal,
            "windows": len(self.windows),
            "phases": [phase.as_dict() for phase in self.phases],
            "end_of_run": self.end_of_run(),
            "totals": totals,
            "nranks": len(self._totals),
            "stream_last": self.windows[-1].stream if self.windows else {},
        }
