"""Byte / time unit constants and human-readable formatting helpers.

The simulation works in SI seconds and raw byte counts.  Storage quantities
follow the paper's usage: figures quote decimal GB (``GB = 1e9``) while buffer
sizes are binary (``1 MB block`` in the code listings is ``1024 * 1024``).
Both families are exported; pick the one matching the context.
"""

from __future__ import annotations

import re

from repro.errors import ConfigError

# Binary units (buffer sizes, trace block sizes).
KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024

# Decimal units (bandwidth figures, aggregate volumes).
KB = 10**3
MB = 10**6
GB = 10**9

# Time units, in seconds.
USEC = 1e-6
MSEC = 1e-3

_SIZE_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>[KMGT]?i?B?)\s*$", re.IGNORECASE
)

_UNIT_FACTORS = {
    "": 1,
    "B": 1,
    "KB": KB,
    "MB": MB,
    "GB": GB,
    "TB": 10**12,
    "KIB": KIB,
    "MIB": MIB,
    "GIB": GIB,
    "TIB": 1024**4,
    "K": KB,
    "M": MB,
    "G": GB,
    "T": 10**12,
    "KI": KIB,
    "MI": MIB,
    "GI": GIB,
    "TI": 1024**4,
}


def parse_size(text: str | int | float) -> int:
    """Parse ``"64 MiB"`` / ``"1GB"`` / ``4096`` into a byte count.

    Raises :class:`~repro.errors.ConfigError` on malformed input.
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise ConfigError(f"negative size: {text!r}")
        return int(text)
    m = _SIZE_RE.match(text)
    if not m:
        raise ConfigError(f"cannot parse size: {text!r}")
    factor = _UNIT_FACTORS.get(m.group("unit").upper())
    if factor is None:
        raise ConfigError(f"unknown size unit in {text!r}")
    return int(float(m.group("num")) * factor)


def fmt_bytes(n: float, *, binary: bool = False) -> str:
    """Format a byte count, e.g. ``fmt_bytes(1.2e9) == '1.20 GB'``."""
    if n < 0:
        return "-" + fmt_bytes(-n, binary=binary)
    base = 1024.0 if binary else 1000.0
    suffixes = ["B", "KiB", "MiB", "GiB", "TiB"] if binary else ["B", "KB", "MB", "GB", "TB"]
    value = float(n)
    for suffix in suffixes[:-1]:
        if value < base:
            if suffix == "B":
                return f"{value:.0f} {suffix}"
            return f"{value:.2f} {suffix}"
        value /= base
    return f"{value:.2f} {suffixes[-1]}"


def fmt_bw(bytes_per_sec: float) -> str:
    """Format a bandwidth, e.g. ``fmt_bw(9.85e10) == '98.50 GB/s'``."""
    return fmt_bytes(bytes_per_sec) + "/s"


def fmt_time(seconds: float) -> str:
    """Format a duration with an adaptive unit (ns up to hours)."""
    if seconds < 0:
        return "-" + fmt_time(-seconds)
    if seconds == 0:
        return "0 s"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.3f} s"
    if seconds < 7200.0:
        return f"{seconds / 60.0:.1f} min"
    return f"{seconds / 3600.0:.2f} h"
