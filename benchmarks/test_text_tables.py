"""In-text quantitative claims: Bi bandwidths, trace volumes, FS comparison."""

import pytest

from repro.bench import bi_bandwidth_table, fs_comparison_table, trace_size_table


class TestBiBandwidth:
    """Paper Sec. IV-C: Bi(SP.C) = 2.37 GB/s vs Bi(SP.D) = 334.99 MB/s at 900."""

    @pytest.fixture(scope="class")
    def result(self, scale):
        return bi_bandwidth_table(scale=scale)

    def test_regenerate(self, benchmark, scale, show):
        data = benchmark.pedantic(
            lambda: bi_bandwidth_table(scale=scale), rounds=1, iterations=1
        )
        show(data.table())

    def test_class_c_bi_an_order_of_magnitude_above_d(self, result):
        ratio = result.bi("SP.C") / result.bi("SP.D")
        # Paper's ratio at 900 cores: 2.37 GB/s / 334.99 MB/s ~ 7.1x.
        assert 3.0 < ratio < 40.0

    def test_bi_magnitudes_sane(self, result):
        assert result.bi("SP.C") > 1e6  # at least MB/s territory
        assert result.bi("SP.D") > 1e5


class TestTraceSizes:
    """Paper: Score-P traces 313 MB..116 GB; online 923.93 MB..333.22 GB."""

    @pytest.fixture(scope="class")
    def result(self, scale):
        return trace_size_table(scale=scale)

    def test_regenerate(self, benchmark, scale, show):
        data = benchmark.pedantic(
            lambda: trace_size_table(scale=scale), rounds=1, iterations=1
        )
        show(data.table())

    def test_online_to_scorep_ratio_matches_paper(self, result):
        counts = sorted({row["nprocs"] for row in result.rows})
        for nprocs in counts:
            assert 2.0 < result.ratio(nprocs) < 4.0  # paper ~2.9x

    def test_volumes_grow_with_scale(self, result):
        counts = sorted({row["nprocs"] for row in result.rows})
        for tool in ("online", "scorep_trace"):
            volumes = [result.volume(tool, n) for n in counts]
            assert all(b > a for a, b in zip(volumes, volumes[1:]))

    def test_growth_superlinear_in_ranks(self, result):
        """Events per rank grow with sqrt(P) for SP, so volume beats linear."""
        counts = sorted({row["nprocs"] for row in result.rows})
        lo, hi = counts[0], counts[-1]
        ratio = result.volume("online", hi) / result.volume("online", lo)
        assert ratio > hi / lo


class TestFSComparison:
    """Paper: streams competitive with the 9.1 GB/s scaled FS until ~1/25."""

    @pytest.fixture(scope="class")
    def result(self, scale):
        return fs_comparison_table(scale=scale)

    def test_regenerate(self, benchmark, scale, show):
        data = benchmark.pedantic(
            lambda: fs_comparison_table(scale=scale), rounds=1, iterations=1
        )
        show(data.table())

    def test_streams_win_at_paper_recommended_ratio(self, result):
        """1/10 is named a good bandwidth-resource trade-off."""
        for row in result.rows:
            if row["ratio"] <= 10:
                assert row["throughput"] > result.fs_scaled

    def test_crossover_exists_and_is_beyond_ten(self, result):
        crossover = result.crossover_ratio()
        assert crossover >= 10

    def test_paper_scale_crossover_near_25(self, result, scale):
        if scale != "paper":
            pytest.skip("crossover ~25 calibrated at 2560 writers")
        assert 16 <= result.crossover_ratio() <= 32
