#!/usr/bin/env python
"""Tool comparison: online coupling vs file-based tools (paper Figure 16).

Runs NAS SP class D under the reference (no tool), the online coupling, and
the modelled baselines (mpiP, Score-P profile, Score-P trace over SIONlib,
Scalasca) on the Curie machine model, and prints relative overheads and
full-run measurement volumes.  The paper's claim to check: the online
coupling moves ~2.9x more data than Score-P tracing yet costs *less* at
scale, because it uses the network bisection instead of the shared file
system.

Run:  python examples/tool_comparison.py [nprocs]
"""

import sys

from repro import CURIE, compare_tools
from repro.apps import nas_kernel
from repro.baselines import PostMortemAnalyzer
from repro.util.tables import Table
from repro.util.units import GB, fmt_time


def main() -> None:
    nprocs = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    results = compare_tools(
        lambda: nas_kernel("SP", nprocs, "D", iterations=3),
        tools=(
            "reference",
            "online",
            "mpip",
            "scorep_profile",
            "scorep_trace",
            "scalasca",
        ),
        machine=CURIE,
    )

    table = Table(
        ["tool", "walltime_s", "overhead_pct", "full_run_volume_GB"],
        title=f"SP.D on {nprocs} ranks (Curie model)",
    )
    for r in results:
        table.add_row(r.tool, r.walltime, r.overhead_pct, r.full_run_volume_bytes / GB)
    print(table.render())
    print()

    # Time-to-report: the online analysis finishes with the run; the
    # trace-based flow still has to read the trace back and analyse it.
    trace = next(r for r in results if r.tool == "scorep_trace")
    postmortem = PostMortemAnalyzer(CURIE, analysis_cores=nprocs).analyze(
        trace.full_run_volume_bytes
    )
    print("Post-mortem phase the trace-based flow still owes after the run:")
    print(f"  trace read-back : {fmt_time(postmortem.read_back_seconds)}")
    print(f"  redistribution  : {fmt_time(postmortem.redistribute_seconds)}")
    print(f"  analysis        : {fmt_time(postmortem.analyze_seconds)}")
    print(f"  total           : {fmt_time(postmortem.total_seconds)}")
    print("(the online coupling's report was ready at MPI_Finalize)")


if __name__ == "__main__":
    main()
