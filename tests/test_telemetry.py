"""Unit tests for the self-telemetry subsystem (repro.telemetry)."""

import json
import math

import pytest

from repro.telemetry import (
    KERNEL_PID,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_SPAN,
    NULL_TELEMETRY,
    Gauge,
    HistogramMetric,
    Telemetry,
    rank_pid,
)


class ManualClock:
    """Deterministic clock for virtual-time assertions."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def tel(clock):
    return Telemetry(clock=clock)


class TestCounters:
    def test_get_or_create_is_idempotent(self, tel):
        c1 = tel.counter("kernel.events")
        c2 = tel.counter("kernel.events")
        assert c1 is c2

    def test_increments_accumulate(self, tel):
        c = tel.counter("bytes")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_float_increments(self, tel):
        c = tel.counter("cpu_s")
        c.inc(0.25)
        c.inc(0.75)
        assert c.value == pytest.approx(1.0)


class TestGauges:
    def test_keyed_by_name_and_pid(self, tel):
        g0 = tel.gauge("depth", pid=0)
        g1 = tel.gauge("depth", pid=1)
        assert g0 is not g1
        assert tel.gauge("depth", pid=0) is g0

    def test_tracks_last_and_max(self, tel, clock):
        g = tel.gauge("heap")
        g.set(3)
        clock.advance(1.0)
        g.set(7)
        clock.advance(1.0)
        g.set(2)
        assert g.value == 2
        assert g.max == 7
        assert [v for _t, v in g.samples] == [3, 7, 2]
        assert [t for t, _v in g.samples] == [0.0, 1.0, 2.0]

    def test_decimation_bounds_series(self, tel, clock):
        g = tel.gauge("depth")
        n = Gauge.MAX_SAMPLES * 4
        for i in range(n):
            clock.advance(1.0)
            g.set(i)
        assert len(g.samples) < Gauge.MAX_SAMPLES
        assert g.value == n - 1
        assert g.max == n - 1
        # Retained series stays time-ordered after in-place decimation.
        times = [t for t, _v in g.samples]
        assert times == sorted(times)


class TestHistograms:
    def test_percentiles_nearest_rank(self, tel):
        h = tel.histogram("lat")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.percentile(50) == 50.0
        assert h.percentile(95) == 95.0
        assert h.percentile(99) == 99.0
        assert h.percentile(100) == 100.0
        assert h.percentile(0) == 1.0
        assert h.mean == pytest.approx(50.5)
        assert h.count == 100
        assert h.min == 1.0 and h.max == 100.0

    def test_percentile_validates_q(self, tel):
        h = tel.histogram("lat")
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)

    def test_empty_histogram(self, tel):
        h = tel.histogram("lat")
        assert h.percentile(50) == 0.0
        assert h.mean == 0.0
        d = h.as_dict()
        assert d["count"] == 0 and d["min"] == 0.0 and d["max"] == 0.0

    def test_reservoir_is_bounded(self, tel):
        h = tel.histogram("lat")
        for i in range(HistogramMetric.MAX_SAMPLES * 3):
            h.observe(float(i))
        assert len(h.samples) < HistogramMetric.MAX_SAMPLES
        assert h.count == HistogramMetric.MAX_SAMPLES * 3
        assert not math.isinf(h.min)

    def test_as_dict_shape(self, tel):
        h = tel.histogram("lat")
        h.observe(2.0)
        h.observe(4.0)
        d = h.as_dict()
        assert set(d) == {"count", "total", "mean", "min", "max", "p50", "p95", "p99"}
        assert d["mean"] == 3.0


class TestSpans:
    def test_virtual_time_monotonicity(self, tel, clock):
        spans = []
        for _ in range(5):
            s = tel.span("step")
            clock.advance(0.5)
            spans.append(s.end())
        for s in spans:
            assert s.t1 >= s.t0
        # Start times follow the clock: strictly increasing here.
        starts = [s.t0 for s in spans]
        assert starts == sorted(starts)
        assert spans[0].duration == pytest.approx(0.5)

    def test_nesting_by_containment(self, tel, clock):
        outer = tel.span("outer")
        clock.advance(1.0)
        inner = tel.span("inner")
        clock.advance(1.0)
        inner.end()
        clock.advance(1.0)
        outer.end()
        assert outer.t0 <= inner.t0 and inner.t1 <= outer.t1

    def test_double_end_raises(self, tel):
        s = tel.span("x")
        s.end()
        with pytest.raises(RuntimeError):
            s.end()

    def test_duration_before_end_raises(self, tel):
        s = tel.span("x")
        with pytest.raises(RuntimeError):
            _ = s.duration

    def test_end_merges_extra_args(self, tel):
        s = tel.span("x", args={"a": 1})
        s.end(b=2)
        assert s.args == {"a": 1, "b": 2}

    def test_context_manager_auto_ends(self, tel, clock):
        with tel.span("cm") as s:
            clock.advance(2.0)
        assert s.t1 == 2.0
        assert tel.spans == [s]

    def test_context_manager_respects_explicit_end(self, tel, clock):
        with tel.span("cm") as s:
            clock.advance(1.0)
            s.end()
            clock.advance(5.0)
        assert s.duration == pytest.approx(1.0)
        assert len(tel.spans) == 1


class TestDisabled:
    def test_null_singletons(self):
        assert NULL_TELEMETRY.counter("x") is NULL_COUNTER
        assert NULL_TELEMETRY.gauge("x") is NULL_GAUGE
        assert NULL_TELEMETRY.histogram("x") is NULL_HISTOGRAM
        assert NULL_TELEMETRY.span("x") is NULL_SPAN

    def test_nothing_recorded(self):
        NULL_TELEMETRY.counter("x").inc(5)
        NULL_TELEMETRY.gauge("x").set(5)
        NULL_TELEMETRY.histogram("x").observe(5)
        with NULL_TELEMETRY.span("x"):
            pass
        NULL_TELEMETRY.instant("x")
        NULL_TELEMETRY.name_track(1, "rank")
        assert NULL_TELEMETRY.counters == {}
        assert NULL_TELEMETRY.gauges == {}
        assert NULL_TELEMETRY.histograms == {}
        assert NULL_TELEMETRY.spans == []
        assert NULL_TELEMETRY.instants == []
        assert NULL_TELEMETRY.track_names == {}

    def test_null_instruments_are_inert(self):
        NULL_COUNTER.inc(10)
        assert NULL_COUNTER.value == 0
        NULL_GAUGE.set(10)
        assert NULL_GAUGE.value == 0.0 and NULL_GAUGE.samples == []
        NULL_HISTOGRAM.observe(10)
        assert NULL_HISTOGRAM.count == 0
        assert NULL_HISTOGRAM.percentile(50) == 0.0
        assert NULL_SPAN.end(extra=1) is NULL_SPAN
        assert NULL_SPAN.duration == 0.0


class TestChromeTraceExport:
    def _populate(self, tel, clock):
        tel.name_track(KERNEL_PID, "simulation kernel")
        tel.name_track(rank_pid(0), "App[0]")
        s = tel.span("work", pid=rank_pid(0), cat="app", args={"n": 1})
        clock.advance(2.0)
        s.end()
        tel.instant("fire", pid=KERNEL_PID, cat="kernel")
        g = tel.gauge("depth", pid=KERNEL_PID)
        g.set(3)

    def test_event_fields_and_json_roundtrip(self, tel, clock):
        self._populate(tel, clock)
        blob = json.dumps(tel.chrome_trace())
        trace = json.loads(blob)
        events = trace["traceEvents"]
        assert trace["displayTimeUnit"] == "ms"
        assert {e["ph"] for e in events} == {"M", "X", "i", "C"}
        for e in events:
            assert "ph" in e and "ts" in e and "pid" in e and "name" in e

    def test_span_timestamps_in_microseconds(self, tel, clock):
        self._populate(tel, clock)
        events = tel.chrome_trace()["traceEvents"]
        (x,) = [e for e in events if e["ph"] == "X"]
        assert x["ts"] == 0.0
        assert x["dur"] == pytest.approx(2.0 * 1e6)
        assert x["pid"] == rank_pid(0)
        assert x["args"] == {"n": 1}

    def test_process_name_metadata_rows(self, tel, clock):
        self._populate(tel, clock)
        events = tel.chrome_trace()["traceEvents"]
        meta = {e["pid"]: e["args"]["name"] for e in events if e["ph"] == "M"}
        assert meta == {KERNEL_PID: "simulation kernel", rank_pid(0): "App[0]"}

    def test_write_chrome_trace(self, tel, clock, tmp_path):
        self._populate(tel, clock)
        path = tmp_path / "out.trace.json"
        returned = tel.write_chrome_trace(path)
        assert str(returned) == str(path)
        trace = json.loads(path.read_text())
        assert trace["traceEvents"]


class TestJSONLExport:
    def test_record_kinds(self, tel, clock):
        tel.counter("c").inc()
        tel.gauge("g").set(1)
        tel.histogram("h").observe(1)
        tel.span("s").end()
        tel.instant("i")
        kinds = {r["kind"] for r in tel.jsonl_records()}
        assert kinds == {"counter", "gauge", "histogram", "span", "instant"}

    def test_write_jsonl(self, tel, tmp_path):
        tel.counter("c").inc(3)
        tel.span("s").end()
        path = tmp_path / "out.jsonl"
        tel.write_jsonl(path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert {r["kind"] for r in records} == {"counter", "span"}

    def test_unknown_exporter_rejected(self, tel, tmp_path):
        with pytest.raises(ValueError, match="unknown exporter"):
            tel.export("flamegraph", tmp_path / "x")


class TestSummaries:
    def test_headline_defaults(self, tel):
        head = tel.headline()
        assert head == {
            "events_dispatched": 0,
            "bytes_streamed": 0,
            "worker_utilization": None,
            "spans_recorded": 0,
        }

    def test_headline_with_data(self, tel):
        tel.counter("kernel.events_dispatched").inc(10)
        tel.counter("stream.bytes_written").inc(1024)
        tel.counter("blackboard.worker_busy_s").inc(3.0)
        tel.counter("blackboard.worker_idle_s").inc(1.0)
        tel.span("x").end()
        head = tel.headline()
        assert head["events_dispatched"] == 10
        assert head["bytes_streamed"] == 1024
        assert head["worker_utilization"] == pytest.approx(0.75)
        assert head["spans_recorded"] == 1

    def test_summary_shape(self, tel, clock):
        tel.counter("c").inc()
        tel.gauge("g", pid=1).set(4)
        tel.gauge("g", pid=2).set(6)
        tel.histogram("h").observe(1)
        s = tel.span("s")
        clock.advance(1.0)
        s.end()
        summary = tel.summary()
        assert set(summary) == {"headline", "counters", "gauges", "histograms", "spans"}
        assert summary["counters"] == {"c": 1}
        # Per-name gauge aggregation across pids.
        assert summary["gauges"]["g"] == {"last": 10.0, "peak": 6.0, "tracks": 2}
        assert summary["spans"]["s"] == {"count": 1, "total_s": pytest.approx(1.0)}
        json.dumps(summary)  # must be JSON-serializable as-is

    def test_span_totals_accumulate(self, tel, clock):
        for _ in range(3):
            s = tel.span("loop")
            clock.advance(2.0)
            s.end()
        totals = tel.span_totals()
        assert totals["loop"]["count"] == 3
        assert totals["loop"]["total_s"] == pytest.approx(6.0)

    def test_reset_drops_everything(self, tel):
        tel.counter("c").inc()
        tel.span("s").end()
        tel.name_track(1, "x")
        tel.reset()
        assert tel.counters == {} and tel.spans == [] and tel.track_names == {}


class TestClockBinding:
    def test_bind_clock_retimes_new_samples(self, tel):
        tel.bind_clock(lambda: 42.0)
        s = tel.span("x").end()
        assert s.t0 == 42.0 and s.t1 == 42.0

    def test_rank_pid_offset(self):
        assert rank_pid(0) == KERNEL_PID + 1
        assert rank_pid(7) == 8
