"""FT: 3D FFT via transpose all-to-all.

Each iteration computes local 1D FFT passes and redistributes the volume
with one global ``MPI_Alltoall`` — FT is the bandwidth-heavy, low-rate
benchmark: few events, enormous collective payloads.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.apps.base import ClassSpec, NASKernel, is_power_of_two


class FT(NASKernel):
    name = "FT"
    CLASSES = {
        # size is the largest grid edge; volumes below use the full grids.
        "C": ClassSpec(size=512, niter=20, gops=1278.0),
        "D": ClassSpec(size=2048, niter=25, gops=32580.0),
    }

    #: full complex grids per class (NPB: C = 512^3, D = 2048x1024x1024)
    GRID_CELLS = {"C": 512**3, "D": 2048 * 1024 * 1024}

    @classmethod
    def validate_nprocs(cls, nprocs: int) -> None:
        if not is_power_of_two(nprocs):
            raise ConfigError(f"FT requires a power-of-two process count, got {nprocs}")

    def alltoall_pair_bytes(self) -> int:
        """Per-pair chunk of the transpose: 16-byte complex cells / P^2."""
        cells = self.GRID_CELLS[self.klass]
        return max(1024, int(16 * cells / (self.nprocs**2)))

    def main(self, mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        if comm.size != self.nprocs:
            raise ConfigError(
                f"{self.label} built for {self.nprocs} ranks, launched on {comm.size}"
            )
        chunk = self.alltoall_pair_bytes()
        step_cpu = self.step_compute_seconds(mpi)
        # Initial forward transform does an extra transpose.
        yield from comm.alltoall(nbytes=chunk)
        for _it in range(self.iterations):
            yield from mpi.compute(step_cpu)
            yield from comm.alltoall(nbytes=chunk)
            # Checksum reduction closing each iteration (NPB verifies per-iter).
            yield from comm.reduce(nbytes=16, root=0)
        yield from comm.barrier()
        yield from mpi.finalize()
