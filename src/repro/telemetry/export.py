"""Exporters: Chrome trace-event JSON and JSONL.

The Chrome format (one ``traceEvents`` array of ``ph``-tagged dicts) loads
directly in Perfetto or ``chrome://tracing``: spans become complete ``"X"``
events, instants ``"i"`` events, gauge series ``"C"`` counter tracks, and
every named track gets a ``process_name`` metadata row — one process row per
simulated rank.  Timestamps are virtual seconds scaled to microseconds, the
unit both viewers expect.

JSONL writes one self-describing JSON object per line (spans, instants,
counters, gauges, histograms, flows), convenient for ad-hoc ``jq``/pandas
digestion.  Every record carries a ``schema`` tag
(:data:`TELEMETRY_SCHEMA`) so downstream consumers can detect layout
changes; the per-kind record formats are documented in DESIGN §10.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.obs.registry import TELEMETRY_SCHEMA, make_record

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.core import Telemetry

_US = 1e6  # trace-event timestamps are microseconds


def chrome_trace_dict(tel: "Telemetry") -> dict[str, Any]:
    """The full trace as one JSON-serializable dict.

    Valid for any telemetry state, not just a finished run: spans that are
    still open (or were recorded without an end) are clamped to the current
    clock and tagged ``unfinished`` so a mid-run export loads cleanly.
    """
    events: list[dict[str, Any]] = []
    now = tel.now()
    for pid, label in sorted(tel.track_names.items()):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": label},
            }
        )
    for span in list(tel.spans) + tel.open_spans():
        t1 = span.t1
        unfinished = t1 is None
        if unfinished:
            t1 = max(now, span.t0)
        event: dict[str, Any] = {
            "ph": "X",
            "name": span.name,
            "cat": span.cat or "span",
            "pid": span.pid,
            "tid": span.tid,
            "ts": span.t0 * _US,
            "dur": (t1 - span.t0) * _US,
        }
        if span.args or unfinished:
            event["args"] = dict(span.args or {})
            if unfinished:
                event["args"]["unfinished"] = True
        events.append(event)
    for inst in tel.instants:
        event = {
            "ph": "i",
            "name": inst["name"],
            "cat": inst.get("cat") or "instant",
            "pid": inst["pid"],
            "tid": 0,
            "ts": inst["t"] * _US,
            "s": "p",
        }
        if inst.get("args"):
            event["args"] = inst["args"]
        events.append(event)
    for gauge in tel.gauges.values():
        for t, value in gauge.samples:
            events.append(
                {
                    "ph": "C",
                    "name": gauge.name,
                    "pid": gauge.pid,
                    "tid": 0,
                    "ts": t * _US,
                    "args": {"value": value},
                }
            )
    events.extend(flow_events(tel))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def flow_events(tel: "Telemetry") -> list[dict[str, Any]]:
    """Provenance flows as Chrome flow events (``ph:"s"/"f"`` arrows).

    Each traced pack that both left its producer and reached a consumer
    draws one arrow from the producer rank's track (at send time) to the
    analyzer rank's track (at read time), so causal pack movement is
    visible between process rows in Perfetto.  Requires a flow registry
    attached via :meth:`Telemetry.attach_flows`; otherwise empty.
    """
    registry = getattr(tel, "flows", None)
    if registry is None:
        return []
    from repro.telemetry.core import rank_pid

    events: list[dict[str, Any]] = []
    for record in registry.records():
        t_send = record.t_send if record.t_send is not None else record.t_enqueue
        t_read = record.t_read
        if t_send is None or t_read is None or record.consumer_global is None:
            continue
        common = {"name": "pack_flow", "cat": "flow", "id": record.flow_id, "tid": 0}
        events.append(
            {
                **common,
                "ph": "s",
                "pid": rank_pid(record.origin_global),
                "ts": t_send * _US,
            }
        )
        if record.t_arrive is not None:
            events.append(
                {
                    **common,
                    "ph": "t",
                    "pid": rank_pid(record.consumer_global),
                    "ts": record.t_arrive * _US,
                }
            )
        events.append(
            {
                **common,
                "ph": "f",
                "bp": "e",
                "pid": rank_pid(record.consumer_global),
                "ts": t_read * _US,
            }
        )
    return events


def jsonl_records(tel: "Telemetry") -> list[dict[str, Any]]:
    """One self-describing record per telemetry datum.

    Works on any state, including a completely empty registry (the result
    is an empty list — a valid, empty JSONL document) and mid-run exports
    with open spans (``t1`` null, ``unfinished`` true).
    """
    records: list[dict[str, Any]] = []
    for span in list(tel.spans) + tel.open_spans():
        record = make_record(
            TELEMETRY_SCHEMA,
            "span",
            name=span.name,
            cat=span.cat,
            pid=span.pid,
            t0=span.t0,
            t1=span.t1,
            args=span.args,
        )
        if span.t1 is None:
            record["unfinished"] = True
        records.append(record)
    for inst in tel.instants:
        records.append(make_record(TELEMETRY_SCHEMA, "instant", **inst))
    for counter in tel.counters.values():
        records.append(
            make_record(
                TELEMETRY_SCHEMA, "counter", name=counter.name, value=counter.value
            )
        )
    for gauge in tel.gauges.values():
        records.append(
            make_record(
                TELEMETRY_SCHEMA,
                "gauge",
                name=gauge.name,
                pid=gauge.pid,
                last=gauge.value,
                max=gauge.max,
                samples=gauge.samples,
            )
        )
    for histogram in tel.histograms.values():
        records.append(
            make_record(
                TELEMETRY_SCHEMA,
                "histogram",
                name=histogram.name,
                **histogram.as_dict(),
            )
        )
    registry = getattr(tel, "flows", None)
    if registry is not None:
        for flow in registry.records():
            records.append(make_record(TELEMETRY_SCHEMA, "flow", **flow.as_dict()))
    return records


class ChromeTraceExporter:
    """Writes the Perfetto/``chrome://tracing``-loadable trace file."""

    format = "chrome"
    suffix = ".trace.json"

    def export(self, tel: "Telemetry", path: str) -> str:
        with open(path, "w") as fh:
            json.dump(chrome_trace_dict(tel), fh)
        return path


class JSONLExporter:
    """Writes one JSON object per line."""

    format = "jsonl"
    suffix = ".jsonl"

    def export(self, tel: "Telemetry", path: str) -> str:
        with open(path, "w") as fh:
            for record in jsonl_records(tel):
                fh.write(json.dumps(record))
                fh.write("\n")
        return path


#: Registry of the built-in exporters, keyed by format name.
EXPORTERS = {exp.format: exp for exp in (ChromeTraceExporter(), JSONLExporter())}
