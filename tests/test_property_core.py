"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.instrument.events import CALL_NAMES, decode_events, encode_event
from repro.instrument.packer import EventPackBuilder, decode_pack
from repro.mpi.pmpi import CallRecord
from repro.simt import Kernel, Pipe
from repro.util.stats import Histogram, RunningStats
from repro.util.units import fmt_bytes, parse_size

# ---------------------------------------------------------------------------
# RunningStats: merge is equivalent to sequential accumulation
# ---------------------------------------------------------------------------

finite_floats = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)


@given(st.lists(finite_floats, min_size=1, max_size=200), st.integers(0, 200))
def test_stats_merge_associativity(data, cut):
    cut = min(cut, len(data))
    whole = RunningStats()
    for v in data:
        whole.add(v)
    left, right = RunningStats(), RunningStats()
    for v in data[:cut]:
        left.add(v)
    for v in data[cut:]:
        right.add(v)
    left.merge(right)
    assert left.count == whole.count
    assert math.isclose(left.total, whole.total, rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(left.mean, whole.mean, rel_tol=1e-9, abs_tol=1e-6)
    assert left.min == whole.min and left.max == whole.max
    assert math.isclose(left.variance, whole.variance, rel_tol=1e-6, abs_tol=1e-3)


@given(st.lists(finite_floats, min_size=1, max_size=100))
def test_stats_bounds_invariant(data):
    s = RunningStats()
    for v in data:
        s.add(v)
    assert s.min <= s.mean <= s.max
    assert s.variance >= 0


# ---------------------------------------------------------------------------
# Histogram: totals conserved
# ---------------------------------------------------------------------------


@given(
    st.lists(st.floats(-100, 200, allow_nan=False), max_size=200),
    st.integers(1, 64),
)
def test_histogram_conserves_count(values, nbins):
    h = Histogram(0.0, 100.0, nbins=nbins)
    for v in values:
        h.add(v)
    assert h.total == len(values)
    assert all(c >= 0 for c in h.counts)


# ---------------------------------------------------------------------------
# Units: parse/format round trips
# ---------------------------------------------------------------------------


@given(st.integers(0, 10**15))
def test_parse_size_identity_on_ints(n):
    assert parse_size(n) == n


@given(st.integers(0, 10**14))
def test_fmt_bytes_always_parseable_magnitude(n):
    text = fmt_bytes(n)
    value, unit = text.split(" ")
    assert float(value) >= 0
    assert unit in ("B", "KB", "MB", "GB", "TB")


# ---------------------------------------------------------------------------
# Event record wire format round trip
# ---------------------------------------------------------------------------

call_names = st.sampled_from(CALL_NAMES)
records = st.builds(
    CallRecord,
    name=call_names,
    t_start=st.floats(0, 1e6, allow_nan=False),
    t_end=st.floats(0, 1e6, allow_nan=False),
    comm_id=st.integers(0, 100),
    comm_rank=st.integers(0, 2**16),
    comm_size=st.integers(0, 2**20),
    peer=st.integers(-1, 2**31 - 1),
    tag=st.integers(-1, 2**31 - 1),
    nbytes=st.integers(0, 2**62),
)


@given(records)
def test_event_roundtrip(record):
    decoded = decode_events(encode_event(record))[0]
    assert CALL_NAMES[decoded["call"]] == record.name
    assert decoded["peer"] == record.peer
    assert decoded["tag"] == record.tag
    assert decoded["nbytes"] == record.nbytes
    assert decoded["comm_size"] == record.comm_size
    assert decoded["t_start"] == np.float64(record.t_start)
    assert decoded["t_end"] == np.float64(record.t_end)


@given(st.lists(records, max_size=60), st.integers(0, 255), st.integers(0, 2**16))
def test_pack_roundtrip(recs, app_id, rank):
    pb = EventPackBuilder(app_id=app_id, rank=rank, capacity_bytes=1 << 20)
    for r in recs:
        pb.add(r)
    header, events = decode_pack(pb.emit())
    assert header.app_id == app_id and header.rank == rank
    assert header.count == len(recs)
    for wire, orig in zip(events, recs):
        assert CALL_NAMES[wire["call"]] == orig.name


# ---------------------------------------------------------------------------
# Pipe invariants: serialization conserves work, never exceeds bandwidth
# ---------------------------------------------------------------------------


@given(
    st.lists(st.integers(1, 10**7), min_size=1, max_size=40),
    st.floats(1e3, 1e9, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_pipe_aggregate_throughput_bounded(sizes, bandwidth):
    kernel = Kernel()
    pipe = Pipe(kernel, bandwidth=bandwidth)
    finish = []

    def sender(k, n):
        yield pipe.transfer(n)
        finish.append(k.now)

    for n in sizes:
        kernel.spawn(sender(kernel, n))
    kernel.run()
    total = sum(sizes)
    makespan = max(finish)
    assert makespan >= total / bandwidth * (1 - 1e-9)
    assert pipe.bytes_transferred == total


@given(st.lists(st.integers(1, 10**6), min_size=2, max_size=30))
@settings(max_examples=30, deadline=None)
def test_pipe_fifo_completion_order(sizes):
    kernel = Kernel()
    pipe = Pipe(kernel, bandwidth=1e6)
    order = []

    def sender(k, idx, n):
        yield pipe.transfer(n)
        order.append(idx)

    for i, n in enumerate(sizes):
        kernel.spawn(sender(kernel, i, n))
    kernel.run()
    assert order == sorted(order)
