"""Figure 16 — SP.D under different tools on the Curie model.

Paper: online coupling has lower overhead than Score-P's file-based tracing
at scale despite shipping ~2.9x the data volume; purely-online aggregation
(mpiP-like) stays cheapest; overheads grow with the process count for the
file-based flows.
"""

import pytest

from repro.bench import fig16_tool_comparison


@pytest.fixture(scope="module")
def result(scale):
    return fig16_tool_comparison(scale=scale)


def test_fig16_regenerate(benchmark, scale, show):
    data = benchmark.pedantic(
        lambda: fig16_tool_comparison(scale=scale), rounds=1, iterations=1
    )
    show(data.table())


class TestShape:
    def _counts(self, result):
        return sorted({r.nprocs for r in result.runs})

    def test_online_cheaper_than_trace_at_largest_scale(self, result):
        biggest = self._counts(result)[-1]
        online = result.overhead("online", biggest)
        trace = result.overhead("scorep_trace", biggest)
        assert online < trace

    def test_online_ships_more_data_than_trace(self, result):
        """The paradox the paper resolves: more data, less overhead."""
        for nprocs in self._counts(result):
            online = next(
                r for r in result.runs if r.tool == "online" and r.nprocs == nprocs
            )
            trace = next(
                r
                for r in result.runs
                if r.tool == "scorep_trace" and r.nprocs == nprocs
            )
            ratio = online.full_run_volume_bytes / trace.full_run_volume_bytes
            assert 2.0 < ratio < 4.0  # paper: ~2.9x

    def test_trace_overhead_grows_with_scale(self, result):
        counts = self._counts(result)
        small = result.overhead("scorep_trace", counts[0])
        large = result.overhead("scorep_trace", counts[-1])
        assert large > small

    def test_every_tool_overhead_is_small_fraction(self, result):
        for r in result.runs:
            if r.overhead_pct is not None:
                assert r.overhead_pct < 60.0

    def test_reference_walltime_grows_mildly_with_scale(self, result):
        """Strong scaling: per-rank time shrinks, wall-time non-increasing."""
        refs = sorted(
            (r for r in result.runs if r.tool == "reference"),
            key=lambda r: r.nprocs,
        )
        for a, b in zip(refs, refs[1:]):
            assert b.walltime < a.walltime * 1.2
