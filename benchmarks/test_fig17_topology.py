"""Figure 17 — topological module outputs.

Paper: communication matrix of CG.D (block/butterfly structure), topology
graphs for CG.D, EulerMHD (2D grid), SP (torus) and LU (5-point mesh),
weighted in total size.  We assert the structural signatures of each
pattern on the regenerated matrices.
"""

import math

import pytest

from repro.bench import fig17_topology


@pytest.fixture(scope="module")
def result(scale):
    return fig17_topology(scale=scale)


def test_fig17_regenerate(benchmark, scale, show):
    data = benchmark.pedantic(lambda: fig17_topology(scale=scale), rounds=1, iterations=1)
    show(data.table())


class TestShape:
    def test_cg_butterfly_structure(self, result):
        """CG partners sit at XOR distances within rows, plus transposes."""
        topo = result.matrix("CG.D")
        n = topo.app_size
        log_n = int(math.log2(n))
        npcols = 2 ** ((log_n + 1) // 2)
        for (src, dst) in topo.cells:
            src_row, src_col = divmod(src, npcols)
            dst_row, dst_col = divmod(dst, npcols)
            xor_partner = src_row == dst_row and bin(src_col ^ dst_col).count("1") == 1
            other = src_row != dst_row  # transpose exchange family
            assert xor_partner or other, (src, dst)

    def test_cg_matrix_symmetric_in_size(self, result):
        topo = result.matrix("CG.D")
        assert topo.is_symmetric("hits")

    def test_eulermhd_grid_neighbours_only(self, result):
        topo = result.matrix("EulerMHD")
        from repro.apps.base import grid_2d

        px, _py = grid_2d(topo.app_size)
        for (src, dst) in topo.cells:
            dx = abs(src % px - dst % px)
            dy = abs(src // px - dst // px)
            assert (dx, dy) in ((1, 0), (0, 1)), (src, dst)

    def test_sp_torus_six_neighbours(self, result):
        topo = result.matrix("SP.C")
        assert set(topo.degree_histogram()) == {6}

    def test_lu_five_point_degrees(self, result):
        topo = result.matrix("LU.D")
        degrees = topo.degree_histogram()
        assert set(degrees) == {2, 3, 4}
        assert degrees[2] == 4  # the four mesh corners

    def test_dot_export_for_small_apps(self, result):
        topo = result.matrix("CG.D")
        if topo.app_size <= 256:
            dot = topo.to_dot("size")
            assert dot.startswith("digraph") and "->" in dot

    def test_every_rank_communicates(self, result):
        for app in result.reports:
            topo = result.matrix(app)
            senders = {src for (src, _dst) in topo.cells}
            assert senders == set(range(topo.app_size)), app
