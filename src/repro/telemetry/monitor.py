"""Online health monitor: streaming detectors over the telemetry timeline.

PR-1 telemetry is post-mortem — collected during the run, inspected after.
This module closes the loop in the paper's own spirit: a
:class:`HealthMonitor` attaches to the simulation kernel's periodic-callback
hook, snapshots every instrument into the bounded
:class:`~repro.telemetry.timeline.Timeline` at each tick of *virtual* time,
and runs online detectors against the windows:

* **stream_stall** — sustained ``EAGAIN`` storms (empty non-blocking reads
  per second) or a high share of writer time lost to rendezvous
  backpressure stalls;
* **backlog_growth** — the blackboard FIFO depth trending upward over a
  sliding window while already above a floor (the analyzer is falling
  behind its producers);
* **load_imbalance** / **worker_starvation** — span-derived busy time per
  rank track diverging across the partition within the window;
* **critical_path** — one instrumentation layer (``stream``, ``analysis``,
  ``blackboard``, …) owning more than a threshold share of all span time
  in the window.

Alerts are plain frozen dataclasses stamped in virtual time.  They can be
fanned out through an :class:`repro.analysis.alerts.AlertRouter` and — when
a :class:`~repro.core.session.CouplingSession` is live — published as data
entries onto the analyzer's blackboard, so the paper's knowledge-source
engine analyzes the monitor's own event stream (the architecture eating its
own dog food).

The monitor is read-only with respect to the simulation: it never schedules
events, so results are bit-identical with the monitor on or off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ConfigError
from repro.obs.registry import CLEARED_SUFFIX, WINDOWED_ALERT_KINDS
from repro.telemetry.core import KERNEL_PID, Telemetry
from repro.telemetry.timeline import Timeline

if TYPE_CHECKING:  # pragma: no cover
    from repro.simt.kernel import Kernel, PeriodicHook

#: the timeline series each detector reads (also what the report tabulates)
WATCHED_SERIES = (
    "counter.stream.eagain_returns",
    "counter.kernel.events_dispatched",
    "gauge.blackboard.fifo_depth",
    "gauge.kernel.heap_depth",
    "hist.stream.write_stall_s.total",
    "counter.faults.injected",
    "counter.stream.blocks_dropped",
    "counter.analysis.packs_rejected",
    "counter.vmpi.rank_remaps",
)

#: Kinds raised by the *windowed* detectors — conditions that persist while
#: their window statistic stays above threshold.  These (and only these)
#: get a paired edge-triggered ``<kind>.cleared`` alert when the condition
#: returns below threshold, so subscribers can implement hysteresis.  The
#: authoritative set lives in the schema registry so the unified bus and
#: archive query tooling agree on the health plane's kinds.
WINDOWED_KINDS = WINDOWED_ALERT_KINDS

#: Cumulative fault/defence counters watched edge-triggered: any increase
#: between ticks raises the mapped alert kind at the given severity.  These
#: series only exist once a fault (or a defensive reaction) happened, so the
#: detector is free on healthy runs.
FAULT_WATCH = (
    ("counter.faults.analyzer_crash", "analyzer_crash", "critical"),
    ("counter.vmpi.rank_remaps", "analyzer_failover", "critical"),
    ("counter.faults.link_degraded", "link_degraded", "warn"),
    ("counter.faults.pack_corrupted", "pack_corruption", "warn"),
    ("counter.faults.pack_dropped", "pack_drop", "warn"),
    ("counter.faults.analyzer_stalled", "analyzer_stall", "warn"),
    ("counter.analysis.packs_rejected", "pack_checksum_reject", "warn"),
    ("counter.stream.write_timeouts", "stream_write_timeout", "warn"),
    ("counter.stream.blocks_dropped", "stream_overflow_drop", "warn"),
)


@dataclass(frozen=True)
class HealthAlert:
    """One online health finding, stamped in virtual kernel time."""

    kind: str  # "stream_stall" | "backlog_growth" | "load_imbalance" |
    #            "worker_starvation" | "critical_path" | the FAULT_WATCH
    #            kinds (analyzer_crash, analyzer_failover, link_degraded,
    #            pack_corruption, pack_drop, analyzer_stall,
    #            pack_checksum_reject, stream_write_timeout,
    #            stream_overflow_drop) | "<windowed>.cleared" edge events
    #            at severity "info" when a windowed condition subsides
    t_detect: float
    severity: str  # "warn" | "critical"
    value: float
    threshold: float
    detail: dict = field(default_factory=dict)
    source: str = "health_monitor"

    def describe(self) -> str:
        extra = ""
        if self.detail:
            extra = " (" + ", ".join(f"{k}={v}" for k, v in sorted(self.detail.items())) + ")"
        return (
            f"[{self.t_detect:.6f}s] {self.severity.upper()} {self.kind}: "
            f"{self.value:.3g} vs threshold {self.threshold:.3g}{extra}"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "t_detect": self.t_detect,
            "severity": self.severity,
            "value": self.value,
            "threshold": self.threshold,
            "detail": dict(self.detail),
            "source": self.source,
        }


@dataclass
class MonitorConfig:
    """Detector thresholds and sampling cadence (virtual seconds)."""

    interval: float = 0.005  # tick/sampling resolution
    window: float = 0.025  # sliding detector window
    capacity: int = 512  # ring length per timeline series
    cooldown: float | None = None  # per-kind re-raise spacing; None -> window
    eagain_rate_threshold: float = 200.0  # empty non-blocking reads per second
    stall_share_threshold: float = 0.25  # stalled writer-seconds per second
    backlog_depth_floor: float = 8.0  # FIFO depth below which trend is ignored
    backlog_slope_threshold: float = 20.0  # FIFO jobs per second of growth
    imbalance_ratio_threshold: float = 4.0  # max/mean busy-time across tracks
    starvation_share: float = 0.02  # busy below this share of mean = starved
    min_busy_share: float = 0.05  # of window mean busy before judging balance
    critical_path_share: float = 0.85  # single-layer share of all span time

    def __post_init__(self) -> None:
        if self.interval <= 0 or self.window <= 0:
            raise ConfigError("monitor interval and window must be positive")
        if self.window < self.interval:
            raise ConfigError("monitor window must be >= interval")
        if self.capacity < 2:
            raise ConfigError("monitor capacity must be >= 2")
        if self.cooldown is not None and self.cooldown < 0:
            raise ConfigError("monitor cooldown must be >= 0")
        for name in (
            "eagain_rate_threshold",
            "stall_share_threshold",
            "backlog_slope_threshold",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.imbalance_ratio_threshold <= 1:
            raise ConfigError("imbalance_ratio_threshold must be > 1")
        if not (0 <= self.starvation_share < 1):
            raise ConfigError("starvation_share must be in [0, 1)")
        if not (0 < self.critical_path_share <= 1):
            raise ConfigError("critical_path_share must be in (0, 1]")

    @property
    def effective_cooldown(self) -> float:
        return self.window if self.cooldown is None else self.cooldown


class HealthMonitor:
    """Streaming anomaly detection over a live :class:`Telemetry`."""

    def __init__(
        self,
        telemetry: Telemetry,
        config: MonitorConfig | None = None,
        router: Any | None = None,
    ):
        if not telemetry.enabled:
            raise ConfigError(
                "HealthMonitor needs live telemetry; pass telemetry=Telemetry()"
            )
        self.tel = telemetry
        self.config = config or MonitorConfig()
        self.router = router
        self.timeline = Timeline(
            telemetry, resolution=self.config.interval, capacity=self.config.capacity
        )
        self.alerts: list[HealthAlert] = []
        self.ticks = 0
        self.published = 0
        self._raised_until: dict[str, float] = {}
        self._fault_seen: dict[str, float] = {}
        # Edge tracking for the paired cleared events: which windowed kinds
        # fired this tick (above threshold, cooldown or not), and which have
        # an emitted alert that has not cleared yet.
        self._firing: set[str] = set()
        self._active: dict[str, HealthAlert] = {}
        self._publish: Callable[[HealthAlert], None] | None = None
        self._pending_publish: list[HealthAlert] = []
        self._hook: "PeriodicHook | None" = None
        self._span_floor = 0  # spans older than this index are outside windows

    # -- kernel wiring ------------------------------------------------------------

    def attach(self, kernel: "Kernel") -> "PeriodicHook":
        """Subscribe to the kernel's periodic-callback hook."""
        if self._hook is not None:
            raise ConfigError("health monitor already attached to a kernel")
        if kernel.telemetry is not self.tel:
            raise ConfigError("monitor and kernel must share one Telemetry")
        self._hook = kernel.call_every(self.config.interval, self._tick)
        return self._hook

    def detach(self) -> None:
        if self._hook is not None:
            self._hook.cancel()
            self._hook = None

    def _tick(self, now: float) -> None:
        self.ticks += 1
        self.timeline.sample(now, force=True)
        self.evaluate(now)

    # -- detection ----------------------------------------------------------------

    def evaluate(self, now: float) -> list[HealthAlert]:
        """Run every detector against the trailing window ending at ``now``."""
        new: list[HealthAlert] = []
        self._firing.clear()
        new += self._detect_stream_stall(now)
        new += self._detect_backlog(now)
        busy = self._busy_by_track(now)
        new += self._detect_worker_balance(now, busy)
        new += self._detect_critical_path(now)
        new += self._detect_faults(now)
        new += self._detect_cleared(now)
        for alert in new:
            self._emit(alert)
        return new

    def _detect_cleared(self, now: float) -> list[HealthAlert]:
        """Paired edge events: an active windowed condition dropped below
        threshold this tick.

        ``_firing`` holds every windowed kind whose condition held this
        tick regardless of the raise cooldown, so a suppressed-but-still
        -firing condition does not clear.  Fault-watch kinds are cumulative
        edge events with no "below threshold" state and never clear.
        """
        out: list[HealthAlert] = []
        for kind in sorted(set(self._active) - self._firing):
            raised = self._active.pop(kind)
            out.append(
                HealthAlert(
                    kind=kind + CLEARED_SUFFIX, t_detect=now, severity="info",
                    value=raised.value, threshold=raised.threshold,
                    detail={
                        "raised_at": raised.t_detect,
                        "active_s": round(now - raised.t_detect, 9),
                    },
                )
            )
        return out

    def _detect_faults(self, now: float) -> list[HealthAlert]:
        """Edge-triggered watch over cumulative fault/defence counters.

        Unlike the windowed detectors, these series are born mid-run at the
        first fault, so rates over a fixed window would be meaningless —
        any increase since the last tick is the signal.
        """
        out: list[HealthAlert] = []
        for series, kind, severity in FAULT_WATCH:
            ts = self.timeline.get(series)
            if ts is None:
                continue
            latest = ts.latest()
            if latest is None:
                continue
            value = latest[1]
            last = self._fault_seen.get(series, 0.0)
            if value <= last:
                continue
            self._fault_seen[series] = value
            if self._raised_until.get(kind, -1.0) > now:
                continue
            self._raised_until[kind] = now + self.config.effective_cooldown
            out.append(
                HealthAlert(
                    kind=kind, t_detect=now, severity=severity,
                    value=value, threshold=0.0,
                    detail={"series": series, "delta": value - last},
                )
            )
        return out

    def _detect_stream_stall(self, now: float) -> list[HealthAlert]:
        cfg = self.config
        out: list[HealthAlert] = []
        t_lo = now - cfg.window
        eagain = self.timeline.get("counter.stream.eagain_returns")
        if eagain is not None:
            rate = eagain.window_stats(t_lo)["rate"]
            if rate > cfg.eagain_rate_threshold:
                out += self._raise(
                    "stream_stall", now, rate, cfg.eagain_rate_threshold,
                    {"signal": "eagain_rate"},
                )
        stall = self.timeline.get("hist.stream.write_stall_s.total")
        if stall is not None:
            share = stall.window_stats(t_lo)["rate"]  # stalled seconds / second
            if share > cfg.stall_share_threshold:
                out += self._raise(
                    "stream_stall", now, share, cfg.stall_share_threshold,
                    {"signal": "write_stall_share"},
                )
        return out

    def _detect_backlog(self, now: float) -> list[HealthAlert]:
        cfg = self.config
        depth = self.timeline.get("gauge.blackboard.fifo_depth")
        if depth is None:
            return []
        stats = depth.window_stats(now - cfg.window)
        if stats["n"] < 2 or stats["last"] < cfg.backlog_depth_floor:
            return []
        slope = depth.slope(now - cfg.window)
        if slope <= cfg.backlog_slope_threshold:
            return []
        return self._raise(
            "backlog_growth", now, slope, cfg.backlog_slope_threshold,
            {"depth": stats["last"], "high_water": depth.high_water},
        )

    def _busy_by_track(self, now: float) -> dict[int, float]:
        """Span-derived busy seconds per rank track inside the window.

        Nested spans double count; the ratioed detectors only compare
        tracks against each other, so consistent inflation cancels out.
        """
        t_lo = now - self.config.window
        busy: dict[int, float] = {}
        spans = self.tel.spans
        floor = self._span_floor
        # Spans are appended in end order, so everything before the first
        # index whose t1 >= t_lo stays out of this and all later windows.
        for idx in range(len(spans) - 1, floor - 1, -1):
            span = spans[idx]
            if span.t1 is not None and span.t1 < t_lo:
                self._span_floor = max(self._span_floor, idx)
                break
            if span.pid == KERNEL_PID:
                continue
            t1 = now if span.t1 is None else span.t1
            overlap = min(t1, now) - max(span.t0, t_lo)
            if overlap > 0:
                busy[span.pid] = busy.get(span.pid, 0.0) + overlap
        for span in self.tel.open_spans():
            if span.pid == KERNEL_PID:
                continue
            overlap = now - max(span.t0, t_lo)
            if overlap > 0:
                busy[span.pid] = busy.get(span.pid, 0.0) + overlap
        return busy

    def _detect_worker_balance(
        self, now: float, busy: dict[int, float]
    ) -> list[HealthAlert]:
        cfg = self.config
        if len(busy) < 2:
            return []
        mean = sum(busy.values()) / len(busy)
        if mean < cfg.min_busy_share * cfg.window:
            return []  # everybody mostly idle: nothing to balance
        out: list[HealthAlert] = []
        worst_pid, worst = max(busy.items(), key=lambda kv: kv[1])
        ratio = worst / mean
        if ratio > cfg.imbalance_ratio_threshold:
            out += self._raise(
                "load_imbalance", now, ratio, cfg.imbalance_ratio_threshold,
                {"pid": worst_pid, "busy_s": round(worst, 9), "tracks": len(busy)},
            )
        starved = sorted(
            pid for pid, b in busy.items() if b <= cfg.starvation_share * mean
        )
        if starved:
            out += self._raise(
                "worker_starvation", now, float(len(starved)), 0.0,
                {"pids": starved[:8], "mean_busy_s": round(mean, 9)},
            )
        return out

    def _detect_critical_path(self, now: float) -> list[HealthAlert]:
        cfg = self.config
        t_lo = now - cfg.window
        by_layer: dict[str, float] = {}
        spans = self.tel.spans
        for idx in range(len(spans) - 1, self._span_floor - 1, -1):
            span = spans[idx]
            if span.t1 is not None and span.t1 < t_lo:
                break
            if span.pid == KERNEL_PID:
                continue
            t1 = now if span.t1 is None else span.t1
            overlap = min(t1, now) - max(span.t0, t_lo)
            if overlap > 0:
                layer = span.cat or "uncategorized"
                by_layer[layer] = by_layer.get(layer, 0.0) + overlap
        for span in self.tel.open_spans():
            if span.pid == KERNEL_PID:
                continue
            overlap = now - max(span.t0, t_lo)
            if overlap > 0:
                layer = span.cat or "uncategorized"
                by_layer[layer] = by_layer.get(layer, 0.0) + overlap
        if len(by_layer) < 2:
            return []  # a single layer trivially owns 100 %
        total = sum(by_layer.values())
        if total <= 0:
            return []
        layer, layer_time = max(by_layer.items(), key=lambda kv: kv[1])
        share = layer_time / total
        if share <= cfg.critical_path_share:
            return []
        return self._raise(
            "critical_path", now, share, cfg.critical_path_share,
            {"layer": layer, "layer_s": round(layer_time, 9)},
        )

    # -- alert plumbing -----------------------------------------------------------

    def _raise(
        self, kind: str, now: float, value: float, threshold: float, detail: dict
    ) -> list[HealthAlert]:
        self._firing.add(kind)
        if self._raised_until.get(kind, -1.0) > now:
            return []
        self._raised_until[kind] = now + self.config.effective_cooldown
        severity = "critical" if threshold > 0 and value >= 2 * threshold else "warn"
        alert = HealthAlert(
            kind=kind, t_detect=now, severity=severity,
            value=value, threshold=threshold, detail=detail,
        )
        self._active[kind] = alert
        return [alert]

    def _emit(self, alert: HealthAlert) -> None:
        self.alerts.append(alert)
        if self.router is not None:
            self.router.route(alert)
        if self._publish is not None:
            self._publish(alert)
            self.published += 1
        else:
            self._pending_publish.append(alert)

    def bind_blackboard(self, submit: Callable[[HealthAlert], None]) -> None:
        """Route alerts (including ones raised before binding) into a
        blackboard submit function — the dogfooding path."""
        self._publish = submit
        pending, self._pending_publish = self._pending_publish, []
        for alert in pending:
            submit(alert)
            self.published += 1

    # -- summaries ----------------------------------------------------------------

    def by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for alert in self.alerts:
            out[alert.kind] = out.get(alert.kind, 0) + 1
        return out

    def summary(self) -> dict[str, Any]:
        """JSON-serializable state for reports and bench artefacts."""
        cfg = self.config
        series: dict[str, Any] = {}
        for key in WATCHED_SERIES:
            ts = self.timeline.get(key)
            if ts is None:
                continue
            latest = ts.latest()
            stats = ts.window_stats(latest[0] - cfg.window) if latest else {}
            series[key] = {
                "last": latest[1] if latest else 0.0,
                "high_water": ts.high_water,
                "rate": stats.get("rate", 0.0),
                "points": [[t, v] for t, v in ts.decimated(8)],
            }
        out = {
            "ticks": self.ticks,
            "interval_s": cfg.interval,
            "window_s": cfg.window,
            "samples": self.timeline.samples_taken,
            "series_tracked": len(self.timeline.series),
            "alerts": [a.as_dict() for a in self.alerts],
            "by_kind": self.by_kind(),
            "unresolved": sorted(self._active),
            "published_to_blackboard": self.published,
            "series": series,
        }
        if self.router is not None:
            out["router"] = {
                "routed": self.router.routed,
                "dropped": self.router.dropped,
            }
        return out
