"""Flow bench: per-stage latency attribution of the streaming pipeline.

Runs the fig14-style coupled workload (an instrumented SP kernel streaming
into the analyzer partition) with provenance tracing on, sweeping the
writer/reader ratio, and reports where an event pack's end-to-end latency
goes: seal, stall (backpressure), transit, receive-buffer dwell, dispatch
and analysis.  One table row per (ratio, stage) plus an ``end_to_end`` row
per ratio, so the ``BENCH_flow.json`` artefact *is* the stage-attribution
document — no side-channel files.

Because the stages telescope, each configuration's stage ``total_s`` values
sum to its end-to-end total exactly; the driver asserts this invariant on
every row group it emits (``consistency`` column, fractional error).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.nas import SP
from repro.core.session import CouplingSession
from repro.errors import ConfigError
from repro.instrument.overhead import InstrumentationCost
from repro.network.machine import MachineSpec, TERA100
from repro.telemetry import Telemetry
from repro.telemetry.provenance import STAGES
from repro.util.tables import Table


@dataclass
class FlowPoint:
    """One pipeline stage of one coupled-workload configuration."""

    ratio: float
    writers: int
    readers: int
    stage: str
    flows: int
    p50_s: float
    p95_s: float
    mean_s: float
    total_s: float
    #: |sum(stage totals) - end-to-end total| / end-to-end total for the
    #: row's configuration (identical across its stage rows)
    consistency: float


@dataclass
class FlowResult:
    """Writer/reader-ratio sweep of per-stage latency attribution."""

    machine: str
    scale: str
    seed: int
    sample_rate: float
    points: list[FlowPoint] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            [
                "ratio", "writers", "readers", "stage", "flows",
                "p50_us", "p95_us", "mean_us", "total_ms", "consistency",
            ],
            title=f"Pipeline latency attribution ({self.machine}, scale={self.scale})",
        )
        for p in self.points:
            t.add_row(
                f"{p.ratio:g}", p.writers, p.readers, p.stage, p.flows,
                f"{p.p50_s * 1e6:.3f}", f"{p.p95_s * 1e6:.3f}",
                f"{p.mean_s * 1e6:.3f}", f"{p.total_s * 1e3:.4f}",
                f"{p.consistency:.2e}",
            )
        return t


def _workload(scale: str):
    """(kernel, ratio grid) mirroring the fig14 writer/reader sweep."""
    if scale == "paper":
        return SP(256, "C", iterations=3), (4.0, 16.0, 64.0)
    if scale == "small":
        return SP(16, "C", iterations=3), (2.0, 4.0, 8.0)
    raise ConfigError(f"unknown scale {scale!r}")


def flow_attribution(
    scale: str = "small",
    machine: MachineSpec = TERA100,
    seed: int = 0,
    telemetry: Telemetry | None = None,
    sample_rate: float = 1.0,
) -> FlowResult:
    """Sweep the writer/reader ratio and attribute per-stage latency.

    Each configuration runs with full (or ``sample_rate``-bounded) flow
    tracing; undersized analyzers surface as growing ``stall`` and
    ``dwell`` shares — backpressure made visible stage by stage.
    """
    kernel, ratios = _workload(scale)
    result = FlowResult(
        machine=machine.name, scale=scale, seed=seed, sample_rate=sample_rate
    )
    # Small packs so every writer flushes a stream of them: latency
    # attribution needs per-pack samples, not one tail flush per rank.
    cost = InstrumentationCost(block_size=4096, na_buffers=2)
    for ratio in ratios:
        session = CouplingSession(
            machine=machine, seed=seed, instrumentation=cost, telemetry=telemetry
        )
        session.add_application(kernel)
        readers = session.set_analyzer(ratio=ratio)
        session.enable_provenance(sample_rate=sample_rate)
        run = session.run()
        flows = run.flows
        end = flows["end_to_end"]
        stage_sum = sum(s["total_s"] for s in flows["stages"].values())
        consistency = (
            abs(stage_sum - end["total_s"]) / end["total_s"]
            if end["total_s"] > 0
            else 0.0
        )
        if consistency > 1e-9:
            raise ConfigError(
                f"flow stage totals do not telescope at ratio {ratio}: "
                f"{stage_sum} vs {end['total_s']}"
            )
        for stage in STAGES:
            s = flows["stages"][stage]
            result.points.append(
                FlowPoint(
                    ratio=ratio,
                    writers=kernel.nprocs,
                    readers=readers,
                    stage=stage,
                    flows=int(s["count"]),
                    p50_s=s["p50_s"],
                    p95_s=s["p95_s"],
                    mean_s=s["mean_s"],
                    total_s=s["total_s"],
                    consistency=consistency,
                )
            )
        result.points.append(
            FlowPoint(
                ratio=ratio,
                writers=kernel.nprocs,
                readers=readers,
                stage="end_to_end",
                flows=int(end["count"]),
                p50_s=end["p50_s"],
                p95_s=end["p95_s"],
                mean_s=end["mean_s"],
                total_s=end["total_s"],
                consistency=consistency,
            )
        )
    return result
