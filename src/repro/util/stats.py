"""Streaming statistics containers used by profiling modules.

The analysis engine reduces unbounded event streams into fixed-size summaries;
these containers are the reduction targets (Welford running moments and a
fixed-bin histogram).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class RunningStats:
    """Welford online mean/variance with min/max and total tracking."""

    __slots__ = ("count", "total", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the summary."""
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "RunningStats") -> None:
        """Fold another summary into this one (parallel reduction step)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.total = other.total
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        n1, n2 = self.count, other.count
        delta = other._mean - self._mean
        total_n = n1 + n2
        self._mean += delta * n2 / total_n
        self._m2 += other._m2 + delta * delta * n1 * n2 / total_n
        self.count = total_n
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "stddev": self.stddev,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunningStats(count={self.count}, total={self.total:.6g}, "
            f"mean={self.mean:.6g}, min={self.min:.6g}, max={self.max:.6g})"
        )


@dataclass
class Histogram:
    """Fixed-bin linear histogram over ``[lo, hi)`` with overflow bins."""

    lo: float
    hi: float
    nbins: int = 32
    counts: list[int] = field(default_factory=list)
    under: int = 0
    over: int = 0

    def __post_init__(self) -> None:
        if self.hi <= self.lo:
            raise ValueError("Histogram requires hi > lo")
        if self.nbins <= 0:
            raise ValueError("Histogram requires nbins > 0")
        if not self.counts:
            self.counts = [0] * self.nbins

    def add(self, value: float) -> None:
        if value < self.lo:
            self.under += 1
            return
        if value >= self.hi:
            self.over += 1
            return
        idx = int((value - self.lo) / (self.hi - self.lo) * self.nbins)
        self.counts[min(idx, self.nbins - 1)] += 1

    @property
    def total(self) -> int:
        return sum(self.counts) + self.under + self.over

    def bin_edges(self) -> list[float]:
        width = (self.hi - self.lo) / self.nbins
        return [self.lo + i * width for i in range(self.nbins + 1)]
