"""Distributed late-sender analysis — the paper's stateful-analysis future work.

Section VI announces a wait-state analysis "taking advantage of a
distributed blackboard", extending the data-flow across analyzer processes.
The difficulty it names is *state*: matching a receive on rank B with its
send on rank A requires both events, but the streams of A and B usually
land on different analyzer ranks.

This module implements that distributed data-flow in two phases:

1. **Local phase** (during streaming) — each analyzer rank reduces its
   slice of the event stream to compact per-message tuples: sends
   ``(src, dst, tag, t_start)`` and receive completions
   ``(src, dst, tag, t_end)``; blocking receives and resolved waits carry
   the matched source, so both sides are available.
2. **Exchange phase** (after EOF) — tuples are *sharded by the sending
   application rank* and redistributed across the analyzer partition (an
   all-to-all), so each shard owns every send **and** every receive of its
   senders.  MPI's non-overtaking guarantee makes k-th-send ↔ k-th-receive
   matching exact per (src, dst, tag) channel.

The result is the classic late-sender metric: for each matched pair, the
receiver waited ``max(0, t_send_start - t_recv_... )`` — here approximated
as the receive-completion time minus the send start when the send started
after the receive was already pending.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.errors import ReproError
from repro.instrument.events import CALL_IDS

_SEND_CALLS = np.array(
    [CALL_IDS["MPI_Send"], CALL_IDS["MPI_Isend"], CALL_IDS["MPI_Sendrecv"]],
    dtype="<u2",
)
#: receive completions with a resolved source: blocking recv, sendrecv, wait
_RECV_CALLS = np.array(
    [CALL_IDS["MPI_Recv"], CALL_IDS["MPI_Wait"]], dtype="<u2"
)


class LateSenderAnalysis:
    """Mergeable, shardable send/receive matcher (one per application level)."""

    def __init__(self, app: str, app_size: int):
        if app_size <= 0:
            raise ReproError(f"app_size must be > 0, got {app_size}")
        self.app = app
        self.app_size = app_size
        # channel = (src, dst, tag) -> ordered timestamp lists
        self.sends: dict[tuple[int, int, int], list[float]] = defaultdict(list)
        self.recvs: dict[tuple[int, int, int], list[float]] = defaultdict(list)
        # finalize() results
        self.matched_pairs = 0
        self.unmatched_sends = 0
        self.unmatched_recvs = 0
        self.late_send_time = np.zeros(app_size)  # indexed by receiver rank
        self.late_send_count = np.zeros(app_size, dtype=np.int64)
        self._finalized = False

    # -- local phase ---------------------------------------------------------------

    def update(self, rank: int, events: np.ndarray) -> None:
        """Fold one event batch from application rank ``rank``."""
        if not (0 <= rank < self.app_size):
            raise ReproError(f"batch from rank {rank} outside app of {self.app_size}")
        if len(events) == 0:
            return
        send_mask = np.isin(events["call"], _SEND_CALLS) & (events["peer"] >= 0)
        for ev in events[send_mask]:
            self.sends[(rank, int(ev["peer"]), int(ev["tag"]))].append(
                float(ev["t_start"])
            )
        recv_mask = np.isin(events["call"], _RECV_CALLS) & (events["peer"] >= 0)
        for ev in events[recv_mask]:
            self.recvs[(int(ev["peer"]), rank, int(ev["tag"]))].append(
                float(ev["t_end"])
            )

    # -- exchange phase ----------------------------------------------------------------

    def shard(self, nshards: int) -> list[dict]:
        """Split state into per-shard packets, keyed by the *sender* rank.

        Shard ``i`` receives every channel whose source rank hashes to it,
        i.e. both the send and the receive side of those messages.
        """
        if nshards <= 0:
            raise ReproError(f"nshards must be > 0, got {nshards}")
        packets: list[dict] = [
            {"app": self.app, "sends": {}, "recvs": {}} for _ in range(nshards)
        ]
        for channel, times in self.sends.items():
            packets[channel[0] % nshards]["sends"][channel] = times
        for channel, times in self.recvs.items():
            packets[channel[0] % nshards]["recvs"][channel] = times
        return packets

    def absorb(self, packet: dict) -> None:
        """Fold one exchanged packet into this shard's state."""
        if packet is None:
            return
        if packet.get("app") != self.app:
            raise ReproError("absorbing packet of a different application")
        for channel, times in packet["sends"].items():
            self.sends[channel].extend(times)
        for channel, times in packet["recvs"].items():
            self.recvs[channel].extend(times)

    def reset_local(self) -> None:
        """Drop the pre-exchange local state (it now lives on its shards)."""
        self.sends = defaultdict(list)
        self.recvs = defaultdict(list)

    # -- matching -----------------------------------------------------------------------

    def finalize(self) -> None:
        """Match channels FIFO and accumulate late-sender times."""
        if self._finalized:
            raise ReproError("finalize() called twice")
        self._finalized = True
        for channel, send_times in self.sends.items():
            recv_times = self.recvs.get(channel, [])
            send_times.sort()
            recv_times.sort()
            npairs = min(len(send_times), len(recv_times))
            self.matched_pairs += npairs
            self.unmatched_sends += len(send_times) - npairs
            self.unmatched_recvs += len(recv_times) - npairs
            receiver = channel[1]
            for i in range(npairs):
                # The receive completed at recv_times[i]; if the send only
                # *started* close to that completion, the receiver idled.
                lateness = max(0.0, recv_times[i] - send_times[i])
                # Transfer time is part of lateness here; what we attribute
                # is the span between send start and receive completion.
                self.late_send_time[receiver] += lateness
                self.late_send_count[receiver] += 1
        for channel, recv_times in self.recvs.items():
            if channel not in self.sends:
                self.unmatched_recvs += len(recv_times)

    # -- reduction ------------------------------------------------------------------------

    def merge(self, other: "LateSenderAnalysis") -> None:
        """Merge *finalized* shard results (post-exchange reduction)."""
        if other.app != self.app or other.app_size != self.app_size:
            raise ReproError("merging late-sender analyses of different apps")
        if self._finalized != other._finalized:
            raise ReproError("merging finalized with unfinalized state")
        if not self._finalized:
            for channel, times in other.sends.items():
                self.sends[channel].extend(times)
            for channel, times in other.recvs.items():
                self.recvs[channel].extend(times)
            return
        self.matched_pairs += other.matched_pairs
        self.unmatched_sends += other.unmatched_sends
        self.unmatched_recvs += other.unmatched_recvs
        self.late_send_time += other.late_send_time
        self.late_send_count += other.late_send_count

    def summary(self) -> dict[str, float]:
        return {
            "matched_pairs": float(self.matched_pairs),
            "unmatched_sends": float(self.unmatched_sends),
            "unmatched_recvs": float(self.unmatched_recvs),
            "late_time_total": float(self.late_send_time.sum()),
            "late_time_max_rank": float(self.late_send_time.max()),
        }

    def worst_receivers(self, k: int = 5) -> list[tuple[int, float]]:
        """Ranks losing the most time to late senders."""
        order = np.argsort(self.late_send_time)[::-1][:k]
        return [
            (int(r), float(self.late_send_time[r]))
            for r in order
            if self.late_send_time[r] > 0
        ]
