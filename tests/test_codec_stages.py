"""Reduction stages: randomized round-trips, lossy invariants, chain rules."""

import numpy as np
import pytest

from repro.codec.frame import PackProvenance, build_frame, parse_frame
from repro.codec.stages import (
    REGISTERED_CHAINS,
    CodecChain,
    available_stages,
    build_chain,
    decode_chain,
)
from repro.errors import ConfigError, PackFormatError, UnknownCodecError
from repro.instrument.events import EVENT_DTYPE, EVENT_RECORD_SIZE, decode_events

pytestmark = pytest.mark.codec

RECORD_SIZE = EVENT_RECORD_SIZE


def _random_batch(rng: np.random.Generator, n: int) -> bytes:
    """n encoded events with realistic structure: repeated call sites and
    monotone (but jittered) timestamps — plus adversarial float fields."""
    ev = np.zeros(n, dtype=EVENT_DTYPE)
    if n:
        ev["call"] = rng.integers(0, 20, n)
        ev["comm_size"] = rng.choice([4, 16, 256], n)
        ev["peer"] = rng.integers(-1, 64, n)
        ev["tag"] = rng.integers(-1, 1000, n)
        ev["nbytes"] = rng.choice([0, 64, 4096, 10**7], n)
        t = np.cumsum(rng.random(n) * 1e-3)
        ev["t_start"] = t
        ev["t_end"] = t + rng.random(n) * 1e-5
        # Adversarial corner: exact zeros and huge magnitudes.
        if n > 2:
            ev["t_start"][0] = 0.0
            ev["t_end"][n // 2] = 1e300
    return ev.tobytes()


@pytest.mark.parametrize("spec", REGISTERED_CHAINS)
def test_registered_chains_roundtrip_exactly(spec):
    """200 seeded batches per chain: decode(encode(x)) == x, bit for bit."""
    rng = np.random.default_rng(hash(spec) % 2**32)
    chain = build_chain(spec)
    assert chain.lossless
    for trial in range(200):
        n = int(rng.integers(0, 60)) if trial % 10 else 0  # empty packs too
        records = _random_batch(rng, n)
        enc = chain.encode(records, now=float(trial))
        assert enc.count == n and enc.events_dropped == 0
        assert decode_chain(spec).decode(enc.payload, enc.count) == records


def test_roundtrip_survives_reframing_with_provenance():
    """Encoded payloads pass through frame build -> parse -> rebuild intact."""
    rng = np.random.default_rng(7)
    records = _random_batch(rng, 40)
    for spec in REGISTERED_CHAINS:
        enc = build_chain(spec).encode(records, now=0.0)
        blob = build_frame(0, 3, enc.count, enc.payload, codec=spec)
        # Re-frame (what provenance stamping does): parse, stamp, emit.
        frame = parse_frame(blob)
        frame.with_provenance(PackProvenance(flow_id=1, app_id=0, rank=3, t_seal=2.0))
        stamped = frame.to_bytes()
        reparsed = parse_frame(stamped)  # fresh CRC still verifies
        assert reparsed.codec == spec
        assert reparsed.provenance.flow_id == 1
        decoded = decode_chain(reparsed.codec).decode(reparsed.payload, reparsed.count)
        assert decoded == records


def test_decoded_events_match_originals():
    rng = np.random.default_rng(11)
    records = _random_batch(rng, 25)
    ref = decode_events(records, 25)
    for spec in ("delta", "dict+zlib", "delta+dict+zlib"):
        enc = build_chain(spec).encode(records, now=0.0)
        out = decode_events(decode_chain(spec).decode(enc.payload, 25), 25)
        assert np.array_equal(out, ref)


# -- lossy stages ------------------------------------------------------------------


def test_quant_bounds_duration_error():
    rng = np.random.default_rng(3)
    records = _random_batch(rng, 50)
    ref = decode_events(records, 50)
    q = 1e-6
    chain = build_chain(f"quant:{q}")
    assert not chain.lossless
    enc = chain.encode(records, now=0.0)
    out = decode_events(decode_chain(chain.spec).decode(enc.payload, 50), 50)
    assert np.array_equal(out["t_start"], ref["t_start"])  # starts untouched
    dur_ref = ref["t_end"] - ref["t_start"]
    dur_out = out["t_end"] - out["t_start"]
    finite = np.isfinite(dur_ref) & (dur_ref < 1e12)
    assert np.all(np.abs(dur_out[finite] - dur_ref[finite]) <= q / 2 + 1e-18)


def test_sample_stage_exact_drop_accounting():
    rng = np.random.default_rng(5)
    chain = build_chain("sample:1024")  # tiny budget: must drop
    kept_total = dropped_total = 0
    # Enough volume to exhaust the 64 KiB burst allowance, then some.
    for i in range(40):
        records = _random_batch(rng, 200)
        enc = chain.encode(records, now=float(i))
        assert enc.count + enc.events_dropped == 200  # exact accounting
        assert enc.count * RECORD_SIZE + enc.events_dropped * RECORD_SIZE == len(
            records
        )
        decoded = decode_chain("sample:1024").decode(enc.payload, enc.count)
        assert len(decoded) == enc.count * RECORD_SIZE
        kept_total += enc.count
        dropped_total += enc.events_dropped
    assert dropped_total > 0 and kept_total > 0


def test_sample_keeps_everything_under_budget():
    chain = build_chain("sample:1000000000")
    rng = np.random.default_rng(9)
    records = _random_batch(rng, 30)
    enc = chain.encode(records, now=0.0)
    assert enc.count == 30 and enc.events_dropped == 0
    assert enc.payload[-30 * RECORD_SIZE:] == records  # kept verbatim


# -- chain construction rules ------------------------------------------------------


def test_build_chain_accepts_string_and_sequence():
    assert build_chain("delta+zlib").spec == "delta+zlib"
    assert build_chain(["delta", "zlib"]).spec == "delta+zlib"
    assert build_chain(None).spec == ""
    assert build_chain("").spec == ""
    assert not build_chain("")


def test_unknown_stage_rejected():
    with pytest.raises(UnknownCodecError):
        build_chain("delta+wavelet")


def test_duplicate_stage_rejected():
    with pytest.raises(ConfigError):
        build_chain("delta+delta")


def test_phase_order_enforced():
    with pytest.raises(ConfigError):
        build_chain("zlib+delta")  # byte codec before columnar transform
    with pytest.raises(ConfigError):
        build_chain("delta+sample")  # record filter after columnar transform


def test_bad_stage_argument_rejected():
    with pytest.raises(ConfigError):
        build_chain("zlib:0")  # level out of range
    with pytest.raises(ConfigError):
        build_chain("quant:-1")


def test_decode_chain_is_cached_and_normalizing():
    assert decode_chain("delta+zlib") is decode_chain("delta+zlib")
    with pytest.raises(UnknownCodecError):
        decode_chain("not-a-codec")


def test_descriptor_mismatch_detected():
    """Decoding with the wrong chain raises instead of returning garbage."""
    rng = np.random.default_rng(13)
    records = _random_batch(rng, 20)
    enc = build_chain("delta+dict").encode(records, now=0.0)
    with pytest.raises(PackFormatError):
        decode_chain("delta").decode(enc.payload, 20)


def test_available_stages_lists_builtins():
    names = available_stages()
    for name in ("sample", "quant", "delta", "dict", "zlib"):
        assert name in names


def test_chain_cost_weight_accumulates():
    assert build_chain("").cost_weight == 0.0
    assert build_chain("delta+dict+zlib").cost_weight == pytest.approx(4.5)
    assert isinstance(build_chain("delta"), CodecChain)
