"""Machine specifications for the paper's two evaluation platforms.

Figures taken from the paper (Section IV-A) and public TOP500 entries:

* **Tera 100** — 4370 nodes, 4 x 8-core Nehalem EX @ 2.27 GHz (32 cores/node),
  64 GB/node, Infiniband QDR fat-tree, aggregate file-system throughput
  500 GB/s machine-wide (Section IV-B), 1.2 PF peak.
* **Curie** (thin nodes) — 5040 nodes, 2 x 8-core Sandy Bridge @ 2.7 GHz
  (16 cores/node), 64 GB/node, Infiniband QDR fat-tree, 1.36 PF peak.

Three constants are *calibrated* rather than taken from spec sheets, all
documented against the paper's measurements:

* ``bisection_efficiency`` — effective share of the theoretical fat-tree
  bisection available to a job's cross-leaf traffic (pruned uplinks, routing
  and protocol losses).  Calibrated so that 2560 writers + 2560 readers
  (160 Tera 100 nodes) sustain the 98.5 GB/s aggregate the paper measures
  at ratio 1/1 (Figure 14): ``(160/2) x 3.2 GB/s x 0.385 = 98.6 GB/s``.
* ``nic_efficiency`` / ``rank_injection_max`` — per-node NIC protocol
  efficiency and the per-process MPI injection ceiling; together they set
  the reader-limited regime of Figure 14 (a 4-node reader partition takes
  ~11 GB/s, keeping streams competitive with the 9.1 GB/s scaled
  file-system figure until ratios past 1/25, as the paper reports).
* ``core_flops_effective`` — sustained per-core flop rate for NPB-class
  stencil codes (~8-10 % of peak), which sets simulated application
  wall-times in the overhead experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.util.units import GB, MB


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a cluster used to build a :class:`Cluster`."""

    name: str
    nodes: int
    cores_per_node: int
    # Network.
    nic_bandwidth: float  # raw per-node link bandwidth, bytes/s (one direction)
    nic_latency: float  # end-to-end inter-node latency, seconds
    nic_efficiency: float  # protocol efficiency of the NIC under load
    rank_injection_max: float  # per-process MPI injection ceiling, bytes/s
    bisection_efficiency: float  # effective share of theoretical bisection
    intra_node_bandwidth: float  # shared-memory transport bandwidth, bytes/s
    intra_node_latency: float  # intra-node message latency, seconds
    # Compute.
    core_ghz: float
    core_flops_effective: float  # sustained flops/s/core for NPB-class codes
    # Parallel file system.
    fs_bandwidth_total: float  # aggregate FS bandwidth machine-wide, bytes/s
    fs_metadata_latency: float  # service time of one metadata op, seconds
    fs_stripe_bandwidth: float  # max bandwidth a single file stream can get

    def __post_init__(self) -> None:
        if self.nodes <= 0 or self.cores_per_node <= 0:
            raise ConfigError(f"{self.name}: bad node/core counts")
        for attr in (
            "nic_bandwidth",
            "rank_injection_max",
            "intra_node_bandwidth",
            "core_flops_effective",
            "fs_bandwidth_total",
            "fs_stripe_bandwidth",
        ):
            if getattr(self, attr) <= 0:
                raise ConfigError(f"{self.name}: {attr} must be > 0")
        for attr in ("nic_efficiency", "bisection_efficiency"):
            if not (0.0 < getattr(self, attr) <= 1.0):
                raise ConfigError(f"{self.name}: {attr} must be in (0, 1]")

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    def nic_effective_bandwidth(self, active_ranks: int) -> float:
        """Per-node NIC bandwidth when ``active_ranks`` ranks share it.

        Monotone saturating model: each process can inject at most
        ``rank_injection_max``; the node plateaus at the protocol-efficient
        link rate.  More ranks on a node never *reduce* the node's total.
        """
        n = max(1, int(active_ranks))
        return min(self.nic_bandwidth * self.nic_efficiency, n * self.rank_injection_max)

    def bisection_bandwidth(self, nodes_used: int) -> float:
        """Effective cross-leaf capacity available to a job of that size."""
        half = max(1, int(nodes_used) // 2)
        return half * self.nic_bandwidth * self.bisection_efficiency

    def fs_job_bandwidth(self, job_cores: int) -> float:
        """FS bandwidth share of a job, scaled as in the paper (Sec. IV-B).

        The paper scales Tera 100's 500 GB/s to 2560 cores assuming an even
        balance: ``500 GB/s * 2560/140000 = 9.1 GB/s``.
        """
        frac = min(1.0, job_cores / self.total_cores)
        return self.fs_bandwidth_total * frac


# Tera 100: 140 000 cores in 4370 nodes (4 x 8 Nehalem EX @ 2.27 GHz).
TERA100 = MachineSpec(
    name="Tera100",
    nodes=4370,
    cores_per_node=32,
    nic_bandwidth=3.2 * GB,  # IB QDR effective
    nic_latency=2.0e-6,
    nic_efficiency=0.90,
    rank_injection_max=1.2 * GB,
    bisection_efficiency=0.385,  # calibrated: 98.5 GB/s at 160 nodes (Fig. 14)
    intra_node_bandwidth=6.0 * GB,
    intra_node_latency=0.6e-6,
    core_ghz=2.27,
    core_flops_effective=1.45e9,
    fs_bandwidth_total=500 * GB,  # paper, Section IV-B
    fs_metadata_latency=0.8e-3,
    fs_stripe_bandwidth=1.2 * GB,
)

# Curie thin nodes: 80 640 cores in 5040 nodes (2 x 8 Sandy Bridge @ 2.7 GHz).
CURIE = MachineSpec(
    name="Curie",
    nodes=5040,
    cores_per_node=16,
    nic_bandwidth=3.2 * GB,
    nic_latency=1.8e-6,
    nic_efficiency=0.90,
    rank_injection_max=1.4 * GB,
    bisection_efficiency=0.385,
    intra_node_bandwidth=8.0 * GB,
    intra_node_latency=0.5e-6,
    core_ghz=2.7,
    core_flops_effective=2.1e9,
    fs_bandwidth_total=250 * GB,
    fs_metadata_latency=0.8e-3,
    fs_stripe_bandwidth=1.5 * GB,
)

MACHINES: dict[str, MachineSpec] = {m.name: m for m in (TERA100, CURIE)}


def small_test_machine(
    nodes: int = 8,
    cores_per_node: int = 4,
    **overrides: float,
) -> MachineSpec:
    """A small deterministic machine for unit tests (fast, easy arithmetic)."""
    params = dict(
        name="TestBox",
        nodes=nodes,
        cores_per_node=cores_per_node,
        nic_bandwidth=1.0 * GB,
        nic_latency=1.0e-6,
        nic_efficiency=1.0,
        rank_injection_max=1.0 * GB,
        bisection_efficiency=1.0,
        intra_node_bandwidth=4.0 * GB,
        intra_node_latency=0.5e-6,
        core_ghz=2.0,
        core_flops_effective=2.0e9,
        fs_bandwidth_total=10 * GB,
        fs_metadata_latency=1.0e-3,
        fs_stripe_bandwidth=500 * MB,
    )
    params.update(overrides)
    return MachineSpec(**params)  # type: ignore[arg-type]
