"""Additional workload checks: MG/FT/EP structure, scaling relations."""

import pytest

from repro.apps.nas import EP, FT, MG, SP
from repro.core.session import CouplingSession
from repro.network.machine import small_test_machine

MACHINE = small_test_machine(nodes=256, cores_per_node=4)


def profile(kernel, name=None):
    session = CouplingSession(machine=MACHINE, seed=0)
    label = session.add_application(kernel, name=name)
    session.set_analyzer(ratio=1.0)
    return label, session.run()


class TestMG:
    def test_vcycle_visits_every_level_twice(self):
        mg = MG(8, "C", iterations=1)
        name, result = profile(mg)
        profile_rows = {r[0]: r for r in result.report.chapter(name).profile.rows()}
        # 6 neighbours x 2 visits x nlevels isends per rank (self-loops off).
        isends = profile_rows["MPI_Isend"][1]
        assert isends == 8 * 2 * mg.levels() * 6

    def test_face_bytes_shrink_with_level(self):
        mg = MG(8, "C")
        px, _, _ = (2, 2, 2)
        assert mg.face_bytes(0, 2) > mg.face_bytes(3, 2)

    def test_neighbour_symmetry(self):
        name, result = profile(MG(8, "C", iterations=1))
        topo = result.report.chapter(name).topology
        assert topo.is_symmetric("hits")


class TestFT:
    def test_alltoall_dominates_bytes(self):
        name, result = profile(FT(16, "C", iterations=2))
        rows = {r[0]: r for r in result.report.chapter(name).profile.rows()}
        assert rows["MPI_Alltoall"][1] == 16 * 3  # initial + 2 iterations
        # No point-to-point traffic at all: transpose is collective.
        topo = result.report.chapter(name).topology
        assert len(topo.cells) == 0

    def test_ft_time_mostly_communication_or_compute(self):
        name, result = profile(FT(16, "C", iterations=2))
        prof = result.report.chapter(name).profile
        assert prof.mpi_time_total < result.app(name).walltime * 16


class TestEP:
    def test_ep_minimal_communication(self):
        name, result = profile(EP(16, "C"))
        prof = result.report.chapter(name).profile
        rows = {r[0]: r for r in prof.rows()}
        assert rows["MPI_Allreduce"][1] == 16 * 3
        # Communication is a negligible share of the runtime.
        assert prof.mpi_time_total < 0.05 * result.app(name).walltime * 16

    def test_ep_lowest_bi_in_suite(self):
        _, ep_result = profile(EP(16, "C"), name="ep")
        _, sp_result = profile(SP(16, "C", iterations=3), name="sp")
        assert ep_result.app("ep").bi_bandwidth < sp_result.app("sp").bi_bandwidth


class TestStrongScalingRelations:
    def test_reference_walltime_shrinks_with_ranks(self):
        walls = {}
        for nprocs in (16, 64):
            session = CouplingSession(machine=MACHINE, seed=0)
            name = session.add_application(SP(nprocs, "C", iterations=2))
            walls[nprocs] = session.run_reference().app(name).walltime
        assert walls[64] < walls[16]

    def test_events_per_rank_grow_with_sqrt_p(self):
        events = {}
        for nprocs in (16, 64):
            session = CouplingSession(machine=MACHINE, seed=0)
            name = session.add_application(SP(nprocs, "C", iterations=2))
            session.set_analyzer(ratio=1.0)
            events[nprocs] = session.run().app(name).events / nprocs
        # sqrt(64)/sqrt(16) = 2: per-rank event count roughly doubles.
        assert events[64] / events[16] == pytest.approx(2.0, rel=0.1)
