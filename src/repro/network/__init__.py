"""Flow-level network and machine model.

Models the two evaluation platforms of the paper (Tera 100 and Curie) as a
set of per-node full-duplex NIC *pipes* plus intra-node memory pipes.  A
message transfer commits bytes to the source node's egress pipe and the
destination node's ingress pipe; it completes when both are done, plus the
inter-node latency.  Contention (many ranks per NIC, many-to-one incast)
emerges from pipe serialization.
"""

from repro.network.machine import MachineSpec, TERA100, CURIE, MACHINES
from repro.network.cluster import Cluster, Placement
from repro.network.fattree import FatTree

__all__ = [
    "MachineSpec",
    "TERA100",
    "CURIE",
    "MACHINES",
    "Cluster",
    "Placement",
    "FatTree",
]
