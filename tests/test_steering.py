"""Adaptive steering: policies, the controller's control loop, bench gates."""

import dataclasses

import pytest

from repro.analysis.alerts import AlertRouter
from repro.apps.nas import SP
from repro.bench.steering import bench_policy, steering_adaptation
from repro.codec.frame import parse_frame
from repro.core.session import CouplingSession
from repro.errors import ConfigError, InstrumentationError
from repro.faults import LINK_DEGRADE, FaultPlan, FaultSpec
from repro.instrument import EventPackBuilder, decode_pack
from repro.instrument.interceptor import StreamingInstrumentation
from repro.instrument.overhead import InstrumentationCost
from repro.mpi.costmodel import CostModel
from repro.mpi.pmpi import CallRecord
from repro.network.machine import TERA100
from repro.simt import Kernel
from repro.steering import (
    ESCALATE_REDUCTION,
    REBALANCE_WRITERS,
    RELAX_REDUCTION,
    SCALE_DOWN_WORKERS,
    SCALE_UP_WORKERS,
    SteeringController,
    SteeringPolicy,
)
from repro.steering.controller import QUIESCENCE
from repro.steering.policy import static_policy
from repro.telemetry import HealthMonitor, MonitorConfig, Telemetry

pytestmark = pytest.mark.steering


# -- policy dataclass -----------------------------------------------------------------


class TestPolicy:
    def test_defaults_are_valid_and_normalized(self):
        policy = SteeringPolicy()
        assert policy.reduction_steps[0] == ""
        assert all(isinstance(s, str) for s in policy.reduction_steps)

    def test_steps_pass_through_the_codec_validator(self):
        policy = SteeringPolicy(reduction_steps=("", "delta+dict"))
        assert policy.reduction_steps == ("", "delta+dict")

    def test_bad_chain_spec_rejected(self):
        with pytest.raises(ConfigError):
            SteeringPolicy(reduction_steps=("", "bogus-codec"))

    def test_plain_string_sequences_rejected(self):
        with pytest.raises(ConfigError):
            SteeringPolicy(escalate_on="stream_stall")

    def test_validation(self):
        with pytest.raises(ConfigError):
            SteeringPolicy(name="")
        with pytest.raises(ConfigError):
            SteeringPolicy(reduction_steps=())
        with pytest.raises(ConfigError):
            SteeringPolicy(escalate_cooldown_s=-1.0)
        with pytest.raises(ConfigError):
            SteeringPolicy(max_workers=0)
        with pytest.raises(ConfigError):
            SteeringPolicy(worker_step=1)
        with pytest.raises(ConfigError):
            SteeringPolicy(max_rebalances=-1)
        with pytest.raises(ConfigError):
            SteeringPolicy(tick_interval_s=0.0)

    def test_json_round_trip(self):
        policy = bench_policy()
        clone = SteeringPolicy.from_json(policy.to_json())
        assert clone == policy

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown steering policy keys"):
            SteeringPolicy.from_json('{"name": "x", "warp_factor": 9}')
        with pytest.raises(ConfigError):
            SteeringPolicy.from_json("[1, 2]")
        with pytest.raises(ConfigError):
            SteeringPolicy.from_json("{not json")

    def test_static_policy_disables_every_actuator(self):
        policy = static_policy()
        assert not policy.enable_reduction
        assert not policy.enable_autoscale
        assert not policy.enable_rebalance


# -- controller unit tests over a fake world ------------------------------------------


class FakeAlert:
    """Shape-compatible stand-in for a HealthMonitor alert."""

    def __init__(self, kind, t, value=1.0, source="health_monitor"):
        self.kind = kind
        self.t_detect = t
        self.value = value
        self.severity = "warning"
        self.source = source


class FakeInterceptor:
    def __init__(self):
        self.specs = []

    def set_reduction(self, spec):
        self.specs.append(spec)
        return spec


class FakeWorld:
    def __init__(self, kernel, telemetry):
        self.kernel = kernel
        self.telemetry = telemetry
        self.streams = []
        self.faults = None
        self.flows = None
        self.steering = None


def make_rig(policy, initial_chain="", interceptors=2):
    tel = Telemetry()
    kernel = Kernel(telemetry=tel)
    world = FakeWorld(kernel, tel)
    monitor = HealthMonitor(tel, config=MonitorConfig(interval=0.05, window=0.25))
    monitor.router = AlertRouter()
    controller = SteeringController(policy)
    registry = {"app": [FakeInterceptor() for _ in range(interceptors)]}
    controller.attach(world, monitor, registry, initial_chain=initial_chain)
    return controller, world, monitor.router, registry


def drive(kernel, router, script, until):
    """Advance virtual time, routing each scripted alert at its timestamp."""

    def proc(k):
        t = 0.0
        for at, alert in script:
            if at > t:
                yield k.timeout(at - t)
                t = at
            router.route(alert)
        if until > t:
            yield k.timeout(until - t)

    kernel.spawn(proc(kernel))
    kernel.run()


STEPS = ("", "delta+dict", "delta+dict+zlib")


def escalate_policy(**overrides):
    base = dict(
        name="t",
        reduction_steps=STEPS,
        escalate_on=("stream_stall", "stream_write_timeout"),
        escalate_cooldown_s=0.05,
        relax_after_s=0.25,
        relax_cooldown_s=0.1,
        autoscale_on=("backlog_growth",),
        autoscale_cooldown_s=0.1,
        enable_rebalance=False,
    )
    base.update(overrides)
    return SteeringPolicy(**base)


class TestControllerWiring:
    def test_attach_requires_router(self):
        tel = Telemetry()
        monitor = HealthMonitor(tel, config=MonitorConfig(interval=0.05, window=0.25))
        monitor.router = None
        controller = SteeringController()
        with pytest.raises(ConfigError):
            controller.attach(FakeWorld(Kernel(telemetry=tel), tel), monitor, {})

    def test_double_attach_rejected(self):
        controller, world, router, _ = make_rig(escalate_policy())
        tel = world.telemetry
        monitor = HealthMonitor(tel, config=MonitorConfig(interval=0.05, window=0.25))
        monitor.router = router
        with pytest.raises(ConfigError):
            controller.attach(world, monitor, {})

    def test_attach_publishes_itself_on_the_world(self):
        controller, world, _, _ = make_rig(escalate_policy())
        assert world.steering is controller

    def test_foreign_alerts_ignored(self):
        controller, world, router, registry = make_rig(escalate_policy())
        drive(world.kernel, router,
              [(0.1, FakeAlert("stream_stall", 0.1, source=""))], until=0.2)
        assert controller.alerts_seen == 0
        assert controller.decisions == []
        assert registry["app"][0].specs == []


class TestEscalation:
    def test_alert_steps_every_interceptor_up_the_ladder(self):
        controller, world, router, registry = make_rig(escalate_policy())
        drive(world.kernel, router, [
            (0.10, FakeAlert("stream_stall", 0.10)),
            (0.12, FakeAlert("stream_stall", 0.12)),  # inside cooldown
            (0.20, FakeAlert("stream_stall", 0.20)),
            (0.30, FakeAlert("stream_stall", 0.30)),  # already at the top
        ], until=0.35)
        actions = [d.action for d in controller.decisions]
        assert actions == [ESCALATE_REDUCTION, ESCALATE_REDUCTION]
        for interceptor in registry["app"]:
            assert interceptor.specs == ["delta+dict", "delta+dict+zlib"]
        d0 = controller.decisions[0]
        assert d0.trigger_kind == "stream_stall"
        assert d0.detail["from"] == "identity"
        assert d0.detail["to"] == "delta+dict"
        assert d0.detail["writers"] == 2

    def test_disabled_reduction_never_switches(self):
        controller, world, router, registry = make_rig(
            escalate_policy(enable_reduction=False, enable_autoscale=False))
        drive(world.kernel, router,
              [(0.1, FakeAlert("stream_stall", 0.1))], until=0.3)
        assert controller.decisions == []
        assert registry["app"][0].specs == []
        assert controller.alerts_seen == 1

    def test_baseline_mid_ladder_relaxes_back_to_baseline(self):
        controller, world, router, registry = make_rig(
            escalate_policy(), initial_chain="delta+dict")
        drive(world.kernel, router, [
            (0.10, FakeAlert("stream_write_timeout", 0.10)),
        ], until=1.0)
        # Escalated one level above the baseline, then relaxed back to it —
        # never below (the session's own configuration is the floor).
        actions = [d.action for d in controller.decisions]
        assert actions == [ESCALATE_REDUCTION, RELAX_REDUCTION]
        assert registry["app"][0].specs == ["delta+dict+zlib", "delta+dict"]
        assert controller.summary()["final"]["chain"] == "delta+dict"


class TestHysteresis:
    def test_windowed_congestion_blocks_relax_until_cleared(self):
        controller, world, router, _ = make_rig(escalate_policy())
        drive(world.kernel, router, [
            (0.10, FakeAlert("stream_stall", 0.10)),
            (0.60, FakeAlert("stream_stall.cleared", 0.60)),
        ], until=1.2)
        relaxes = [d for d in controller.decisions if d.action == RELAX_REDUCTION]
        assert len(relaxes) == 1
        # relax_after_s past the all-clear edge, never before it.
        assert relaxes[0].t >= 0.60 + 0.25
        assert relaxes[0].trigger_kind == QUIESCENCE

    def test_fault_kind_trigger_relaxes_by_timer_alone(self):
        # stream_write_timeout is a cumulative fault kind: no paired
        # .cleared event exists, so quiescence is purely relax_after_s.
        controller, world, router, _ = make_rig(escalate_policy())
        drive(world.kernel, router, [
            (0.10, FakeAlert("stream_write_timeout", 0.10)),
        ], until=0.6)
        relaxes = [d for d in controller.decisions if d.action == RELAX_REDUCTION]
        assert len(relaxes) == 1
        assert 0.35 <= relaxes[0].t <= 0.45

    def test_relax_steps_are_cooldown_spaced(self):
        controller, world, router, _ = make_rig(escalate_policy())
        drive(world.kernel, router, [
            (0.05, FakeAlert("stream_write_timeout", 0.05)),
            (0.15, FakeAlert("stream_write_timeout", 0.15)),  # level 2
        ], until=1.0)
        relaxes = [d for d in controller.decisions if d.action == RELAX_REDUCTION]
        assert len(relaxes) == 2
        assert relaxes[1].t - relaxes[0].t >= 0.1 - 1e-9
        assert controller.summary()["final"]["reduction_level"] == 0


class TestAutoscale:
    def test_scale_up_doubles_to_the_cap_then_back_down(self):
        controller, world, router, _ = make_rig(escalate_policy(
            enable_reduction=False, max_workers=4, worker_step=2))
        drive(world.kernel, router, [
            (0.10, FakeAlert("backlog_growth", 0.10)),
            (0.12, FakeAlert("backlog_growth", 0.12)),  # inside cooldown
            (0.25, FakeAlert("backlog_growth", 0.25)),
            (0.40, FakeAlert("backlog_growth", 0.40)),  # at the cap: no-op
            (0.50, FakeAlert("backlog_growth.cleared", 0.50)),
        ], until=1.2)
        ups = [d for d in controller.decisions if d.action == SCALE_UP_WORKERS]
        downs = [d for d in controller.decisions if d.action == SCALE_DOWN_WORKERS]
        assert [(d.detail["from"], d.detail["to"]) for d in ups] == [(1, 2), (2, 4)]
        assert [(d.detail["from"], d.detail["to"]) for d in downs] == [(4, 2), (2, 1)]
        assert controller.analysis_workers == 1


class FakeReadStream:
    mode = "r"
    _closed = False

    def __init__(self):
        self.adopted = []

    def adopt_peer(self, writer):
        self.adopted.append(writer)

    def stats(self):
        return {}


class FakeWriteStream:
    mode = "w"
    _closed = False

    def __init__(self, endpoint):
        self.endpoints = [endpoint]
        self.retargets = []

    def retarget_endpoint(self, old, new):
        if old not in self.endpoints:
            return False
        self.retargets.append((old, new))
        self.endpoints = [new]
        return True


class TestRebalance:
    def rig(self, **overrides):
        policy = escalate_policy(
            enable_reduction=False, enable_autoscale=False,
            enable_rebalance=True, rebalance_on=("load_imbalance",),
            rebalance_cooldown_s=0.0, **overrides)
        return make_rig(policy)

    def test_excess_fan_in_moves_to_underloaded_readers(self):
        controller, world, router, _ = self.rig()
        r16, r17 = FakeReadStream(), FakeReadStream()
        writers = {g: FakeWriteStream(16) for g in range(4)}
        world.streams = [(16, r16), (17, r17)] + sorted(
            (g, s) for g, s in writers.items())
        controller.on_alert(FakeAlert("load_imbalance", 0.5))
        assert [d.action for d in controller.decisions] == [REBALANCE_WRITERS]
        moves = controller.decisions[0].detail["moves"]
        # ceil(4/2) = 2 writers per reader: the two highest-ranked writers
        # assigned to the overloaded reader move, deterministically.
        assert moves == {"2": 17, "3": 17}
        assert r17.adopted == [2, 3]
        assert writers[2].retargets == [(16, 17)]
        assert writers[0].retargets == []

    def test_balanced_fan_in_records_no_decision(self):
        controller, world, router, _ = self.rig()
        world.streams = [
            (16, FakeReadStream()), (17, FakeReadStream()),
            (0, FakeWriteStream(16)), (1, FakeWriteStream(17)),
        ]
        controller.on_alert(FakeAlert("load_imbalance", 0.5))
        assert controller.decisions == []

    def test_max_rebalances_caps_the_rounds(self):
        controller, world, router, _ = self.rig(max_rebalances=1)
        r16, r17 = FakeReadStream(), FakeReadStream()
        world.streams = [(16, r16), (17, r17)] + [
            (g, FakeWriteStream(16)) for g in range(4)]
        controller.on_alert(FakeAlert("load_imbalance", 0.5))
        # Skew it again: a second alert must not act past the cap.
        for _, s in world.streams[2:]:
            s.endpoints = [16]
        controller.on_alert(FakeAlert("load_imbalance", 0.9))
        assert len(controller.decisions) == 1

    def test_single_reader_is_left_alone(self):
        controller, world, router, _ = self.rig()
        world.streams = [(16, FakeReadStream())] + [
            (g, FakeWriteStream(16)) for g in range(4)]
        controller.on_alert(FakeAlert("load_imbalance", 0.5))
        assert controller.decisions == []


# -- mid-session chain switching (the codec contract steering relies on) --------------


def _record(i, rank=0):
    return CallRecord(
        name="MPI_Send", t_start=float(i), t_end=float(i) + 0.5,
        comm_id=0, comm_rank=rank, comm_size=16, peer=(i * 7) % 16,
        tag=i, nbytes=1024 + i,
    )


class _Host:
    """The slice of StreamingInstrumentation that set_reduction touches."""

    def __init__(self, builder):
        self.chain = builder.chain
        self.builder = builder


class TestMidSessionChainSwitch:
    def seal(self, builder, base, n=8, rank=0):
        for i in range(base, base + n):
            builder.add(_record(i, rank=rank))
        return builder.emit()

    def test_interleaved_writers_decode_across_a_switch(self):
        # Two writers seal packs before, between and after two live
        # set_reduction() switches; the analyzer-side decode path sees the
        # packs interleaved and must decode each from its own descriptor.
        hosts = [
            _Host(EventPackBuilder(app_id=0, rank=rank, capacity_bytes=4096))
            for rank in (0, 1)
        ]
        wire = []
        for rank, host in enumerate(hosts):
            wire.append((rank, self.seal(host.builder, 0, rank=rank)))
        for host in hosts:
            spec = StreamingInstrumentation.set_reduction(host, "delta+dict+zlib")
            assert spec == "delta+dict+zlib"
            assert host.builder.chain is host.chain
        for rank, host in enumerate(hosts):
            wire.append((rank, self.seal(host.builder, 8, rank=rank)))
        for host in hosts:
            assert StreamingInstrumentation.set_reduction(host, None) == ""
            assert host.chain is None
        for rank, host in enumerate(hosts):
            wire.append((rank, self.seal(host.builder, 16, rank=rank)))

        specs = [parse_frame(blob).codec for _, blob in wire]
        assert specs == ["", "", "delta+dict+zlib", "delta+dict+zlib", "", ""]
        for k, (rank, blob) in enumerate(wire):
            header, events = decode_pack(blob)
            assert header.rank == rank
            assert len(events) == 8
            base = (k // 2) * 8
            assert [int(e["tag"]) for e in events] == list(range(base, base + 8))
            assert float(events[0]["t_start"]) == float(base)

    def test_bad_spec_rejected_and_chain_unchanged(self):
        host = _Host(EventPackBuilder(app_id=0, rank=0, capacity_bytes=4096))
        StreamingInstrumentation.set_reduction(host, "delta+dict")
        before = host.chain
        with pytest.raises(InstrumentationError):
            StreamingInstrumentation.set_reduction(host, "no-such-stage")
        assert host.chain is before
        assert host.builder.chain is before

    def test_buffered_records_seal_under_the_new_chain(self):
        host = _Host(EventPackBuilder(app_id=0, rank=0, capacity_bytes=4096))
        host.builder.add(_record(0))
        StreamingInstrumentation.set_reduction(host, "delta+dict+zlib")
        blob = host.builder.emit()
        assert parse_frame(blob).codec == "delta+dict+zlib"
        _, events = decode_pack(blob)
        assert len(events) == 1


# -- end-to-end sessions: determinism and bit-identity --------------------------------


def _steer_session(policy, *, plan=None, iterations=12, enable=True, seed=7):
    mach = dataclasses.replace(TERA100, cores_per_node=8)
    cost = dataclasses.replace(
        CostModel.for_machine(mach, ranks_per_node=8), eager_threshold=2048)
    icost = InstrumentationCost(
        block_size=4096, na_buffers=2, write_timeout=2e-3, max_retries=2,
        overflow="drop-newest")
    session = CouplingSession(
        machine=mach, seed=seed, instrumentation=icost, mpi_cost=cost,
        telemetry=Telemetry())
    name = session.add_application(SP(16, "C", iterations=iterations))
    session.set_analyzer(nprocs=4)
    session.enable_monitor()
    if enable:
        session.enable_steering(policy)
    if plan is not None:
        session.inject_faults(plan)
    result = session.run()
    return result, name, session


def _congestion_plan(anchor):
    return FaultPlan(
        specs=(FaultSpec(LINK_DEGRADE, at=anchor, target=-1, factor=2e-5),),
        name="congestion")


@pytest.fixture(scope="module")
def healthy_anchor():
    result, name, _ = _steer_session(static_policy())
    return result.app(name).walltime * 0.35


@pytest.fixture(scope="module")
def congested_adaptive(healthy_anchor):
    return _steer_session(bench_policy(), plan=_congestion_plan(healthy_anchor))


class TestSessionIntegration:
    def test_enable_steering_requires_telemetry(self):
        session = CouplingSession()
        with pytest.raises(ConfigError):
            session.enable_steering()

    def test_double_enable_rejected(self):
        session = CouplingSession(telemetry=Telemetry())
        session.enable_steering()
        with pytest.raises(ConfigError):
            session.enable_steering()

    def test_decisions_fire_under_congestion(self, congested_adaptive):
        result, _, _ = congested_adaptive
        assert result.steering is not None
        decisions = result.steering["decisions"]
        assert decisions
        assert any(d["action"] == ESCALATE_REDUCTION for d in decisions)
        for d in decisions:
            assert d["trigger_kind"]
            assert d["t"] >= 0.0

    def test_report_gains_a_steering_section(self, congested_adaptive):
        result, _, _ = congested_adaptive
        text = result.report.render()
        assert "Steering" in text
        assert ESCALATE_REDUCTION in text

    def test_decision_instants_land_in_the_trace(self, congested_adaptive):
        result, _, session = congested_adaptive
        names = {
            inst["name"] for inst in session.telemetry.instants
            if inst["cat"] == "steering"
        }
        assert f"steering.{ESCALATE_REDUCTION}" in names

    def test_same_seed_and_policy_is_deterministic(self, healthy_anchor,
                                                   congested_adaptive):
        first, name_a, _ = congested_adaptive
        second, name_b, _ = _steer_session(
            bench_policy(), plan=_congestion_plan(healthy_anchor))
        assert first.steering["decisions"] == second.steering["decisions"]
        assert first.app(name_a).walltime == second.app(name_b).walltime
        assert (first.report.chapter(name_a).profile.events_total
                == second.report.chapter(name_b).profile.events_total)

    def test_disabled_and_static_runs_match_the_seed(self):
        def key(result, name):
            writers = [st.stats() for _, st in result.world.streams
                       if st.mode == "w"]
            return (
                result.app(name).walltime,
                result.report.chapter(name).profile.events_total,
                sum(st["blocks_written"] for st in writers),
            )

        bare, name, _ = _steer_session(None, enable=False)
        static, name_s, _ = _steer_session(static_policy())
        adaptive, name_a, _ = _steer_session(bench_policy())
        assert bare.steering is None
        assert static.steering is not None
        assert static.steering["decisions"] == []
        assert adaptive.steering["decisions"] == []
        assert key(bare, name) == key(static, name_s) == key(adaptive, name_a)


# -- the bench lane gates itself ------------------------------------------------------


class TestBenchLane:
    def test_grid_runs_and_gates(self, tmp_path):
        result = steering_adaptation(decisions_dir=str(tmp_path))
        assert [(p.policy, p.plan) for p in result.points] == [
            ("static", "none"), ("adaptive", "none"),
            ("static", "congestion"), ("adaptive", "congestion"),
        ]
        static_c = result.points[2]
        adaptive_c = result.points[3]
        assert adaptive_c.decisions >= 1
        assert (adaptive_c.packs_dropped + adaptive_c.packs_stranded
                < static_c.packs_dropped + static_c.packs_stranded)
        assert adaptive_c.events_per_s >= static_c.events_per_s
        assert result.decision_log is not None
        assert (tmp_path / "steering_decisions.json").exists()
        table = result.table().render()
        assert "congestion" in table
