"""LU: SSOR solver with pipelined wavefront sweeps.

LU partitions the grid over a 2D px x py process mesh and performs, per time
step, a lower-triangular and an upper-triangular sweep.  Each sweep walks
the k-planes of the local sub-domain: a rank must *receive* the boundary
lines from its north/west (resp. south/east) neighbours before computing a
plane batch and forwarding its own boundaries — the classic wavefront
pipeline of many small messages that makes LU the most latency- and
message-rate-sensitive NPB benchmark (visible in the paper's Figure 15,
where LU.D tops the overhead chart, and in the 5-point neighbour topology of
Figure 17(e) and density maps 18(a)).

``plane_batch`` groups k-planes per message to keep simulated event counts
tractable; the official per-plane behaviour is ``plane_batch=1``.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.apps.base import ClassSpec, NASKernel, grid_2d


class LU(NASKernel):
    name = "LU"
    CLASSES = {
        "C": ClassSpec(size=162, niter=250, gops=2045.0),
        "D": ClassSpec(size=408, niter=300, gops=40461.0),
    }

    def __init__(self, nprocs: int, klass: str = "C", iterations: int = 3,
                 plane_batch: int = 8):
        if plane_batch < 1:
            raise ConfigError("plane_batch must be >= 1")
        self.plane_batch = plane_batch
        super().__init__(nprocs, klass, iterations)

    def layout(self) -> tuple[int, int]:
        """(px, py) process mesh, px >= py."""
        return grid_2d(self.nprocs)

    def line_bytes(self, px: int) -> int:
        """Boundary line of one plane batch: 5 vars x N/px doubles."""
        return max(40, int(5 * (self.spec.size / px) * 8 * self.plane_batch))

    def main(self, mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        if comm.size != self.nprocs:
            raise ConfigError(
                f"{self.label} built for {self.nprocs} ranks, launched on {comm.size}"
            )
        px, py = self.layout()
        x, y = comm.rank % px, comm.rank // px
        north = comm.rank - px if y > 0 else -1
        south = comm.rank + px if y < py - 1 else -1
        west = comm.rank - 1 if x > 0 else -1
        east = comm.rank + 1 if x < px - 1 else -1
        nz = self.spec.size
        nsub = -(-nz // self.plane_batch)
        line = self.line_bytes(px)
        # Two sweeps per step; each sweep computes all plane batches.
        stage_cpu = self.step_compute_seconds(mpi) / (2 * nsub)
        for _it in range(self.iterations):
            # Lower sweep: wavefront from the (0, 0) corner.
            for _sub in range(nsub):
                if north >= 0:
                    yield from comm.recv(source=north, tag=10)
                if west >= 0:
                    yield from comm.recv(source=west, tag=11)
                yield from mpi.compute(stage_cpu)
                if south >= 0:
                    yield from comm.send(south, nbytes=line, tag=10)
                if east >= 0:
                    yield from comm.send(east, nbytes=line, tag=11)
            # Upper sweep: wavefront from the opposite corner.
            for _sub in range(nsub):
                if south >= 0:
                    yield from comm.recv(source=south, tag=12)
                if east >= 0:
                    yield from comm.recv(source=east, tag=13)
                yield from mpi.compute(stage_cpu)
                if north >= 0:
                    yield from comm.send(north, nbytes=line, tag=12)
                if west >= 0:
                    yield from comm.send(west, nbytes=line, tag=13)
            # RHS norm (NPB computes residuals via allreduce).
            yield from comm.allreduce(nbytes=40)
        yield from comm.barrier()
        yield from mpi.finalize()
