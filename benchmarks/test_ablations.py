"""Ablation benchmarks for the design choices called out in DESIGN.md §5.

1. DES kernel throughput (events/s) — the substrate's own cost.
2. Flow-model vs latency-only network — contention matters for Fig. 14.
3. Blackboard worker/FIFO scaling — the parallel task engine's speedup.
4. Stream NA-buffer sweep — the adaptation window's effect on overhead.
"""

import threading

import pytest

from repro.blackboard import Blackboard, ThreadPool
from repro.telemetry.hostprof import host_now
from repro.network.machine import small_test_machine
from repro.simt import Kernel


# ---------------------------------------------------------------------------
# 1. DES kernel event throughput
# ---------------------------------------------------------------------------


def _spin_kernel(nevents: int) -> float:
    kernel = Kernel()

    def proc(k, n):
        for _ in range(n):
            yield k.timeout(1e-6)

    for _ in range(4):
        kernel.spawn(proc(kernel, nevents // 4))
    kernel.run()
    return kernel.events_dispatched


def test_ablation_kernel_event_rate(benchmark):
    """Baseline cost of the substrate: dispatched events per second."""
    dispatched = benchmark(lambda: _spin_kernel(40_000))
    assert dispatched >= 40_000


def test_ablation_p2p_message_cost(benchmark):
    """End-to-end simulated-MPI message cost (send+recv+match)."""
    from repro.mpi import MPMDLauncher

    machine = small_test_machine(nodes=8, cores_per_node=4)

    def run():
        def main(mpi):
            yield from mpi.init()
            comm = mpi.comm_world
            for i in range(500):
                if comm.rank == 0:
                    yield from comm.send(1, nbytes=1000, tag=0)
                else:
                    yield from comm.recv(source=0, tag=0)
            yield from mpi.finalize()

        launcher = MPMDLauncher(machine=machine)
        launcher.add_program("pp", nprocs=2, main=main)
        launcher.run()
        return 500

    msgs = benchmark(run)
    assert msgs == 500


# ---------------------------------------------------------------------------
# 2. Network model ablation: with vs without shared-capacity contention
# ---------------------------------------------------------------------------


def _incast_makespan(rank_injection_gbps: float) -> float:
    """64 ranks on 16 nodes all send to node 0; returns the makespan."""
    from repro.network.cluster import Cluster
    from repro.util.units import GB

    machine = small_test_machine(
        nodes=16,
        cores_per_node=4,
        rank_injection_max=rank_injection_gbps * GB,
        nic_bandwidth=rank_injection_gbps * GB * 4,
    )
    kernel = Kernel()
    cluster = Cluster(kernel, machine, nranks=64)
    done = []

    def sender(k, src):
        yield cluster.transfer(src, 0, 5_000_000)
        done.append(k.now)

    for src in range(4, 64):
        kernel.spawn(sender(kernel, src))
    kernel.run()
    return max(done)


def test_ablation_network_contention_visible(benchmark):
    """Incast must serialize on the target NIC: makespan >> single transfer.

    A latency-only model (no shared pipes) would finish all transfers in
    one transfer time — underestimating incast by the fan-in factor and
    destroying the reader-limited regime of Figure 14.
    """
    makespan = benchmark.pedantic(lambda: _incast_makespan(1.0), rounds=1, iterations=1)
    single = 5_000_000 / 4e9  # one transfer through the 4 GB/s ingress NIC
    assert makespan > 50 * single


def test_ablation_bisection_caps_crossleaf_throughput():
    """Cross-leaf aggregate obeys the calibrated bisection share."""
    from repro.network.cluster import Cluster
    from repro.util.units import GB

    machine = small_test_machine(nodes=40, cores_per_node=1, bisection_efficiency=0.25)
    kernel = Kernel()
    cluster = Cluster(kernel, machine, nranks=40)
    nbytes = 50_000_000
    done = []

    def sender(k, src, dst):
        yield cluster.transfer(src, dst, nbytes)
        done.append(k.now)

    # 10 cross-leaf pairs (leaf 0 = nodes 0..17, leaf 2 = 36..39 etc.)
    pairs = [(i, 20 + i) for i in range(10)]
    for src, dst in pairs:
        kernel.spawn(sender(kernel, src, dst))
    kernel.run()
    total = nbytes * len(pairs)
    bisection = machine.bisection_bandwidth(cluster.placement.nodes_used)
    assert max(done) >= total / bisection * 0.99


# ---------------------------------------------------------------------------
# 3. Blackboard worker scaling (real threads, real time)
# ---------------------------------------------------------------------------


def _blackboard_run(nworkers: int, nqueues: int, njobs: int = 400) -> float:
    board = Blackboard(nqueues=nqueues, seed=1)
    t_in = board.register_type("work")
    sink = []
    lock = threading.Lock()

    def busy(b, entries):
        # A small but real CPU payload.
        acc = 0
        for i in range(4000):
            acc += i * i
        with lock:
            sink.append(acc)

    board.register_ks("busy", [t_in], busy)
    t0 = host_now()
    with ThreadPool(board, nworkers=nworkers, seed=2):
        for i in range(njobs):
            board.submit(t_in, i)
    elapsed = host_now() - t0
    assert len(sink) == njobs
    return elapsed


@pytest.mark.parametrize("nworkers", [1, 4])
def test_ablation_blackboard_workers(benchmark, nworkers):
    """Worker-pool scaling of the parallel blackboard (wall-clock)."""
    benchmark.pedantic(
        lambda: _blackboard_run(nworkers=nworkers, nqueues=8), rounds=2, iterations=1
    )


def test_ablation_blackboard_single_fifo_contention(benchmark):
    """One shared FIFO vs an array: the array reduces lock contention."""
    benchmark.pedantic(
        lambda: _blackboard_run(nworkers=4, nqueues=1), rounds=2, iterations=1
    )


# ---------------------------------------------------------------------------
# 4. NA buffer sweep: the adaptation window
# ---------------------------------------------------------------------------


def _overhead_for_na(na: int) -> float:
    from repro.analysis import AnalysisConfig
    from repro.apps.nas import SP
    from repro.bench.harness import measure_overhead
    from repro.instrument import InstrumentationCost
    from repro.mpi.costmodel import CostModel

    machine = small_test_machine(nodes=256, cores_per_node=4)
    point = measure_overhead(
        SP(16, "C", iterations=8),
        machine,
        ratio=16.0,  # one slow analyzer rank
        instrumentation=InstrumentationCost(block_size=4096, na_buffers=na),
        analysis=AnalysisConfig(per_byte_cpu=2e-5, per_pack_cpu=1e-4, na_buffers=na),
        mpi_cost=CostModel(eager_threshold=2048),
    )
    return point.overhead_pct


def test_ablation_na_buffers_absorb_bursts(benchmark):
    """A deeper adaptation window (larger NA) lowers backpressure overhead."""
    overheads = benchmark.pedantic(
        lambda: [_overhead_for_na(na) for na in (1, 8)], rounds=1, iterations=1
    )
    shallow, deep = overheads
    assert deep < shallow
