"""The analyzer engine: blackboard wiring + the analyzer program.

Each analyzer rank runs :func:`analyzer_program`: it maps itself to every
application partition (``VMPI_Map``), opens a read-mode stream, and feeds
every received event pack to its :class:`AnalyzerEngine` — a multi-level
blackboard with the Figure-4 pipeline instantiated per application level.
Analysis CPU cost is charged to the analyzer's simulated timeline, which is
what creates backpressure towards the instrumented applications when the
analyzer partition is undersized.

At EOF the per-rank partial states are gathered on the analyzer root and
merged into one :class:`~repro.analysis.report.ProfileReport` — the paper's
"dedicated report with full details of each program's behaviour, briefly
after execution ends".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.codec.frame import CONTENT_HEADER_SIZE, parse_frame, peek_provenance
from repro.codec.stages import build_chain, decode_chain
from repro.errors import (
    ChecksumError,
    ConfigError,
    PackFormatError,
    ReproError,
    UnknownCodecError,
)
from repro.analysis.alerts import AlertMonitor
from repro.analysis.density import DensityMaps
from repro.analysis.latesender import LateSenderAnalysis
from repro.analysis.otf2proxy import OTF2Proxy
from repro.analysis.profiler import MPIProfile
from repro.analysis.report import ApplicationReport, ProfileReport
from repro.analysis.topology import CommMatrix
from repro.analysis.waitstate import WaitState
from repro.blackboard.multilevel import MultiLevelBlackboard
from repro.instrument.packer import decode_pack, decode_pack_frame
from repro.mpi.datatypes import ANY_SOURCE
from repro.telemetry import NULL_TELEMETRY, Telemetry, hostprof, rank_pid
from repro.telemetry.hostprof import host_now
from repro.vmpi.mapping import MapPolicy, ROUND_ROBIN, VMPIMap, map_partitions
from repro.vmpi.stream import BALANCE_ROUND_ROBIN, EOF, VMPIStream

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.world import ProgramAPI

_MODULE_CLASSES = {
    "profile": MPIProfile,
    "topology": CommMatrix,
    "density": DensityMaps,
    "waitstate": WaitState,
    # Extension modules (the paper's Section VI work-in-progress items);
    # not enabled by default — add them to AnalysisConfig.modules.
    "otf2proxy": OTF2Proxy,
    "alerts": AlertMonitor,
    "latesender": LateSenderAnalysis,
}


@dataclass(frozen=True)
class AnalysisConfig:
    """Analyzer-side knobs: CPU cost model and enabled modules."""

    per_byte_cpu: float = 0.8e-9  # ~1.25 GB/s single-core analysis rate
    per_pack_cpu: float = 8.0e-6
    modules: tuple[str, ...] = ("profile", "topology", "density", "waitstate")
    nqueues: int = 8
    map_policy: MapPolicy = ROUND_ROBIN
    block_size: int = 1024 * 1024
    na_buffers: int = 3
    #: CPU seconds per raw record byte per unit stage cost weight spent
    #: inverting a frame's codec chain; zero is charged for identity frames.
    codec_per_byte_cpu: float = 0.6e-9
    #: When set, only frames whose codec descriptor is in this tuple are
    #: analyzed; anything else is rejected as a descriptor mismatch.
    #: ``None`` (the default) accepts every chain this build can decode.
    accept_codecs: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.per_byte_cpu < 0 or self.per_pack_cpu < 0:
            raise ConfigError("analysis CPU costs must be >= 0")
        unknown = set(self.modules) - set(_MODULE_CLASSES)
        if unknown:
            raise ConfigError(f"unknown analysis modules: {sorted(unknown)}")
        if not self.modules:
            raise ConfigError("at least one analysis module is required")
        if self.codec_per_byte_cpu < 0:
            raise ConfigError("codec_per_byte_cpu must be >= 0")
        if self.accept_codecs is not None:
            for spec in self.accept_codecs:
                try:
                    build_chain(spec)
                except ReproError as exc:
                    raise ConfigError(
                        f"accept_codecs entry {spec!r} is not decodable: {exc}"
                    ) from exc

    def cpu_cost(self, modeled_bytes: int) -> float:
        return self.per_pack_cpu + self.per_byte_cpu * modeled_bytes


class AnalyzerEngine:
    """Per-analyzer-rank multi-level blackboard with the analysis pipeline."""

    def __init__(
        self,
        apps: list[tuple[str, int]],
        config: AnalysisConfig,
        seed: int = 0,
        telemetry: Telemetry | None = None,
        track_pid: int = 0,
    ):
        if not apps:
            raise ConfigError("analyzer engine needs at least one application")
        self.apps = list(apps)
        self.config = config
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.ml = MultiLevelBlackboard(
            levels=[name for name, _size in apps],
            nqueues=config.nqueues,
            seed=seed,
            telemetry=self.telemetry,
            track_pid=track_pid,
        )
        # level -> module name -> mergeable state
        self.states: dict[str, dict[str, Any]] = {}
        for name, size in apps:
            level_states = {
                mod: _MODULE_CLASSES[mod](name, size) for mod in config.modules
            }
            self.states[name] = level_states
            self._wire_level(name, level_states)
        self.packs_ingested = 0
        self.bytes_ingested = 0  # modelled content bytes
        self.bytes_wire_ingested = 0  # physical frame bytes
        self.packs_rejected = 0
        self.rejects_by_cause: dict[str, int] = {}
        self.events_sampled_out = 0  # writer-side drops declared on frames
        self.codecs_seen: dict[str, int] = {}  # descriptor -> packs
        self.decode_cpu_s = 0.0  # virtual CPU charged for chain decode
        # Dogfooding channel (see enable_health_ingest): counts of monitor
        # alerts that travelled through this blackboard as data entries.
        self.health_counts: dict[str, int] = {}
        self.health_entries: list[Any] = []

    def enable_health_ingest(self, monitor) -> None:
        """Let the blackboard analyze the health monitor's own alert stream.

        Registers a ``health_alert`` data type on a monitor-private level
        and a knowledge source that aggregates alert counts by kind, then
        binds the monitor's publish path to ``board.submit`` — the paper's
        knowledge-source engine consuming the measurement pipeline's own
        telemetry-derived events.
        """
        board = self.ml.board
        type_id = board.register_type("health_alert", level="@health-monitor")

        def watch(_board, entries):
            for entry in entries:
                alert = entry.payload
                self.health_counts[alert.kind] = self.health_counts.get(alert.kind, 0) + 1
                self.health_entries.append(alert)

        board.register_ks("KS_HealthWatch", [type_id], watch)

        def publish(alert) -> None:
            # Alerts fire between kernel events, never mid-ingest, so the
            # inline drain below cannot interleave with pack processing.
            board.submit(type_id, alert, size=96)
            board.run_until_idle()

        monitor.bind_blackboard(publish)

    def _wire_level(self, level: str, level_states: dict[str, Any]) -> None:
        board = self.ml.board
        tel = self.telemetry
        pack_id = self.ml.type_id("event_pack", level)
        events_id = self.ml.type_id("mpi_events", level)

        def unpack(b, entries):
            for entry in entries:
                # The ingest path threads the parsed frame along as entry
                # meta, so a pack's wire bytes are walked exactly once;
                # direct submitters without a rider fall back to a parse.
                frame = entry.meta
                if frame is not None:
                    header, events = decode_pack_frame(frame)
                else:
                    header, events = decode_pack(entry.payload)
                if tel.enabled:
                    tel.counter("analysis.packs_decoded").inc()
                b.submit(events_id, (header.rank, events), size=events.nbytes)

        board.register_ks(f"KS_Unpacker[{level}]", [pack_id], unpack)

        for mod_name, state in level_states.items():
            def make_op(st, mod):
                def op(_b, entries):
                    t0 = host_now() if tel.enabled else 0.0
                    for entry in entries:
                        rank, events = entry.payload
                        st.update(rank, events)
                    if tel.enabled:
                        tel.counter(f"analysis.cpu_s.{mod}").inc(host_now() - t0)
                return op

            board.register_ks(
                f"KS_{mod_name}[{level}]", [events_id], make_op(state, mod_name)
            )

    # -- ingestion --------------------------------------------------------------------

    def ingest(self, pack_bytes: bytes, frame=None) -> bool:
        """Feed one pack and drain the pipeline inline (deterministic).

        The frame is verified first — structure, CRC, a decodable codec
        descriptor, and (when ``accept_codecs`` is set) an *accepted*
        descriptor.  A failing pack is rejected and counted by cause,
        never submitted — the analysis pipeline keeps running on whatever
        arrives intact.  Returns False on rejection.

        ``frame`` may carry the result of ``parse_frame(pack_bytes,
        verify=False)`` a caller already holds; the checksum verdict is
        then read off the frame's recorded CRC state instead of walking
        the wire bytes a second time.
        """
        hp = hostprof.ACTIVE
        t_host = hp.now() if hp.enabled else 0.0
        try:
            if frame is None:
                frame = parse_frame(pack_bytes)
            elif frame.stored_crc is None:
                raise ChecksumError("frame has no CRC section")
            elif not frame.crc_ok:
                raise ChecksumError(
                    f"pack checksum mismatch: stored {frame.stored_crc:#010x}"
                )
            decode_chain(frame.codec)
            accept = self.config.accept_codecs
            if accept is not None and frame.codec not in accept:
                raise UnknownCodecError(
                    f"codec descriptor {frame.codec or 'identity'!r} not in "
                    f"accept_codecs {list(accept)}"
                )
        except PackFormatError as exc:
            cause = type(exc).__name__
            self.packs_rejected += 1
            self.rejects_by_cause[cause] = self.rejects_by_cause.get(cause, 0) + 1
            if self.telemetry.enabled:
                self.telemetry.counter("analysis.packs_rejected").inc()
                self.telemetry.counter(f"analysis.packs_rejected.{cause}").inc()
            return False
        # Size the entry by pack content only: framing, CRC, codec output
        # and provenance sections ride outside the blackboard's byte
        # accounting, so storage stats are identical with and without
        # reduction or provenance enabled.
        content = frame.content_size
        self.ml.submit_pack(pack_bytes, size=content, meta=frame)
        self.ml.board.run_until_idle()
        self.packs_ingested += 1
        self.bytes_ingested += content
        self.bytes_wire_ingested += len(pack_bytes)
        self.events_sampled_out += frame.events_dropped
        spec = frame.codec or "identity"
        self.codecs_seen[spec] = self.codecs_seen.get(spec, 0) + 1
        if hp.enabled:
            hp.timer("analysis.ingest").add(
                hp.now() - t_host, items=1, nbytes=len(pack_bytes)
            )
        return True

    # -- reduction --------------------------------------------------------------------

    def merge_states(self, other: dict[str, dict[str, Any]]) -> None:
        """Fold another analyzer rank's partial states into ours."""
        for level, mods in other.items():
            mine = self.states.get(level)
            if mine is None:
                raise ConfigError(f"merge of unknown level {level!r}")
            for mod_name, state in mods.items():
                mine[mod_name].merge(state)

    def build_report(self) -> ProfileReport:
        chapters = []
        for name, size in self.apps:
            mods = self.states[name]
            chapters.append(
                ApplicationReport(
                    app=name,
                    app_size=size,
                    profile=mods.get("profile"),
                    topology=mods.get("topology"),
                    density=mods.get("density"),
                    waitstate=mods.get("waitstate"),
                    alerts=mods.get("alerts"),
                    otf2proxy=mods.get("otf2proxy"),
                    latesender=mods.get("latesender"),
                )
            )
        return ProfileReport(chapters=chapters)


# Reserved tag for the degraded point-to-point gather (outside the stream
# and mapping tag spaces at 800k/700k).
_TAG_DEGRADED_GATHER = 950_000


def _degraded_gather(mpi: "ProgramAPI", nbytes: int, payload: Any, dead_local):
    """Generator: gather to analyzer root 0, skipping dead ranks.

    The collective gather would block forever on a crashed participant;
    this point-to-point fallback has the root expect exactly one message
    per *surviving* non-root rank.  Slots of dead ranks stay None.
    """
    comm = mpi.comm_world
    if comm.rank != 0:
        yield from comm._raw_isend(
            0, nbytes=nbytes, tag=_TAG_DEGRADED_GATHER, payload=payload
        )
        return None
    out: list[Any] = [None] * comm.size
    out[0] = payload
    expected = [r for r in range(1, comm.size) if r not in dead_local]
    for _ in expected:
        status = yield mpi.ctx.mailbox.post(
            comm.id, ANY_SOURCE, _TAG_DEGRADED_GATHER, mpi.ctx.world.cost.o_recv
        )
        out[status.source] = status.payload
    return out


def _latesender_exchange(mpi: "ProgramAPI", engine: AnalyzerEngine):
    """Generator: one all-to-all redistributing late-sender shards."""
    comm = mpi.comm_world
    nshards = comm.size
    # Build my row: packets[dest] = {level: packet-for-dest}
    row: list[dict[str, dict]] = [{} for _ in range(nshards)]
    payload_tuples = 0
    for level, mods in engine.states.items():
        state: LateSenderAnalysis = mods["latesender"]
        packets = state.shard(nshards)
        state.reset_local()
        for dest, packet in enumerate(packets):
            row[dest][level] = packet
            payload_tuples += len(packet["sends"]) + len(packet["recvs"])
    nbytes = max(64, 24 * payload_tuples // max(1, nshards))
    received = yield from comm.alltoall(nbytes=nbytes, payload=row)
    for per_level in received:
        if per_level is None:
            continue
        for level, packet in per_level.items():
            engine.states[level]["latesender"].absorb(packet)
    for mods in engine.states.values():
        mods["latesender"].finalize()


def analyzer_program(
    mpi: "ProgramAPI",
    config: AnalysisConfig | None = None,
    sink: dict | None = None,
    monitor=None,
):
    """Generator: the analyzer partition's main (paper Figure 12).

    ``sink`` (a plain dict) receives, on the analyzer root:
    ``report`` (:class:`ProfileReport`) and ``analyzer_stats``.
    """
    config = config or AnalysisConfig()
    yield from mpi.init()
    world = mpi.ctx.world
    my_partition = mpi.partition
    app_partitions = [p for p in world.partitions if p.index != my_partition.index]
    if not app_partitions:
        raise ConfigError("analyzer launched without application partitions")

    # Map each application partition (additive map, paper Figure 12).
    vmap = VMPIMap()
    for p in app_partitions:
        yield from map_partitions(mpi, vmap, p, policy=config.map_policy)

    stream = VMPIStream(
        block_size=config.block_size,
        balance=BALANCE_ROUND_ROBIN,
        na_buffers=config.na_buffers,
        channel=0,
    )
    yield from stream.open_map(mpi, vmap, "r")

    tel = mpi.ctx.telemetry
    pid = rank_pid(mpi.ctx.global_rank)
    engine = AnalyzerEngine(
        apps=[(p.name, p.size) for p in app_partitions],
        config=config,
        seed=world.seed + mpi.rank,
        telemetry=tel,
        track_pid=pid,
    )
    if monitor is not None and mpi.rank == 0:
        # The analyzer root's blackboard consumes the health monitor's
        # alert stream as data entries (dogfooding the architecture).
        engine.enable_health_ingest(monitor)

    flows = world.flows
    steering = world.steering
    while True:
        nbytes, payload = yield from stream.read()
        if nbytes == EOF:
            break
        span = (
            tel.span("analysis.block", pid=pid, cat="analysis", args={"nbytes": nbytes})
            if tel.enabled
            else None
        )
        # Provenance: the dispatch hop starts here — the pack is out of the
        # receive buffers and about to be charged its analysis CPU.
        prov = peek_provenance(payload) if flows is not None else None
        if prov is not None:
            flows.on_dispatch(prov.flow_id, mpi.ctx.kernel.now)
        # Charge the analysis CPU cost for this block to simulated time,
        # plus the chain-decode cost when the frame names a codec.  The
        # identity chain (no descriptor section) charges nothing extra,
        # keeping unreduced runs bit-identical.
        cost = config.cpu_cost(nbytes)
        try:
            frame = parse_frame(payload, verify=False)
            spec = frame.codec
        except PackFormatError:
            # Damaged frame; ingest below re-parses, rejects and accounts it.
            frame = None
            spec = ""
        if spec:
            raw_bytes = max(0, frame.content_size - CONTENT_HEADER_SIZE)
            try:
                weight = decode_chain(spec).cost_weight
            except PackFormatError:
                weight = 0.0  # unknown descriptor; rejected at ingest
            decode_cpu = config.codec_per_byte_cpu * raw_bytes * weight
            engine.decode_cpu_s += decode_cpu
            if tel.enabled:
                tel.histogram("codec.decode_s").observe(decode_cpu)
            cost += decode_cpu
        # Steering's autoscaled knowledge-source pool: the modelled worker
        # count divides the analysis charge.  Reading the live attribute per
        # pack is what makes mid-run scale decisions take effect; a pool of
        # one (never scaled) leaves the charge bit-identical.
        if steering is not None and steering.analysis_workers != 1:
            cost /= steering.analysis_workers
        yield from mpi.compute(cost)
        # The verify=False parse above is the pack's only format walk: the
        # engine checks the recorded CRC verdict and threads the frame all
        # the way to the unpacker knowledge source.
        ok = engine.ingest(payload, frame=frame)
        if prov is not None:
            if ok:
                flows.on_done(prov.flow_id, mpi.ctx.kernel.now)
            else:
                flows.on_drop(prov.flow_id, "reject", mpi.ctx.kernel.now)
        if span is not None:
            span.end()

    yield from stream.close()

    # A fault may have killed part of this partition: consult the injector
    # (None in healthy runs) before entering any collective.
    faults = world.faults
    dead_local = faults.dead_local_ranks() if faults is not None else frozenset()

    # Distributed stateful analysis (paper Sec. VI): late-sender matching
    # needs both ends of every message on one analyzer rank.  Shard the
    # local send/receive tuples by sending application rank and exchange
    # them across the analyzer partition, then match locally.  The
    # all-to-all cannot survive a dead participant, so degraded runs fall
    # back to local-only matching.
    if "latesender" in config.modules:
        if dead_local:
            if tel.enabled:
                tel.counter("analysis.latesender_skipped").inc()
            for mods in engine.states.values():
                mods["latesender"].finalize()
        else:
            yield from _latesender_exchange(mpi, engine)

    # Reduce partial states to the analyzer root.
    gather_nbytes = max(64, engine.bytes_ingested // max(1, engine.packs_ingested))
    gather_payload = (
        engine.states,
        engine.packs_ingested,
        engine.bytes_ingested,
        engine.packs_rejected,
        {
            "bytes_wire": engine.bytes_wire_ingested,
            "events_sampled_out": engine.events_sampled_out,
            "rejects_by_cause": engine.rejects_by_cause,
            "codecs_seen": engine.codecs_seen,
            "decode_cpu_s": engine.decode_cpu_s,
        },
    )
    if dead_local:
        gathered = yield from _degraded_gather(
            mpi, gather_nbytes, gather_payload, dead_local
        )
    else:
        gathered = yield from mpi.comm_world.gather(
            nbytes=gather_nbytes, root=0, payload=gather_payload
        )
    if mpi.rank == 0:
        total_packs = engine.packs_ingested
        total_bytes = engine.bytes_ingested
        total_rejected = engine.packs_rejected
        total_wire = engine.bytes_wire_ingested
        total_sampled = engine.events_sampled_out
        total_decode_cpu = engine.decode_cpu_s
        causes = dict(engine.rejects_by_cause)
        codecs = dict(engine.codecs_seen)
        for entry in gathered[1:]:
            if entry is None:  # dead rank's slot in a degraded gather
                continue
            other_states, other_packs, other_bytes, other_rejected, extra = entry
            engine.merge_states(other_states)
            total_packs += other_packs
            total_bytes += other_bytes
            total_rejected += other_rejected
            total_wire += extra["bytes_wire"]
            total_sampled += extra["events_sampled_out"]
            total_decode_cpu += extra["decode_cpu_s"]
            for cause, n in extra["rejects_by_cause"].items():
                causes[cause] = causes.get(cause, 0) + n
            for spec, n in extra["codecs_seen"].items():
                codecs[spec] = codecs.get(spec, 0) + n
        if sink is not None:
            sink["report"] = engine.build_report()
            sink["analyzer_stats"] = {
                "packs": total_packs,
                "bytes": total_bytes,
                "bytes_wire": total_wire,
                "events_sampled_out": total_sampled,
                "decode_cpu_s": total_decode_cpu,
                "packs_rejected": total_rejected,
                "rejects_by_cause": causes,
                "codecs_seen": codecs,
                "board": engine.ml.board.stats(),
                "stream": stream.stats(),
                "health_ingest": dict(engine.health_counts),
                "degraded": bool(faults.degraded) if faults is not None else False,
                "dead_analyzer_ranks": sorted(dead_local),
            }
    yield from mpi.finalize()
