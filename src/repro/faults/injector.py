"""Fault injector: applies a :class:`FaultPlan` to a running world.

The injector is armed before the simulation starts (``attach``) and fires
each fault from a kernel timeout at its scheduled virtual time, so fault
delivery is ordered by the same deterministic event loop as everything
else: identical plan + seed → identical fault timestamps and identical
downstream accounting.

What each fault does at fire time:

* ``analyzer_crash`` — interrupt the target analyzer process (its crash is
  absorbed so the kernel keeps running), then fail the dead endpoint on
  every connected writer stream and remap the orphaned writers onto
  surviving analyzers (:func:`repro.vmpi.mapping.remap_orphans`), adopting
  them on the survivors' read endpoints.
* ``link_degrade`` — cut the NIC bandwidth / add latency on the target
  analyzer's node (:meth:`repro.network.cluster.Cluster.degrade_node`).
* ``pack_corrupt`` / ``pack_drop`` — install a transport tamper hook on
  every open (and future) writer stream that flips bytes in, or swallows,
  every ``every``-th pack, counted across all streams, deterministically
  (pack order is fixed by the event loop).
* ``analyzer_stall`` — freeze the target analyzer's stream consumption for
  ``duration`` virtual seconds.

Everything the injector does is visible: telemetry counters under
``faults.*`` (plus ``vmpi.rank_remaps``), a :class:`FaultRecord` journal,
and per-stream accounting in ``VMPIStream.stats()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.codec.frame import SEC_PAYLOAD, parse_frame
from repro.errors import ConfigError, PackFormatError, SimulationError
from repro.faults.plan import (
    ANALYZER_CRASH,
    ANALYZER_STALL,
    LINK_DEGRADE,
    PACK_CORRUPT,
    PACK_DROP,
    FaultPlan,
    FaultSpec,
)
from repro.mpi.world import PartitionInfo, World
from repro.vmpi.mapping import remap_orphans

#: Give-up bound for interrupting a process that is transiently mid-resume.
_CRASH_ATTEMPTS = 8


@dataclass(frozen=True)
class FaultRecord:
    """Journal entry: one fault as actually applied (or skipped)."""

    kind: str
    t: float
    target: int  # global rank, or -1 when not rank-scoped
    applied: bool
    detail: str = ""


def _flip_middle_byte(blob: Any) -> Any:
    """Deterministically corrupt a bytes payload (checksum-detectable).

    For a well-formed frame the flipped byte is the middle of the PAYLOAD
    section — located through the shared frame parser, never by offset
    arithmetic — so the corruption lands on event data and the stored CRC
    (which is left untouched) no longer matches.  Non-frame payloads fall
    back to flipping the middle byte of the blob.
    """
    if not isinstance(blob, (bytes, bytearray)) or len(blob) == 0:
        return blob
    out = bytearray(blob)
    target = len(out) // 2
    try:
        frame = parse_frame(blob, verify=False)
    except PackFormatError:
        frame = None
    if frame is not None:
        for (stype, body), offset in zip(frame.sections, frame.offsets):
            if stype == SEC_PAYLOAD and body:
                target = offset + len(body) // 2
                break
    out[target] ^= 0xFF
    return bytes(out)


class FaultInjector:
    """Arms a :class:`FaultPlan` against a world and journals what happened."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.records: list[FaultRecord] = []
        self.injected = 0
        self.remapped: dict[int, int] = {}  # orphan writer -> adopting analyzer
        self._world: World | None = None
        self._analyzer: PartitionInfo | None = None
        self._dead: set[int] = set()  # global ranks
        self._tamper_specs: list[FaultSpec] = []
        self._tampered: set[int] = set()  # id() of streams with hook installed
        #: shared per-spec pack counter: "every Nth pack" counts across the
        #: whole fault domain, not per stream (writers may flush rarely)
        self._tamper_counts: dict[FaultSpec, int] = {}

    # -- arming ----------------------------------------------------------------

    def attach(self, world: World, analyzer: PartitionInfo | str = "Analyzer") -> None:
        """Arm every fault of the plan against ``world``.

        Must be called before ``world.run()``.  An empty plan schedules
        nothing at all — attaching it leaves the simulation bit-identical
        to an unattached run.
        """
        if self._world is not None:
            raise ConfigError("fault injector already attached")
        self._world = world
        world.faults = self
        if isinstance(analyzer, str):
            found = world.partition_by_name(analyzer)
            if found is None:
                raise ConfigError(f"no partition named {analyzer!r} to inject against")
            analyzer = found
        self._analyzer = analyzer
        for spec in self.plan:
            target = self._resolve_target(spec)
            world.kernel.timeout(spec.at).add_callback(
                lambda _ev, spec=spec, target=target: self._fire(spec, target)
            )

    def _resolve_target(self, spec: FaultSpec) -> int:
        """Analyzer-local target rank → global rank (Python-style negatives)."""
        if spec.kind in (PACK_CORRUPT, PACK_DROP):
            return -1
        size = self._analyzer.size
        local = spec.target if spec.target >= 0 else size + spec.target
        if not (0 <= local < size):
            raise ConfigError(
                f"fault target {spec.target} outside analyzer partition of {size}"
            )
        if spec.kind == ANALYZER_CRASH and local == 0:
            raise ConfigError(
                "cannot crash analyzer local rank 0 (mapping pivot / gather root)"
            )
        return self._analyzer.first_global_rank + local

    # -- firing ----------------------------------------------------------------

    def _fire(self, spec: FaultSpec, target: int) -> None:
        world = self._world
        tel = world.telemetry
        if spec.kind == ANALYZER_CRASH:
            self._apply_crash(target, attempts=_CRASH_ATTEMPTS)
        elif spec.kind == LINK_DEGRADE:
            self._apply_degrade(spec, target)
        elif spec.kind in (PACK_CORRUPT, PACK_DROP):
            self._apply_tamper(spec)
        elif spec.kind == ANALYZER_STALL:
            self._apply_stall(spec, target)
        self.injected += 1
        if tel.enabled:
            tel.counter("faults.injected").inc()

    def _record(self, kind: str, target: int, applied: bool, detail: str = "") -> None:
        self.records.append(
            FaultRecord(kind, self._world.kernel.now, target, applied, detail)
        )

    # -- analyzer crash + failover ------------------------------------------------

    def _apply_crash(self, target: int, attempts: int) -> None:
        world = self._world
        if target in self._dead:
            self._record(ANALYZER_CRASH, target, False, "already dead")
            return
        proc = world.ranks[target].process
        if proc is None or not proc.is_alive:
            self._record(ANALYZER_CRASH, target, False, "already finished")
            return
        # Absorb the crash: an observer callback keeps the kernel's
        # unhandled-crash check from aborting the whole simulation.
        proc.add_callback(lambda _ev: None)
        try:
            proc.interrupt(cause="fault-injected analyzer crash")
        except SimulationError:
            # Transiently uninterruptible (queued for resume at this very
            # timestamp): retry a hair later, deterministically.
            if attempts > 1:
                world.kernel.timeout(1e-12).add_callback(
                    lambda _ev: self._apply_crash(target, attempts - 1)
                )
            else:
                self._record(ANALYZER_CRASH, target, False, "uninterruptible")
            return
        self._dead.add(target)
        if world.telemetry.enabled:
            world.telemetry.counter("faults.analyzer_crash").inc()
        self._record(ANALYZER_CRASH, target, True, "interrupted")
        self._failover(target)

    def _failover(self, dead_rank: int) -> None:
        """Re-route writers of the dead analyzer onto survivors."""
        world = self._world
        tel = world.telemetry
        # Writers that were feeding the dead analyzer.
        orphans = [
            owner
            for owner, stream in world.streams
            if stream.mode == "w" and dead_rank in stream.endpoints
        ]
        for owner, stream in world.streams:
            if stream.mode == "w" and dead_rank in stream.endpoints:
                stream.fail_endpoint(dead_rank)
        # Survivors with a still-open read endpoint can adopt orphans.
        readers = {
            owner: stream
            for owner, stream in world.streams
            if stream.mode == "r"
            and not stream._closed
            and owner in self._analyzer.global_ranks
            and owner not in self._dead
        }
        if not orphans:
            return
        if not readers:
            self._record(ANALYZER_CRASH, dead_rank, True,
                         f"{len(orphans)} orphans, no survivor to adopt them")
            return
        mapping = remap_orphans(orphans, list(readers))
        for orphan, survivor in mapping.items():
            for owner, stream in world.streams:
                if owner == orphan and stream.mode == "w":
                    stream.adopt_endpoint(survivor)
            readers[survivor].adopt_peer(orphan)
            self.remapped[orphan] = survivor
            if tel.enabled:
                tel.counter("vmpi.rank_remaps").inc()
        self._record(
            ANALYZER_CRASH, dead_rank, True,
            f"remapped {len(mapping)} orphans onto {len(readers)} survivors",
        )

    # -- link degradation ----------------------------------------------------------

    def _apply_degrade(self, spec: FaultSpec, target: int) -> None:
        world = self._world
        node = world.cluster.node_of(target)
        world.cluster.degrade_node(
            node, bandwidth_factor=spec.factor, extra_latency=spec.extra_latency
        )
        if world.telemetry.enabled:
            world.telemetry.counter("faults.link_degraded").inc()
        self._record(
            LINK_DEGRADE, target, True,
            f"node {node}: bandwidth x{spec.factor}, +{spec.extra_latency}s latency",
        )

    # -- transport tampering ---------------------------------------------------------

    def _apply_tamper(self, spec: FaultSpec) -> None:
        self._tamper_specs.append(spec)
        installed = 0
        for _owner, stream in self._world.streams:
            if stream.mode == "w":
                self._install_tamper(stream)
                installed += 1
        self._record(spec.kind, -1, True, f"hook on {installed} writer streams")

    def _install_tamper(self, stream: Any) -> None:
        if id(stream) in self._tampered:
            return
        self._tampered.add(id(stream))
        tel = self._world.telemetry
        counters = self._tamper_counts

        def tamper(_stream, _nbytes, payload):
            for spec in self._tamper_specs:
                n = counters.get(spec, 0) + 1
                counters[spec] = n
                if n % spec.every == 0:
                    if spec.kind == PACK_DROP:
                        if tel.enabled:
                            tel.counter("faults.pack_dropped").inc()
                        return ("drop", payload)
                    if tel.enabled:
                        tel.counter("faults.pack_corrupted").inc()
                    return ("corrupt", _flip_middle_byte(payload))
            return (None, payload)

        stream.set_tamper(tamper)

    # -- analyzer stall ---------------------------------------------------------------

    def _apply_stall(self, spec: FaultSpec, target: int) -> None:
        world = self._world
        stalled = 0
        for owner, stream in world.streams:
            if owner == target and stream.mode == "r" and not stream._closed:
                stream.stall_until(world.kernel.now + spec.duration)
                stalled += 1
        if stalled and world.telemetry.enabled:
            world.telemetry.counter("faults.analyzer_stalled").inc()
        self._record(
            ANALYZER_STALL, target, stalled > 0,
            f"{stalled} read streams frozen for {spec.duration}s"
            if stalled else "no open read stream",
        )

    # -- hooks from the runtime ---------------------------------------------------------

    def on_stream_open(self, _global_rank: int, stream: Any) -> None:
        """Called by every stream open; extends active pack faults to it."""
        if self._tamper_specs and stream.mode == "w":
            self._install_tamper(stream)

    # -- introspection ---------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True once any fault has actually fired."""
        return self.injected > 0

    @property
    def dead_ranks(self) -> frozenset[int]:
        return frozenset(self._dead)

    def dead_local_ranks(self) -> frozenset[int]:
        """Dead analyzer ranks, partition-local (for collective skips)."""
        first = self._analyzer.first_global_rank
        return frozenset(g - first for g in self._dead)

    def summary(self) -> dict[str, Any]:
        by_kind: dict[str, int] = {}
        for rec in self.records:
            if rec.applied:
                by_kind[rec.kind] = by_kind.get(rec.kind, 0) + 1
        return {
            "plan": self.plan.name,
            "scheduled": len(self.plan),
            "injected": self.injected,
            "by_kind": by_kind,
            "dead_ranks": sorted(self._dead),
            "remapped": dict(self.remapped),
            "records": [
                {
                    "kind": r.kind,
                    "t": r.t,
                    "target": r.target,
                    "applied": r.applied,
                    "detail": r.detail,
                }
                for r in self.records
            ],
        }
