"""Deterministic random-number management.

Every stochastic component of the library (random mapping policies, random
FIFO selection in the blackboard, synthetic workload jitter) draws from an RNG
derived from a single experiment seed, so that whole simulated campaigns are
reproducible bit-for-bit.
"""

from __future__ import annotations

import hashlib
import random

import numpy as np


class SeedSequence:
    """Derives independent child seeds from a root seed and string labels.

    Unlike :class:`numpy.random.SeedSequence`, derivation is keyed by *names*
    (``seq.child("stream", rank)``) so that adding a new consumer does not
    perturb the streams handed to existing ones.
    """

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)

    def child_seed(self, *labels: object) -> int:
        """Return a 63-bit seed derived from the root seed and the labels."""
        h = hashlib.blake2b(digest_size=8)
        h.update(str(self.root_seed).encode())
        for label in labels:
            h.update(b"\x1f")
            h.update(repr(label).encode())
        return int.from_bytes(h.digest(), "little") & (2**63 - 1)

    def child(self, *labels: object) -> random.Random:
        """Return a stdlib :class:`random.Random` seeded for the labels."""
        return random.Random(self.child_seed(*labels))

    def child_np(self, *labels: object) -> np.random.Generator:
        """Return a numpy :class:`~numpy.random.Generator` for the labels."""
        return np.random.default_rng(self.child_seed(*labels))


def derive_rng(seed: int, *labels: object) -> random.Random:
    """One-shot helper: ``derive_rng(seed, 'mapping', 3)``."""
    return SeedSequence(seed).child(*labels)
