"""Receive status objects."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Status:
    """Outcome of a completed receive (mirrors ``MPI_Status``).

    ``source`` and ``tag`` are the *matched* values (wildcards resolved),
    ``nbytes`` the actual message size, ``payload`` the optional real data
    carried by the message (VMPI streams ship real event packs; application
    skeletons usually send size-only messages, payload ``None``).
    """

    source: int
    tag: int
    nbytes: int
    payload: object = None

    def count(self, datatype_size: int) -> int:
        """Element count for a given datatype extent (``MPI_Get_count``)."""
        if datatype_size <= 0:
            raise ValueError(f"datatype size must be > 0, got {datatype_size}")
        return self.nbytes // datatype_size
