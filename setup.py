"""Legacy setup shim.

Kept so that ``pip install -e .`` works on offline machines that lack the
``wheel`` package (pip falls back to the ``setup.py develop`` editable path).
All actual metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
