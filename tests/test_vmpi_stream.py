"""VMPI streams: pipelining, backpressure, policies, EOF/EAGAIN protocol."""

import pytest

from repro.errors import SimulationError, StreamClosedError, VMPIError
from repro.util.units import KIB, MIB
from repro.vmpi import (
    BALANCE_NONE,
    BALANCE_RANDOM,
    BALANCE_ROUND_ROBIN,
    EAGAIN,
    EOF,
    OVERFLOW_DROP_NEWEST,
    OVERFLOW_DROP_OLDEST,
    ROUND_ROBIN,
    VMPIMap,
    VMPIStream,
    map_partitions,
)
from repro.vmpi.virtualization import VirtualizedLauncher


def _coupled(machine, writers, readers, writer_main, reader_main, seed=0, **shared):
    launcher = VirtualizedLauncher(machine=machine, seed=seed)
    launcher.add_program("W", nprocs=writers, main=writer_main, **shared)
    launcher.add_program("Analyzer", nprocs=readers, main=reader_main, **shared)
    return launcher.run()


def _writer(mpi, out, blocks=10, block_size=64 * KIB, na=3, balance=BALANCE_ROUND_ROBIN):
    yield from mpi.init()
    vmap = VMPIMap()
    yield from map_partitions(mpi, vmap, "Analyzer", ROUND_ROBIN)
    st = VMPIStream(block_size=block_size, balance=balance, na_buffers=na)
    yield from st.open_map(mpi, vmap, "w")
    for i in range(blocks):
        yield from st.write(payload=(mpi.rank, i))
    yield from st.close()
    out.setdefault("written", []).append(st.blocks_written)
    yield from mpi.finalize()


def _reader(mpi, out, block_size=64 * KIB, na=3, **_kw):
    yield from mpi.init()
    vmap = VMPIMap()
    for i in range(mpi.partition_count()):
        if i != mpi.partition.index:
            yield from map_partitions(mpi, vmap, i, ROUND_ROBIN)
    st = VMPIStream(block_size=block_size, na_buffers=na)
    yield from st.open_map(mpi, vmap, "r")
    while True:
        n, payload = yield from st.read()
        if n == EOF:
            break
        out.setdefault("read", []).append(payload)
    yield from st.close()
    yield from mpi.finalize()


def test_all_blocks_delivered(machine):
    out = {}
    _coupled(machine, 4, 2, _writer, _reader, out=out)
    assert sorted(out["read"]) == sorted((r, i) for r in range(4) for i in range(10))


def test_per_writer_fifo_order(machine):
    out = {}
    _coupled(machine, 2, 1, _writer, _reader, out=out)
    for writer in range(2):
        seq = [i for (r, i) in out["read"] if r == writer]
        assert seq == sorted(seq)


def test_validation_errors():
    with pytest.raises(VMPIError):
        VMPIStream(block_size=0)
    with pytest.raises(VMPIError):
        VMPIStream(balance="zigzag")
    with pytest.raises(VMPIError):
        VMPIStream(na_buffers=0)
    with pytest.raises(VMPIError):
        VMPIStream(channel=-1)


def test_write_requires_open():
    st = VMPIStream()
    with pytest.raises(StreamClosedError):
        list(st.write(nbytes=10))


def test_mode_enforcement(machine):
    def writer(mpi, out):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, "Analyzer", ROUND_ROBIN)
        st = VMPIStream()
        yield from st.open_map(mpi, vmap, "w")
        with pytest.raises(VMPIError):
            yield from st.read()
        yield from st.write(nbytes=100)
        yield from st.close()
        yield from mpi.finalize()

    out = {}
    _coupled(machine, 1, 1, writer, _reader, out=out)


def test_oversized_write_rejected(machine):
    def writer(mpi, out):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, "Analyzer", ROUND_ROBIN)
        st = VMPIStream(block_size=1024)
        yield from st.open_map(mpi, vmap, "w")
        with pytest.raises(VMPIError):
            yield from st.write(nbytes=2048)
        yield from st.write(nbytes=1024)
        yield from st.close()
        yield from mpi.finalize()

    _coupled(machine, 1, 1, writer, _reader, out={})


def test_nonblocking_read_eagain(machine):
    observed = []

    def slow_writer(mpi, out):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, "Analyzer", ROUND_ROBIN)
        st = VMPIStream()
        yield from st.open_map(mpi, vmap, "w")
        yield from mpi.compute(1.0)  # make the reader spin first
        yield from st.write(nbytes=1000)
        yield from st.close()
        yield from mpi.finalize()

    def polling_reader(mpi, out):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, 0, ROUND_ROBIN)
        st = VMPIStream()
        yield from st.open_map(mpi, vmap, "r")
        n, _ = yield from st.read(nonblock=True)
        observed.append(n)
        while True:
            n, _ = yield from st.read()
            if n == EOF:
                break
            observed.append(n)
        yield from mpi.finalize()

    _coupled(machine, 1, 1, slow_writer, polling_reader, out={})
    assert observed[0] == EAGAIN
    assert observed[1] == 1000


def test_eof_only_after_all_writers_close(machine):
    out = {}
    _coupled(machine, 6, 1, _writer, _reader, out=out)
    assert len(out["read"]) == 60  # nothing lost, EOF strictly last


def test_backpressure_blocks_writer(machine):
    """A stalled reader throttles the writer to the buffer window."""
    progress = {}

    def writer(mpi, out):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, "Analyzer", ROUND_ROBIN)
        st = VMPIStream(block_size=1 * MIB, na_buffers=2)
        yield from st.open_map(mpi, vmap, "w")
        for i in range(20):
            yield from st.write()
            progress[i] = mpi.now
        yield from st.close()
        yield from mpi.finalize()

    def stalled_reader(mpi, out):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, 0, ROUND_ROBIN)
        st = VMPIStream(block_size=1 * MIB, na_buffers=2)
        yield from st.open_map(mpi, vmap, "r")
        yield from mpi.compute(5.0)  # reader sleeps: buffers fill
        while True:
            n, _ = yield from st.read()
            if n == EOF:
                break
        yield from mpi.finalize()

    _coupled(machine, 1, 1, writer, stalled_reader, out={})
    # The first few writes fit the adaptation window; later ones block
    # until the reader wakes at t=5.
    assert progress[0] < 1.0
    assert progress[19] > 5.0


def test_adaptation_window_scales_with_na(machine):
    """More asynchronous buffers let more writes complete before blocking."""

    def count_early(na):
        progress = {}

        def writer(mpi, out):
            yield from mpi.init()
            vmap = VMPIMap()
            yield from map_partitions(mpi, vmap, "Analyzer", ROUND_ROBIN)
            st = VMPIStream(block_size=1 * MIB, na_buffers=na)
            yield from st.open_map(mpi, vmap, "w")
            for i in range(30):
                yield from st.write()
                progress[i] = mpi.now
            yield from st.close()
            yield from mpi.finalize()

        def sleeper(mpi, out):
            yield from mpi.init()
            vmap = VMPIMap()
            yield from map_partitions(mpi, vmap, 0, ROUND_ROBIN)
            st = VMPIStream(block_size=1 * MIB, na_buffers=na)
            yield from st.open_map(mpi, vmap, "r")
            yield from mpi.compute(5.0)
            while True:
                n, _ = yield from st.read()
                if n == EOF:
                    break
            yield from mpi.finalize()

        _coupled(machine, 1, 1, writer, sleeper, out={})
        return sum(1 for t in progress.values() if t < 5.0)

    assert count_early(6) > count_early(2)


def test_round_robin_balances_endpoints(machine):
    per_reader = {}

    def counting_reader(mpi, out):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, 0, ROUND_ROBIN)
        st = VMPIStream()
        yield from st.open_map(mpi, vmap, "r")
        count = 0
        while True:
            n, _ = yield from st.read()
            if n == EOF:
                break
            count += 1
        per_reader[mpi.rank] = count
        yield from mpi.finalize()

    def writer(mpi, out):
        yield from _writer(mpi, out, blocks=12)

    _coupled(machine, 2, 4, writer, counting_reader, out={})
    # Each of the 2 writers is mapped to 2 readers; RR splits evenly.
    assert sorted(per_reader.values()) == [6, 6, 6, 6]


def test_balance_none_uses_first_endpoint(machine):
    per_reader = {}

    def writer(mpi, out):
        yield from _writer(mpi, out, blocks=8, balance=BALANCE_NONE)

    def counting_reader(mpi, out):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, 0, ROUND_ROBIN)
        st = VMPIStream()
        yield from st.open_map(mpi, vmap, "r")
        count = 0
        while True:
            n, _ = yield from st.read()
            if n == EOF:
                break
            count += 1
        per_reader[mpi.rank] = count
        yield from mpi.finalize()

    _coupled(machine, 1, 2, writer, counting_reader, out={})
    assert sorted(per_reader.values()) == [0, 8]


def test_double_close_is_noop(machine):
    """Closing twice is safe (failure-path cleanup), but I/O after close is not."""

    def writer(mpi, out):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, "Analyzer", ROUND_ROBIN)
        st = VMPIStream()
        yield from st.open_map(mpi, vmap, "w")
        yield from st.write(nbytes=10)
        yield from st.close()
        yield from st.close()  # idempotent: no error, no second close marker
        with pytest.raises(StreamClosedError):
            yield from st.write(nbytes=10)
        yield from mpi.finalize()

    out = {}
    _coupled(machine, 1, 1, writer, _reader, out=out)
    assert out["read"] == [None]  # exactly one block, exactly one EOF


def test_read_after_close_raises(machine):
    def reader(mpi, out, **_kw):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, 0, ROUND_ROBIN)
        st = VMPIStream()
        yield from st.open_map(mpi, vmap, "r")
        while True:
            n, _ = yield from st.read()
            if n == EOF:
                break
        yield from st.close()
        with pytest.raises(StreamClosedError):
            yield from st.read()
        yield from mpi.finalize()

    _coupled(machine, 1, 1, _writer, reader, out={}, blocks=2)


def test_reader_close_accounts_stranded_blocks(machine):
    """Blocks that arrived but were never read are counted at close."""
    out = {}

    def writer(mpi, out):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, "Analyzer", ROUND_ROBIN)
        st = VMPIStream(na_buffers=3)
        yield from st.open_map(mpi, vmap, "w")
        yield from st.write(nbytes=1000)
        yield from st.write(nbytes=500)
        yield from st.close()
        yield from mpi.finalize()

    def reader(mpi, out):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, 0, ROUND_ROBIN)
        st = VMPIStream(na_buffers=3)
        yield from st.open_map(mpi, vmap, "r")
        yield from mpi.compute(5.0)  # both blocks land in the NA buffers
        yield from st.close()  # abandon them unread
        out["stats"] = st.stats()
        yield from mpi.finalize()

    _coupled(machine, 1, 1, writer, reader, out=out)
    s = out["stats"]
    assert s["closed"] is True
    assert s["blocks_discarded_at_close"] == 2
    assert s["bytes_discarded_at_close"] == 1500


def test_stream_byte_accounting(machine):
    out = {}
    _coupled(machine, 2, 1, _writer, _reader, out=out, blocks=5)
    assert out["written"] == [5, 5]


def test_saturation_stats_always_on(machine):
    """stats() exposes buffer high-water marks and wait time without telemetry."""
    out = {}

    def writer(mpi, out):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, "Analyzer", ROUND_ROBIN)
        st = VMPIStream(na_buffers=2)
        yield from st.open_map(mpi, vmap, "w")
        for i in range(12):
            yield from st.write(payload=i)
        yield from st.close()
        out["wstats"] = st.stats()
        yield from mpi.finalize()

    def reader(mpi, out):
        yield from mpi.init()
        vmap = VMPIMap()
        for i in range(mpi.partition_count()):
            if i != mpi.partition.index:
                yield from map_partitions(mpi, vmap, i, ROUND_ROBIN)
        st = VMPIStream(na_buffers=2)
        yield from st.open_map(mpi, vmap, "r")
        while True:
            n, _payload = yield from st.read()
            if n == EOF:
                break
        yield from st.close()
        out["rstats"] = st.stats()
        yield from mpi.finalize()

    _coupled(machine, 1, 1, writer, reader, out=out)
    w, r = out["wstats"], out["rstats"]
    # Writer side: the NA slots were exercised and the occupancy peak kept.
    assert 1 <= w["write_buffers_hwm"] <= 2
    assert w["read_wait_s"] == 0.0
    # Reader side: blocking reads accumulated wait; buffers were occupied.
    assert r["read_wait_s"] > 0.0
    assert r["read_buffers_hwm"] >= 1
    for key in ("read_wait_s", "write_buffers_hwm", "read_buffers_hwm"):
        assert key in w and key in r
    # Failure-tolerance counters exist and are all zero on the healthy path.
    for key in ("write_retries", "write_timeouts", "blocks_dropped",
                "bytes_dropped", "blocks_lost_to_crash", "endpoints_failed",
                "stale_blocks_discarded", "blocks_discarded_at_close"):
        assert w[key] == 0 and r[key] == 0


def _stalled_then_draining_reader(stall_s, out_key):
    """Reader main: an injected slow-analyzer stall, then drain to EOF."""

    def reader(mpi, out):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, 0, ROUND_ROBIN)
        st = VMPIStream(na_buffers=2)
        yield from st.open_map(mpi, vmap, "r")
        n, _ = yield from st.read(nonblock=True)
        out.setdefault("first_read", []).append(n)
        st.stall_until(mpi.now + stall_s)  # what the stall fault injects
        while True:
            n, _ = yield from st.read()
            if n == EOF:
                break
        yield from st.close()
        out[out_key] = st.stats()
        yield from mpi.finalize()

    return reader


def test_write_timeout_retry_then_drop_newest(machine):
    """With the reader stalled, timed-out writes retry, back off, then drop."""
    out = {}

    def writer(mpi, out):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, "Analyzer", ROUND_ROBIN)
        st = VMPIStream(
            na_buffers=2,
            write_timeout=0.05,
            max_retries=2,
            overflow=OVERFLOW_DROP_NEWEST,
        )
        yield from st.open_map(mpi, vmap, "w")
        for i in range(10):
            yield from st.write(payload=i)
        yield from st.close()
        out["w"] = st.stats()
        yield from mpi.finalize()

    _coupled(machine, 1, 1, writer, _stalled_then_draining_reader(5.0, "r"), out=out)
    w, r = out["w"], out["r"]
    assert w["write_timeouts"] >= 1
    assert w["write_retries"] >= 1
    assert w["blocks_dropped"] >= 1
    assert w["bytes_dropped"] > 0
    # Every block is accounted exactly once: delivered or dropped.
    assert r["blocks_read"] + w["blocks_dropped"] == 10
    # The stalled reader's empty non-blocking probe took the EAGAIN path.
    assert out["first_read"] == [EAGAIN]
    assert r["eagain_returns"] == 1


def test_write_timeout_drop_oldest_reclaims_inflight(machine):
    """drop-oldest sacrifices the stalest committed block for the new one."""
    out = {}

    def writer(mpi, out):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, "Analyzer", ROUND_ROBIN)
        st = VMPIStream(
            na_buffers=2,
            write_timeout=0.05,
            max_retries=1,
            overflow=OVERFLOW_DROP_OLDEST,
        )
        yield from st.open_map(mpi, vmap, "w")
        for i in range(10):
            yield from st.write(payload=i)
        yield from st.close()
        out["w"] = st.stats()
        yield from mpi.finalize()

    _coupled(machine, 1, 1, writer, _stalled_then_draining_reader(5.0, "r"), out=out)
    w, r = out["w"], out["r"]
    assert w["blocks_dropped"] >= 1
    # Reclaimed blocks travel as tombstones the reader silently discards.
    assert r["stale_blocks_discarded"] == w["blocks_dropped"]
    assert r["blocks_read"] + w["blocks_dropped"] == 10
    # Later payloads survive at the expense of the oldest ones.
    assert w["write_timeouts"] >= 1
    # Tombstoned blocks sat in the receive buffers through the stall; the
    # reader attributes that dead dwell separately from consumed blocks'.
    assert r["dropped_dwell_s"] > 0
    assert r["read_dwell_s"] > 0
