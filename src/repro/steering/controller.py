"""The steering controller: health alerts in, actuation decisions out.

The controller is wired between the :class:`~repro.telemetry.monitor.
HealthMonitor` (via its :class:`~repro.analysis.alerts.AlertRouter`) and
three actuators that already exist in the simulation:

* **reduction escalation** — every writer's
  :meth:`~repro.instrument.interceptor.StreamingInstrumentation.set_reduction`,
  stepping up the policy's chain ladder under congestion alerts.  Because
  each EVF2 frame carries its own codec descriptor, pre- and post-switch
  packs decode without any reader coordination;
* **worker autoscaling** — the analyzer's modelled knowledge-source worker
  pool (:data:`analysis_workers` divides the per-pack analysis CPU charge),
  scaled up under dispatch-backlog alerts;
* **writer rebalancing** — :meth:`~repro.vmpi.stream.VMPIStream.
  retarget_endpoint` driven by :func:`~repro.vmpi.mapping.remap_orphans`,
  levelling the writer-per-reader fan-in under imbalance or after failover.

Escalation is edge-driven (it happens in the alert callback); relaxation is
hysteretic: a periodic hook steps actions back one level at a time only
after *all* trigger conditions have been clear for ``relax_after_s``, each
step gated by its own cooldown, so the policy cannot flap.

Every act is journalled as a :class:`SteeringDecision` carrying the
triggering alert, the virtual timestamp, and mean end-to-end flow latency
before/after (PR 4 provenance) — and mirrored as a Chrome-trace instant.

When no decision fires, the controller never touches the simulation: the
relax hook is a kernel :class:`~repro.simt.kernel.PeriodicHook` (observer
-only by construction), so an enabled-but-never-triggered run is
bit-identical to one without steering.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ConfigError
from repro.steering.policy import (
    ESCALATE_REDUCTION,
    REBALANCE_WRITERS,
    RELAX_REDUCTION,
    SCALE_DOWN_WORKERS,
    SCALE_UP_WORKERS,
    SteeringPolicy,
)
from repro.telemetry.monitor import CLEARED_SUFFIX, WINDOWED_KINDS
from repro.vmpi.mapping import remap_orphans

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.world import World
    from repro.simt.kernel import PeriodicHook
    from repro.telemetry.monitor import HealthMonitor

#: Synthetic trigger kind stamped on relax decisions: the "alert" that
#: fired is the sustained absence of congestion, not a monitor event.
QUIESCENCE = "quiescence"


@dataclass
class SteeringDecision:
    """One actuation, journalled with its cause and its effect window."""

    action: str
    t: float
    trigger_kind: str
    trigger_t: float
    trigger_value: float
    detail: dict = field(default_factory=dict)
    #: mean end-to-end latency of flows completed before/after the decision
    #: (None without provenance, or when a window saw no completed flow)
    latency_before_s: float | None = None
    latency_after_s: float | None = None

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)

    def describe(self) -> str:
        extra = ""
        if self.detail:
            extra = " (" + ", ".join(
                f"{k}={v}" for k, v in sorted(self.detail.items())
            ) + ")"
        return f"[{self.t:.6f}s] {self.action} <- {self.trigger_kind}{extra}"


class SteeringController:
    """Online policy actuation over one simulated session."""

    def __init__(self, policy: SteeringPolicy | None = None):
        self.policy = policy or SteeringPolicy()
        self.decisions: list[SteeringDecision] = []
        #: optional live subscriber called with each SteeringDecision the
        #: moment it is journaled (the observability bus taps this; the
        #: decision's ``latency_after_s`` is still None at that point —
        #: it is only measurable once later windows close).
        self.on_decision: "Callable[[SteeringDecision], None] | None" = None
        #: modelled analyzer worker pool; the analysis CPU charge divides by
        #: this, and ``1`` (never scaled) leaves the charge untouched.
        self.analysis_workers = 1
        self.alerts_seen = 0
        self._world: "World | None" = None
        self._monitor: "HealthMonitor | None" = None
        self._registries: dict[str, list] = {}
        self._hook: "PeriodicHook | None" = None
        # Reduction ladder state.  Level 0 is the session's baseline chain
        # (whatever the run was configured with); levels 1.. follow the
        # policy's step table.  ``_base_level`` anchors relaxation when the
        # baseline itself sits mid-ladder.
        self._steps: tuple[str, ...] = self.policy.reduction_steps
        self._base_spec = ""
        self._base_level = 0
        self._level = 0
        # Hysteresis state: windowed trigger kinds currently above threshold
        # and the time any escalate/autoscale trigger last fired.
        self._congested: set[str] = set()
        self._last_trigger_t = float("-inf")
        # Per-actuator cooldown deadlines.
        self._next_escalate_t = float("-inf")
        self._next_relax_t = float("-inf")
        self._next_scale_up_t = float("-inf")
        self._next_scale_down_t = float("-inf")
        self._next_rebalance_t = float("-inf")
        self._rebalances_done = 0
        self._finalized = False

    # -- wiring -------------------------------------------------------------------

    def attach(
        self,
        world: "World",
        monitor: "HealthMonitor",
        registries: dict[str, list],
        initial_chain: str = "",
    ) -> None:
        """Subscribe to the monitor's router and the kernel's relax tick.

        ``registries`` is the session's per-application interceptor lists —
        empty at attach time, populated by the programs as they start.  The
        baseline reduction level therefore comes from ``initial_chain``
        (the session-wide :class:`InstrumentationCost` chain spec).
        """
        if self._world is not None:
            raise ConfigError("steering controller already attached")
        if monitor.router is None:
            raise ConfigError("steering needs a monitor with an AlertRouter")
        self._world = world
        self._monitor = monitor
        self._registries = registries
        self._base_spec = initial_chain or ""
        try:
            self._base_level = self._steps.index(self._base_spec)
        except ValueError:
            self._base_level = 0
        self._level = self._base_level
        monitor.router.subscribe(self.on_alert)
        # Registered after the monitor's hook, so same-tick cleared alerts
        # are already delivered when the relax pass runs.
        interval = self.policy.tick_interval_s or monitor.config.interval
        self._hook = world.kernel.call_every(interval, self._tick)
        world.steering = self

    def detach(self) -> None:
        if self._hook is not None:
            self._hook.cancel()
            self._hook = None

    # -- alert path (escalation: edge-driven) -------------------------------------

    def on_alert(self, alert: Any) -> None:
        """Router callback: classify one alert and act on it immediately."""
        kind = getattr(alert, "kind", None)
        if kind is None or getattr(alert, "source", "") != "health_monitor":
            return  # application-level alerts share the router; ignore them
        self.alerts_seen += 1
        if kind.endswith(CLEARED_SUFFIX):
            base = kind[: -len(CLEARED_SUFFIX)]
            self._congested.discard(base)
            if not self._congested:
                # The all-clear edge restarts the relax clock.
                self._last_trigger_t = alert.t_detect
            return
        policy = self.policy
        now = alert.t_detect
        if kind in policy.escalate_on or kind in policy.autoscale_on:
            self._last_trigger_t = now
            if kind in WINDOWED_KINDS:
                self._congested.add(kind)
        if policy.enable_reduction and kind in policy.escalate_on:
            self._escalate(now, alert)
        if policy.enable_autoscale and kind in policy.autoscale_on:
            self._scale_up(now, alert)
        if policy.enable_rebalance and kind in policy.rebalance_on:
            self._rebalance(now, alert)

    # -- relax path (hysteresis: level-driven) ------------------------------------

    def _tick(self, now: float) -> None:
        if self._congested:
            return
        if now - self._last_trigger_t < self.policy.relax_after_s:
            return
        if (
            self.policy.enable_reduction
            and self._level > self._base_level
            and now >= self._next_relax_t
        ):
            self._set_level(
                now, self._level - 1, RELAX_REDUCTION,
                trigger_kind=QUIESCENCE,
                trigger_t=self._last_trigger_t,
                trigger_value=now - self._last_trigger_t,
            )
            self._next_relax_t = now + self.policy.relax_cooldown_s
        if (
            self.policy.enable_autoscale
            and self.analysis_workers > 1
            and now >= self._next_scale_down_t
        ):
            before = self.analysis_workers
            self.analysis_workers = max(1, before // self.policy.worker_step)
            self._record(
                SCALE_DOWN_WORKERS, now,
                trigger_kind=QUIESCENCE,
                trigger_t=self._last_trigger_t,
                trigger_value=now - self._last_trigger_t,
                detail={"from": before, "to": self.analysis_workers},
            )
            self._next_scale_down_t = now + self.policy.autoscale_cooldown_s

    # -- actuators ----------------------------------------------------------------

    def _escalate(self, now: float, alert: Any) -> None:
        if now < self._next_escalate_t or self._level >= len(self._steps) - 1:
            return
        self._set_level(
            now, self._level + 1, ESCALATE_REDUCTION,
            trigger_kind=alert.kind,
            trigger_t=alert.t_detect,
            trigger_value=alert.value,
        )
        self._next_escalate_t = now + self.policy.escalate_cooldown_s

    def _spec_at(self, level: int) -> str:
        return self._base_spec if level == self._base_level else self._steps[level]

    def _set_level(self, now: float, level: int, action: str, **trigger) -> None:
        old_spec = self._spec_at(self._level)
        new_spec = self._spec_at(level)
        self._level = level
        switched = 0
        for name in sorted(self._registries):
            for interceptor in self._registries[name]:
                interceptor.set_reduction(new_spec)
                switched += 1
        self._record(
            action, now,
            detail={
                "from": old_spec or "identity",
                "to": new_spec or "identity",
                "level": level,
                "writers": switched,
            },
            **trigger,
        )

    def _scale_up(self, now: float, alert: Any) -> None:
        if now < self._next_scale_up_t:
            return
        before = self.analysis_workers
        after = min(self.policy.max_workers, before * self.policy.worker_step)
        if after == before:
            return
        self.analysis_workers = after
        self._record(
            SCALE_UP_WORKERS, now,
            trigger_kind=alert.kind,
            trigger_t=alert.t_detect,
            trigger_value=alert.value,
            detail={"from": before, "to": after},
        )
        self._next_scale_up_t = now + self.policy.autoscale_cooldown_s

    def _rebalance(self, now: float, alert: Any) -> None:
        if (
            now < self._next_rebalance_t
            or self._rebalances_done >= self.policy.max_rebalances
        ):
            return
        moves = self._rebalance_writers()
        if not moves:
            return
        self._rebalances_done += 1
        self._record(
            REBALANCE_WRITERS, now,
            trigger_kind=alert.kind,
            trigger_t=alert.t_detect,
            trigger_value=alert.value,
            detail={"moves": moves, "round": self._rebalances_done},
        )
        self._next_rebalance_t = now + self.policy.rebalance_cooldown_s

    def _rebalance_writers(self) -> dict[str, int]:
        """Level the writer fan-in across alive, still-open readers.

        Returns ``{writer_global: new_reader_global}`` for the writers
        actually moved (empty when already balanced — then no decision is
        recorded and the simulation is untouched).
        """
        world = self._world
        faults = world.faults
        dead = faults.dead_ranks if faults is not None else frozenset()
        readers = {
            owner: stream
            for owner, stream in world.streams
            if stream.mode == "r" and not stream._closed and owner not in dead
        }
        if len(readers) < 2:
            return {}
        # Fan-in per reader, as (writer_global, writer_stream) assignments.
        load: dict[int, list[tuple[int, Any]]] = {r: [] for r in readers}
        for owner, stream in world.streams:
            if stream.mode != "w" or stream._closed:
                continue
            for endpoint in stream.endpoints:
                if endpoint in load:
                    load[endpoint].append((owner, stream))
        total = sum(len(v) for v in load.values())
        if total == 0:
            return {}
        fair = -(-total // len(readers))  # ceil
        orphans: dict[int, tuple[Any, int]] = {}  # writer -> (stream, old reader)
        for reader in sorted(load):
            assigned = sorted(load[reader], key=lambda kv: kv[0])
            for owner, stream in assigned[fair:]:
                orphans[owner] = (stream, reader)
        underloaded = sorted(r for r in load if len(load[r]) < fair)
        if not orphans or not underloaded:
            return {}
        mapping = remap_orphans(sorted(orphans), underloaded)
        tel = world.telemetry
        moves: dict[str, int] = {}
        for writer in sorted(mapping):
            stream, old = orphans[writer]
            target = mapping[writer]
            if not stream.retarget_endpoint(old, target):
                continue
            readers[target].adopt_peer(writer)
            moves[str(writer)] = target
            if tel.enabled:
                tel.counter("steering.writer_remaps").inc()
        return moves

    # -- journal ------------------------------------------------------------------

    def _record(
        self,
        action: str,
        now: float,
        trigger_kind: str,
        trigger_t: float,
        trigger_value: float,
        detail: dict | None = None,
    ) -> None:
        decision = SteeringDecision(
            action=action,
            t=now,
            trigger_kind=trigger_kind,
            trigger_t=trigger_t,
            trigger_value=trigger_value,
            detail=detail or {},
            latency_before_s=self._mean_latency(upto=now),
        )
        self.decisions.append(decision)
        if self.on_decision is not None:
            self.on_decision(decision)
        tel = self._world.telemetry
        if tel.enabled:
            tel.counter("steering.decisions").inc()
            tel.instant(
                f"steering.{action}",
                cat="steering",
                args={"trigger": trigger_kind, **decision.detail},
            )

    def _mean_latency(
        self, upto: float, after: float = float("-inf")
    ) -> float | None:
        flows = self._world.flows if self._world is not None else None
        if flows is None:
            return None
        samples = [
            f.end_to_end_s
            for f in flows.completed()
            if after < f.t_done <= upto
        ]
        if not samples:
            return None
        return sum(samples) / len(samples)

    def finalize(self, t_end: float) -> None:
        """Stamp each decision's after-window latency (inter-decision)."""
        if self._finalized:
            return
        self._finalized = True
        for i, decision in enumerate(self.decisions):
            t_next = (
                self.decisions[i + 1].t if i + 1 < len(self.decisions) else t_end
            )
            decision.latency_after_s = self._mean_latency(
                upto=t_next, after=decision.t
            )

    # -- summaries ----------------------------------------------------------------

    def by_action(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for decision in self.decisions:
            out[decision.action] = out.get(decision.action, 0) + 1
        return out

    def summary(self) -> dict[str, Any]:
        """JSON-serializable journal for reports and bench artefacts."""
        return {
            "policy": asdict(self.policy),
            "alerts_seen": self.alerts_seen,
            "decisions": [d.as_dict() for d in self.decisions],
            "by_action": self.by_action(),
            "final": {
                "reduction_level": self._level,
                "chain": self._spec_at(self._level) or "identity",
                "workers": self.analysis_workers,
                "rebalances": self._rebalances_done,
            },
        }
