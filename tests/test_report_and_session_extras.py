"""Session extension paths: alert/proxy modules end-to-end, posix maps,
report round trips through the full pipeline."""

import pytest

from repro.analysis import AnalysisConfig
from repro.apps import EulerMHD
from repro.apps.nas import CG, LU
from repro.core.session import CouplingSession
from repro.network.machine import small_test_machine

MACHINE = small_test_machine(nodes=256, cores_per_node=4)


class TestExtensionModulesEndToEnd:
    def test_session_with_all_extension_modules(self):
        cfg = AnalysisConfig(
            modules=("profile", "topology", "density", "waitstate", "otf2proxy", "alerts")
        )
        session = CouplingSession(machine=MACHINE, seed=4, analysis=cfg)
        name = session.add_application(CG(16, "C", iterations=4))
        session.set_analyzer(ratio=1.0)
        result = session.run()
        chapter = result.report.chapter(name)
        # The selective trace retained only the default p2p calls.
        assert chapter.otf2proxy is not None
        assert 0.0 < chapter.otf2proxy.selectivity < 1.0
        assert chapter.otf2proxy.trace_bytes() > 0
        # The alert monitor watched every batch without raising spurious alerts
        # on a healthy app (default thresholds are generous).
        assert chapter.alerts is not None
        text = result.report.render()
        assert "Selective trace" in text
        assert "Real-time alerts" in text

    def test_selective_trace_decodes_after_session(self):
        from repro.analysis import OTF2Proxy

        cfg = AnalysisConfig(modules=("profile", "otf2proxy"))
        session = CouplingSession(machine=MACHINE, seed=4, analysis=cfg)
        name = session.add_application(LU(16, "C", iterations=1))
        session.set_analyzer(ratio=1.0)
        result = session.run()
        proxy = result.report.chapter(name).otf2proxy
        decoded = OTF2Proxy.deserialize(proxy.serialize())
        assert sum(len(v) for v in decoded.values()) == proxy.events_selected
        # Only p2p-ish calls survive the default selection.
        from repro.instrument.events import CALL_NAMES

        for events in decoded.values():
            for call in set(events["call"].tolist()):
                assert CALL_NAMES[call] in OTF2Proxy.DEFAULT_CALLS

    def test_events_conserved_across_modules(self):
        """profile and otf2proxy see exactly the same stream."""
        cfg = AnalysisConfig(modules=("profile", "otf2proxy"))
        session = CouplingSession(machine=MACHINE, seed=4, analysis=cfg)
        name = session.add_application(CG(16, "C", iterations=3))
        session.set_analyzer(ratio=2.0)
        result = session.run()
        chapter = result.report.chapter(name)
        assert chapter.otf2proxy.events_seen == chapter.profile.events_total


class TestPosixDensity:
    def test_checkpoint_costs_visible_in_profile(self):
        kernel = EulerMHD(16, grid=512, iterations=4, checkpoint_every=2)
        session = CouplingSession(machine=MACHINE, seed=1)
        name = session.add_application(kernel)
        session.set_analyzer(ratio=1.0)
        result = session.run()
        profile = result.report.chapter(name).profile
        rows = {r[0]: r for r in profile.rows()}
        assert rows["write"][1] == 16 * 2  # hits
        assert rows["write"][2] > 0  # time spent writing
        assert rows["open"][1] == rows["close"][1] == 16 * 2

    def test_checkpoint_slows_the_app(self):
        base = EulerMHD(16, grid=512, iterations=4, checkpoint_every=0)
        ckpt = EulerMHD(16, grid=512, iterations=4, checkpoint_every=1)

        def wall(kernel):
            session = CouplingSession(machine=MACHINE, seed=1)
            session.add_application(kernel, name="app")
            session.set_analyzer(nprocs=4)
            return session.run().app("app").walltime

        assert wall(ckpt) > wall(base)


class TestSessionWorldExposure:
    def test_network_accounting_available(self):
        session = CouplingSession(machine=MACHINE, seed=2)
        session.add_application(CG(16, "C", iterations=2))
        session.set_analyzer(ratio=1.0)
        result = session.run()
        cluster = result.world.cluster
        assert cluster.bytes_internode > 0
        assert cluster.placement.nodes_used == 8  # 16 app + 16 analyzer ranks

    def test_mailboxes_drained_at_end(self):
        session = CouplingSession(machine=MACHINE, seed=2)
        session.add_application(CG(8, "C", iterations=2))
        session.set_analyzer(ratio=1.0)
        result = session.run()
        for ctx in result.world.ranks:
            unexpected, _posted = ctx.mailbox.pending_counts()
            assert unexpected == 0, f"rank {ctx.global_rank} left unexpected messages"
