"""Application skeletons: grids, validation, communication structure."""

import math

import pytest

from repro.errors import ConfigError
from repro.apps import EulerMHD, nas_kernel
from repro.apps.base import grid_2d, is_power_of_two, is_square
from repro.apps.nas import BT, CG, EP, FT, KERNELS, LU, MG, SP
from repro.apps.nas.mg import grid_3d
from repro.core.session import CouplingSession
from repro.mpi import MPMDLauncher


def run_alone(machine, kernel):
    launcher = MPMDLauncher(machine=machine)
    launcher.add_program(kernel.label, nprocs=kernel.nprocs, main=kernel.main)
    world = launcher.run()
    return world


def profile(machine, kernel):
    session = CouplingSession(machine=machine, seed=0)
    name = session.add_application(kernel)
    session.set_analyzer(ratio=1.0)
    return name, session.run()


class TestHelpers:
    @pytest.mark.parametrize("n,expected", [(12, (4, 3)), (16, (4, 4)), (7, (7, 1)), (36, (6, 6))])
    def test_grid_2d(self, n, expected):
        assert grid_2d(n) == expected

    def test_grid_2d_validation(self):
        with pytest.raises(ConfigError):
            grid_2d(0)

    def test_grid_3d_cubic(self):
        assert grid_3d(64) == (4, 4, 4)
        px, py, pz = grid_3d(128)
        assert px * py * pz == 128

    def test_predicates(self):
        assert is_square(49) and not is_square(50)
        assert is_power_of_two(64) and not is_power_of_two(48)


class TestValidation:
    def test_bt_sp_require_square(self):
        with pytest.raises(ConfigError):
            BT(10, "C")
        with pytest.raises(ConfigError):
            SP(12, "C")
        assert BT(16, "C").nprocs == 16

    def test_cg_ft_mg_require_power_of_two(self):
        for cls in (CG, FT, MG):
            with pytest.raises(ConfigError):
                cls(12, "C")
            assert cls(16, "C").nprocs == 16

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigError):
            SP(16, "Z")

    def test_factory(self):
        kernel = nas_kernel("sp", 16, "C")
        assert isinstance(kernel, SP)
        with pytest.raises(KeyError):
            nas_kernel("XX", 16)

    def test_kernel_registry_complete(self):
        assert set(KERNELS) == {"BT", "SP", "LU", "CG", "FT", "MG", "EP"}

    def test_iterations_positive(self):
        with pytest.raises(ConfigError):
            SP(16, "C", iterations=0)

    def test_label_includes_class(self):
        assert SP(16, "D").label == "SP.D"
        assert EulerMHD(8).label == "EulerMHD"

    def test_eulermhd_validation(self):
        with pytest.raises(ConfigError):
            EulerMHD(8, grid=0)
        with pytest.raises(ConfigError):
            EulerMHD(8, checkpoint_every=-1)

    def test_lu_plane_batch_validated(self):
        with pytest.raises(ConfigError):
            LU(16, "C", plane_batch=0)


class TestScaling:
    def test_class_d_more_work_than_c(self):
        for cls in (BT, SP, LU, CG):
            assert cls.CLASSES["D"].gops > 10 * cls.CLASSES["C"].gops

    def test_iteration_scale(self):
        k = SP(16, "C", iterations=4)
        assert k.iteration_scale == pytest.approx(100.0)  # 400 official / 4

    def test_face_bytes_shrink_with_more_ranks(self):
        assert SP(16, "C").face_bytes() > SP(64, "C").face_bytes()

    def test_bt_faces_bigger_than_sp(self):
        assert BT(16, "C").face_bytes() > SP(16, "C").face_bytes()

    def test_cg_layout(self):
        assert CG(16, "C").layout() == (4, 4)
        assert CG(32, "C").layout() == (4, 8)  # cols = 2 x rows for odd log2

    def test_cg_transpose_partner_square_is_involution(self):
        cg = CG(16, "C")
        for rank in range(16):
            partner = cg.transpose_partner(rank)
            assert cg.transpose_partner(partner) == rank

    def test_ft_alltoall_bytes_scale(self):
        assert FT(16, "C").alltoall_pair_bytes() > FT(64, "C").alltoall_pair_bytes()


class TestExecution:
    """Each kernel runs standalone to completion with sensible timing."""

    @pytest.mark.parametrize(
        "kernel_factory",
        [
            lambda: BT(16, "C", iterations=2),
            lambda: SP(16, "C", iterations=2),
            lambda: LU(16, "C", iterations=1),
            lambda: CG(16, "C", iterations=2),
            lambda: FT(16, "C", iterations=2),
            lambda: MG(16, "C", iterations=1),
            lambda: EP(16, "C"),
            lambda: EulerMHD(16, grid=512, iterations=2),
        ],
        ids=["BT", "SP", "LU", "CG", "FT", "MG", "EP", "EulerMHD"],
    )
    def test_runs_to_completion(self, big_machine, kernel_factory):
        kernel = kernel_factory()
        world = run_alone(big_machine, kernel)
        assert world.app_walltime(kernel.label) > 0

    def test_wrong_launch_size_detected(self, big_machine):
        kernel = SP(16, "C")
        launcher = MPMDLauncher(machine=big_machine)
        launcher.add_program("SP.C", nprocs=25, main=kernel.main)
        with pytest.raises(Exception, match="built for"):
            launcher.run()

    def test_class_d_runs_longer_than_c(self, big_machine):
        t = {}
        for klass in ("C", "D"):
            kernel = SP(16, klass, iterations=2)
            world = run_alone(big_machine, kernel)
            t[klass] = world.app_walltime(kernel.label)
        assert t["D"] > 3 * t["C"]


class TestCommunicationStructure:
    """Topology shapes the paper's Figure 17 relies on."""

    def test_sp_torus_six_neighbours(self, big_machine):
        name, result = profile(big_machine, SP(16, "C", iterations=1))
        topo = result.report.chapter(name).topology
        # Every rank talks to 6 distinct successors (x,y,z forward+backward).
        degrees = topo.degree_histogram()
        assert set(degrees) == {6}
        assert topo.is_symmetric("hits")

    def test_bt_torus_three_successors(self, big_machine):
        name, result = profile(big_machine, BT(16, "C", iterations=1))
        topo = result.report.chapter(name).topology
        assert set(topo.degree_histogram()) == {3}

    def test_lu_five_point_mesh(self, big_machine):
        name, result = profile(big_machine, LU(16, "C", iterations=1))
        topo = result.report.chapter(name).topology
        # Interior ranks have 4 neighbours, edges 3, corners 2.
        degrees = topo.degree_histogram()
        assert set(degrees) == {2, 3, 4}
        assert degrees[2] == 4  # four corners
        assert topo.is_symmetric("hits")

    def test_cg_butterfly_partners(self, big_machine):
        name, result = profile(big_machine, CG(16, "C", iterations=1))
        topo = result.report.chapter(name).topology
        cg = CG(16, "C")
        nprows, npcols = cg.layout()
        for (src, dst) in topo.cells:
            src_row, src_col = divmod(src, npcols)
            dst_row, dst_col = divmod(dst, npcols)
            same_row_xor = src_row == dst_row and bin(src_col ^ dst_col).count("1") == 1
            transpose = dst == cg.transpose_partner(src)
            assert same_row_xor or transpose, (src, dst)

    def test_eulermhd_grid_neighbours(self, big_machine):
        name, result = profile(big_machine, EulerMHD(16, grid=512, iterations=1))
        topo = result.report.chapter(name).topology
        px, py = EulerMHD(16, grid=512).layout()
        for (src, dst) in topo.cells:
            dx = abs(src % px - dst % px)
            dy = abs(src // px - dst // px)
            assert (dx, dy) in ((1, 0), (0, 1)), (src, dst)
        assert topo.is_symmetric("hits")

    def test_lu_send_hits_correlate_with_neighbours(self, big_machine):
        """Paper Fig. 18(a): Send count follows mesh neighbourhood."""
        name, result = profile(big_machine, LU(16, "C", iterations=1))
        density = result.report.chapter(name).density
        topo = result.report.chapter(name).topology
        hits = density.map_for("MPI_Send", "hits")
        for rank in range(16):
            out_degree = sum(1 for (s, _d) in topo.cells if s == rank)
            assert (hits[rank] > hits.min()) == (out_degree > 2) or out_degree == 2

    def test_eulermhd_checkpoint_posix_events(self, big_machine):
        kernel = EulerMHD(16, grid=512, iterations=4, checkpoint_every=2)
        name, result = profile(big_machine, kernel)
        density = result.report.chapter(name).density
        assert density.map_for("write", "hits").sum() == 16 * 2
        assert density.map_for("open", "hits").sum() == 16 * 2
        assert density.map_for("write", "size").sum() > 0
