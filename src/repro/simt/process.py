"""Generator-coroutine processes.

A process wraps a generator.  Each ``yield`` must produce a waitable
(:class:`~repro.simt.primitives.SimEvent` or another :class:`Process`); the
process sleeps until the waitable fires and is resumed with its value (or the
exception is thrown into the generator).  A process is itself a
:class:`SimEvent` that fires when the generator returns, so joining is just
``result = yield child``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.errors import SimulationError
from repro.simt.primitives import FAILED, PENDING, Interrupt, SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.simt.kernel import Kernel


class Process(SimEvent):
    """A running simulated process (also usable as a join event)."""

    __slots__ = ("generator", "_waiting_on", "alive_since")

    _is_process = True  # see SimEvent._is_process

    def __init__(self, kernel: "Kernel", generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you call the function instead of passing its generator?"
            )
        super().__init__(kernel, name=name or getattr(generator, "__name__", "proc"))
        self.generator = generator
        self._waiting_on: SimEvent | None = None
        self.alive_since = kernel.now
        # Bootstrap: start executing at the current simulated instant.
        init = SimEvent(kernel, name=f"{self.name}.start")
        init.add_callback(self._resume)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        return self.state == PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The interrupt detaches the process from whatever it was waiting on;
        the underlying event stays valid and may fire later with no effect on
        this process.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        if self._waiting_on is None:
            raise SimulationError(f"cannot interrupt {self.name}: not started/waiting")
        target = self._waiting_on
        self._waiting_on = None
        # Deliver via a fresh immediate event so ordering stays kernel-driven.
        kick = SimEvent(self.kernel, name=f"{self.name}.interrupt")
        kick.add_callback(lambda _ev: self._step(throw=Interrupt(cause)))
        kick.succeed()
        # Drop our callback edge from the original event if it has not fired.
        if target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass

    # -- kernel-side machinery ------------------------------------------------

    def _resume(self, event: SimEvent) -> None:
        if self._waiting_on is not event and self._waiting_on is not None:
            return  # stale wake-up after an interrupt
        self._waiting_on = None
        if event.state == FAILED:
            self._step(throw=event.value)
        else:
            self._step(send=event.value)

    def _step(self, send: Any = None, throw: BaseException | None = None) -> None:
        if not self.is_alive:
            return
        self.kernel._current = self
        try:
            if throw is not None:
                target = self.generator.throw(throw)
            else:
                target = self.generator.send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into joiners
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.kernel._record_crash(self, exc)
            self.fail(exc)
            return
        finally:
            self.kernel._current = None
        if not isinstance(target, SimEvent):
            err = SimulationError(
                f"process {self.name} yielded {type(target).__name__}, expected a waitable"
            )
            self.kernel._record_crash(self, err)
            self.fail(err)
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "alive" if self.is_alive else ("ok" if self.ok else "failed")
        return f"<Process {self.name} {status}>"
