"""The telemetry facade: registry of instruments + span tracer + summaries.

One :class:`Telemetry` instance is shared by a whole simulation (kernel,
streams, mapping, blackboard, analysis engine); its clock is bound to the
kernel's virtual time at construction of the :class:`~repro.simt.Kernel`, so
every metric and span is stamped in simulated seconds.  Standalone
components (e.g. the blackboard thread pool) fall back to the host
monotonic clock.

The disabled singleton :data:`NULL_TELEMETRY` hands out shared no-op
instruments; hot call sites additionally guard on ``tel.enabled`` so a
simulation without telemetry pays one attribute load and one branch per
instrumentation point.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.telemetry.export import EXPORTERS, chrome_trace_dict, jsonl_records
from repro.telemetry.hostprof import host_now
from repro.telemetry.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    HistogramMetric,
)
from repro.telemetry.spans import NULL_SPAN, Span

#: Chrome-trace process row of the simulation kernel itself.
KERNEL_PID = 0


def rank_pid(global_rank: int) -> int:
    """Trace process row of a simulated rank (offset past the kernel row)."""
    return global_rank + 1


class Telemetry:
    """Metrics registry + span tracer with pluggable export."""

    def __init__(self, enabled: bool = True, clock: Callable[[], float] | None = None):
        self.enabled = enabled
        # Fallback to the injectable hostprof clock (standalone components
        # without a kernel); bind_clock() points it at virtual time.
        self._clock = clock or host_now
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[tuple[str, int], Gauge] = {}
        self.histograms: dict[str, HistogramMetric] = {}
        self.spans: list[Span] = []
        self.instants: list[dict[str, Any]] = []
        self.track_names: dict[int, str] = {}
        self._open: dict[int, Span] = {}
        #: Attached FlowRegistry (causal pack tracing), when a session runs
        #: with provenance enabled; exporters draw flow arrows from it.
        self.flows = None

    def attach_flows(self, registry) -> None:
        """Bind a flow registry so exports include provenance flow events."""
        self.flows = registry

    # -- clock -------------------------------------------------------------------

    def now(self) -> float:
        return self._clock()

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the clock at a time source (the kernel binds virtual time)."""
        self._clock = clock

    # -- instruments -------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str, pid: int = KERNEL_PID) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        gauge = self.gauges.get((name, pid))
        if gauge is None:
            gauge = self.gauges[(name, pid)] = Gauge(name, self, pid=pid)
        return gauge

    def histogram(self, name: str) -> HistogramMetric:
        if not self.enabled:
            return NULL_HISTOGRAM
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = HistogramMetric(name)
        return histogram

    # -- tracing ------------------------------------------------------------------

    def span(
        self,
        name: str,
        pid: int = KERNEL_PID,
        tid: int = 0,
        cat: str = "",
        args: dict[str, Any] | None = None,
    ) -> Span:
        """Open a span at the current clock; caller ends it."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, pid=pid, tid=tid, cat=cat, args=args)

    def _open_span(self, span: Span) -> None:
        self._open[id(span)] = span

    def _record_span(self, span: Span) -> None:
        self._open.pop(id(span), None)
        self.spans.append(span)

    def open_spans(self) -> list[Span]:
        """Spans begun but not yet ended, in start order (mid-run view)."""
        return sorted(self._open.values(), key=lambda s: s.t0)

    def instant(
        self,
        name: str,
        pid: int = KERNEL_PID,
        cat: str = "",
        args: dict[str, Any] | None = None,
    ) -> None:
        """Record a zero-duration marker event."""
        if not self.enabled:
            return
        self.instants.append(
            {"name": name, "pid": pid, "cat": cat, "t": self.now(), "args": args}
        )

    def name_track(self, pid: int, label: str) -> None:
        """Label one trace process row (rank or kernel)."""
        if self.enabled:
            self.track_names[pid] = label

    # -- summaries ----------------------------------------------------------------

    def span_totals(self) -> dict[str, dict[str, float]]:
        """Per-span-name count and summed virtual duration."""
        totals: dict[str, dict[str, float]] = {}
        for span in self.spans:
            entry = totals.setdefault(span.name, {"count": 0, "total_s": 0.0})
            entry["count"] += 1
            # A span recorded without an end (exporter robustness path)
            # counts as zero-duration rather than crashing the summary.
            if span.t1 is not None:
                entry["total_s"] += span.t1 - span.t0
        return totals

    def headline(self) -> dict[str, Any]:
        """The key self-telemetry figures (bench JSON summary block)."""
        busy = self.counters.get("blackboard.worker_busy_s")
        idle = self.counters.get("blackboard.worker_idle_s")
        utilization = None
        if busy is not None and idle is not None and busy.value + idle.value > 0:
            utilization = busy.value / (busy.value + idle.value)
        events = self.counters.get("kernel.events_dispatched")
        streamed = self.counters.get("stream.bytes_written")
        return {
            "events_dispatched": events.value if events else 0,
            "bytes_streamed": streamed.value if streamed else 0,
            "worker_utilization": utilization,
            "spans_recorded": len(self.spans),
        }

    def summary(self) -> dict[str, Any]:
        """Everything reduced to plain dicts (report section, bench JSON)."""
        gauges: dict[str, dict[str, float]] = {}
        for gauge in self.gauges.values():
            # ``last`` sums the final values across tracks (total occupancy);
            # ``peak`` is the highest single-track value ever seen.
            entry = gauges.setdefault(gauge.name, {"last": 0.0, "peak": 0.0, "tracks": 0})
            entry["last"] += gauge.value
            entry["peak"] = max(entry["peak"], gauge.max)
            entry["tracks"] += 1
        return {
            "headline": self.headline(),
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": dict(sorted(gauges.items())),
            "histograms": {
                n: h.as_dict() for n, h in sorted(self.histograms.items())
            },
            "spans": dict(sorted(self.span_totals().items())),
        }

    # -- export --------------------------------------------------------------------

    def chrome_trace(self) -> dict[str, Any]:
        return chrome_trace_dict(self)

    def jsonl_records(self) -> list[dict[str, Any]]:
        return jsonl_records(self)

    def export(self, fmt: str, path: str) -> str:
        """Write the trace with the named exporter (``chrome`` / ``jsonl``)."""
        try:
            exporter = EXPORTERS[fmt]
        except KeyError:
            raise ValueError(
                f"unknown exporter {fmt!r}; choose from {sorted(EXPORTERS)}"
            ) from None
        return exporter.export(self, path)

    def write_chrome_trace(self, path: str) -> str:
        return self.export("chrome", path)

    def write_jsonl(self, path: str) -> str:
        return self.export("jsonl", path)

    # -- lifecycle -----------------------------------------------------------------

    def reset(self) -> None:
        """Drop all recorded data (instrument handles become stale)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.spans.clear()
        self.instants.clear()
        self.track_names.clear()
        self._open.clear()


#: Shared disabled instance: the default for every kernel/world/blackboard.
NULL_TELEMETRY = Telemetry(enabled=False)
