"""Command-line driver: regenerate any paper figure/table from a shell.

Usage::

    python -m repro.bench fig14 [--scale small|paper] [--seed N]
    python -m repro.bench fig15
    python -m repro.bench fig16
    python -m repro.bench fig17
    python -m repro.bench fig18
    python -m repro.bench bi
    python -m repro.bench trace-sizes
    python -m repro.bench fs-comparison
    python -m repro.bench all
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import (
    bi_bandwidth_table,
    fig14_stream_throughput,
    fig15_overhead,
    fig16_tool_comparison,
    fig17_topology,
    fig18_density,
    fs_comparison_table,
    trace_size_table,
)

_DRIVERS = {
    "fig14": fig14_stream_throughput,
    "fig15": fig15_overhead,
    "fig16": fig16_tool_comparison,
    "fig17": fig17_topology,
    "fig18": fig18_density,
    "bi": bi_bandwidth_table,
    "trace-sizes": trace_size_table,
    "fs-comparison": fs_comparison_table,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures and tables.",
    )
    parser.add_argument(
        "experiment", choices=sorted(_DRIVERS) + ["all"], help="which artefact to run"
    )
    parser.add_argument(
        "--scale",
        choices=("small", "paper"),
        default="small",
        help="parameter grid: reduced (default) or the paper's own",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument(
        "--csv", action="store_true", help="emit CSV instead of an aligned table"
    )
    args = parser.parse_args(argv)

    names = sorted(_DRIVERS) if args.experiment == "all" else [args.experiment]
    for name in names:
        driver = _DRIVERS[name]
        t0 = time.perf_counter()
        result = driver(scale=args.scale, seed=args.seed)
        elapsed = time.perf_counter() - t0
        table = result.table()
        print(table.to_csv() if args.csv else table.render())
        print(f"[{name}: regenerated in {elapsed:.1f}s at scale={args.scale}]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
