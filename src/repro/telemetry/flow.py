"""Flow analysis: latency waterfalls, stage attribution, watermarks.

Consumes the :class:`~repro.telemetry.provenance.FlowRegistry` built during
a run and reduces it to the three views that make an online pipeline
debuggable (Kesavan et al.; Haldar):

* **per-stage latency attribution** — count/mean/p50/p95/max per pipeline
  stage, globally and per writer; because stages telescope, per-flow stage
  sums equal end-to-end latency exactly;
* **pipeline watermarks** — per producer stream, how far the analyzer has
  caught up with what was sealed (lag of the last fully-analyzed pack);
* **critical path** — the slowest completed flow, decomposed by stage, i.e.
  the one pack whose journey bounds end-to-end pipeline freshness.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Iterable

from repro.telemetry.provenance import STAGES, FlowRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.provenance import FlowRegistry


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile over a pre-sorted sample list."""
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def stage_samples(
    records: Iterable[FlowRecord],
) -> dict[str, list[float]]:
    """Per-stage latency samples over every flow that reached the stage."""
    out: dict[str, list[float]] = {stage: [] for stage in STAGES}
    for record in records:
        for stage, dur in record.stages().items():
            out[stage].append(dur)
    return out


def _stats(samples: list[float]) -> dict[str, float]:
    ordered = sorted(samples)
    n = len(ordered)
    total = sum(ordered)
    return {
        "count": n,
        "total_s": total,
        "mean_s": total / n if n else 0.0,
        "p50_s": _percentile(ordered, 50),
        "p95_s": _percentile(ordered, 95),
        "max_s": ordered[-1] if n else 0.0,
    }


def stage_stats(records: Iterable[FlowRecord]) -> dict[str, dict[str, float]]:
    """Reduce :func:`stage_samples` to summary statistics per stage."""
    return {stage: _stats(samples) for stage, samples in stage_samples(records).items()}


def end_to_end_stats(records: Iterable[FlowRecord]) -> dict[str, float]:
    """Summary statistics of completed flows' seal-to-done latency."""
    return _stats([r.end_to_end_s for r in records if r.complete])


def waterfall(record: FlowRecord) -> list[tuple[str, float, float]]:
    """One flow as ``(stage, start time, duration)`` segments, in order."""
    out: list[tuple[str, float, float]] = []
    t = record.t_seal
    for stage, dur in record.stages().items():
        out.append((stage, t, dur))
        t += dur
    return out


def critical_path(records: Iterable[FlowRecord]) -> dict[str, Any] | None:
    """The slowest completed flow, decomposed by stage.

    Returns ``None`` when no flow completed.  ``share`` maps each stage to
    its fraction of the flow's end-to-end latency — the answer to "where
    does the worst pack's time go".
    """
    completed = [r for r in records if r.complete]
    if not completed:
        return None
    worst = max(completed, key=lambda r: (r.end_to_end_s, r.flow_id))
    total = worst.end_to_end_s
    stages = worst.stages()
    return {
        "flow_id": worst.flow_id,
        "origin_global": worst.origin_global,
        "consumer_global": worst.consumer_global,
        "total_s": total,
        "stages_s": stages,
        "share": {
            stage: (dur / total if total > 0 else 0.0) for stage, dur in stages.items()
        },
    }


def watermarks(records: Iterable[FlowRecord]) -> dict[str, dict[str, Any]]:
    """Per producer stream: how far analysis lags behind production.

    The *watermark* of a stream is the seal time of the latest pack the
    analyzer fully consumed; ``lag_s`` is that pack's own seal-to-done
    latency (the pipeline's freshness at the watermark) and ``max_lag_s``
    the worst over the stream's completed flows.  ``in_flight`` counts
    flows sealed but neither completed nor accounted as lost.
    """
    per_stream: dict[tuple[int, int], dict[str, Any]] = {}
    for record in records:
        key = (record.app_id, record.origin_rank)
        entry = per_stream.setdefault(
            key,
            {
                "sealed": 0,
                "completed": 0,
                "dropped": 0,
                "in_flight": 0,
                "watermark_t": None,
                "lag_s": None,
                "max_lag_s": 0.0,
            },
        )
        entry["sealed"] += 1
        if record.complete:
            entry["completed"] += 1
            lag = record.end_to_end_s
            entry["max_lag_s"] = max(entry["max_lag_s"], lag)
            if entry["watermark_t"] is None or record.t_seal > entry["watermark_t"]:
                entry["watermark_t"] = record.t_seal
                entry["lag_s"] = lag
        elif record.dropped is not None:
            entry["dropped"] += 1
        else:
            entry["in_flight"] += 1
    return {f"app{app}/rank{rank}": entry for (app, rank), entry in sorted(per_stream.items())}


def per_writer_stage_samples(
    records: Iterable[FlowRecord],
) -> dict[tuple[int, int], dict[str, list[float]]]:
    """Stage samples partitioned by producing (app, rank) stream.

    Concatenating the per-writer sample lists yields exactly the global
    :func:`stage_samples` (tested by the multi-writer suite).
    """
    out: dict[tuple[int, int], dict[str, list[float]]] = {}
    for record in records:
        per = out.setdefault(
            (record.app_id, record.origin_rank), {stage: [] for stage in STAGES}
        )
        for stage, dur in record.stages().items():
            per[stage].append(dur)
    return out


def loss_counts(records: Iterable[FlowRecord]) -> dict[str, int]:
    """Dropped flows bucketed by loss label (empty in healthy runs)."""
    out: dict[str, int] = {}
    for record in records:
        if record.dropped is not None:
            out[record.dropped] = out.get(record.dropped, 0) + 1
    return out


def summarize_flows(registry: "FlowRegistry") -> dict[str, Any]:
    """The full flow summary (``SessionResult.flows``, report, bench JSON)."""
    records = list(registry.records())
    completed = [r for r in records if r.complete]
    return {
        "sample_rate": registry.sample_rate,
        "flows_traced": len(records),
        "flows_completed": len(completed),
        "flows_dropped": sum(1 for r in records if r.dropped is not None),
        "losses": loss_counts(records),
        "retry_delay_s": sum(r.retry_delay_s for r in records),
        "stages": stage_stats(records),
        "end_to_end": end_to_end_stats(records),
        "watermarks": watermarks(records),
        "critical_path": critical_path(records),
    }
