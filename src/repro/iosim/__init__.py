"""Parallel file-system model.

The trace-based baseline tools of Figure 16 are bounded by two shared
resources of a Lustre-class file system: aggregate data bandwidth (striped
over OSTs, with a per-job fair share) and the metadata server (a serialized
queue that every open/create/close traverses).  Both are modelled here; the
SIONlib task-local-file aggregation layer used by Score-P is modelled in
:mod:`repro.iosim.sionlib`.
"""

from repro.iosim.filesystem import ParallelFS
from repro.iosim.file import SimFile
from repro.iosim.sionlib import SionFile

__all__ = ["ParallelFS", "SimFile", "SionFile"]
