"""Message envelopes and tag/source matching.

Every rank owns a :class:`Mailbox`.  Senders *deliver* an
:class:`Envelope` at send time (zero matching latency — payload timing is
carried separately by the envelope's arrival event); receivers *post*
receives.  Matching is FIFO per communicator with MPI wildcard semantics
(``ANY_SOURCE`` / ``ANY_TAG``), which preserves the MPI non-overtaking
guarantee because envelope delivery order follows simulated program order.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Any

from repro.errors import MPIError
from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG
from repro.mpi.status import Status
from repro.simt.primitives import SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.simt.kernel import Kernel

_seq_counter = itertools.count()


class Envelope:
    """One in-flight point-to-point message (metadata + optional payload)."""

    __slots__ = (
        "comm_id",
        "src",
        "tag",
        "nbytes",
        "payload",
        "seq",
        "arrival",
        "match_event",
        "matched",
    )

    def __init__(
        self,
        comm_id: int,
        src: int,
        tag: int,
        nbytes: int,
        payload: Any,
        arrival: SimEvent,
        match_event: SimEvent | None,
    ):
        self.comm_id = comm_id
        self.src = src
        self.tag = tag
        self.nbytes = nbytes
        self.payload = payload
        self.seq = next(_seq_counter)
        #: Event fired when the payload has fully arrived at the destination.
        self.arrival = arrival
        #: Event fired when a receive matches (rendezvous send completion).
        self.match_event = match_event
        self.matched = False


class PostedRecv:
    """A receive waiting for a matching envelope."""

    __slots__ = ("src", "tag", "completion", "o_recv")

    def __init__(self, src: int, tag: int, completion: SimEvent, o_recv: float):
        self.src = src
        self.tag = tag
        self.completion = completion
        self.o_recv = o_recv

    def matches(self, env: Envelope) -> bool:
        if self.src != ANY_SOURCE and self.src != env.src:
            return False
        if self.tag != ANY_TAG and self.tag != env.tag:
            return False
        return True


class Mailbox:
    """Per-rank matching structure, segregated by communicator id."""

    def __init__(self, kernel: "Kernel", owner_rank: int):
        self.kernel = kernel
        self.owner_rank = owner_rank
        self._unexpected: dict[int, deque[Envelope]] = {}
        self._posted: dict[int, deque[PostedRecv]] = {}
        self.delivered = 0
        self.unexpected_peak = 0

    # -- sender side --------------------------------------------------------------

    def deliver(self, env: Envelope) -> None:
        """Offer an envelope for matching (called at send time)."""
        self.delivered += 1
        posted = self._posted.get(env.comm_id)
        if posted:
            for i, recv in enumerate(posted):
                if recv.matches(env):
                    del posted[i]
                    self._complete(recv, env)
                    return
        queue = self._unexpected.setdefault(env.comm_id, deque())
        queue.append(env)
        total = sum(len(q) for q in self._unexpected.values())
        if total > self.unexpected_peak:
            self.unexpected_peak = total

    # -- receiver side -------------------------------------------------------------

    def post(self, comm_id: int, src: int, tag: int, o_recv: float) -> SimEvent:
        """Post a receive; returns its completion event (value = Status)."""
        completion = SimEvent(self.kernel, name=f"recv@r{self.owner_rank}")
        recv = PostedRecv(src, tag, completion, o_recv)
        queue = self._unexpected.get(comm_id)
        if queue:
            for i, env in enumerate(queue):
                if recv.matches(env):
                    del queue[i]
                    self._complete(recv, env)
                    return completion
        self._posted.setdefault(comm_id, deque()).append(recv)
        return completion

    def probe(self, comm_id: int, src: int, tag: int) -> Envelope | None:
        """Non-destructive match against the unexpected queue (``MPI_Iprobe``)."""
        queue = self._unexpected.get(comm_id)
        if not queue:
            return None
        template = PostedRecv(src, tag, None, 0.0)  # type: ignore[arg-type]
        for env in queue:
            if template.matches(env):
                return env
        return None

    # -- internals -------------------------------------------------------------------

    def _complete(self, recv: PostedRecv, env: Envelope) -> None:
        if env.matched:
            raise MPIError("envelope matched twice (matching bug)")
        env.matched = True
        if env.match_event is not None and not env.match_event.triggered:
            env.match_event.succeed()

        def _arrived(_ev: SimEvent) -> None:
            status = Status(
                source=env.src, tag=env.tag, nbytes=env.nbytes, payload=env.payload
            )
            if recv.o_recv > 0:
                tick = self.kernel.timeout(recv.o_recv)
                tick.add_callback(lambda _t: recv.completion.succeed(status))
            else:
                recv.completion.succeed(status)

        env.arrival.add_callback(_arrived)

    def pending_counts(self) -> tuple[int, int]:
        """(unexpected envelopes, posted receives) across communicators."""
        unexpected = sum(len(q) for q in self._unexpected.values())
        posted = sum(len(q) for q in self._posted.values())
        return unexpected, posted
