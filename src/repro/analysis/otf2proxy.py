"""Selective trace export — the paper's announced OTF2 IO-proxy module.

Section VI: "we are already working on the implementation of a module,
acting as an IO proxy, to generate selective traces in the OTF2 format in
order to combine our analysis with existing tools such as Vampir".

This module implements that design point: an analysis-side filter that
selects a *subset* of the event stream (by call name, rank range and time
window) and serializes it into a compact OTF2-like container.  The point of
selectivity is the economics: a full trace is what the online coupling
avoids, but a small targeted trace (one misbehaving rank, one time window)
re-enables timeline tools at a fraction of the volume.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError, ReproError
from repro.instrument.events import CALL_IDS, EVENT_DTYPE, EVENT_RECORD_SIZE

_MAGIC = 0x53545243  # "STRC"
_HEADER_FMT = "<IHHI"
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)


@dataclass(frozen=True)
class SelectionConfig:
    """What the proxy keeps.  ``None`` means 'no restriction'."""

    calls: frozenset[str] | None = None
    rank_lo: int = 0
    rank_hi: int | None = None  # exclusive; None = app size
    t_min: float = 0.0
    t_max: float = float("inf")

    def __post_init__(self) -> None:
        if self.calls is not None:
            unknown = set(self.calls) - set(CALL_IDS)
            if unknown:
                raise ConfigError(f"unknown call names in selection: {sorted(unknown)}")
        if self.rank_lo < 0:
            raise ConfigError("rank_lo must be >= 0")
        if self.rank_hi is not None and self.rank_hi <= self.rank_lo:
            raise ConfigError("rank_hi must exceed rank_lo")
        if self.t_max < self.t_min:
            raise ConfigError("t_max must be >= t_min")

    def call_ids(self) -> np.ndarray | None:
        if self.calls is None:
            return None
        return np.array(sorted(CALL_IDS[c] for c in self.calls), dtype="<u2")


class OTF2Proxy:
    """Mergeable selective-trace collector (one per application level)."""

    #: default: keep only point-to-point traffic of every rank
    DEFAULT_CALLS = frozenset(
        {
            "MPI_Send",
            "MPI_Isend",
            "MPI_Sendrecv",
            "MPI_Recv",
            "MPI_Irecv",
            "MPI_Wait",
            "MPI_Waitall",
        }
    )

    def __init__(self, app: str, app_size: int, config: SelectionConfig | None = None):
        if app_size <= 0:
            raise ReproError(f"app_size must be > 0, got {app_size}")
        self.app = app
        self.app_size = app_size
        self.config = config or SelectionConfig(calls=self.DEFAULT_CALLS)
        self._chunks: list[tuple[int, np.ndarray]] = []  # (rank, selected events)
        self.events_seen = 0
        self.events_selected = 0

    # -- accumulation ----------------------------------------------------------------

    def update(self, rank: int, events: np.ndarray) -> None:
        if not (0 <= rank < self.app_size):
            raise ReproError(f"batch from rank {rank} outside app of {self.app_size}")
        self.events_seen += len(events)
        cfg = self.config
        hi = cfg.rank_hi if cfg.rank_hi is not None else self.app_size
        if not (cfg.rank_lo <= rank < hi):
            return
        mask = (events["t_start"] >= cfg.t_min) & (events["t_end"] <= cfg.t_max)
        ids = cfg.call_ids()
        if ids is not None:
            mask &= np.isin(events["call"], ids)
        if not mask.any():
            return
        selected = events[mask].copy()
        self._chunks.append((rank, selected))
        self.events_selected += len(selected)

    def merge(self, other: "OTF2Proxy") -> None:
        if other.app != self.app or other.app_size != self.app_size:
            raise ReproError("merging proxies of different applications")
        self._chunks.extend(other._chunks)
        self.events_seen += other.events_seen
        self.events_selected += other.events_selected

    # -- output ----------------------------------------------------------------------

    @property
    def selectivity(self) -> float:
        """Fraction of the stream retained (the volume the proxy re-pays)."""
        if self.events_seen == 0:
            return 0.0
        return self.events_selected / self.events_seen

    def trace_bytes(self) -> int:
        """Size of the serialized selective trace."""
        return _HEADER_SIZE + sum(
            8 + len(events) * EVENT_RECORD_SIZE for _r, events in self._chunks
        )

    def serialize(self) -> bytes:
        """Produce the selective trace container (time-sorted per rank)."""
        parts = [struct.pack(_HEADER_FMT, _MAGIC, 1, len(self._chunks) & 0xFFFF, self.events_selected)]
        for rank, events in sorted(self._chunks, key=lambda c: (c[0], c[1]["t_start"][0] if len(c[1]) else 0.0)):
            parts.append(struct.pack("<II", rank, len(events)))
            parts.append(events.tobytes())
        return b"".join(parts)

    @staticmethod
    def deserialize(blob: bytes) -> dict[int, np.ndarray]:
        """Read a selective trace back: rank -> event array."""
        if len(blob) < _HEADER_SIZE:
            raise ReproError("selective trace shorter than header")
        magic, _version, _nchunks, _total = struct.unpack_from(_HEADER_FMT, blob, 0)
        if magic != _MAGIC:
            raise ReproError("bad selective-trace magic")
        out: dict[int, list[np.ndarray]] = {}
        offset = _HEADER_SIZE
        view = memoryview(blob)
        while offset < len(blob):
            rank, count = struct.unpack_from("<II", view, offset)
            offset += 8
            nbytes = count * EVENT_RECORD_SIZE
            events = np.frombuffer(view[offset : offset + nbytes], dtype=EVENT_DTYPE)
            if len(events) != count:
                raise ReproError("truncated selective trace chunk")
            out.setdefault(rank, []).append(events)
            offset += nbytes
        return {rank: np.concatenate(chunks) for rank, chunks in out.items()}

    def write_through(self, fs, path: str = "selective.otf2"):
        """Generator: write the serialized trace through the FS model."""
        from repro.iosim.file import SimFile

        f = SimFile(fs, path)
        yield from f.open()
        yield from f.write(self.trace_bytes())
        yield from f.close()
        return f.size
