"""MPMD job launcher.

Mirrors launching ``mpirun -n A prog1 : -n B prog2`` under Slurm: programs
are placed as contiguous partitions over the allocation.  Without
virtualization every program shares the single real ``MPI_COMM_WORLD`` —
which is exactly why the paper needs VMPI: the
:class:`~repro.vmpi.virtualization.VirtualizedLauncher` subclass remaps each
program's world to its partition sub-communicator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigError, MPIError
from repro.mpi.communicator import Comm
from repro.mpi.costmodel import CostModel
from repro.mpi.world import PartitionInfo, ProgramAPI, RankContext, World
from repro.network.machine import MachineSpec, TERA100
from repro.telemetry import Telemetry, rank_pid


@dataclass
class ProgramSpec:
    """One program of the MPMD job."""

    name: str
    nprocs: int
    main: Callable  # main(mpi, **args) -> generator
    args: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nprocs <= 0:
            raise ConfigError(f"program {self.name!r}: nprocs must be > 0")
        if not callable(self.main):
            raise ConfigError(f"program {self.name!r}: main must be callable")


class MPMDLauncher:
    """Builds and launches a multi-program world."""

    def __init__(
        self,
        machine: MachineSpec = TERA100,
        *,
        seed: int = 0,
        cost: CostModel | None = None,
        telemetry: Telemetry | None = None,
    ):
        self.machine = machine
        self.seed = seed
        self.cost = cost
        self.telemetry = telemetry
        self.programs: list[ProgramSpec] = []
        self._launched = False

    def add_program(self, name: str, nprocs: int, main: Callable, **args: Any) -> ProgramSpec:
        """Register a program; launch order defines partition order."""
        if any(p.name == name for p in self.programs):
            raise ConfigError(f"duplicate program name {name!r}")
        spec = ProgramSpec(name=name, nprocs=nprocs, main=main, args=args)
        self.programs.append(spec)
        return spec

    @property
    def total_ranks(self) -> int:
        return sum(p.nprocs for p in self.programs)

    def launch(self) -> World:
        """Create the world, spawn every rank, return the (running) world."""
        if self._launched:
            raise ConfigError("launcher already used; create a new one")
        if not self.programs:
            raise ConfigError("no programs added")
        self._launched = True
        world = World(
            self.machine,
            self.total_ranks,
            seed=self.seed,
            cost=self.cost,
            telemetry=self.telemetry,
        )
        for spec in self.programs:
            world.add_partition(spec.name, spec.nprocs)
        world.universe_group = world.intern_group(
            tuple(range(self.total_ranks)), "MPI_COMM_WORLD"
        )
        for partition, spec in zip(world.partitions, self.programs):
            for global_rank in partition.global_ranks:
                ctx = RankContext(world, global_rank, partition)
                world.ranks.append(ctx)
                if world.telemetry.enabled:
                    local = global_rank - partition.first_global_rank
                    world.telemetry.name_track(
                        rank_pid(global_rank), f"{partition.name}[{local}]"
                    )
        # Second pass: build APIs and spawn (ranks list must be complete first).
        for partition, spec in zip(world.partitions, self.programs):
            for global_rank in partition.global_ranks:
                ctx = world.ranks[global_rank]
                api = self._make_api(world, ctx, partition)
                ctx.process = world.kernel.spawn(
                    _rank_wrapper(ctx, api, spec),
                    name=f"{spec.name}[{global_rank - partition.first_global_rank}]",
                )
        return world

    def run(self) -> World:
        """Convenience: launch and run to completion."""
        world = self.launch()
        world.run()
        return world

    def _make_api(self, world: World, ctx: RankContext, partition: PartitionInfo) -> ProgramAPI:
        """Plain MPMD semantics: every program shares the real world comm."""
        universe = Comm(world.universe_group, ctx.global_rank, ctx)
        return ProgramAPI(ctx, comm_world=universe)


def _rank_wrapper(ctx: RankContext, api: ProgramAPI, spec: ProgramSpec):
    """Top-level generator of a rank: runs main, checks lifecycle discipline."""
    result = yield from spec.main(api, **spec.args)
    if ctx.t_init is None:
        raise MPIError(f"{spec.name} rank {ctx.global_rank}: never called init()")
    if ctx.t_finalize is None:
        raise MPIError(f"{spec.name} rank {ctx.global_rank}: returned without finalize()")
    return result
