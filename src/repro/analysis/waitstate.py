"""Wait-state analysis (the paper's work-in-progress module, Sec. IV-D).

A preliminary single-engine version of the distributed wait-state analysis
the paper announces as future work: it attributes the time an application
spends inside blocking/completion calls (``MPI_Wait``, ``MPI_Waitall``,
``MPI_Recv``, collectives) per rank, computes the waiting fraction of each
rank's window, and flags *late-sender-like* imbalance: ranks whose waiting
time exceeds the application mean by a configurable factor.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.instrument.events import CALL_IDS, COLLECTIVE_CALLS, WAIT_CALLS

_BLOCKING_CALLS = frozenset(WAIT_CALLS) | {CALL_IDS["MPI_Recv"]}


class WaitState:
    """Mergeable per-rank waiting-time attribution."""

    def __init__(self, app: str, app_size: int):
        if app_size <= 0:
            raise ReproError(f"app_size must be > 0, got {app_size}")
        self.app = app
        self.app_size = app_size
        self.wait_time = np.zeros(app_size)
        self.collective_time = np.zeros(app_size)
        self.window_t0 = np.full(app_size, np.inf)
        self.window_t1 = np.zeros(app_size)

    def update(self, rank: int, events: np.ndarray) -> None:
        if not (0 <= rank < self.app_size):
            raise ReproError(f"batch from rank {rank} outside app of {self.app_size}")
        if len(events) == 0:
            return
        durations = events["t_end"] - events["t_start"]
        blocking = np.isin(
            events["call"], np.array(sorted(_BLOCKING_CALLS), dtype=events["call"].dtype)
        )
        collective = np.isin(
            events["call"], np.array(sorted(COLLECTIVE_CALLS), dtype=events["call"].dtype)
        )
        self.wait_time[rank] += float(durations[blocking].sum())
        self.collective_time[rank] += float(durations[collective].sum())
        self.window_t0[rank] = min(self.window_t0[rank], float(events["t_start"].min()))
        self.window_t1[rank] = max(self.window_t1[rank], float(events["t_end"].max()))

    def merge(self, other: "WaitState") -> None:
        if other.app != self.app or other.app_size != self.app_size:
            raise ReproError("merging wait states of different applications")
        self.wait_time += other.wait_time
        self.collective_time += other.collective_time
        np.minimum(self.window_t0, other.window_t0, out=self.window_t0)
        np.maximum(self.window_t1, other.window_t1, out=self.window_t1)

    # -- results ----------------------------------------------------------------------

    def waiting_fraction(self) -> np.ndarray:
        """Per-rank fraction of the observation window spent waiting."""
        spans = self.window_t1 - np.where(np.isfinite(self.window_t0), self.window_t0, 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(spans > 0, self.wait_time / spans, 0.0)
        return frac.clip(0.0, 1.0)

    def late_ranks(self, factor: float = 1.5) -> list[int]:
        """Ranks whose waiting time exceeds ``factor`` x the app mean."""
        if factor <= 0:
            raise ReproError(f"factor must be > 0, got {factor}")
        mean = self.wait_time.mean()
        if mean == 0:
            return []
        return [int(r) for r in np.nonzero(self.wait_time > factor * mean)[0]]

    def summary(self) -> dict[str, float]:
        frac = self.waiting_fraction()
        return {
            "wait_time_total": float(self.wait_time.sum()),
            "wait_time_max": float(self.wait_time.max()),
            "wait_fraction_mean": float(frac.mean()),
            "wait_fraction_max": float(frac.max()),
            "collective_time_total": float(self.collective_time.sum()),
            "late_rank_count": float(len(self.late_ranks())),
        }
