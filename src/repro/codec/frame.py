"""The versioned pack frame: one header plus typed, length-prefixed sections.

Wire layout (all little-endian)::

    u32 magic "EVF2" | u16 version | u16 app_id | u32 rank | u32 count |
    u16 nsections | u16 flags
    -- then `nsections` sections, each:
    u16 type | u16 reserved | u32 length | <length bytes>

Section types::

    1  PAYLOAD     event records, possibly transformed by a codec chain
    2  CRC         u32 crc32 over every frame byte before this section's header
    3  PROVENANCE  u64 flow_id | u16 origin_app | u32 origin_rank | f64 t_seal
    4  CODEC       UTF-8 codec-chain spec, e.g. "delta+dict+zlib"
    5  SAMPLING    u32 events dropped by the adaptive sampler for this pack

The writer always emits the CRC section last so it covers everything in
front of it; sections a reader does not recognise are skipped (and
preserved on re-emit), making the format forward-compatible.  ``count``
is the number of event records the payload decodes to — after sampling,
before any lossless transform.

Frame parsing lives *only* here.  The packer, the stream layer, fault
tampering and analyzer ingest all share this implementation; there is no
trailer sniffing anywhere else.

Content accounting: the modelled byte volume of a pack is
:func:`frame_content_size` — a fixed 16-byte logical header plus 40 bytes
per record, matching the original v1 layout exactly.  Framing overhead,
checksums, provenance stamps and codec output sizes are all
accounting-exempt, so the integrity/observability envelope never shifts
simulated figures and the identity chain stays bit-identical to the
pre-frame format's timing.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

from repro.errors import (
    ChecksumError,
    FrameTruncatedError,
    PackFormatError,
    SectionLengthError,
)
from repro.telemetry import hostprof

FRAME_MAGIC = 0x45564632  # "EVF2"
FRAME_VERSION = 2
_HEADER_FMT = "<IHHIIHH"  # magic, version, app_id, rank, count, nsections, flags
FRAME_HEADER_SIZE = struct.calcsize(_HEADER_FMT)
assert FRAME_HEADER_SIZE == 20
_SECTION_FMT = "<HHI"  # type, reserved, length
SECTION_HEADER_SIZE = struct.calcsize(_SECTION_FMT)
assert SECTION_HEADER_SIZE == 8

SEC_PAYLOAD = 1
SEC_CRC = 2
SEC_PROVENANCE = 3
SEC_CODEC = 4
SEC_SAMPLING = 5

_SECTION_NAMES = {
    SEC_PAYLOAD: "PAYLOAD",
    SEC_CRC: "CRC",
    SEC_PROVENANCE: "PROVENANCE",
    SEC_CODEC: "CODEC",
    SEC_SAMPLING: "SAMPLING",
}

_PROV_FMT = "<QHId"  # flow_id, origin_app, origin_rank, t_seal
PROVENANCE_BODY_SIZE = struct.calcsize(_PROV_FMT)
assert PROVENANCE_BODY_SIZE == 22
_CRC_FMT = "<I"
CRC_BODY_SIZE = 4
_SAMPLING_FMT = "<I"
SAMPLING_BODY_SIZE = 4

# Modelled content accounting (v1-compatible): 16-byte logical header plus
# 40 bytes per record.  These are *accounting* constants, not wire offsets;
# instrument.events asserts its record size matches CONTENT_RECORD_SIZE.
CONTENT_HEADER_SIZE = 16
CONTENT_RECORD_SIZE = 40


def section_name(kind: int) -> str:
    """Human-readable name for a section type (``UNKNOWN(n)`` otherwise)."""
    return _SECTION_NAMES.get(kind, f"UNKNOWN({kind})")


@dataclass(frozen=True)
class PackProvenance:
    """The compact flow stamp carried by a provenance-traced pack."""

    flow_id: int
    app_id: int
    rank: int
    t_seal: float


@dataclass
class Frame:
    """A parsed (or under-construction) pack frame.

    ``sections`` holds every non-CRC section in wire order; the CRC is
    recomputed on :meth:`to_bytes`, so round-tripping a frame through
    parse → edit → emit always yields a valid checksum.  ``crc_ok`` /
    ``stored_crc`` report what :func:`parse_frame` found on the wire
    (``None`` for a frame built in memory).
    """

    app_id: int
    rank: int
    count: int
    flags: int = 0
    sections: list[tuple[int, bytes]] = field(default_factory=list)
    stored_crc: int | None = None
    crc_ok: bool | None = None
    #: Body byte offsets aligned with ``sections`` — filled by
    #: :func:`parse_frame` only (empty for frames built in memory), so
    #: tooling can address wire bytes without a second format walk.
    offsets: list[int] = field(default_factory=list)

    def section(self, kind: int) -> bytes | None:
        """Body of the first section of ``kind``, or ``None``."""
        for stype, body in self.sections:
            if stype == kind:
                return body
        return None

    @property
    def payload(self) -> bytes:
        return self.section(SEC_PAYLOAD) or b""

    @property
    def codec(self) -> str:
        """The codec-chain spec this payload was encoded with ("" = identity)."""
        body = self.section(SEC_CODEC)
        if body is None:
            return ""
        try:
            return body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SectionLengthError(f"codec descriptor is not UTF-8: {exc}") from exc

    @property
    def provenance(self) -> PackProvenance | None:
        body = self.section(SEC_PROVENANCE)
        if body is None:
            return None
        flow_id, app_id, rank, t_seal = struct.unpack(_PROV_FMT, body)
        return PackProvenance(flow_id=flow_id, app_id=app_id, rank=rank, t_seal=t_seal)

    @property
    def events_dropped(self) -> int:
        """Events the adaptive sampler dropped while sealing this pack."""
        body = self.section(SEC_SAMPLING)
        if body is None:
            return 0
        return struct.unpack(_SAMPLING_FMT, body)[0]

    def replace_section(self, kind: int, body: bytes) -> None:
        """Replace the first section of ``kind`` in place, or append one."""
        for i, (stype, _) in enumerate(self.sections):
            if stype == kind:
                self.sections[i] = (kind, bytes(body))
                return
        self.sections.append((kind, bytes(body)))

    def drop_section(self, kind: int) -> None:
        """Remove every section of ``kind`` (no-op when absent)."""
        self.sections = [(t, b) for t, b in self.sections if t != kind]

    def with_provenance(self, prov: PackProvenance) -> "Frame":
        self.replace_section(
            SEC_PROVENANCE,
            struct.pack(_PROV_FMT, prov.flow_id, prov.app_id, prov.rank, prov.t_seal),
        )
        return self

    @property
    def content_size(self) -> int:
        """Modelled content bytes: logical header + fixed-width records."""
        return CONTENT_HEADER_SIZE + self.count * CONTENT_RECORD_SIZE

    def to_bytes(self) -> bytes:
        """Serialize, appending a freshly computed CRC section last."""
        parts = [
            struct.pack(
                _HEADER_FMT,
                FRAME_MAGIC,
                FRAME_VERSION,
                self.app_id,
                self.rank,
                self.count,
                len(self.sections) + 1,  # + the CRC section
                self.flags,
            )
        ]
        for stype, body in self.sections:
            parts.append(struct.pack(_SECTION_FMT, stype, 0, len(body)))
            parts.append(body)
        covered = b"".join(parts)
        crc = zlib.crc32(covered)
        return covered + struct.pack(
            _SECTION_FMT, SEC_CRC, 0, CRC_BODY_SIZE
        ) + struct.pack(_CRC_FMT, crc)


def build_frame(
    app_id: int,
    rank: int,
    count: int,
    payload: bytes,
    codec: str = "",
    provenance: PackProvenance | None = None,
    events_dropped: int = 0,
    flags: int = 0,
) -> bytes:
    """Serialize one frame with the canonical section order.

    Sections are written PAYLOAD, CODEC?, SAMPLING?, PROVENANCE?, CRC —
    optional sections appear only when non-trivial, so a plain
    identity-chain pack carries exactly payload + CRC.
    """
    if not (0 <= app_id < 2**16):
        raise PackFormatError(f"app_id {app_id} outside u16")
    if not (0 <= rank < 2**32):
        raise PackFormatError(f"rank {rank} outside u32")
    hp = hostprof.ACTIVE
    t_host = hp.now() if hp.enabled else 0.0
    frame = Frame(app_id=app_id, rank=rank, count=count, flags=flags)
    frame.sections.append((SEC_PAYLOAD, bytes(payload)))
    if codec:
        frame.sections.append((SEC_CODEC, codec.encode("utf-8")))
    if events_dropped:
        frame.sections.append(
            (SEC_SAMPLING, struct.pack(_SAMPLING_FMT, events_dropped))
        )
    if provenance is not None:
        frame.with_provenance(provenance)
    blob = frame.to_bytes()
    if hp.enabled:
        hp.timer("frame.emit").add(hp.now() - t_host, nbytes=len(blob))
    return blob


def parse_frame(blob, verify: bool = True) -> Frame:
    """Parse one frame; the single wire-format reader in the codebase.

    With ``verify=True`` (the default) a missing or mismatching CRC
    section raises :class:`ChecksumError`; with ``verify=False`` the
    checksum outcome is only recorded on ``Frame.crc_ok`` so diagnostic
    tools can inspect damaged frames.  Unknown section types are kept in
    ``Frame.sections`` untouched (forward compatibility: they survive a
    parse → emit round trip).
    """
    hp = hostprof.ACTIVE
    t_host = hp.now() if hp.enabled else 0.0
    try:
        view = memoryview(blob)
    except TypeError:
        raise PackFormatError(f"pack payload is not bytes: {type(blob).__name__}")
    total = len(view)
    if total < FRAME_HEADER_SIZE:
        raise FrameTruncatedError(
            f"frame of {total} bytes shorter than {FRAME_HEADER_SIZE}-byte header"
        )
    magic, version, app_id, rank, count, nsections, flags = struct.unpack_from(
        _HEADER_FMT, view, 0
    )
    if magic != FRAME_MAGIC:
        raise PackFormatError(f"bad pack magic {magic:#010x}")
    if version != FRAME_VERSION:
        raise PackFormatError(f"unsupported pack version {version}")
    frame = Frame(app_id=app_id, rank=rank, count=count, flags=flags)
    offset = FRAME_HEADER_SIZE
    crc_covered_end: int | None = None
    for _ in range(nsections):
        if offset + SECTION_HEADER_SIZE > total:
            raise FrameTruncatedError(
                f"frame ended at byte {total} inside a section header at {offset}"
            )
        stype, _reserved, length = struct.unpack_from(_SECTION_FMT, view, offset)
        body_start = offset + SECTION_HEADER_SIZE
        if body_start + length > total:
            raise FrameTruncatedError(
                f"section {section_name(stype)} declares {length} bytes at offset "
                f"{body_start} but frame has {total}"
            )
        body = bytes(view[body_start : body_start + length])
        if stype == SEC_CRC:
            if length != CRC_BODY_SIZE:
                raise SectionLengthError(
                    f"CRC section of {length} bytes, expected {CRC_BODY_SIZE}"
                )
            if crc_covered_end is None:  # first CRC wins; covers bytes before it
                crc_covered_end = offset
                frame.stored_crc = struct.unpack(_CRC_FMT, body)[0]
        else:
            if stype == SEC_PROVENANCE and length != PROVENANCE_BODY_SIZE:
                raise SectionLengthError(
                    f"provenance section of {length} bytes, "
                    f"expected {PROVENANCE_BODY_SIZE}"
                )
            if stype == SEC_SAMPLING and length != SAMPLING_BODY_SIZE:
                raise SectionLengthError(
                    f"sampling section of {length} bytes, expected {SAMPLING_BODY_SIZE}"
                )
            frame.sections.append((stype, body))
            frame.offsets.append(body_start)
        offset = body_start + length
    if offset != total:
        raise SectionLengthError(
            f"{total - offset} trailing bytes after the {nsections} declared sections"
        )
    if crc_covered_end is not None:
        frame.crc_ok = zlib.crc32(view[:crc_covered_end]) == frame.stored_crc
    if verify:
        if frame.stored_crc is None:
            raise ChecksumError("frame has no CRC section")
        if not frame.crc_ok:
            computed = zlib.crc32(view[:crc_covered_end])
            raise ChecksumError(
                f"pack checksum mismatch: stored {frame.stored_crc:#010x}, "
                f"computed {computed:#010x}"
            )
    if hp.enabled:
        hp.timer("frame.parse").add(hp.now() - t_host, nbytes=total)
    return frame


@dataclass(frozen=True)
class FrameInfo:
    """Cheap header peek: everything knowable without walking sections."""

    app_id: int
    rank: int
    count: int
    nsections: int
    flags: int

    @property
    def content_size(self) -> int:
        return CONTENT_HEADER_SIZE + self.count * CONTENT_RECORD_SIZE


def peek_header(blob) -> FrameInfo:
    """Decode just the 20-byte frame header (no section walk, no CRC)."""
    try:
        view = memoryview(blob)
    except TypeError:
        raise PackFormatError(f"pack payload is not bytes: {type(blob).__name__}")
    if len(view) < FRAME_HEADER_SIZE:
        raise FrameTruncatedError(
            f"frame of {len(view)} bytes shorter than {FRAME_HEADER_SIZE}-byte header"
        )
    magic, version, app_id, rank, count, nsections, flags = struct.unpack_from(
        _HEADER_FMT, view, 0
    )
    if magic != FRAME_MAGIC:
        raise PackFormatError(f"bad pack magic {magic:#010x}")
    if version != FRAME_VERSION:
        raise PackFormatError(f"unsupported pack version {version}")
    return FrameInfo(
        app_id=app_id, rank=rank, count=count, nsections=nsections, flags=flags
    )


def frame_content_size(blob) -> int:
    """Modelled content bytes of a serialized frame (header peek only)."""
    return peek_header(blob).content_size


def peek_provenance(blob) -> PackProvenance | None:
    """Read a pack's provenance stamp without touching the payload.

    Returns ``None`` for anything that is not a provenance-stamped frame —
    non-bytes payloads, damaged frames, or frames without the section — so
    hot paths can call it unconditionally on whatever travels a stream.
    """
    try:
        return parse_frame(blob, verify=False).provenance
    except PackFormatError:
        return None
