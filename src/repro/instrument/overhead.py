"""Instrumentation cost model.

These constants set how expensive measuring is — the quantity Figures 15/16
are about.  Values are calibrated against the paper's own numbers and the
usual magnitudes of PMPI-based tools:

* ``per_event_cpu`` — capture one event: timestamping, reading the call
  context, appending the struct to the current pack.  Direct PMPI
  instrumentation costs range 0.5–5 us/call in the literature; the value is
  calibrated so the most instrumentation-intensive point of the paper's
  grid (SP.C at 900 cores, ~1600 events per rank per step) stays inside the
  paper's "all overheads below 25 %" envelope of Figure 15 (measured ~22 %
  at 1.1 us; 1.8 us overshoots to ~36 %).
* ``volume_multiplier`` — ratio of *modelled* stream volume to the 40-byte
  core records, accounting for the call context shipped with each event.
  Calibration: the paper reports online volumes ~2.9x larger than Score-P's
  OTF2 traces of the same runs (923.93 MB vs 313 MB at 256 procs; 333.22 GB
  vs 116 GB at 4096).  With OTF2's delta-encoded events at ~28 B/event
  (:data:`repro.baselines.tracer.OTF2_BYTES_PER_EVENT`), 2.0 x 40 B = 80 B
  per online event reproduces that ratio, and yields
  ``Bi(SP.D @ 900) ~ 0.32 GB/s`` against the paper's 334.99 MB/s.
* ``pack_flush_cpu`` — bookkeeping to seal a block and hand it to the
  stream (excluding the copy, which the stream itself charges).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codec.stages import build_chain
from repro.errors import ConfigError, ReproError


@dataclass(frozen=True)
class InstrumentationCost:
    """Tunable costs of the online instrumentation chain."""

    per_event_cpu: float = 1.1e-6
    pack_flush_cpu: float = 12.0e-6
    volume_multiplier: float = 2.0
    block_size: int = 1024 * 1024
    na_buffers: int = 3
    # Failure-tolerance knobs, forwarded verbatim to the write stream
    # (see VMPIStream): None write_timeout keeps the classic blocking path.
    write_timeout: float | None = None
    max_retries: int = 3
    backoff_factor: float = 2.0
    overflow: str = "block"
    #: Reduction-chain spec applied at pack seal ("" = identity, e.g.
    #: "delta+dict+zlib"; see :mod:`repro.codec.stages`).
    reduction: str = ""
    #: CPU seconds charged per raw record byte per unit stage cost weight
    #: when encoding a pack (~0.6 ns/B ≈ 1.7 GB/s through a full chain);
    #: zero codec CPU is charged while ``reduction`` is empty.
    codec_per_byte_cpu: float = 0.6e-9

    def __post_init__(self) -> None:
        if self.per_event_cpu < 0 or self.pack_flush_cpu < 0:
            raise ConfigError("instrumentation CPU costs must be >= 0")
        if self.volume_multiplier < 1.0:
            raise ConfigError("volume_multiplier must be >= 1 (context adds bytes)")
        if self.block_size < 4096:
            raise ConfigError("block_size must be >= 4096")
        if self.na_buffers < 1:
            raise ConfigError("na_buffers must be >= 1")
        if self.codec_per_byte_cpu < 0:
            raise ConfigError("codec_per_byte_cpu must be >= 0")
        if self.reduction:
            try:
                build_chain(self.reduction)
            except ReproError as exc:
                raise ConfigError(
                    f"invalid reduction chain {self.reduction!r}: {exc}"
                ) from exc

    def modeled_bytes(self, real_bytes: int) -> int:
        """Stream bytes charged for a pack of ``real_bytes`` core records."""
        return int(real_bytes * self.volume_multiplier)
