"""Declarative steering policies.

A :class:`SteeringPolicy` is the control-loop counterpart of a
:class:`~repro.faults.plan.FaultPlan`: a frozen, validated, JSON
round-trippable description of *how* the controller may react — which
alert kinds trigger which actuator, the reduction step table, cooldowns
and hysteresis windows, and per-action enable flags.  The controller
itself (:mod:`repro.steering.controller`) holds no tunables; everything
an experiment might sweep lives here so a policy can be committed next
to a fault plan and replayed bit-identically.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Iterable, Optional

from repro.codec.stages import build_chain
from repro.errors import ConfigError

# Actions a controller can take; each decision records exactly one.
ESCALATE_REDUCTION = "escalate_reduction"
RELAX_REDUCTION = "relax_reduction"
SCALE_UP_WORKERS = "scale_up_workers"
SCALE_DOWN_WORKERS = "scale_down_workers"
REBALANCE_WRITERS = "rebalance_writers"

STEERING_ACTIONS = (
    ESCALATE_REDUCTION,
    RELAX_REDUCTION,
    SCALE_UP_WORKERS,
    SCALE_DOWN_WORKERS,
    REBALANCE_WRITERS,
)

# Default escalation ladder: identity -> lossless -> lossy sampling.
DEFAULT_REDUCTION_STEPS = ("", "delta+dict+zlib", "sample:131072+delta+dict+zlib")


def _as_tuple(value: Iterable[str]) -> tuple[str, ...]:
    if isinstance(value, str):
        raise ConfigError(f"expected a sequence of strings, got {value!r}")
    return tuple(str(v) for v in value)


@dataclass(frozen=True)
class SteeringPolicy:
    """What the controller is allowed to do, and how eagerly.

    The reduction ladder is a step table: level 0 is the session's
    baseline chain, and each escalation moves one level up
    ``reduction_steps``.  Relaxation is the hysteresis path: only after
    *all* escalate-trigger conditions have been clear for
    ``relax_after_s`` does the controller step back down, one level per
    ``relax_cooldown_s``.  Cooldowns ensure the policy cannot flap even
    under an alert storm.
    """

    name: str = "default"
    # -- reduction escalation --------------------------------------------------
    enable_reduction: bool = True
    reduction_steps: tuple[str, ...] = DEFAULT_REDUCTION_STEPS
    escalate_on: tuple[str, ...] = (
        "stream_stall",
        "backlog_growth",
        "stream_write_timeout",
        "stream_overflow_drop",
    )
    escalate_cooldown_s: float = 0.05
    relax_after_s: float = 0.25
    relax_cooldown_s: float = 0.1
    # -- analyzer worker autoscaling -------------------------------------------
    enable_autoscale: bool = True
    autoscale_on: tuple[str, ...] = ("backlog_growth", "analyzer_stall")
    max_workers: int = 4
    worker_step: int = 2
    autoscale_cooldown_s: float = 0.1
    # -- writer rebalancing ----------------------------------------------------
    enable_rebalance: bool = True
    rebalance_on: tuple[str, ...] = (
        "load_imbalance",
        "worker_starvation",
        "analyzer_failover",
    )
    rebalance_cooldown_s: float = 0.2
    max_rebalances: int = 4
    # -- control cadence -------------------------------------------------------
    tick_interval_s: Optional[float] = None  # None -> follow the monitor

    def __post_init__(self):
        object.__setattr__(self, "reduction_steps", _as_tuple(self.reduction_steps))
        object.__setattr__(self, "escalate_on", _as_tuple(self.escalate_on))
        object.__setattr__(self, "autoscale_on", _as_tuple(self.autoscale_on))
        object.__setattr__(self, "rebalance_on", _as_tuple(self.rebalance_on))
        if not self.name:
            raise ConfigError("steering policy needs a non-empty name")
        if not self.reduction_steps:
            raise ConfigError("reduction_steps must hold at least the identity level")
        normalized = []
        for spec in self.reduction_steps:
            try:
                normalized.append(build_chain(spec).spec)
            except Exception as exc:
                raise ConfigError(
                    f"policy {self.name!r}: bad reduction step {spec!r}: {exc}"
                ) from exc
        object.__setattr__(self, "reduction_steps", tuple(normalized))
        for attr in (
            "escalate_cooldown_s",
            "relax_after_s",
            "relax_cooldown_s",
            "autoscale_cooldown_s",
            "rebalance_cooldown_s",
        ):
            if getattr(self, attr) < 0:
                raise ConfigError(f"policy {self.name!r}: {attr} must be >= 0")
        if self.max_workers < 1:
            raise ConfigError(f"policy {self.name!r}: max_workers must be >= 1")
        if self.worker_step < 2:
            raise ConfigError(f"policy {self.name!r}: worker_step must be >= 2")
        if self.max_rebalances < 0:
            raise ConfigError(f"policy {self.name!r}: max_rebalances must be >= 0")
        if self.tick_interval_s is not None and self.tick_interval_s <= 0:
            raise ConfigError(f"policy {self.name!r}: tick_interval_s must be > 0")

    # -- serialization (FaultPlan idiom) ---------------------------------------

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(asdict(self), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SteeringPolicy":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"bad steering policy JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ConfigError("steering policy JSON must be an object")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(f"unknown steering policy keys: {', '.join(unknown)}")
        return cls(**data)


def static_policy(name: str = "static") -> SteeringPolicy:
    """A policy with every actuator disabled — observe, never act."""
    return SteeringPolicy(
        name=name,
        enable_reduction=False,
        enable_autoscale=False,
        enable_rebalance=False,
    )
