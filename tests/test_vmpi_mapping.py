"""VMPI_Map: pivot protocol, policies, additive maps."""

import pytest

from repro.errors import MappingError, SimulationError
from repro.vmpi import FIXED, RANDOM, ROUND_ROBIN, VMPIMap, map_partitions
from repro.vmpi.mapping import user_policy
from repro.vmpi.virtualization import VirtualizedLauncher


def _run_mapping(machine, sizes, policy=ROUND_ROBIN, seed=0, names=("A", "B")):
    """Two partitions mapping to each other; returns {(name, rank): VMPIMap}."""
    maps = {}

    def prog(mpi, other):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, other, policy=policy)
        maps[(mpi.partition.name, mpi.rank)] = vmap
        yield from mpi.finalize()

    launcher = VirtualizedLauncher(machine=machine, seed=seed)
    launcher.add_program(names[0], nprocs=sizes[0], main=prog, other=names[1])
    launcher.add_program(names[1], nprocs=sizes[1], main=prog, other=names[0])
    launcher.run()
    return maps


def test_round_robin_assignment(big_machine):
    maps = _run_mapping(big_machine, (8, 4))
    # Slaves (A, larger) each map to exactly one master (B) rank, round robin.
    for i in range(8):
        entries = maps[("A", i)].entries
        assert len(entries) == 1
        master_global = entries[0]
        assert master_global == 8 + (i % 4)
    # Masters see the inverse mapping.
    for j in range(4):
        entries = maps[("B", j)].entries
        assert sorted(entries) == [j, j + 4]


def test_mapping_is_symmetric(big_machine):
    maps = _run_mapping(big_machine, (12, 5))
    pairs_from_a = {(a, b) for (name, r), m in maps.items() if name == "A" for a, b in [(r, e) for e in m.entries]}
    pairs_from_b = set()
    for (name, r), m in maps.items():
        if name == "B":
            for e in m.entries:
                pairs_from_b.add((e, r + 12))
    assert pairs_from_a == pairs_from_b


def test_every_process_mapped(big_machine):
    maps = _run_mapping(big_machine, (16, 3))
    for key, vmap in maps.items():
        assert len(vmap.entries) >= 1, f"{key} unmapped"


def test_fixed_policy_targets_master_root(big_machine):
    maps = _run_mapping(big_machine, (6, 3), policy=FIXED)
    for i in range(6):
        assert maps[("A", i)].entries == [6]  # master root (global rank 6)
    assert sorted(maps[("B", 0)].entries) == [0, 1, 2, 3, 4, 5]
    assert maps[("B", 1)].entries == []


def test_random_policy_deterministic_by_seed(big_machine):
    a = _run_mapping(big_machine, (8, 4), policy=RANDOM, seed=11)
    b = _run_mapping(big_machine, (8, 4), policy=RANDOM, seed=11)
    c = _run_mapping(big_machine, (8, 4), policy=RANDOM, seed=12)
    targets = lambda ms: [ms[("A", i)].entries for i in range(8)]
    assert targets(a) == targets(b)
    assert targets(a) != targets(c)


def test_user_policy(big_machine):
    reversed_policy = user_policy(lambda i, m: (m - 1) - (i % m), name="reversed")
    maps = _run_mapping(big_machine, (4, 4), policy=reversed_policy)
    # Equal sizes: partition A (lower index) is master, B is slave.
    for i in range(4):
        assert maps[("B", i)].entries == [3 - i]


def test_user_policy_out_of_range_rejected(big_machine):
    bad = user_policy(lambda i, m: m, name="off_by_one")
    with pytest.raises((MappingError, SimulationError)):
        _run_mapping(big_machine, (4, 2), policy=bad)


def test_equal_sizes_one_to_one(big_machine):
    maps = _run_mapping(big_machine, (4, 4))
    for i in range(4):
        assert len(maps[("A", i)].entries) == 1
        assert len(maps[("B", i)].entries) == 1


def test_additive_multi_partition_map(big_machine):
    """The analyzer maps each app partition in turn (paper Figure 12)."""
    collected = {}

    def app(mpi):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, "Analyzer", ROUND_ROBIN)
        collected[(mpi.partition.name, mpi.rank)] = vmap
        yield from mpi.finalize()

    def analyzer(mpi):
        yield from mpi.init()
        vmap = VMPIMap()
        for i in range(mpi.partition_count()):
            if i != mpi.partition.index:
                yield from map_partitions(mpi, vmap, i, ROUND_ROBIN)
        collected[("Analyzer", mpi.rank)] = vmap
        yield from mpi.finalize()

    launcher = VirtualizedLauncher(machine=big_machine)
    launcher.add_program("app1", nprocs=6, main=app)
    launcher.add_program("app2", nprocs=4, main=app)
    launcher.add_program("Analyzer", nprocs=2, main=analyzer)
    launcher.run()

    an0 = collected[("Analyzer", 0)]
    an1 = collected[("Analyzer", 1)]
    assert len(an0.entries) + len(an1.entries) == 10
    # by_partition groups the peers per application.
    assert set(an0.by_partition) <= {0, 1}
    total_app1 = len(an0.by_partition.get(0, [])) + len(an1.by_partition.get(0, []))
    assert total_app1 == 6


def test_map_to_self_rejected(big_machine):
    def prog(mpi):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, mpi.partition.index)
        yield from mpi.finalize()

    launcher = VirtualizedLauncher(machine=big_machine)
    launcher.add_program("only", nprocs=2, main=prog)
    with pytest.raises(SimulationError, match="itself"):
        launcher.run()


def test_unknown_partition_rejected(big_machine):
    def prog(mpi):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, "nope")
        yield from mpi.finalize()

    launcher = VirtualizedLauncher(machine=big_machine)
    launcher.add_program("a", nprocs=1, main=prog)
    launcher.add_program("b", nprocs=1, main=prog)
    with pytest.raises(SimulationError, match="nope"):
        launcher.run()


def test_map_clear(big_machine):
    maps = _run_mapping(big_machine, (4, 2))
    vmap = maps[("A", 0)]
    assert len(vmap) > 0
    vmap.clear()
    assert len(vmap) == 0 and vmap.by_partition == {}
