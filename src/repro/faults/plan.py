"""Fault plans: deterministic, seeded fault schedules in virtual time.

A :class:`FaultPlan` is a declarative list of :class:`FaultSpec` entries —
*what* goes wrong, *when* (virtual seconds), and *how hard*.  Plans are data:
they serialize to/from JSON, compare by value, and contain no simulation
state, so the same plan attached to the same seeded session reproduces the
same faults at the same virtual timestamps, run after run.

Fault kinds
-----------

``analyzer_crash``
    Kill one analyzer rank mid-run (``target`` = analyzer-local rank;
    negative indexes from the end, Python style).  Local rank 0 — the
    mapping pivot and gather root — cannot be killed: the coupling protocol
    needs it, exactly as a real tool daemon needs its root alive.
``link_degrade``
    Cut the NIC bandwidth of the target analyzer's node by ``factor`` and/or
    add ``extra_latency`` seconds to every message touching it.
``pack_corrupt``
    Flip bytes in every ``every``-th event pack at the transport boundary
    (the reader's checksum rejects them).
``pack_drop``
    Silently swallow every ``every``-th event pack at the transport boundary.
``analyzer_stall``
    Freeze the target analyzer's stream consumption for ``duration``
    virtual seconds (a GC pause / OS jitter stand-in).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, asdict, field

from repro.errors import ConfigError

ANALYZER_CRASH = "analyzer_crash"
LINK_DEGRADE = "link_degrade"
PACK_CORRUPT = "pack_corrupt"
PACK_DROP = "pack_drop"
ANALYZER_STALL = "analyzer_stall"

FAULT_KINDS = (
    ANALYZER_CRASH,
    LINK_DEGRADE,
    PACK_CORRUPT,
    PACK_DROP,
    ANALYZER_STALL,
)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``target`` is an analyzer-partition *local* rank (negative = from the
    end); it is resolved to a global rank when the plan is attached.
    ``factor``/``extra_latency`` apply to ``link_degrade``, ``every`` to the
    pack faults, ``duration`` to ``analyzer_stall``.
    """

    kind: str
    at: float
    target: int = -1
    factor: float = 1.0
    extra_latency: float = 0.0
    every: int = 0
    duration: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r}")
        if self.at <= 0:
            raise ConfigError(f"fault time must be > 0, got {self.at}")
        if self.kind == ANALYZER_CRASH and self.target == 0:
            raise ConfigError(
                "cannot crash analyzer local rank 0: it is the mapping pivot "
                "and gather root (pick any other rank)"
            )
        if self.kind == LINK_DEGRADE:
            if self.factor <= 0:
                raise ConfigError(f"degrade factor must be > 0, got {self.factor}")
            if self.extra_latency < 0:
                raise ConfigError(f"extra_latency must be >= 0, got {self.extra_latency}")
            if self.factor == 1.0 and self.extra_latency == 0:
                raise ConfigError("link_degrade without factor or extra_latency is a no-op")
        if self.kind in (PACK_CORRUPT, PACK_DROP) and self.every < 1:
            raise ConfigError(f"pack faults need every >= 1, got {self.every}")
        if self.kind == ANALYZER_STALL and self.duration <= 0:
            raise ConfigError(f"stall duration must be > 0, got {self.duration}")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, serializable schedule of faults."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0
    name: str = "custom"

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ConfigError(f"plan entries must be FaultSpec, got {spec!r}")

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    @property
    def empty(self) -> bool:
        return not self.specs

    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "seed": self.seed,
                "faults": [asdict(s) for s in self.specs],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str | dict) -> "FaultPlan":
        data = json.loads(text) if isinstance(text, str) else text
        if not isinstance(data, dict) or "faults" not in data:
            raise ConfigError("fault plan JSON needs a top-level 'faults' list")
        try:
            specs = tuple(FaultSpec(**entry) for entry in data["faults"])
        except TypeError as exc:
            raise ConfigError(f"malformed fault spec: {exc}") from exc
        return cls(
            specs=specs,
            seed=int(data.get("seed", 0)),
            name=str(data.get("name", "custom")),
        )


#: Canned plans for the chaos bench and smoke tests; ``at`` scales the whole
#: schedule so callers can anchor it to the workload's expected runtime.
CANNED_PLANS = ("crash1", "degrade", "corrupt", "drop", "stall", "mixed")


def make_plan(name: str, *, at: float = 0.5, seed: int = 0) -> FaultPlan:
    """Build a canned fault plan anchored at virtual time ``at``."""
    if at <= 0:
        raise ConfigError(f"plan anchor time must be > 0, got {at}")
    if name == "crash1":
        specs = (FaultSpec(ANALYZER_CRASH, at=at, target=-1),)
    elif name == "degrade":
        specs = (FaultSpec(LINK_DEGRADE, at=at, target=-1, factor=0.25,
                           extra_latency=5e-6),)
    elif name == "corrupt":
        specs = (FaultSpec(PACK_CORRUPT, at=at, every=3),)
    elif name == "drop":
        specs = (FaultSpec(PACK_DROP, at=at, every=4),)
    elif name == "stall":
        specs = (FaultSpec(ANALYZER_STALL, at=at, target=-1, duration=at * 0.5),)
    elif name == "mixed":
        specs = (
            FaultSpec(PACK_CORRUPT, at=at * 0.6, every=5),
            FaultSpec(LINK_DEGRADE, at=at * 0.8, target=-1, factor=0.5),
            FaultSpec(ANALYZER_CRASH, at=at, target=-1),
        )
    else:
        raise ConfigError(f"unknown canned plan {name!r} (have {', '.join(CANNED_PLANS)})")
    return FaultPlan(specs=specs, seed=seed, name=name)
