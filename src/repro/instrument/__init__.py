"""Event instrumentation: record structs, ~1 MB packs, PMPI interceptor.

The paper streams raw C event structures in ~1 MB blocks from every
instrumented rank to its mapped analyzer rank.  Here events are fixed-layout
binary records (40 bytes, decodable zero-copy into a numpy structured array)
accumulated into :class:`~repro.instrument.packer.EventPackBuilder` blocks
and flushed through a VMPI stream by the
:class:`~repro.instrument.interceptor.StreamingInstrumentation` interceptor.
"""

from repro.instrument.events import (
    EVENT_DTYPE,
    EVENT_RECORD_SIZE,
    CALL_IDS,
    CALL_NAMES,
    call_id,
    encode_event,
    decode_events,
)
from repro.instrument.packer import (
    EventPackBuilder,
    PackHeader,
    decode_pack,
    pack_content_size,
    verify_pack,
    PACK_HEADER_SIZE,
)
from repro.instrument.overhead import InstrumentationCost
from repro.instrument.interceptor import StreamingInstrumentation

__all__ = [
    "EVENT_DTYPE",
    "EVENT_RECORD_SIZE",
    "CALL_IDS",
    "CALL_NAMES",
    "call_id",
    "encode_event",
    "decode_events",
    "EventPackBuilder",
    "PackHeader",
    "decode_pack",
    "pack_content_size",
    "verify_pack",
    "PACK_HEADER_SIZE",
    "InstrumentationCost",
    "StreamingInstrumentation",
]
