"""Property-based tests on the VMPI stream transport.

Invariants: every written block is read exactly once (byte conservation),
EOF strictly follows the last data block, per-writer FIFO order holds — for
arbitrary writer/reader counts and block schedules.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.machine import small_test_machine
from repro.util.units import KIB
from repro.vmpi import EOF, ROUND_ROBIN, VMPIMap, VMPIStream, map_partitions
from repro.vmpi.virtualization import VirtualizedLauncher

MACHINE = small_test_machine(nodes=64, cores_per_node=4)


def _run_coupling(writers: int, readers: int, blocks_per_writer: list[int], na: int):
    """Returns (sent, received) lists of (writer_rank, seq) tuples."""
    sent: list[tuple[int, int]] = []
    received: list[tuple[int, int]] = []

    def writer(mpi):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, "Analyzer", ROUND_ROBIN)
        st_obj = VMPIStream(block_size=64 * KIB, na_buffers=na)
        yield from st_obj.open_map(mpi, vmap, "w")
        for seq in range(blocks_per_writer[mpi.rank]):
            yield from st_obj.write(
                nbytes=1 + (seq % (64 * KIB)), payload=(mpi.rank, seq)
            )
            sent.append((mpi.rank, seq))
        yield from st_obj.close()
        yield from mpi.finalize()

    def reader(mpi):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, 0, ROUND_ROBIN)
        st_obj = VMPIStream(block_size=64 * KIB, na_buffers=na)
        yield from st_obj.open_map(mpi, vmap, "r")
        while True:
            nbytes, payload = yield from st_obj.read()
            if nbytes == EOF:
                break
            received.append(payload)
        yield from mpi.finalize()

    launcher = VirtualizedLauncher(machine=MACHINE, seed=1)
    launcher.add_program("W", nprocs=writers, main=writer)
    launcher.add_program("Analyzer", nprocs=readers, main=reader)
    launcher.run()
    return sent, received


@given(
    writers=st.integers(1, 6),
    readers=st.integers(1, 4),
    na=st.integers(1, 4),
    data=st.data(),
)
@settings(max_examples=25, deadline=None)
def test_stream_conserves_blocks(writers, readers, na, data):
    blocks = data.draw(
        st.lists(st.integers(0, 12), min_size=writers, max_size=writers)
    )
    sent, received = _run_coupling(writers, readers, blocks, na)
    assert sorted(sent) == sorted(received)


@given(writers=st.integers(1, 4), na=st.integers(1, 3))
@settings(max_examples=15, deadline=None)
def test_stream_preserves_per_writer_order(writers, na):
    blocks = [8] * writers
    _sent, received = _run_coupling(writers, 1, blocks, na)
    for w in range(writers):
        seqs = [seq for (rank, seq) in received if rank == w]
        assert seqs == sorted(seqs)


@given(
    sizes=st.lists(st.integers(1, 64 * KIB), min_size=1, max_size=20),
)
@settings(max_examples=20, deadline=None)
def test_stream_byte_totals(sizes):
    total = {"w": 0, "r": 0}

    def writer(mpi):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, "Analyzer", ROUND_ROBIN)
        st_obj = VMPIStream(block_size=64 * KIB)
        yield from st_obj.open_map(mpi, vmap, "w")
        for nbytes in sizes:
            yield from st_obj.write(nbytes=nbytes)
        yield from st_obj.close()
        total["w"] = st_obj.bytes_written
        yield from mpi.finalize()

    def reader(mpi):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, 0, ROUND_ROBIN)
        st_obj = VMPIStream(block_size=64 * KIB)
        yield from st_obj.open_map(mpi, vmap, "r")
        while True:
            nbytes, _ = yield from st_obj.read()
            if nbytes == EOF:
                break
        total["r"] = st_obj.bytes_read
        yield from mpi.finalize()

    launcher = VirtualizedLauncher(machine=MACHINE, seed=2)
    launcher.add_program("W", nprocs=1, main=writer)
    launcher.add_program("Analyzer", nprocs=1, main=reader)
    launcher.run()
    assert total["w"] == total["r"] == sum(sizes)
