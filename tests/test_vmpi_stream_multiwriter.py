"""Stream stress scenarios: many-to-few fan-in, interleaved channels,
zero-block writers, reader fairness, and interleaved-writer provenance."""

import pytest

from repro.instrument.packer import EventPackBuilder, attach_provenance
from repro.mpi.pmpi import CallRecord
from repro.network.machine import small_test_machine
from repro.telemetry import FlowRegistry, split_flow_id
from repro.telemetry.flow import per_writer_stage_samples, stage_samples
from repro.util.units import KIB
from repro.vmpi import EOF, ROUND_ROBIN, VMPIMap, VMPIStream, map_partitions
from repro.vmpi.virtualization import VirtualizedLauncher

MACHINE = small_test_machine(nodes=256, cores_per_node=4)


def _run(writers, readers, writer_main, reader_main, **kw):
    launcher = VirtualizedLauncher(machine=MACHINE, seed=4)
    launcher.add_program("W", nprocs=writers, main=writer_main, **kw)
    launcher.add_program("Analyzer", nprocs=readers, main=reader_main, **kw)
    return launcher.run()


def test_64_to_2_fanin_delivers_everything():
    got = []

    def writer(mpi, out):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, "Analyzer", ROUND_ROBIN)
        st = VMPIStream(block_size=16 * KIB)
        yield from st.open_map(mpi, vmap, "w")
        for i in range(4):
            yield from st.write(nbytes=16 * KIB, payload=(mpi.rank, i))
        yield from st.close()
        yield from mpi.finalize()

    def reader(mpi, out):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, 0, ROUND_ROBIN)
        st = VMPIStream(block_size=16 * KIB)
        yield from st.open_map(mpi, vmap, "r")
        while True:
            n, payload = yield from st.read()
            if n == EOF:
                break
            out.append(payload)
        yield from mpi.finalize()

    _run(64, 2, writer, reader, out=got)
    assert len(got) == 64 * 4
    assert len(set(got)) == 64 * 4  # no duplicates


def test_writer_with_zero_blocks_still_closes_cleanly():
    counts = {}

    def writer(mpi, counts):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, "Analyzer", ROUND_ROBIN)
        st = VMPIStream()
        yield from st.open_map(mpi, vmap, "w")
        if mpi.rank % 2 == 0:  # odd ranks write nothing at all
            yield from st.write(nbytes=512, payload=mpi.rank)
        yield from st.close()
        yield from mpi.finalize()

    def reader(mpi, counts):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, 0, ROUND_ROBIN)
        st = VMPIStream()
        yield from st.open_map(mpi, vmap, "r")
        n_blocks = 0
        while True:
            n, _ = yield from st.read()
            if n == EOF:
                break
            n_blocks += 1
        counts["blocks"] = n_blocks
        yield from mpi.finalize()

    _run(8, 1, writer, reader, counts=counts)
    assert counts["blocks"] == 4  # only even writers produced data


def test_reader_fairness_across_writers():
    """No writer is starved: consumption interleaves across sources."""
    order = []

    def writer(mpi, order):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, "Analyzer", ROUND_ROBIN)
        st = VMPIStream(block_size=32 * KIB)
        yield from st.open_map(mpi, vmap, "w")
        for i in range(10):
            yield from st.write(nbytes=32 * KIB, payload=mpi.rank)
        yield from st.close()
        yield from mpi.finalize()

    def reader(mpi, order):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, 0, ROUND_ROBIN)
        st = VMPIStream(block_size=32 * KIB)
        yield from st.open_map(mpi, vmap, "r")
        while True:
            n, payload = yield from st.read()
            if n == EOF:
                break
            order.append(payload)
        yield from mpi.finalize()

    _run(4, 1, writer, reader, order=order)
    # In the first half of consumption, every writer already appeared.
    first_half = set(order[: len(order) // 2])
    assert first_half == {0, 1, 2, 3}


def test_bidirectional_streams_between_partitions():
    """Two independent streams in opposite directions coexist."""
    results = {}

    def side_a(mpi, results):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, "Analyzer", ROUND_ROBIN)
        out_stream = VMPIStream(channel=10)
        in_stream = VMPIStream(channel=11)
        yield from out_stream.open_map(mpi, vmap, "w")
        yield from in_stream.open_map(mpi, vmap, "r")
        yield from out_stream.write(nbytes=1024, payload="request")
        yield from out_stream.close()
        n, payload = yield from in_stream.read()
        results["a_got"] = payload
        yield from mpi.finalize()

    def side_b(mpi, results):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, 0, ROUND_ROBIN)
        in_stream = VMPIStream(channel=10)
        out_stream = VMPIStream(channel=11)
        yield from in_stream.open_map(mpi, vmap, "r")
        yield from out_stream.open_map(mpi, vmap, "w")
        n, payload = yield from in_stream.read()
        results["b_got"] = payload
        yield from out_stream.write(nbytes=1024, payload="response")
        yield from out_stream.close()
        yield from mpi.finalize()

    _run(1, 1, side_a, side_b, results=results)
    assert results == {"b_got": "request", "a_got": "response"}


@pytest.mark.flow
def test_interleaved_writers_get_disjoint_flows_and_per_writer_attribution():
    """Provenance across a fan-in: disjoint flow-id spaces per writer and
    per-writer stage histograms that concatenate to exactly the global."""
    NWRITERS, PACKS = 4, 5

    def make_pack(flows, mpi, i):
        builder = EventPackBuilder(app_id=0, rank=mpi.rank, capacity_bytes=4096)
        builder.add(CallRecord(
            name="MPI_Send", t_start=mpi.now, t_end=mpi.now + 1e-6, comm_id=0,
            comm_rank=mpi.rank, comm_size=NWRITERS, peer=0, tag=i, nbytes=64,
        ))
        blob = builder.emit()
        rec = flows.begin(
            app_id=0, rank=mpi.rank, global_rank=mpi.ctx.global_rank,
            t=mpi.ctx.kernel.now,
        )
        return attach_provenance(blob, rec.flow_id, rec.app_id,
                                 rec.origin_rank, rec.t_seal)

    def writer(mpi, out):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, "Analyzer", ROUND_ROBIN)
        st = VMPIStream(block_size=16 * KIB)
        yield from st.open_map(mpi, vmap, "w")
        flows = mpi.ctx.world.flows
        for i in range(PACKS):
            yield from st.write(nbytes=16 * KIB, payload=make_pack(flows, mpi, i))
            yield from mpi.compute(1e-5)  # interleave writers in time
        yield from st.close()
        yield from mpi.finalize()

    def reader(mpi, out):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, 0, ROUND_ROBIN)
        st = VMPIStream(block_size=16 * KIB)
        yield from st.open_map(mpi, vmap, "r")
        flows = mpi.ctx.world.flows
        while True:
            n, payload = yield from st.read()
            if n == EOF:
                break
            out.append(payload)
        yield from st.close()
        yield from mpi.finalize()

    got = []
    launcher = VirtualizedLauncher(machine=MACHINE, seed=4)
    launcher.add_program("W", nprocs=NWRITERS, main=writer, out=got)
    launcher.add_program("Analyzer", nprocs=2, main=reader, out=got)
    world = launcher.launch()
    registry = FlowRegistry(seed=4)
    world.flows = registry
    world.run()

    assert len(got) == NWRITERS * PACKS
    records = list(registry.records())
    assert len(records) == NWRITERS * PACKS

    # Disjoint id spaces: every flow id decodes back to its own writer, and
    # each writer owns exactly PACKS consecutive sequence numbers.
    by_writer = {}
    for rec in records:
        app, rank, seq = split_flow_id(rec.flow_id)
        assert (app, rank) == (rec.app_id, rec.origin_rank)
        by_writer.setdefault(rank, set()).add(seq)
    assert set(by_writer) == set(range(NWRITERS))
    assert all(seqs == set(range(PACKS)) for seqs in by_writer.values())
    assert len({rec.flow_id for rec in records}) == len(records)

    # Every flow reached the reader (stream-level hops; no analyzer here).
    assert all(rec.t_read is not None for rec in records)

    # Per-writer stage histograms concatenate to exactly the global ones.
    global_samples = stage_samples(records)
    per_writer = per_writer_stage_samples(records)
    assert set(per_writer) == {(0, r) for r in range(NWRITERS)}
    for stage, samples in global_samples.items():
        merged = []
        for per in per_writer.values():
            merged.extend(per[stage])
        assert sorted(merged) == sorted(samples)
