"""Baseline performance-tool models (the comparators of Figure 16).

Each baseline is a PMPI interceptor reproducing the documented data path of
the corresponding tool:

* :class:`~repro.baselines.mpip.MPIPInterceptor` — mpiP-style purely-online
  statistical aggregation, reduced at MPI_Finalize;
* :class:`~repro.baselines.scorep.ScorePProfileInterceptor` — Score-P
  runtime profile: per-call profile update, one profile file per rank at
  finalize (a metadata storm at scale);
* :class:`~repro.baselines.scorep.ScorePTraceInterceptor` — Score-P OTF2
  tracing over SIONlib: buffered event records flushed through the shared
  parallel file system;
* :class:`~repro.baselines.scalasca.ScalascaInterceptor` — Scalasca 1.x
  runtime summarization plus a post-mortem phase (not counted in the
  init-finalize window, as in the paper's measurements).

All tools charge their per-call CPU overheads to the application timeline;
file-based tools share the job's :class:`~repro.iosim.ParallelFS`.

One modelling note: one-time costs (file creates, final report writes) are
multiplied by ``amortize_fixed`` — the ratio of simulated to official
iterations — so that relative overhead computed over a shortened run equals
the overhead of the full-length run (rate-proportional costs scale by
construction; fixed costs must be scaled explicitly).
"""

from repro.baselines.tracer import TraceWriterState, OTF2_BYTES_PER_EVENT
from repro.baselines.mpip import MPIPInterceptor
from repro.baselines.scorep import ScorePProfileInterceptor, ScorePTraceInterceptor
from repro.baselines.scalasca import ScalascaInterceptor
from repro.baselines.postmortem import PostMortemAnalyzer

__all__ = [
    "TraceWriterState",
    "OTF2_BYTES_PER_EVENT",
    "MPIPInterceptor",
    "ScorePProfileInterceptor",
    "ScorePTraceInterceptor",
    "ScalascaInterceptor",
    "PostMortemAnalyzer",
]
