"""Fat-tree topology description.

The flow model in :mod:`repro.network.cluster` only needs node endpoints, but
the topology object is used by placement (locality-aware node ordering), by
the documentation examples, and by the latency model (hop count between
nodes).  We model a classic two-level fat-tree: nodes are grouped into
*switch groups* of ``radix`` nodes hanging off a leaf switch; leaf switches
connect through a core layer (full bisection assumed at the core, which
matches QDR fat-trees at the scales the paper uses after NIC-level effects
are accounted for).
"""

from __future__ import annotations

import math

from repro.errors import ConfigError


class FatTree:
    """Two-level fat-tree over ``nodes`` endpoints with leaf radix ``radix``."""

    def __init__(self, nodes: int, radix: int = 18):
        if nodes <= 0:
            raise ConfigError(f"FatTree needs nodes > 0, got {nodes}")
        if radix <= 1:
            raise ConfigError(f"FatTree needs radix > 1, got {radix}")
        self.nodes = nodes
        self.radix = radix
        self.leaf_switches = math.ceil(nodes / radix)

    def leaf_of(self, node: int) -> int:
        """Leaf switch index hosting ``node``."""
        self._check(node)
        return node // self.radix

    def hops(self, a: int, b: int) -> int:
        """Switch hops between two nodes (0 = same node)."""
        self._check(a)
        self._check(b)
        if a == b:
            return 0
        if self.leaf_of(a) == self.leaf_of(b):
            return 2  # up to the leaf switch and back down
        return 4  # leaf -> core -> leaf

    def latency(self, a: int, b: int, per_hop: float, base: float = 0.0) -> float:
        """End-to-end latency for a message between two nodes."""
        return base + self.hops(a, b) * per_hop

    def same_leaf_nodes(self, node: int) -> range:
        """The node-index range sharing a leaf switch with ``node``."""
        leaf = self.leaf_of(node)
        start = leaf * self.radix
        return range(start, min(start + self.radix, self.nodes))

    def bisection_links(self) -> int:
        """Number of leaf-to-core uplinks crossing the bisection."""
        return max(1, self.leaf_switches // 2) * self.radix

    def _check(self, node: int) -> None:
        if not (0 <= node < self.nodes):
            raise ConfigError(f"node {node} outside fat-tree of {self.nodes} nodes")
