"""Waitable primitives: events, conditions, interrupts."""

import pytest

from repro.errors import SimulationError
from repro.simt import Kernel
from repro.simt.primitives import AllOf, AnyOf, Interrupt, SimEvent


def test_event_succeed_delivers_value(kernel):
    got = []

    def proc(k, ev):
        value = yield ev
        got.append(value)

    ev = kernel.event("e")
    kernel.spawn(proc(kernel, ev))
    ev.succeed("payload")
    kernel.run()
    assert got == ["payload"]


def test_event_fail_raises_in_waiter(kernel):
    caught = []

    def proc(k, ev):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    ev = kernel.event()
    kernel.spawn(proc(kernel, ev))
    ev.fail(RuntimeError("bad"))
    kernel.run()
    assert caught == ["bad"]


def test_double_trigger_rejected(kernel):
    ev = kernel.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("x"))


def test_fail_requires_exception_instance(kernel):
    ev = kernel.event()
    with pytest.raises(SimulationError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_callback_after_dispatch_runs_immediately(kernel):
    ev = kernel.event()
    ev.succeed(7)
    kernel.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == [7]


def test_multiple_waiters_all_resume(kernel):
    got = []

    def proc(k, ev, name):
        value = yield ev
        got.append((name, value))

    ev = kernel.event()
    for name in ("a", "b", "c"):
        kernel.spawn(proc(kernel, ev, name))
    ev.succeed(1)
    kernel.run()
    assert sorted(got) == [("a", 1), ("b", 1), ("c", 1)]


def test_any_of_fires_on_first(kernel):
    def proc(k):
        t_fast = k.timeout(1.0, value="fast")
        t_slow = k.timeout(5.0, value="slow")
        fired = yield k.any_of([t_fast, t_slow])
        return (k.now, list(fired.values()))

    p = kernel.spawn(proc(kernel))
    kernel.run()
    assert p.value == (1.0, ["fast"])


def test_all_of_waits_for_every_child(kernel):
    def proc(k):
        a = k.timeout(1.0, value="a")
        b = k.timeout(3.0, value="b")
        fired = yield k.all_of([a, b])
        return (k.now, sorted(fired.values()))

    p = kernel.spawn(proc(kernel))
    kernel.run()
    assert p.value == (3.0, ["a", "b"])


def test_all_of_empty_fires_immediately(kernel):
    def proc(k):
        yield k.all_of([])
        return k.now

    p = kernel.spawn(proc(kernel))
    kernel.run()
    assert p.value == 0.0


def test_condition_rejects_foreign_kernel_events(kernel):
    other = Kernel()
    foreign = SimEvent(other)
    with pytest.raises(SimulationError):
        kernel.any_of([foreign])


def test_all_of_propagates_failure(kernel):
    caught = []

    def proc(k, bad):
        try:
            yield k.all_of([k.timeout(5.0), bad])
        except RuntimeError as exc:
            caught.append(str(exc))

    bad = kernel.event()
    kernel.spawn(proc(kernel, bad))
    bad.fail(RuntimeError("child failed"))
    kernel.run(until=6.0)
    assert caught == ["child failed"]


def test_interrupt_reaches_waiting_process(kernel):
    log = []

    def sleeper(k):
        try:
            yield k.timeout(100.0)
        except Interrupt as intr:
            log.append(("interrupted", intr.cause, k.now))

    def interrupter(k, target):
        yield k.timeout(2.0)
        target.interrupt("wake up")

    target = kernel.spawn(sleeper(kernel), name="sleeper")
    kernel.spawn(interrupter(kernel, target))
    kernel.run(until=10.0)
    assert log == [("interrupted", "wake up", 2.0)]


def test_interrupt_finished_process_rejected(kernel):
    def quick(k):
        yield k.timeout(0.1)

    p = kernel.spawn(quick(kernel))
    kernel.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_yielding_non_waitable_fails_process(kernel):
    def bad(k):
        yield 42  # not a waitable

    kernel.spawn(bad(kernel), name="bad")
    with pytest.raises(SimulationError, match="yielded int"):
        kernel.run()


def test_spawn_requires_generator(kernel):
    with pytest.raises(SimulationError, match="generator"):
        kernel.spawn(lambda: None)  # type: ignore[arg-type]
