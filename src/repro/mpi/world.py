"""World state and the per-rank program API.

A :class:`World` owns the kernel, the cluster model, every rank's context
and the communicator registry.  Programs receive a :class:`ProgramAPI` — the
object playing the role of "the MPI library" for that rank: it exposes the
(possibly virtualized) world communicator, init/finalize, waits, and the
modelled-computation primitives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigError, MPIError
from repro.mpi.communicator import Comm, CommGroup
from repro.mpi.costmodel import CostModel
from repro.mpi.message import Mailbox
from repro.mpi.pmpi import PMPIStack
from repro.mpi.request import Request, waitany as _waitany
from repro.network.cluster import Cluster
from repro.network.machine import MachineSpec
from repro.simt import Kernel
from repro.simt.process import Process
from repro.telemetry import Telemetry


@dataclass
class PartitionInfo:
    """Descriptor of one MPMD program partition (paper Section III-A)."""

    index: int
    name: str
    first_global_rank: int
    size: int

    @property
    def global_ranks(self) -> range:
        return range(self.first_global_rank, self.first_global_rank + self.size)


class RankContext:
    """Everything the runtime knows about one simulated rank."""

    def __init__(self, world: "World", global_rank: int, partition: PartitionInfo):
        self.world = world
        self.global_rank = global_rank
        self.partition = partition
        self.mailbox = Mailbox(world.kernel, global_rank)
        self.pmpi = PMPIStack(self)
        self.t_init: float | None = None
        self.t_finalize: float | None = None
        self.storage: dict[str, Any] = {}
        self.process: Process | None = None

    @property
    def kernel(self) -> Kernel:
        return self.world.kernel

    @property
    def telemetry(self) -> Telemetry:
        return self.world.telemetry

    @property
    def node(self) -> int:
        return self.world.cluster.node_of(self.global_rank)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RankContext g{self.global_rank} {self.partition.name}>"


class World:
    """The simulated machine-wide MPI job."""

    def __init__(self, machine: MachineSpec, nranks: int, *, seed: int = 0,
                 cost: CostModel | None = None, kernel: Kernel | None = None,
                 telemetry: Telemetry | None = None):
        if nranks <= 0:
            raise ConfigError(f"world needs nranks > 0, got {nranks}")
        self.machine = machine
        self.kernel = kernel or Kernel(telemetry=telemetry)
        self.telemetry = telemetry if telemetry is not None else self.kernel.telemetry
        if self.telemetry.enabled:
            # An externally built kernel may not have bound the clock yet.
            self.telemetry.bind_clock(lambda: self.kernel.now)
        self.cluster = Cluster(self.kernel, machine, nranks)
        self.cost = cost or CostModel.for_machine(
            machine, ranks_per_node=min(nranks, machine.cores_per_node)
        )
        self.seed = seed
        self.nranks = nranks
        self._groups: list[CommGroup] = []
        self._group_cache: dict[Any, CommGroup] = {}
        self.partitions: list[PartitionInfo] = []
        self.ranks: list[RankContext] = []
        self.universe_group: CommGroup | None = None
        #: Open VMPI streams as ``(global_rank, stream)``, in open order.
        #: Plain bookkeeping (no events), used by fault injection to find
        #: the endpoints affected by a crashed or degraded rank.
        self.streams: list[tuple[int, Any]] = []
        #: The attached FaultInjector, if this run is under a fault plan.
        self.faults: Any | None = None
        #: The attached FlowRegistry when causal pack tracing is enabled;
        #: None keeps every provenance call site to a single branch.
        self.flows: Any | None = None
        #: The attached SteeringController when adaptive steering is
        #: enabled; None keeps the analyzer's cost path to a single branch.
        self.steering: Any | None = None

    # -- group registry ------------------------------------------------------------

    def _register_group(self, group: CommGroup) -> int:
        self._groups.append(group)
        return len(self._groups) - 1

    def intern_group(
        self,
        members: tuple[int, ...],
        label: str,
        key: Any = None,
    ) -> CommGroup:
        """Get-or-create the shared CommGroup for a member tuple.

        All ranks performing the same collective communicator creation pass
        the same ``key`` and therefore share one group object.
        """
        cache_key = key if key is not None else tuple(members)
        group = self._group_cache.get(cache_key)
        if group is None:
            group = CommGroup(self, tuple(members), label)
            self._group_cache[cache_key] = group
        return group

    def group_by_id(self, comm_id: int) -> CommGroup:
        return self._groups[comm_id]

    # -- partitions ----------------------------------------------------------------

    def add_partition(self, name: str, size: int) -> PartitionInfo:
        first = sum(p.size for p in self.partitions)
        if first + size > self.nranks:
            raise ConfigError(
                f"partition {name!r} of {size} ranks exceeds world of {self.nranks}"
            )
        info = PartitionInfo(index=len(self.partitions), name=name,
                             first_global_rank=first, size=size)
        self.partitions.append(info)
        return info

    def partition_by_name(self, name: str) -> PartitionInfo | None:
        for p in self.partitions:
            if p.name == name:
                return p
        return None

    # -- lifecycle ------------------------------------------------------------------

    def run(self, until: float | None = None) -> None:
        """Advance the simulation (to completion by default)."""
        self.kernel.run(until)

    def app_walltime(
        self, partition: PartitionInfo | str, *, skip_missing: bool = False
    ) -> float:
        """Wall-time of a partition between MPI_Init and MPI_Finalize.

        Measured as the paper does: the span from the first rank entering
        ``MPI_Init`` to the last rank leaving ``MPI_Finalize``.

        With ``skip_missing`` the span covers only ranks that completed both
        calls — the degraded-run measurement after a fault killed part of
        the partition (at least one rank must have completed).
        """
        if isinstance(partition, str):
            found = self.partition_by_name(partition)
            if found is None:
                raise ConfigError(f"no partition named {partition!r}")
            partition = found
        ctxs = [self.ranks[g] for g in partition.global_ranks]
        if skip_missing:
            ctxs = [c for c in ctxs if c.t_init is not None and c.t_finalize is not None]
            if not ctxs:
                raise MPIError(
                    f"partition {partition.name!r}: no rank completed init/finalize"
                )
        inits = [c.t_init for c in ctxs]
        finals = [c.t_finalize for c in ctxs]
        if any(t is None for t in inits) or any(t is None for t in finals):
            raise MPIError(
                f"partition {partition.name!r}: not all ranks completed init/finalize"
            )
        return max(finals) - min(inits)  # type: ignore[operator]


class ProgramAPI:
    """The per-rank MPI library handle passed to program main functions."""

    def __init__(
        self,
        ctx: RankContext,
        comm_world: Comm,
        comm_universe: Comm | None = None,
    ):
        self.ctx = ctx
        self.comm_world = comm_world
        #: The real MPMD-wide communicator (paper's MPI_COMM_UNIVERSE); equals
        #: comm_world when the program is not virtualized.
        self.comm_universe = comm_universe or comm_world
        self._finalized = False

    # -- identity --------------------------------------------------------------------

    @property
    def rank(self) -> int:
        return self.comm_world.rank

    @property
    def size(self) -> int:
        return self.comm_world.size

    @property
    def partition(self) -> PartitionInfo:
        return self.ctx.partition

    @property
    def now(self) -> float:
        return self.ctx.kernel.now

    def wtime(self) -> float:
        """``MPI_Wtime``."""
        return self.ctx.kernel.now

    # -- lifecycle --------------------------------------------------------------------

    def init(self):
        """Generator: MPI_Init.  Interceptors may attach setup work here."""

        def _impl():
            yield self.ctx.kernel.timeout(0.0)

        yield from self.ctx.pmpi.around(
            "MPI_Init",
            _impl(),
            comm_id=self.comm_world.id,
            comm_rank=self.comm_world.rank,
            comm_size=self.comm_world.size,
        )
        self.ctx.t_init = self.ctx.kernel.now

    def finalize(self):
        """Generator: MPI_Finalize.  Interceptors flush/close here."""
        if self._finalized:
            raise MPIError(f"double finalize on rank {self.ctx.global_rank}")

        def _impl():
            yield self.ctx.kernel.timeout(0.0)

        yield from self.ctx.pmpi.around(
            "MPI_Finalize",
            _impl(),
            comm_id=self.comm_world.id,
            comm_rank=self.comm_world.rank,
            comm_size=self.comm_world.size,
        )
        self.ctx.t_finalize = self.ctx.kernel.now
        self._finalized = True
        self.ctx.pmpi.detach_all()

    # -- modelled computation ------------------------------------------------------------

    def compute(self, seconds: float):
        """Generator: model a CPU-bound phase of the given duration."""
        if seconds < 0:
            raise ConfigError(f"negative compute time: {seconds}")
        yield self.ctx.kernel.timeout(seconds)

    def compute_flops(self, flops: float):
        """Generator: model a CPU phase of ``flops`` floating-point ops."""
        yield from self.compute(flops / self.ctx.world.machine.core_flops_effective)

    # -- waits (route through comm for interception) -------------------------------------

    def wait(self, request: Request):
        result = yield from self.comm_world.wait(request)
        return result

    def waitall(self, requests: list[Request]):
        result = yield from self.comm_world.waitall(requests)
        return result

    def waitany(self, requests: list[Request]):
        result = yield from _waitany(self.ctx.kernel, requests)
        return result

    # -- instrumented POSIX I/O (the density module covers POSIX calls too) --------------

    def posix(self, name: str, nbytes: int = 0, seconds: float = 0.0):
        """Generator: model a POSIX call (open/read/write/close).

        The call's duration is charged to the rank and the call is visible
        to PMPI interceptors, so instrumentation records it exactly like an
        MPI event (paper Sec. IV-D: density maps exist "for all MPI and most
        POSIX calls").
        """
        if name not in ("open", "read", "write", "close"):
            raise ConfigError(f"unsupported POSIX call {name!r}")
        if seconds < 0 or nbytes < 0:
            raise ConfigError("posix() needs non-negative nbytes/seconds")

        def _impl():
            yield self.ctx.kernel.timeout(seconds)

        yield from self.ctx.pmpi.around(
            name,
            _impl(),
            comm_id=self.comm_world.id,
            comm_rank=self.comm_world.rank,
            comm_size=self.comm_world.size,
            nbytes=nbytes,
        )

    # -- partition queries (VMPI fills these with meaning) -------------------------------

    def partition_count(self) -> int:
        return len(self.ctx.world.partitions)

    def partition_by_name(self, name: str) -> PartitionInfo | None:
        return self.ctx.world.partition_by_name(name)

    def partition_by_index(self, index: int) -> PartitionInfo:
        return self.ctx.world.partitions[index]
