"""Figure 14 — global VMPI Stream throughput vs writer/reader ratio.

Paper: peak 98.5 GB/s at 2560 writers + 2560 readers; throughput decreases
with the ratio; streams beat the job-scaled file system until ~1/25.
"""

import pytest

from repro.bench import fig14_stream_throughput
from repro.util.units import GB


@pytest.fixture(scope="module")
def result(scale):
    return fig14_stream_throughput(scale=scale)


def test_fig14_regenerate(benchmark, scale, show):
    data = benchmark.pedantic(
        lambda: fig14_stream_throughput(scale=scale), rounds=1, iterations=1
    )
    show(data.table())


class TestShape:
    def test_throughput_non_increasing_with_ratio(self, result):
        by_writers = {}
        for p in result.points:
            by_writers.setdefault(p["writers"], []).append(p)
        for writers, points in by_writers.items():
            points.sort(key=lambda p: p["ratio"])
            for a, b in zip(points, points[1:]):
                assert b["throughput"] <= a["throughput"] * 1.01, (
                    f"throughput increased with ratio at {writers} writers"
                )

    def test_throughput_grows_with_writers_at_ratio_one(self, result):
        ratio_one = sorted(
            (p for p in result.points if p["ratio"] == 1),
            key=lambda p: p["writers"],
        )
        for a, b in zip(ratio_one, ratio_one[1:]):
            assert b["throughput"] > a["throughput"]

    def test_peak_at_full_ratio(self, result):
        peak = result.peak()
        assert peak["ratio"] == 1
        assert peak["writers"] == max(p["writers"] for p in result.points)

    def test_streams_beat_scaled_fs_at_moderate_ratios(self, result):
        for p in result.points:
            if p["ratio"] <= 4:
                assert p["throughput"] > p["fs_scaled"]

    def test_all_bytes_delivered(self, result):
        for p in result.points:
            assert p["bytes"] > 0


@pytest.mark.skipif(
    "config.getoption('--benchmark-disable', default=False)", reason="paper-scale spot check"
)
def test_paper_peak_spot_check(scale):
    """The calibrated headline number: ~98.5 GB/s at 2560/2560 writers."""
    from repro.bench.figures import _stream_point
    from repro.network.machine import TERA100
    from repro.util.units import MIB

    if scale != "paper":
        pytest.skip("run with REPRO_BENCH_SCALE=paper for the full grid")
    point = _stream_point(TERA100, 2560, 1, 1024 * MIB, MIB, 0)
    assert point["throughput"] == pytest.approx(98.5 * GB, rel=0.05)
