"""Shared simulation resources.

* :class:`Resource` — counted semaphore with a FIFO wait queue.
* :class:`Store` — FIFO item queue with optional capacity (blocking put/get).
* :class:`Pipe` — a *serialized bandwidth channel*: transfers occupy the pipe
  back-to-back, so concurrent transfers share the bandwidth by queueing.  This
  is the O(1) flow-approximation used for NICs, bisection capacity and
  file-system lanes: aggregate throughput through a pipe can never exceed its
  bandwidth, and FIFO ordering keeps simulations deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from repro.errors import SimulationError
from repro.simt.primitives import SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.simt.kernel import Kernel


class Resource:
    """Counted resource; ``yield res.acquire()`` then ``res.release()``."""

    def __init__(self, kernel: "Kernel", capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"Resource capacity must be >= 1, got {capacity}")
        self.kernel = kernel
        self.capacity = capacity
        self.name = name or "resource"
        self.in_use = 0
        self._waiters: deque[SimEvent] = deque()

    def acquire(self) -> SimEvent:
        """Return an event that fires once a slot is granted to the caller."""
        ev = SimEvent(self.kernel, name=f"{self.name}.acquire")
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Free one slot; the longest-waiting acquirer (if any) gets it."""
        if self.in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name}")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1

    def cancel(self, ev: SimEvent) -> bool:
        """Withdraw a still-queued acquire; True if it was removed.

        An acquire that already succeeded holds a slot and cannot be
        cancelled — the caller owns it and must release it.
        """
        try:
            self._waiters.remove(ev)
            return True
        except ValueError:
            return False

    @property
    def queue_length(self) -> int:
        return len(self._waiters)


class Store:
    """FIFO store of items with optional bounded capacity."""

    def __init__(self, kernel: "Kernel", capacity: int | None = None, name: str = ""):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"Store capacity must be >= 1, got {capacity}")
        self.kernel = kernel
        self.capacity = capacity
        self.name = name or "store"
        self._items: deque[Any] = deque()
        self._getters: deque[SimEvent] = deque()
        self._putters: deque[tuple[SimEvent, Any]] = deque()

    def put(self, item: Any) -> SimEvent:
        """Deposit an item; blocks (pending event) while the store is full."""
        ev = SimEvent(self.kernel, name=f"{self.name}.put")
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            self._getters.popleft().succeed(item)
            ev.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> SimEvent:
        """Withdraw the oldest item; blocks while the store is empty."""
        ev = SimEvent(self.kernel, name=f"{self.name}.get")
        if self._items:
            ev.succeed(self._items.popleft())
            if self._putters:
                put_ev, item = self._putters.popleft()
                self._items.append(item)
                put_ev.succeed()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        if self._putters:
            put_ev, pending = self._putters.popleft()
            self._items.append(pending)
            put_ev.succeed()
        return True, item

    def __len__(self) -> int:
        return len(self._items)


class Pipe:
    """Serialized bandwidth channel with optional per-transfer latency.

    ``transfer(nbytes)`` returns an event firing when the transfer would
    complete under FIFO sharing of the pipe's bandwidth.  Cost per call is
    O(log n) (one timeout), independent of the number of concurrent flows.
    """

    def __init__(
        self,
        kernel: "Kernel",
        bandwidth: float,
        latency: float = 0.0,
        name: str = "",
    ):
        if bandwidth <= 0:
            raise SimulationError(f"Pipe bandwidth must be > 0, got {bandwidth}")
        if latency < 0:
            raise SimulationError(f"Pipe latency must be >= 0, got {latency}")
        self.kernel = kernel
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.name = name or "pipe"
        self._busy_until = 0.0
        self.bytes_transferred = 0
        self.busy_time = 0.0
        self.transfers = 0

    def scale_bandwidth(self, factor: float) -> float:
        """Multiply the pipe's bandwidth by ``factor`` (fault injection).

        Transfers already committed keep their completion times; only
        future commits see the new rate.  Returns the new bandwidth.
        """
        if factor <= 0:
            raise SimulationError(f"bandwidth factor must be > 0, got {factor}")
        self.bandwidth *= factor
        return self.bandwidth

    def commit(self, nbytes: float) -> float:
        """Book ``nbytes`` on the pipe; returns the absolute completion time.

        The cheap primitive behind :meth:`transfer` — callers combining
        several pipes can take the max of the commit times and schedule a
        single timeout.
        """
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes}")
        start = max(self.kernel.now, self._busy_until)
        duration = nbytes / self.bandwidth
        self._busy_until = start + duration
        self.bytes_transferred += int(nbytes)
        self.busy_time += duration
        self.transfers += 1
        return self._busy_until + self.latency

    def transfer(self, nbytes: float) -> SimEvent:
        """Schedule ``nbytes`` through the pipe; event fires at completion."""
        done = self.commit(nbytes)
        return self.kernel.timeout(done - self.kernel.now)

    def eta(self, nbytes: float) -> float:
        """Completion time a transfer issued now would have (no side effects)."""
        start = max(self.kernel.now, self._busy_until)
        return start + nbytes / self.bandwidth + self.latency

    @property
    def backlog_seconds(self) -> float:
        """How far ahead of *now* the pipe is already committed."""
        return max(0.0, self._busy_until - self.kernel.now)

    def utilization(self, horizon: float | None = None) -> float:
        """Fraction of elapsed simulated time the pipe was busy."""
        elapsed = horizon if horizon is not None else self.kernel.now
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)
