"""Real-time performance alerts — the paper's "real-time" module family.

Section VI mentions modules "performing real-time performance analysis" as
an area of interest.  This module watches the event stream *as it arrives*
and raises alerts the moment a rank crosses a behavioural threshold —
something a post-mortem tool cannot do by construction, and therefore a
good demonstration of what online coupling buys.

Detectors:

* **waiting-fraction** — a rank spends more than ``wait_threshold`` of a
  sliding window inside blocking calls (late-sender symptom);
* **message-rate** — a rank emits more than ``rate_threshold`` p2p messages
  per second of simulated time (runaway communication);
* **silence** — a previously chatty rank produced no events for more than
  ``silence_threshold`` seconds (hang symptom; evaluated on closing).

The :class:`AlertRouter` is the common fan-out bus: application-level
:class:`Alert`\\ s and the self-telemetry monitor's
:class:`~repro.telemetry.monitor.HealthAlert`\\ s share it (both expose a
``kind`` attribute), so one subscriber can watch the applications and the
measurement pipeline itself through a single subscription surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.errors import ConfigError, ReproError
from repro.instrument.events import CALL_IDS, P2P_SEND_CALLS, WAIT_CALLS

_BLOCKING = np.array(sorted(set(WAIT_CALLS) | {CALL_IDS["MPI_Recv"]}), dtype="<u2")
_SENDS = np.array(sorted(P2P_SEND_CALLS), dtype="<u2")


@dataclass(frozen=True)
class Alert:
    """One raised alert."""

    kind: str  # "waiting" | "message_rate" | "silence"
    app: str
    rank: int
    t_detect: float
    value: float
    threshold: float

    def describe(self) -> str:
        return (
            f"[{self.t_detect:.6f}s] {self.app} rank {self.rank}: "
            f"{self.kind} = {self.value:.3g} exceeds {self.threshold:.3g}"
        )


@dataclass
class AlertConfig:
    wait_threshold: float = 0.6  # fraction of window inside blocking calls
    rate_threshold: float = 1e6  # p2p sends per second
    silence_threshold: float = 5.0  # seconds without events
    window: float = 0.05  # sliding window length, seconds

    def __post_init__(self) -> None:
        if not (0 < self.wait_threshold <= 1):
            raise ConfigError("wait_threshold must be in (0, 1]")
        if self.rate_threshold <= 0 or self.silence_threshold <= 0:
            raise ConfigError("thresholds must be positive")
        if self.window <= 0:
            raise ConfigError("window must be positive")


class AlertRouter:
    """Fan-out bus for alerts: subscribe handlers, keep bounded history.

    Any object with a ``kind`` attribute routes — both the application
    :class:`Alert` and the monitor's ``HealthAlert``.  Handlers subscribed
    with ``kind=None`` see everything; otherwise only their kind.  History
    is bounded so a pathological alert storm cannot grow without limit.
    """

    def __init__(self, history: int = 1024):
        if history < 1:
            raise ConfigError(f"router history must be >= 1, got {history}")
        self.history = history
        self.alerts: list[Any] = []
        self.routed = 0
        self.dropped = 0
        self._handlers: list[tuple[str | None, Callable[[Any], None]]] = []

    def subscribe(self, handler: Callable[[Any], None], kind: str | None = None) -> None:
        """Register a handler for one alert kind (None = all kinds)."""
        if not callable(handler):
            raise ConfigError("alert handler must be callable")
        self._handlers.append((kind, handler))

    def route(self, alert: Any) -> Any:
        """Record the alert and deliver it to every matching handler."""
        kind = getattr(alert, "kind", None)
        if kind is None:
            raise ReproError(f"cannot route object without a kind: {alert!r}")
        self.routed += 1
        self.alerts.append(alert)
        excess = len(self.alerts) - self.history
        if excess > 0:
            del self.alerts[:excess]
            self.dropped += excess
        for want, handler in self._handlers:
            if want is None or want == kind:
                handler(alert)
        return alert

    def by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for alert in self.alerts:
            out[alert.kind] = out.get(alert.kind, 0) + 1
        return out


class AlertMonitor:
    """Mergeable online alert detector (one per application level)."""

    def __init__(
        self,
        app: str,
        app_size: int,
        config: AlertConfig | None = None,
        router: AlertRouter | None = None,
    ):
        if app_size <= 0:
            raise ReproError(f"app_size must be > 0, got {app_size}")
        self.app = app
        self.app_size = app_size
        self.config = config or AlertConfig()
        self.router = router
        self.alerts: list[Alert] = []
        self._last_event = np.zeros(app_size)
        self._seen = np.zeros(app_size, dtype=bool)
        # Per (rank, kind) dedup so one condition raises once per window.
        self._raised_until: dict[tuple[int, str], float] = {}

    # -- online path -----------------------------------------------------------------

    def update(self, rank: int, events: np.ndarray) -> list[Alert]:
        """Inspect one batch; returns alerts raised by this batch."""
        if not (0 <= rank < self.app_size):
            raise ReproError(f"batch from rank {rank} outside app of {self.app_size}")
        if len(events) == 0:
            return []
        new: list[Alert] = []
        cfg = self.config
        t_lo = float(events["t_start"].min())
        t_hi = float(events["t_end"].max())
        self._seen[rank] = True
        self._last_event[rank] = max(self._last_event[rank], t_hi)
        span = max(t_hi - t_lo, 1e-12)

        durations = events["t_end"] - events["t_start"]
        blocking = float(durations[np.isin(events["call"], _BLOCKING)].sum())
        window = max(span, cfg.window)
        wait_fraction = blocking / window
        if wait_fraction > cfg.wait_threshold:
            new += self._raise("waiting", rank, t_hi, wait_fraction, cfg.wait_threshold)

        sends = int(np.isin(events["call"], _SENDS).sum())
        rate = sends / window
        if rate > cfg.rate_threshold:
            new += self._raise("message_rate", rank, t_hi, rate, cfg.rate_threshold)

        self._record(new)
        return new

    def finalize(self, t_end: float) -> list[Alert]:
        """Closing pass: silence detection against the app end time."""
        new: list[Alert] = []
        for rank in range(self.app_size):
            if not self._seen[rank]:
                continue
            silence = t_end - self._last_event[rank]
            if silence > self.config.silence_threshold:
                new += self._raise(
                    "silence", rank, t_end, silence, self.config.silence_threshold
                )
        self._record(new)
        return new

    def _record(self, new: list[Alert]) -> None:
        self.alerts.extend(new)
        if self.router is not None:
            for alert in new:
                self.router.route(alert)

    def _raise(
        self, kind: str, rank: int, t: float, value: float, threshold: float
    ) -> list[Alert]:
        key = (rank, kind)
        if self._raised_until.get(key, -1.0) >= t:
            return []
        self._raised_until[key] = t + self.config.window
        return [Alert(kind=kind, app=self.app, rank=rank, t_detect=t,
                      value=value, threshold=threshold)]

    # -- reduction --------------------------------------------------------------------

    def merge(self, other: "AlertMonitor") -> None:
        if other.app != self.app or other.app_size != self.app_size:
            raise ReproError("merging alert monitors of different applications")
        self.alerts.extend(other.alerts)
        np.maximum(self._last_event, other._last_event, out=self._last_event)
        self._seen |= other._seen

    def by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for alert in self.alerts:
            out[alert.kind] = out.get(alert.kind, 0) + 1
        return out
