"""NAS-MPI benchmark communication skeletons (classes C and D).

Problem classes carry the published NPB grid sizes, iteration counts and
total operation counts; communication patterns follow each benchmark's
documented structure (BT/SP multi-partition sweeps, LU wavefront pipeline,
CG butterfly exchanges, FT transpose all-to-all, MG V-cycle halos).
"""

from repro.apps.nas.adi import BT, SP
from repro.apps.nas.lu import LU
from repro.apps.nas.cg import CG
from repro.apps.nas.ft import FT
from repro.apps.nas.mg import MG
from repro.apps.nas.ep import EP

KERNELS = {k.name: k for k in (BT, SP, LU, CG, FT, MG, EP)}


def nas_kernel(name: str, nprocs: int, klass: str = "C", iterations: int = 5):
    """Factory: ``nas_kernel("SP", 900, "D")``."""
    try:
        cls = KERNELS[name.upper()]
    except KeyError:
        raise KeyError(f"unknown NAS kernel {name!r}; have {sorted(KERNELS)}") from None
    return cls(nprocs=nprocs, klass=klass, iterations=iterations)


__all__ = ["BT", "SP", "LU", "CG", "FT", "MG", "EP", "KERNELS", "nas_kernel"]
