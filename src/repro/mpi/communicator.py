"""Communicators: shared groups and per-rank views.

:class:`CommGroup` is the shared state of a communicator (member list,
collective engine).  :class:`Comm` is the handle a specific rank holds —
its methods are generators driven by that rank's process.  All byte counts
are explicit (``nbytes``); optional ``payload`` objects ride along for
convenience (the VMPI layer ships real event packs this way).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.errors import CommunicatorError, MPIError
from repro.mpi.collectives import CollectiveEngine
from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG
from repro.mpi.message import Envelope
from repro.mpi.request import Request, waitall as _waitall
from repro.mpi.status import Status
from repro.simt.primitives import SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.world import RankContext, World


class CommGroup:
    """Shared communicator state: ordered global ranks + collective engine."""

    def __init__(self, world: "World", global_ranks: tuple[int, ...], label: str):
        if len(set(global_ranks)) != len(global_ranks):
            raise CommunicatorError(f"duplicate ranks in group {label}")
        self.world = world
        self.global_ranks = tuple(global_ranks)
        self.label = label
        self.id = world._register_group(self)
        self.rank_of_global = {g: i for i, g in enumerate(self.global_ranks)}
        self.coll = CollectiveEngine(self)

    @property
    def size(self) -> int:
        return len(self.global_ranks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CommGroup {self.label} id={self.id} size={self.size}>"


class Comm:
    """One rank's handle on a communicator.  All methods are generators."""

    def __init__(self, group: CommGroup, rank: int, ctx: "RankContext"):
        if not (0 <= rank < group.size):
            raise CommunicatorError(f"rank {rank} outside group of {group.size}")
        self.group = group
        self.rank = rank
        self.ctx = ctx
        self._coll_seq = 0

    # -- basic properties ---------------------------------------------------------

    @property
    def size(self) -> int:
        return self.group.size

    @property
    def id(self) -> int:
        return self.group.id

    @property
    def label(self) -> str:
        return self.group.label

    def global_rank_of(self, rank: int) -> int:
        if not (0 <= rank < self.size):
            raise CommunicatorError(
                f"rank {rank} outside communicator {self.label} of size {self.size}"
            )
        return self.group.global_ranks[rank]

    # -- point-to-point -------------------------------------------------------------

    def isend(self, dest: int, nbytes: int, tag: int = 0, payload: Any = None):
        """Generator: start a non-blocking send; returns a Request."""
        impl = self._isend_impl(dest, nbytes, tag, payload)
        req = yield from self.ctx.pmpi.around(
            "MPI_Isend",
            impl,
            comm_id=self.id,
            comm_rank=self.rank,
            comm_size=self.size,
            peer=dest,
            tag=tag,
            nbytes=nbytes,
        )
        return req

    def send(self, dest: int, nbytes: int, tag: int = 0, payload: Any = None):
        """Generator: blocking send (completes per eager/rendezvous rules)."""
        impl = self._send_impl(dest, nbytes, tag, payload)
        yield from self.ctx.pmpi.around(
            "MPI_Send",
            impl,
            comm_id=self.id,
            comm_rank=self.rank,
            comm_size=self.size,
            peer=dest,
            tag=tag,
            nbytes=nbytes,
        )

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Generator: post a non-blocking receive; returns a Request."""
        impl = self._irecv_impl(source, tag)
        req = yield from self.ctx.pmpi.around(
            "MPI_Irecv",
            impl,
            comm_id=self.id,
            comm_rank=self.rank,
            comm_size=self.size,
            peer=source,
            tag=tag,
            nbytes=0,
        )
        return req

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Generator: blocking receive; returns the matched Status."""
        impl = self._recv_impl(source, tag)
        status = yield from self.ctx.pmpi.around(
            "MPI_Recv",
            impl,
            comm_id=self.id,
            comm_rank=self.rank,
            comm_size=self.size,
            peer=source,
            tag=tag,
            post=lambda st: {"peer": st.source, "nbytes": st.nbytes, "tag": st.tag},
        )
        return status

    def sendrecv(
        self,
        dest: int,
        send_nbytes: int,
        source: int = ANY_SOURCE,
        tag: int = 0,
        recv_tag: int | None = None,
        payload: Any = None,
    ):
        """Generator: combined send+receive; returns the receive Status."""

        def _impl():
            send_req = yield from self._raw_isend(dest, send_nbytes, tag, payload)
            recv_ev = self.ctx.mailbox.post(
                self.id,
                source,
                tag if recv_tag is None else recv_tag,
                self.ctx.world.cost.o_recv,
            )
            status = yield recv_ev
            yield send_req.event
            return status

        status = yield from self.ctx.pmpi.around(
            "MPI_Sendrecv",
            _impl(),
            comm_id=self.id,
            comm_rank=self.rank,
            comm_size=self.size,
            peer=dest,
            tag=tag,
            nbytes=send_nbytes,
        )
        return status

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Generator: non-blocking probe; returns Status or None."""

        def _impl():
            yield self.ctx.kernel.timeout(0.0)
            env = self.ctx.mailbox.probe(self.id, source, tag)
            if env is None:
                return None
            return Status(source=env.src, tag=env.tag, nbytes=env.nbytes)

        result = yield from self.ctx.pmpi.around(
            "MPI_Iprobe",
            _impl(),
            comm_id=self.id,
            comm_rank=self.rank,
            comm_size=self.size,
            peer=source,
            tag=tag,
        )
        return result

    # -- p2p implementations ----------------------------------------------------------

    def _raw_isend(self, dest: int, nbytes: int, tag: int, payload: Any):
        """Generator: the un-intercepted isend machinery."""
        if nbytes < 0:
            raise MPIError(f"negative message size: {nbytes}")
        ctx = self.ctx
        cost = ctx.world.cost
        kernel = ctx.kernel
        g_src = self.global_rank_of(self.rank)
        g_dst = self.global_rank_of(dest)
        eager = nbytes <= cost.eager_threshold
        # Sender CPU: the send overhead, plus the copy into MPI buffering on
        # the eager path — charged as one timeout.
        cpu = cost.o_send + (nbytes / cost.eager_copy_bandwidth if eager else 0.0)
        yield kernel.timeout(cpu)
        arrival = ctx.world.cluster.transfer(g_src, g_dst, nbytes)
        match_event: SimEvent | None = None
        if eager:
            completion = SimEvent(kernel, name="isend.eager")
            completion.succeed()
        else:
            match_event = SimEvent(kernel, name="isend.match")
            completion = kernel.all_of([match_event, arrival])
        env = Envelope(
            comm_id=self.id,
            src=self.rank,
            tag=tag,
            nbytes=nbytes,
            payload=payload,
            arrival=arrival,
            match_event=match_event,
        )
        ctx.world.ranks[g_dst].mailbox.deliver(env)
        req = Request(kernel, completion, "send")
        req.envelope = env
        return req

    def _isend_impl(self, dest: int, nbytes: int, tag: int, payload: Any):
        req = yield from self._raw_isend(dest, nbytes, tag, payload)
        return req

    def _send_impl(self, dest: int, nbytes: int, tag: int, payload: Any):
        req = yield from self._raw_isend(dest, nbytes, tag, payload)
        yield req.event

    def _irecv_impl(self, source: int, tag: int):
        completion = self.ctx.mailbox.post(
            self.id, source, tag, self.ctx.world.cost.o_recv
        )
        return Request(self.ctx.kernel, completion, "recv")
        yield  # pragma: no cover - keeps this function a generator

    def _recv_impl(self, source: int, tag: int):
        completion = self.ctx.mailbox.post(
            self.id, source, tag, self.ctx.world.cost.o_recv
        )
        status = yield completion
        return status

    # -- collectives -----------------------------------------------------------------

    def _collective(
        self,
        mpi_name: str,
        op: str,
        nbytes: int,
        root: int = 0,
        payload: Any = None,
        reduce_fn: Callable | None = None,
    ):
        if not (0 <= root < self.size):
            raise CommunicatorError(f"root {root} outside {self.label}")
        seq = self._coll_seq
        self._coll_seq += 1

        def _impl():
            completion = self.group.coll.join(
                self.rank, seq, op, nbytes, root=root, payload=payload, reduce_fn=reduce_fn
            )
            result = yield completion
            return result

        result = yield from self.ctx.pmpi.around(
            mpi_name,
            _impl(),
            comm_id=self.id,
            comm_rank=self.rank,
            comm_size=self.size,
            peer=-1,
            tag=-1,
            nbytes=nbytes,
        )
        return result

    def barrier(self):
        """Generator: synchronize all ranks of the communicator."""
        yield from self._collective("MPI_Barrier", "barrier", 0)

    def bcast(self, nbytes: int, root: int = 0, payload: Any = None):
        """Generator: broadcast; returns root's payload on every rank."""
        result = yield from self._collective("MPI_Bcast", "bcast", nbytes, root, payload)
        return result

    def reduce(self, nbytes: int, root: int = 0, payload: Any = None, reduce_fn=None):
        """Generator: reduce to root; returns folded payload at root else None."""
        result = yield from self._collective(
            "MPI_Reduce", "reduce", nbytes, root, payload, reduce_fn
        )
        return result

    def allreduce(self, nbytes: int, payload: Any = None, reduce_fn=None):
        """Generator: allreduce; returns folded payload on every rank."""
        result = yield from self._collective(
            "MPI_Allreduce", "allreduce", nbytes, 0, payload, reduce_fn
        )
        return result

    def gather(self, nbytes: int, root: int = 0, payload: Any = None):
        """Generator: gather; returns rank-ordered list at root else None."""
        result = yield from self._collective("MPI_Gather", "gather", nbytes, root, payload)
        return result

    def allgather(self, nbytes: int, payload: Any = None):
        """Generator: allgather; returns rank-ordered list on every rank."""
        result = yield from self._collective("MPI_Allgather", "allgather", nbytes, 0, payload)
        return result

    def scatter(self, nbytes: int, root: int = 0, payload: Any = None):
        """Generator: scatter; root passes a list, each rank gets its item."""
        result = yield from self._collective("MPI_Scatter", "scatter", nbytes, root, payload)
        return result

    def alltoall(self, nbytes: int, payload: Any = None):
        """Generator: all-to-all; ``nbytes`` is the per-pair chunk size."""
        result = yield from self._collective("MPI_Alltoall", "alltoall", nbytes, 0, payload)
        return result

    def reduce_scatter(self, nbytes: int, payload: Any = None, reduce_fn=None):
        """Generator: reduce-scatter (folded result delivered to every rank)."""
        result = yield from self._collective(
            "MPI_Reduce_scatter", "reduce_scatter", nbytes, 0, payload, reduce_fn
        )
        return result

    # -- wait operations (intercepted: profilers track time in waits) ----------------

    def wait(self, request: Request):
        """Generator: MPI_Wait on one request; returns its Status (or None)."""
        result = yield from self.ctx.pmpi.around(
            "MPI_Wait",
            request.wait(),
            comm_id=self.id,
            comm_rank=self.rank,
            comm_size=self.size,
            post=lambda st: (
                {"peer": st.source, "nbytes": st.nbytes, "tag": st.tag}
                if isinstance(st, Status)
                else {}
            ),
        )
        return result

    def waitall(self, requests: list[Request]):
        """Generator: MPI_Waitall; returns the list of statuses."""
        total = sum(
            (r.event.value.nbytes if isinstance(r.event.value, Status) else 0)
            for r in requests
        )

        def _post(statuses):
            nbytes = sum(st.nbytes for st in statuses if isinstance(st, Status))
            return {"nbytes": nbytes}

        result = yield from self.ctx.pmpi.around(
            "MPI_Waitall",
            _waitall(self.ctx.kernel, requests),
            comm_id=self.id,
            comm_rank=self.rank,
            comm_size=self.size,
            nbytes=total,
            post=_post,
        )
        return result

    # -- communicator management -------------------------------------------------------

    def split(self, color: int | None, key: int | None = None):
        """Generator: MPI_Comm_split; returns the new Comm (None if color<0)."""
        sort_key = self.rank if key is None else key
        seq = self._coll_seq
        self._coll_seq += 1

        def _impl():
            completion = self.group.coll.join(
                self.rank,
                seq,
                "allgather",
                nbytes=12,
                payload=(color, sort_key, self.rank),
            )
            triples = yield completion
            if color is None or color < 0:
                return None
            mine = sorted((k, r) for (c, k, r) in triples if c == color)
            members = tuple(self.global_rank_of(r) for _k, r in mine)
            group = self.ctx.world.intern_group(
                members,
                f"{self.label}/split{color}",
                key=(self.id, "split", seq, color),
            )
            new_rank = members.index(self.global_rank_of(self.rank))
            return Comm(group, new_rank, self.ctx)

        result = yield from self.ctx.pmpi.around(
            "MPI_Comm_split",
            _impl(),
            comm_id=self.id,
            comm_rank=self.rank,
            comm_size=self.size,
        )
        return result

    def dup(self):
        """Generator: MPI_Comm_dup; returns a new Comm over the same group."""
        seq = self._coll_seq
        self._coll_seq += 1

        def _impl():
            completion = self.group.coll.join(self.rank, seq, "barrier", nbytes=0)
            yield completion
            group = self.ctx.world.intern_group(
                self.group.global_ranks,
                f"{self.label}/dup",
                key=(self.id, "dup", seq),
            )
            return Comm(group, self.rank, self.ctx)

        result = yield from self.ctx.pmpi.around(
            "MPI_Comm_dup",
            _impl(),
            comm_id=self.id,
            comm_rank=self.rank,
            comm_size=self.size,
        )
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Comm {self.label} rank={self.rank}/{self.size}>"
