"""CouplingSession: wire applications + analyzer into one MPMD job.

The session builds the full measurement chain of the paper:

1. every application partition is launched virtualized (its own
   ``MPI_COMM_WORLD``) with a :class:`StreamingInstrumentation` interceptor
   attached before its first MPI call;
2. an ``Analyzer`` partition (sized by the writer/reader *ratio* of paper
   Figure 14, ``Nr = max(1, floor(Nw / ratio))``) runs the blackboard
   analysis engine;
3. after the simulation drains, the analyzer root's report and all
   bookkeeping are exposed as a :class:`SessionResult`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import ConfigError, ReproError
from repro.analysis.engine import AnalysisConfig, analyzer_program
from repro.codec.stages import build_chain
from repro.analysis.report import ProfileReport
from repro.apps.base import AppKernel
from repro.faults import FaultInjector, FaultPlan
from repro.instrument.interceptor import StreamingInstrumentation
from repro.instrument.overhead import InstrumentationCost
from repro.mpi.world import World
from repro.network.machine import MachineSpec, TERA100
from repro.analysis.alerts import AlertRouter
from repro.obs.bus import ObservabilityBus
from repro.obs.registry import (
    HEALTH_SCHEMA,
    METRICS_SCHEMA,
    REGISTRY,
    STEERING_SCHEMA,
    make_record,
)
from repro.obs.sinks import FileSink, RingSink, TailServer
from repro.steering import SteeringController, SteeringPolicy
from repro.telemetry import FlowRegistry, NULL_TELEMETRY, Telemetry
from repro.telemetry import hostprof as _hostprof
from repro.telemetry.export import jsonl_records as _telemetry_records
from repro.telemetry.monitor import HealthMonitor, MonitorConfig
from repro.telemetry.popmetrics import PopConfig, PopMetricsEngine
from repro.telemetry.stream_export import MetricsStreamWriter
from repro.vmpi.virtualization import VirtualizedLauncher

#: reserved partition name of the analysis engine
ANALYZER_PARTITION = "Analyzer"


@dataclass
class AppRun:
    """Per-application outcome."""

    name: str
    nprocs: int
    walltime: float
    events: int
    packs: int
    modeled_stream_bytes: int
    #: packs discarded by overflow policies or injected transport faults
    packs_dropped: int = 0

    @property
    def bi_bandwidth(self) -> float:
        """Aggregate instrumentation bandwidth Bi = event volume / time."""
        if self.walltime <= 0:
            return 0.0
        return self.modeled_stream_bytes / self.walltime


@dataclass
class SessionResult:
    """Everything a session run produced."""

    report: ProfileReport | None
    apps: dict[str, AppRun]
    analyzer_walltime: float | None
    analyzer_nprocs: int
    analyzer_stats: dict[str, Any] | None
    world: World = field(repr=False, default=None)
    #: ``HealthMonitor.summary()`` when a monitor watched the run.
    health: dict[str, Any] | None = None
    #: True when any injected fault actually fired during the run.
    degraded: bool = False
    #: ``FaultInjector.summary()`` when a fault plan was attached.
    faults: dict[str, Any] | None = None
    #: Fraction of emitted packs that never reached analysis (dropped,
    #: corrupted-and-rejected, or lost to a crash).  0.0 in healthy runs.
    data_loss_fraction: float = 0.0
    #: ``FlowRegistry.summary()`` when provenance tracing was enabled:
    #: per-stage latency statistics, watermarks and the critical path.
    flows: dict[str, Any] | None = None
    #: Event-reduction summary (chain spec, wire/content bytes, codec CPU)
    #: when a reduction chain was active; None for identity runs.
    reduction: dict[str, Any] | None = None
    #: ``PopMetricsEngine.summary()`` when time-resolved efficiency metrics
    #: were enabled: per-phase POP metrics, window count, end-of-run totals.
    efficiency: dict[str, Any] | None = None
    #: ``SteeringController.summary()`` when adaptive steering was enabled:
    #: the policy, the decision journal, and the final actuator state.
    steering: dict[str, Any] | None = None
    #: ``ObservabilityBus.summary()`` when the unified observability bus
    #: was enabled: per-schema record counts and per-sink delivery stats.
    obs: dict[str, Any] | None = None

    def app(self, name: str) -> AppRun:
        try:
            return self.apps[name]
        except KeyError:
            raise KeyError(f"no application {name!r} in session result") from None


class CouplingSession:
    """Online instrumentation-analysis coupling of one or more applications."""

    def __init__(
        self,
        machine: MachineSpec = TERA100,
        *,
        seed: int = 0,
        instrumentation: InstrumentationCost | None = None,
        analysis: AnalysisConfig | None = None,
        mpi_cost=None,
        telemetry: Telemetry | None = None,
    ):
        self.machine = machine
        self.seed = seed
        self.mpi_cost = mpi_cost
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.instrumentation = instrumentation or InstrumentationCost()
        self.analysis = analysis or AnalysisConfig(
            block_size=self.instrumentation.block_size,
            na_buffers=self.instrumentation.na_buffers,
        )
        self._apps: list[tuple[str, AppKernel]] = []
        self._analyzer_nprocs: int | None = None
        self._ratio: float | None = None
        self._monitor: HealthMonitor | None = None
        self._fault_plan: FaultPlan | None = None
        self._flows: FlowRegistry | None = None
        self._pop: PopMetricsEngine | None = None
        self._pop_writer: MetricsStreamWriter | None = None
        self._steering: SteeringController | None = None
        self._obs: ObservabilityBus | None = None
        self._obs_ring: RingSink | None = None
        self._obs_tail: TailServer | None = None

    # -- configuration ------------------------------------------------------------

    def add_application(self, kernel: AppKernel, name: str | None = None) -> str:
        """Register an application; returns its partition name."""
        name = name or kernel.label
        if name == ANALYZER_PARTITION:
            raise ConfigError(f"{ANALYZER_PARTITION!r} is reserved for the analyzer")
        if any(n == name for n, _ in self._apps):
            raise ConfigError(f"duplicate application name {name!r}")
        self._apps.append((name, kernel))
        return name

    def set_analyzer(self, ratio: float | None = None, nprocs: int | None = None) -> int:
        """Size the analyzer partition.

        Either an explicit rank count or the paper's writer/reader ratio:
        ``Nr = max(1, floor(Nw / ratio))`` over the total application ranks.
        """
        if (ratio is None) == (nprocs is None):
            raise ConfigError("give exactly one of ratio / nprocs")
        if nprocs is not None:
            if nprocs < 1:
                raise ConfigError("analyzer needs at least one rank")
            self._analyzer_nprocs = nprocs
            self._ratio = None
        else:
            if ratio <= 0:
                raise ConfigError(f"ratio must be > 0, got {ratio}")
            self._ratio = float(ratio)
            self._analyzer_nprocs = None
        return self.analyzer_nprocs

    def set_reduction(self, spec: str | Sequence[str] | None) -> str:
        """Choose the event-reduction chain applied to every emitted pack.

        ``spec`` is either a ``"+"``-joined string (``"delta+dict+zlib"``),
        a sequence of stage specs (``["delta", "dict", "zlib"]``), or
        None / ``""`` for the identity chain.  The chain is validated and
        normalized here (:class:`ConfigError` on unknown stages or bad
        ordering) and carried on the wire in each frame's codec-descriptor
        section, so the analyzer decodes exactly what was encoded.

        Returns the normalized chain spec string.
        """
        if spec is None:
            spec_str = ""
        elif isinstance(spec, str):
            spec_str = spec
        else:
            spec_str = "+".join(spec)
        try:
            chain = build_chain(spec_str)
        except ReproError as exc:
            raise ConfigError(f"invalid reduction chain {spec_str!r}: {exc}") from exc
        self.instrumentation = dataclasses.replace(
            self.instrumentation, reduction=chain.spec
        )
        return chain.spec

    def enable_monitor(
        self, config: MonitorConfig | None = None, router=None
    ) -> HealthMonitor:
        """Attach an online health monitor to the upcoming run.

        Requires live telemetry (the monitor reads the instrument stream).
        The monitor samples every instrument into bounded ring series on a
        periodic kernel callback, raises :class:`HealthAlert`\\ s *during*
        the simulation, and publishes them onto the analyzer root's
        blackboard.  It is observation-only: simulation results are
        bit-identical with the monitor on or off.
        """
        if not self.telemetry.enabled:
            raise ConfigError(
                "health monitor needs telemetry; construct the session with "
                "telemetry=Telemetry()"
            )
        if self._monitor is not None:
            raise ConfigError("health monitor already enabled for this session")
        self._monitor = HealthMonitor(self.telemetry, config=config, router=router)
        return self._monitor

    def enable_pop_metrics(
        self,
        config: PopConfig | None = None,
        stream: str | None = None,
    ) -> PopMetricsEngine:
        """Compute time-resolved POP efficiency metrics over the run.

        The engine rides the kernel's periodic-callback hook: every
        ``config.window`` virtual seconds it closes a metric window from
        the interceptors' per-rank time decomposition, detects phase
        boundaries online via a change-point test on the windowed series,
        mirrors the metrics into ``pop.*`` gauges (Chrome-trace counter
        tracks) and — with ``stream`` set — appends schema-versioned NDJSON
        records to that path *as windows close*, so a frontend can tail
        the file mid-run.  Requires live telemetry; observation-only, so
        results are bit-identical with metrics on or off.

        After :meth:`run`, :attr:`SessionResult.efficiency` and the
        report's "Efficiency timeline" section carry the summary.
        """
        if not self.telemetry.enabled:
            raise ConfigError(
                "pop metrics need telemetry; construct the session with "
                "telemetry=Telemetry()"
            )
        if self._pop is not None:
            raise ConfigError("pop metrics already enabled for this session")
        self._pop = PopMetricsEngine(self.telemetry, config=config)
        if stream is not None:
            self._pop_writer = MetricsStreamWriter(stream)
            self._pop.add_sink(self._pop_writer)
        return self._pop

    @property
    def pop_metrics(self) -> PopMetricsEngine | None:
        return self._pop

    def enable_steering(self, policy: SteeringPolicy | None = None) -> SteeringController:
        """Close the control loop: act on health alerts during the run.

        A :class:`~repro.steering.SteeringController` subscribes to the
        health monitor's alert router and — under the given declarative
        :class:`~repro.steering.SteeringPolicy` — escalates/relaxes the
        writers' reduction chain, autoscales the analyzer's modelled
        worker pool, and rebalances writers across analyzer ranks.  The
        monitor (and its router) is created on demand; live telemetry is
        required.  A run in which no decision fires is bit-identical to
        the same run without steering.

        After :meth:`run`, :attr:`SessionResult.steering` and the
        report's "Steering" section carry the decision journal.
        """
        if not self.telemetry.enabled:
            raise ConfigError(
                "steering needs telemetry; construct the session with "
                "telemetry=Telemetry()"
            )
        if self._steering is not None:
            raise ConfigError("steering already enabled for this session")
        if self._monitor is None:
            self.enable_monitor()
        if self._monitor.router is None:
            self._monitor.router = AlertRouter()
        self._steering = SteeringController(policy)
        return self._steering

    @property
    def steering(self) -> SteeringController | None:
        return self._steering

    def enable_observability(
        self,
        path: str | None = None,
        *,
        ring: int | None = 1024,
        tail: str | None = None,
    ) -> ObservabilityBus:
        """Attach the unified observability bus to the upcoming run.

        Every enabled plane publishes its schema-tagged records onto one
        :class:`~repro.obs.bus.ObservabilityBus`: POP metric windows,
        phases and the run summary *as they seal*, health alerts and
        steering decisions *as they fire*, and the telemetry/hostprof
        record dumps at teardown.  Sinks:

        * ``path`` — an NDJSON :class:`~repro.obs.sinks.FileSink` whose
          byte stream for any single schema is identical to that plane's
          legacy exporter;
        * ``ring`` — a bounded in-memory :class:`~repro.obs.sinks.RingSink`
          (None disables it) left queryable after the run via
          :attr:`obs_ring`;
        * ``tail`` — a :class:`~repro.obs.sinks.TailServer` live-feed
          address (``HOST:PORT``, ``:0`` for an ephemeral port, or a Unix
          socket path), resolved address at :attr:`obs_tail`.

        The bus is observation-only: it taps existing observation planes
        and never schedules events, so a run with the bus enabled is
        bit-identical to the same run without it.  After :meth:`run`,
        :attr:`SessionResult.obs` and the report's "Observability" section
        carry the bus summary.
        """
        if self._obs is not None:
            raise ConfigError("observability bus already enabled for this session")
        bus = ObservabilityBus()
        if path is not None:
            bus.add_sink(FileSink(path), name="file")
        if ring is not None:
            self._obs_ring = RingSink(ring)
            bus.add_sink(self._obs_ring, name="ring")
        if tail is not None:
            self._obs_tail = TailServer(tail)
            bus.add_sink(self._obs_tail, name="tail")
        self._obs = bus
        return bus

    @property
    def obs(self) -> ObservabilityBus | None:
        return self._obs

    @property
    def obs_ring(self) -> RingSink | None:
        return self._obs_ring

    @property
    def obs_tail(self) -> TailServer | None:
        return self._obs_tail

    def enable_provenance(self, sample_rate: float = 1.0) -> FlowRegistry:
        """Trace causal pack flows through the upcoming run.

        Every sampled event pack is stamped with a provenance trailer at
        seal time and its hop timestamps (enqueue, send, arrival, read,
        dispatch, analysis done) are recorded in a :class:`FlowRegistry`,
        from which :attr:`SessionResult.flows` derives per-stage latency
        statistics, pipeline watermarks and the end-to-end critical path.

        Sampling is deterministic (seeded from the session seed per
        writer), so same-seed runs produce identical flow records; the
        tracing itself is observation-only — application and analyzer
        timings are bit-identical with provenance on or off.  Works with
        or without telemetry; with telemetry enabled the registry is also
        attached to it so Chrome-trace exports draw the flow arrows.
        """
        if self._flows is not None:
            raise ConfigError("provenance already enabled for this session")
        self._flows = FlowRegistry(seed=self.seed, sample_rate=sample_rate)
        if self.telemetry.enabled:
            self.telemetry.attach_flows(self._flows)
        return self._flows

    def inject_faults(self, plan: FaultPlan) -> None:
        """Attach a fault plan to the upcoming run (chaos testing).

        An empty plan costs nothing: the run stays bit-identical to one
        without any plan.  Faults target the analyzer partition; see
        :mod:`repro.faults.plan` for the fault model.
        """
        if not isinstance(plan, FaultPlan):
            raise ConfigError(f"inject_faults() needs a FaultPlan, got {plan!r}")
        if self._fault_plan is not None:
            raise ConfigError("fault plan already set for this session")
        self._fault_plan = plan

    @property
    def monitor(self) -> HealthMonitor | None:
        return self._monitor

    @property
    def total_app_ranks(self) -> int:
        return sum(k.nprocs for _n, k in self._apps)

    @property
    def analyzer_nprocs(self) -> int:
        if self._analyzer_nprocs is not None:
            return self._analyzer_nprocs
        ratio = self._ratio if self._ratio is not None else 1.0
        return max(1, int(self.total_app_ranks // ratio))

    # -- observability-bus taps ----------------------------------------------------

    def _wire_obs_taps(self) -> None:
        """Subscribe the bus to every live plane the session has enabled."""
        bus = self._obs
        if self._pop is not None:
            self._pop.add_sink(_BusMetricsSink(bus))
        if self._monitor is not None:
            if self._monitor.router is None:
                self._monitor.router = AlertRouter()
            known = REGISTRY.kinds_for(HEALTH_SCHEMA)

            def publish_alert(alert: Any) -> None:
                d = (
                    alert.as_dict()
                    if hasattr(alert, "as_dict")
                    else dataclasses.asdict(alert)
                )
                kind = d.pop("kind", None)
                # Foreign alert kinds (a user's custom router traffic) are
                # not the health plane's to publish — skip, don't crash.
                if kind in known:
                    bus.publish(make_record(HEALTH_SCHEMA, kind, **d))

            self._monitor.router.subscribe(publish_alert)
        if self._steering is not None:
            self._steering.on_decision = lambda decision: bus.publish(
                make_record(STEERING_SCHEMA, "decision", **decision.as_dict())
            )

    def _drain_obs(self, result_report: ProfileReport | None) -> dict[str, Any] | None:
        """Publish the teardown planes, close the bus, return its summary."""
        if self._obs is None:
            return None
        if self.telemetry.enabled:
            self._obs.publish_all(_telemetry_records(self.telemetry))
        if _hostprof.ACTIVE.enabled:
            self._obs.publish_all(_hostprof.ACTIVE.jsonl_records())
        summary = self._obs.summary()
        self._obs.close()
        if result_report is not None:
            result_report.obs = summary
        return summary

    # -- execution -----------------------------------------------------------------

    def run(self) -> SessionResult:
        """Launch, simulate to completion, collect the report."""
        if not self._apps:
            raise ConfigError("no applications added")
        launcher = VirtualizedLauncher(
            machine=self.machine,
            seed=self.seed,
            cost=self.mpi_cost,
            telemetry=self.telemetry if self.telemetry.enabled else None,
        )
        instr_registry: dict[str, list[StreamingInstrumentation]] = {
            name: [] for name, _ in self._apps
        }
        for name, kernel in self._apps:
            launcher.add_program(
                name,
                nprocs=kernel.nprocs,
                main=_instrumented_main,
                kernel=kernel,
                cost=self.instrumentation,
                registry=instr_registry[name],
            )
        sink: dict[str, Any] = {}
        launcher.add_program(
            ANALYZER_PARTITION,
            nprocs=self.analyzer_nprocs,
            main=analyzer_program,
            config=self.analysis,
            sink=sink,
            monitor=self._monitor,
        )
        world = launcher.launch()
        if self._flows is not None:
            world.flows = self._flows
        injector: FaultInjector | None = None
        if self._fault_plan is not None and not self._fault_plan.empty:
            injector = FaultInjector(self._fault_plan)
            injector.attach(world, ANALYZER_PARTITION)
        if self._monitor is not None:
            self._monitor.attach(world.kernel)
        if self._steering is not None:
            # After the monitor: the controller's relax hook must observe a
            # tick's cleared alerts before judging quiescence.
            self._steering.attach(
                world,
                self._monitor,
                instr_registry,
                initial_chain=self.instrumentation.reduction,
            )
        if self._pop is not None:
            self._pop.bind_sources(instr_registry)
            self._pop.attach(world.kernel)
        if self._obs is not None:
            self._wire_obs_taps()
        world.run()
        if self._pop is not None:
            self._pop.finalize(world.kernel.now)
            self._pop.detach()
            if self._pop_writer is not None:
                self._pop_writer.close()

        apps: dict[str, AppRun] = {}
        for name, kernel in self._apps:
            interceptors = instr_registry[name]
            apps[name] = AppRun(
                name=name,
                nprocs=kernel.nprocs,
                walltime=world.app_walltime(name),
                events=sum(i.events_captured for i in interceptors),
                packs=sum(i.packs_flushed for i in interceptors),
                modeled_stream_bytes=sum(i.bytes_streamed_modeled for i in interceptors),
                packs_dropped=sum(i.packs_dropped for i in interceptors),
            )
        report = sink.get("report")
        if report is not None and self.telemetry.enabled:
            report.telemetry = self.telemetry.summary()
        health = None
        if self._monitor is not None:
            self._monitor.detach()
            health = self._monitor.summary()
            if report is not None:
                report.health = health
        degraded = injector.degraded if injector is not None else False
        flows = self._flows.summary() if self._flows is not None else None
        if report is not None and flows is not None:
            report.flows = flows
        stats = sink.get("analyzer_stats")
        reduction = None
        if self.instrumentation.reduction:
            interceptors = [i for ranks in instr_registry.values() for i in ranks]
            bytes_content = sum(i.builder.bytes_content for i in interceptors)
            bytes_wire = sum(i.builder.bytes_wire for i in interceptors)
            reduction = {
                "chain": self.instrumentation.reduction,
                "bytes_content": bytes_content,
                "bytes_wire": bytes_wire,
                "ratio": bytes_wire / bytes_content if bytes_content else 0.0,
                "events_sampled_out": sum(
                    i.builder.events_sampled_out for i in interceptors
                ),
                "encode_cpu_s": sum(i.codec_cpu_s for i in interceptors),
                "decode_cpu_s": stats.get("decode_cpu_s", 0.0) if stats else 0.0,
                "codecs_seen": dict(stats.get("codecs_seen", {})) if stats else {},
            }
            if report is not None:
                report.reduction = reduction
        efficiency = None
        if self._pop is not None:
            efficiency = self._pop.summary()
            if report is not None:
                report.efficiency = efficiency
        steering = None
        if self._steering is not None:
            self._steering.finalize(world.kernel.now)
            self._steering.detach()
            steering = self._steering.summary()
            if report is not None:
                report.steering = steering
        obs = self._drain_obs(report)
        attempted = sum(run.packs + run.packs_dropped for run in apps.values())
        analyzed = stats["packs"] if stats is not None else 0
        loss = 1.0 - analyzed / attempted if attempted > 0 else 0.0
        return SessionResult(
            report=report,
            apps=apps,
            analyzer_walltime=world.app_walltime(
                ANALYZER_PARTITION, skip_missing=degraded
            ),
            analyzer_nprocs=self.analyzer_nprocs,
            analyzer_stats=stats,
            world=world,
            health=health,
            degraded=degraded,
            faults=injector.summary() if injector is not None else None,
            data_loss_fraction=max(0.0, loss),
            flows=flows,
            reduction=reduction,
            efficiency=efficiency,
            steering=steering,
            obs=obs,
        )

    def run_reference(self) -> SessionResult:
        """Run the same applications uninstrumented (no analyzer partition)."""
        if not self._apps:
            raise ConfigError("no applications added")
        launcher = VirtualizedLauncher(machine=self.machine, seed=self.seed, cost=self.mpi_cost)
        for name, kernel in self._apps:
            launcher.add_program(name, nprocs=kernel.nprocs, main=kernel.main)
        world = launcher.run()
        apps = {
            name: AppRun(
                name=name,
                nprocs=kernel.nprocs,
                walltime=world.app_walltime(name),
                events=0,
                packs=0,
                modeled_stream_bytes=0,
            )
            for name, kernel in self._apps
        }
        return SessionResult(
            report=None,
            apps=apps,
            analyzer_walltime=None,
            analyzer_nprocs=0,
            analyzer_stats=None,
            world=world,
        )


class _BusMetricsSink:
    """POP-engine sink republishing windows/phases onto the obs bus.

    Builds the very same record dicts as
    :class:`~repro.telemetry.stream_export.MetricsStreamWriter`, so a bus
    file sink stays byte-identical to the legacy NDJSON stream.
    """

    def __init__(self, bus: ObservabilityBus):
        self._bus = bus

    def on_window(self, window: dict[str, Any]) -> None:
        self._bus.publish(make_record(METRICS_SCHEMA, "window", **window))

    def on_phase(self, phase: dict[str, Any]) -> None:
        self._bus.publish(make_record(METRICS_SCHEMA, "phase", **phase))

    def on_run_summary(self, summary: dict[str, Any]) -> None:
        self._bus.publish(make_record(METRICS_SCHEMA, "run_summary", **summary))


def _instrumented_main(mpi, kernel: AppKernel, cost: InstrumentationCost, registry: list):
    """Program wrapper: attach instrumentation, then run the kernel."""
    interceptor = StreamingInstrumentation(mpi, cost=cost)
    mpi.ctx.pmpi.attach(interceptor)
    registry.append(interceptor)
    result = yield from kernel.main(mpi)
    return result
