"""Application workloads: NAS-MPI communication skeletons and EulerMHD.

Each kernel reproduces the *communication structure* of its benchmark —
process grid, per-iteration message pattern, message sizes derived from the
published problem class — while computation phases are modelled from the
published operation counts.  This preserves the quantity the paper's
overhead analysis hinges on: the instrumentation data bandwidth
``Bi = total event size / execution time`` per benchmark and class.

Kernels run a configurable number of simulated iterations
(steady-state overhead does not need the full official iteration count);
volume extrapolation to the official count uses
:meth:`~repro.apps.base.NASKernel.iteration_scale`.
"""

from repro.apps.base import AppKernel, ClassSpec, grid_2d
from repro.apps.nas import BT, CG, EP, FT, LU, MG, SP, nas_kernel
from repro.apps.eulermhd import EulerMHD
from repro.apps.synthetic import stream_writer_program, stream_reader_program

__all__ = [
    "AppKernel",
    "ClassSpec",
    "grid_2d",
    "BT",
    "CG",
    "EP",
    "FT",
    "LU",
    "MG",
    "SP",
    "nas_kernel",
    "EulerMHD",
    "stream_writer_program",
    "stream_reader_program",
]
