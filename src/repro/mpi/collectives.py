"""Collective operations engine.

Collectives synchronize all members of a communicator: the n-th collective
call on a communicator by each rank belongs to the same operation (matched by
per-rank sequence numbers, as in MPI).  Once the last participant arrives the
engine charges the modelled duration (:class:`~repro.mpi.costmodel.CostModel`)
and releases everyone with the op's data result.

The engine validates what real MPI leaves undefined: mismatched operation
names or roots across ranks raise :class:`~repro.errors.MPIError` instead of
silently corrupting the run.
"""

from __future__ import annotations

import numbers
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import MPIError
from repro.simt.primitives import SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.communicator import CommGroup

ReduceFn = Callable[[Any, Any], Any]


def _default_reduce(a: Any, b: Any) -> Any:
    return a + b


class _PendingOp:
    """One collective instance accumulating participants."""

    __slots__ = ("op", "root", "contribs", "nbytes_max", "completions", "reduce_fn")

    def __init__(self, op: str, root: int, reduce_fn: ReduceFn | None):
        self.op = op
        self.root = root
        self.contribs: dict[int, Any] = {}
        self.nbytes_max = 0
        self.completions: dict[int, SimEvent] = {}
        self.reduce_fn = reduce_fn


class CollectiveEngine:
    """Per-communicator matcher and completer for collective calls."""

    def __init__(self, group: "CommGroup"):
        self.group = group
        self._ops: dict[int, _PendingOp] = {}
        self.completed_ops = 0

    def join(
        self,
        comm_rank: int,
        seq: int,
        op: str,
        nbytes: int,
        root: int = 0,
        payload: Any = None,
        reduce_fn: ReduceFn | None = None,
    ) -> SimEvent:
        """Register a participant; returns its completion event."""
        group = self.group
        if comm_rank in self._ops.get(seq, _PendingOp("", 0, None)).completions:
            raise MPIError(f"rank {comm_rank} joined collective #{seq} twice")
        pending = self._ops.get(seq)
        if pending is None:
            pending = _PendingOp(op, root, reduce_fn)
            self._ops[seq] = pending
        else:
            if pending.op != op:
                raise MPIError(
                    f"collective mismatch on {group.label}#{seq}: "
                    f"{pending.op!r} vs {op!r} (rank {comm_rank})"
                )
            if pending.root != root:
                raise MPIError(
                    f"root mismatch on {group.label}#{seq} ({op}): "
                    f"{pending.root} vs {root} (rank {comm_rank})"
                )
            if reduce_fn is not None and pending.reduce_fn is None:
                pending.reduce_fn = reduce_fn
        pending.contribs[comm_rank] = payload
        if nbytes > pending.nbytes_max:
            pending.nbytes_max = nbytes
        kernel = group.world.kernel
        completion = SimEvent(kernel, name=f"{op}@{group.label}#{seq}")
        pending.completions[comm_rank] = completion
        if len(pending.completions) == group.size:
            self._finish(seq, pending)
        return completion

    def _finish(self, seq: int, pending: _PendingOp) -> None:
        group = self.group
        del self._ops[seq]
        self.completed_ops += 1
        cost = group.world.cost.collective_cost(pending.op, group.size, pending.nbytes_max)
        results = _compute_results(pending, group.size)
        kernel = group.world.kernel
        tick = kernel.timeout(cost)

        def _release(_ev: SimEvent) -> None:
            for rank, completion in pending.completions.items():
                completion.succeed(results[rank])

        tick.add_callback(_release)

    @property
    def in_flight(self) -> int:
        return len(self._ops)


def _fold(values: list[Any], reduce_fn: ReduceFn | None) -> Any:
    fn = reduce_fn or _default_reduce
    present = [v for v in values if v is not None]
    if not present:
        return None
    acc = present[0]
    for value in present[1:]:
        acc = fn(acc, value)
    return acc


def _compute_results(pending: _PendingOp, size: int) -> dict[int, Any]:
    """Per-rank data results once all contributions are in."""
    op, root = pending.op, pending.root
    contribs = pending.contribs
    ordered = [contribs.get(r) for r in range(size)]
    if op == "barrier":
        return {r: None for r in range(size)}
    if op == "bcast":
        value = contribs.get(root)
        return {r: value for r in range(size)}
    if op == "reduce":
        folded = _fold(ordered, pending.reduce_fn)
        return {r: (folded if r == root else None) for r in range(size)}
    if op in ("allreduce", "reduce_scatter"):
        folded = _fold(ordered, pending.reduce_fn)
        return {r: folded for r in range(size)}
    if op == "gather":
        return {r: (list(ordered) if r == root else None) for r in range(size)}
    if op == "allgather":
        snapshot = list(ordered)
        return {r: snapshot for r in range(size)}
    if op == "scatter":
        chunks = contribs.get(root)
        if chunks is not None:
            if not isinstance(chunks, (list, tuple)) or len(chunks) != size:
                raise MPIError(
                    f"scatter payload at root must be a sequence of {size} items"
                )
            return {r: chunks[r] for r in range(size)}
        return {r: None for r in range(size)}
    if op == "alltoall":
        out: dict[int, Any] = {}
        for r in range(size):
            row = []
            for src in range(size):
                chunk = ordered[src]
                if chunk is None:
                    row.append(None)
                elif not isinstance(chunk, (list, tuple)) or len(chunk) != size:
                    raise MPIError(
                        f"alltoall payload of rank {src} must be a sequence of {size}"
                    )
                else:
                    row.append(chunk[r])
            out[r] = row
        return out
    raise MPIError(f"unknown collective op {op!r}")


def numeric_min(a: Any, b: Any) -> Any:
    """Reduce function for ``op=min`` on numbers or numpy arrays."""
    if isinstance(a, numbers.Number) and isinstance(b, numbers.Number):
        return min(a, b)
    import numpy as np

    return np.minimum(a, b)


def numeric_max(a: Any, b: Any) -> Any:
    """Reduce function for ``op=max`` on numbers or numpy arrays."""
    if isinstance(a, numbers.Number) and isinstance(b, numbers.Number):
        return max(a, b)
    import numpy as np

    return np.maximum(a, b)
