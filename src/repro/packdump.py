"""packdump: pretty-print event-pack blobs (``python -m repro.packdump``).

A small forensic CLI for the wire format: given one or more files holding
a raw pack blob each, it prints the frame header, the typed section
table, the codec-descriptor chain, the CRC verdict and any provenance or
sampling sections — without ever raising on damaged input (diagnostics
must work on exactly the packs the analyzer rejects).

Both wire generations are understood:

* **v2 frames** (magic ``EVF2``) go through the canonical parser,
  :func:`repro.codec.frame.parse_frame`, in non-verifying mode.
* **v1 legacy packs** (magic ``EVNT``: 16-byte header, raw records, CRC
  trailer, optional 26-byte provenance trailer) are decoded by a
  self-contained reader kept entirely inside this module, so the rest of
  the codebase carries no trace of the retired format.
"""

from __future__ import annotations

import struct
import sys
import zlib

from repro.codec.frame import (
    FRAME_MAGIC,
    SEC_CODEC,
    SEC_PROVENANCE,
    SEC_SAMPLING,
    parse_frame,
    section_name,
)
from repro.codec.stages import decode_chain
from repro.errors import PackFormatError

# -- the retired v1 format, self-contained ------------------------------------------

_V1_MAGIC = 0x45564E54  # "EVNT"
_V1_HEADER_FMT = "<IHHII"
_V1_HEADER_SIZE = struct.calcsize(_V1_HEADER_FMT)  # 16
_V1_RECORD_SIZE = 40
_V1_CRC_SIZE = 4
_V1_PROV_MAGIC = 0x50524F56  # "PROV"
_V1_PROV_FMT = "<QHIdI"
_V1_PROV_SIZE = struct.calcsize(_V1_PROV_FMT)  # 26


def _dump_v1(blob: bytes, out: list[str]) -> None:
    out.append("format: v1 legacy pack (magic EVNT)")
    if len(blob) < _V1_HEADER_SIZE:
        out.append(f"  TRUNCATED: {len(blob)} bytes, header needs {_V1_HEADER_SIZE}")
        return
    magic, version, app_id, rank, count = struct.unpack_from(_V1_HEADER_FMT, blob, 0)
    out.append(f"  version {version}  app_id {app_id}  rank {rank}  count {count}")
    body_end = _V1_HEADER_SIZE + count * _V1_RECORD_SIZE
    if len(blob) < body_end + _V1_CRC_SIZE:
        out.append(
            f"  TRUNCATED: {len(blob)} bytes, {count} records + CRC need "
            f"{body_end + _V1_CRC_SIZE}"
        )
        return
    out.append(f"  records: {count} x {_V1_RECORD_SIZE} B at offset {_V1_HEADER_SIZE}")
    stored = struct.unpack_from("<I", blob, body_end)[0]
    computed = zlib.crc32(blob[:body_end])
    verdict = "OK" if stored == computed else f"MISMATCH (computed {computed:#010x})"
    out.append(f"  crc32: {stored:#010x} {verdict}")
    rest = blob[body_end + _V1_CRC_SIZE :]
    if len(rest) == _V1_PROV_SIZE:
        flow_id, papp, prank, t_seal, pmagic = struct.unpack(_V1_PROV_FMT, rest)
        if pmagic == _V1_PROV_MAGIC:
            out.append(
                f"  provenance trailer: flow {flow_id:#x} app {papp} "
                f"rank {prank} sealed t={t_seal:.9g}"
            )
            return
    if rest:
        out.append(f"  {len(rest)} unexplained trailing bytes")


# -- v2 frames, via the canonical parser --------------------------------------------


def _dump_v2(blob: bytes, out: list[str]) -> None:
    out.append("format: v2 frame (magic EVF2)")
    try:
        frame = parse_frame(blob, verify=False)
    except PackFormatError as exc:
        out.append(f"  MALFORMED: {type(exc).__name__}: {exc}")
        return
    out.append(
        f"  app_id {frame.app_id}  rank {frame.rank}  count {frame.count}"
        f"  flags {frame.flags:#06x}"
    )
    out.append("  sections:")
    for (stype, body), offset in zip(frame.sections, frame.offsets):
        out.append(
            f"    {section_name(stype):<12} {len(body):>8} B  at offset {offset}"
        )
    if frame.stored_crc is None:
        out.append("  crc32: MISSING")
    else:
        verdict = "OK" if frame.crc_ok else "MISMATCH"
        out.append(f"  crc32: {frame.stored_crc:#010x} {verdict}")
    if frame.section(SEC_CODEC) is not None:
        try:
            spec = frame.codec
        except PackFormatError:
            out.append("  codec chain: UNDECODABLE descriptor bytes")
        else:
            out.append(f"  codec chain: {spec or 'identity'}")
            try:
                decode_chain(spec)
            except PackFormatError as exc:
                out.append(f"    (not decodable by this build: {exc})")
    if frame.section(SEC_SAMPLING) is not None:
        out.append(f"  events sampled out upstream: {frame.events_dropped}")
    if frame.section(SEC_PROVENANCE) is not None:
        prov = frame.provenance
        out.append(
            f"  provenance: flow {prov.flow_id:#x} app {prov.app_id} "
            f"rank {prov.rank} sealed t={prov.t_seal:.9g}"
        )


def dump(blob: bytes) -> str:
    """Render one pack blob as human-readable text (never raises)."""
    out: list[str] = [f"{len(blob)} bytes"]
    if len(blob) >= 4:
        magic = struct.unpack_from("<I", blob, 0)[0]
        if magic == FRAME_MAGIC:
            _dump_v2(blob, out)
        elif magic == _V1_MAGIC:
            _dump_v1(blob, out)
        else:
            out.append(f"format: unknown (leading magic {magic:#010x})")
    else:
        out.append("format: unknown (too short for a magic number)")
    return "\n".join(out)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: python -m repro.packdump <blob.bin> [<blob.bin> ...]")
        print(__doc__.split("\n\n")[1])
        return 0 if argv else 2
    status = 0
    for path in argv:
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError as exc:
            print(f"{path}: cannot read: {exc}")
            status = 1
            continue
        print(f"== {path}")
        print(dump(blob))
    return status


if __name__ == "__main__":
    sys.exit(main())
