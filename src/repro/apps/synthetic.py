"""Synthetic stream traffic: the paper's Figure 11/12 coupling codes.

``stream_writer_program`` is the instrumented-side sample of Figure 11:
map to the analyzer partition, open a write stream, push N blocks, close.
``stream_reader_program`` is the analyzer of Figure 12: map to every other
partition, read (non-blocking first, then blocking) until all writers
closed.  These drive the Figure 14 throughput benchmark.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.vmpi.mapping import MapPolicy, ROUND_ROBIN, VMPIMap, map_partitions
from repro.vmpi.stream import (
    BALANCE_ROUND_ROBIN,
    EAGAIN,
    EOF,
    VMPIStream,
)


def stream_writer_program(
    mpi,
    total_bytes: int = 1024**3,
    block_size: int = 1024 * 1024,
    reader_partition: str = "Analyzer",
    policy: MapPolicy = ROUND_ROBIN,
    na_buffers: int = 3,
    stats: dict | None = None,
):
    """Generator: write ``total_bytes`` in blocks to the reader partition."""
    if total_bytes <= 0 or block_size <= 0:
        raise ConfigError("total_bytes and block_size must be > 0")
    yield from mpi.init()
    vmap = VMPIMap()
    target = mpi.partition_by_name(reader_partition)
    if target is None:
        raise ConfigError(f"could not locate {reader_partition!r} partition")
    yield from map_partitions(mpi, vmap, target, policy=policy)
    stream = VMPIStream(
        block_size=block_size, balance=BALANCE_ROUND_ROBIN, na_buffers=na_buffers
    )
    yield from stream.open_map(mpi, vmap, "w")
    if stats is not None:
        stats.setdefault("t_first_write", mpi.now)
    remaining = total_bytes
    while remaining > 0:
        chunk = min(block_size, remaining)
        yield from stream.write(nbytes=chunk)
        remaining -= chunk
    yield from stream.close()
    if stats is not None:
        stats["t_last_close"] = max(stats.get("t_last_close", 0.0), mpi.now)
        stats["bytes_written"] = stats.get("bytes_written", 0) + stream.bytes_written
    yield from mpi.finalize()


def stream_reader_program(
    mpi,
    block_size: int = 1024 * 1024,
    policy: MapPolicy = ROUND_ROBIN,
    na_buffers: int = 3,
    stats: dict | None = None,
):
    """Generator: the Figure-12 read loop over every other partition."""
    yield from mpi.init()
    vmap = VMPIMap()
    for index in range(mpi.partition_count()):
        if index != mpi.partition.index:
            yield from map_partitions(mpi, vmap, index, policy=policy)
    stream = VMPIStream(
        block_size=block_size, balance=BALANCE_ROUND_ROBIN, na_buffers=na_buffers
    )
    yield from stream.open_map(mpi, vmap, "r")
    while True:
        # Paper Figure 12: try non-blocking first, fall back to blocking.
        nbytes, _payload = yield from stream.read(nonblock=True)
        if nbytes == EAGAIN:
            nbytes, _payload = yield from stream.read()
        if nbytes == EOF:
            break
    yield from stream.close()
    if stats is not None:
        stats["t_last_read"] = max(stats.get("t_last_read", 0.0), mpi.now)
        stats["bytes_read"] = stats.get("bytes_read", 0) + stream.bytes_read
    yield from mpi.finalize()
