"""Waitable primitives for the simulation kernel.

A *waitable* is anything a process generator may ``yield``:

* :class:`SimEvent` — a one-shot event that succeeds (with a value) or fails
  (with an exception); processes waiting on it are resumed.
* :class:`Timeout` — an event pre-scheduled to succeed after a delay.
* :class:`AnyOf` / :class:`AllOf` — composite conditions over events.
* :class:`~repro.simt.process.Process` — processes are themselves events that
  fire on termination, so ``yield other_process`` is a join.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simt.kernel import Kernel

# Event lifecycle states.
PENDING = 0
SUCCEEDED = 1
FAILED = 2


class SimEvent:
    """One-shot event.

    Callbacks registered via :meth:`add_callback` run when the event fires;
    the kernel uses them to resume waiting processes.  Firing an already-fired
    event is an error (events are one-shot by design, like SimPy's).
    """

    __slots__ = ("kernel", "state", "value", "callbacks", "name", "num_waiters")

    #: class flag the dispatch loop reads instead of an isinstance() check;
    #: Process overrides it with True
    _is_process = False

    def __init__(self, kernel: "Kernel", name: str = ""):
        self.kernel = kernel
        self.state = PENDING
        self.value: Any = None
        self.callbacks: list[Callable[[SimEvent], None]] = []
        self.name = name
        self.num_waiters = -1  # number of callbacks at dispatch time; -1 = not yet

    @property
    def triggered(self) -> bool:
        return self.state != PENDING

    @property
    def ok(self) -> bool:
        return self.state == SUCCEEDED

    def succeed(self, value: Any = None) -> "SimEvent":
        """Fire the event successfully, delivering ``value`` to waiters."""
        if self.state != PENDING:
            raise SimulationError(f"event {self.name or id(self)} already triggered")
        self.state = SUCCEEDED
        self.value = value
        self.kernel._schedule_event(self)
        return self

    def fail(self, exc: BaseException) -> "SimEvent":
        """Fire the event with an exception; waiters will see it raised."""
        if self.state != PENDING:
            raise SimulationError(f"event {self.name or id(self)} already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self.state = FAILED
        self.value = exc
        self.kernel._schedule_event(self)
        return self

    def add_callback(self, cb: Callable[["SimEvent"], None]) -> None:
        """Register ``cb(event)``; called immediately if already dispatched."""
        if self.callbacks is None:  # already dispatched
            cb(self)
        else:
            self.callbacks.append(cb)

    def _dispatch(self) -> None:
        callbacks, self.callbacks = self.callbacks, None  # type: ignore[assignment]
        self.num_waiters = len(callbacks)
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {PENDING: "pending", SUCCEEDED: "ok", FAILED: "failed"}[self.state]
        return f"<SimEvent {self.name or hex(id(self))} {state}>"


class Timeout(SimEvent):
    """An event that fires ``delay`` simulated seconds after creation.

    Stays PENDING until the kernel dispatches it (so conditions composed
    over timeouts observe the correct not-yet-fired state); the kernel
    promotes it to SUCCEEDED at its scheduled instant.
    """

    __slots__ = ("delay",)

    def __init__(self, kernel: "Kernel", delay: float, value: Any = None, name: str = ""):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(kernel, name=name or "timeout")
        self.delay = delay
        self.value = value
        kernel._schedule_event(self, delay=delay)


class Interrupt(Exception):
    """Raised inside a process that gets interrupted by another process."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _Condition(SimEvent):
    """Base for AnyOf/AllOf: watches child events and fires per policy."""

    __slots__ = ("events", "_remaining")

    def __init__(self, kernel: "Kernel", events: list[SimEvent], name: str):
        super().__init__(kernel, name=name)
        self.events = list(events)
        for ev in self.events:
            if ev.kernel is not kernel:
                raise SimulationError("condition mixes events from different kernels")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: SimEvent) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> dict[SimEvent, Any]:
        return {ev: ev.value for ev in self.events if ev.state == SUCCEEDED}


class AnyOf(_Condition):
    """Fires as soon as any child fires (failure propagates)."""

    __slots__ = ()

    def __init__(self, kernel: "Kernel", events: list[SimEvent]):
        super().__init__(kernel, events, name=f"any_of[{len(events)}]")

    def _on_child(self, ev: SimEvent) -> None:
        if self.triggered:
            return
        if ev.state == FAILED:
            self.fail(ev.value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires once every child has fired (first failure propagates)."""

    __slots__ = ()

    def __init__(self, kernel: "Kernel", events: list[SimEvent]):
        super().__init__(kernel, events, name=f"all_of[{len(events)}]")

    def _on_child(self, ev: SimEvent) -> None:
        if self.triggered:
            return
        if ev.state == FAILED:
            self.fail(ev.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())
