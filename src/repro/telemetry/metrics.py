"""Instrument primitives: counters, gauges and histograms.

Every sample is stamped with the owning :class:`~repro.telemetry.Telemetry`'s
clock — virtual kernel seconds inside a simulation, host seconds for
standalone components such as the blackboard thread pool.  Gauges keep a
bounded ``(time, value)`` series (decimated in place once full) so buffer
occupancy and queue depth can be exported as Chrome trace counter tracks;
histograms keep a bounded sample reservoir for exact percentiles over the
retained samples.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.core import Telemetry


class Counter:
    """A monotonically increasing sum (int or float increments)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """Last-value gauge with a decimated time series for trace export."""

    #: series length at which every other sample is dropped
    MAX_SAMPLES = 4096

    __slots__ = ("name", "pid", "value", "max", "samples", "_stride", "_phase", "_tel")

    def __init__(self, name: str, tel: "Telemetry", pid: int = 0):
        self.name = name
        self.pid = pid
        self.value = 0.0
        self.max = 0.0
        self.samples: list[tuple[float, float]] = []
        self._stride = 1
        self._phase = 0
        self._tel = tel

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max:
            self.max = value
        self._phase += 1
        if self._phase < self._stride:
            return
        self._phase = 0
        self.samples.append((self._tel.now(), value))
        if len(self.samples) >= self.MAX_SAMPLES:
            # Keep every other retained sample and halve the sampling rate.
            del self.samples[::2]
            self._stride *= 2


class HistogramMetric:
    """Distribution summary with exact percentiles over retained samples."""

    #: reservoir length at which every other sample is dropped
    MAX_SAMPLES = 65536

    __slots__ = ("name", "count", "total", "min", "max", "samples", "_stride", "_phase")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.samples: list[float] = []
        self._stride = 1
        self._phase = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._phase += 1
        if self._phase < self._stride:
            return
        self._phase = 0
        self.samples.append(value)
        if len(self.samples) >= self.MAX_SAMPLES:
            del self.samples[::2]
            self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]) over retained samples."""
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"percentile wants q in [0, 100], got {q}")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class NullCounter:
    """No-op counter; a single shared instance backs disabled telemetry."""

    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, amount: int | float = 1) -> None:
        pass


class NullGauge:
    """No-op gauge for disabled telemetry."""

    __slots__ = ()
    name = "null"
    pid = 0
    value = 0.0
    max = 0.0
    samples: list = []

    def set(self, value: float) -> None:
        pass


class NullHistogram:
    """No-op histogram for disabled telemetry."""

    __slots__ = ()
    name = "null"
    count = 0
    total = 0.0
    mean = 0.0
    samples: list = []

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()
