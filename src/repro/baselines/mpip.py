"""mpiP model: purely online statistical aggregation (Vetter & McCracken).

mpiP keeps per-call-site aggregates in process memory — near-zero data
volume — and reduces them at ``MPI_Finalize`` into one small report written
by rank 0.  It is the lightest baseline: its overhead is per-call counter
updates plus one final reduction.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.iosim.filesystem import ParallelFS
from repro.mpi.pmpi import CallRecord, Interceptor

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.world import ProgramAPI, RankContext


class MPIPInterceptor(Interceptor):
    """Statistical aggregate profiler."""

    #: per-call counter update (hash call site, accumulate)
    PER_CALL_CPU = 0.25e-6
    #: per-rank contribution to the final report
    REPORT_BYTES_PER_RANK = 2048

    def __init__(self, mpi: "ProgramAPI", fs: ParallelFS, amortize_fixed: float = 1.0):
        self.mpi = mpi
        self.fs = fs
        self.amortize_fixed = amortize_fixed
        self.calls = 0
        self.aggregate: dict[str, list[float]] = {}

    def on_exit(self, ctx: "RankContext", record: CallRecord):
        if record.name == "MPI_Finalize":
            return self._finalize(record)
        return self._account(record)

    def _account(self, record: CallRecord):
        self.calls += 1
        slot = self.aggregate.setdefault(record.name, [0.0, 0.0])
        slot[0] += 1
        slot[1] += record.duration
        yield self.mpi.ctx.kernel.timeout(self.PER_CALL_CPU)

    def _finalize(self, record: CallRecord):
        """Reduce aggregates to rank 0; rank 0 writes the report."""
        mpi = self.mpi
        size = mpi.size
        # Modelled binomial-tree reduction of the fixed-size aggregates.
        stages = max(1, math.ceil(math.log2(max(2, size))))
        reduce_cost = stages * (mpi.ctx.world.cost.alpha + 1.0e-6)
        yield mpi.ctx.kernel.timeout(reduce_cost)
        if mpi.rank == 0:
            nbytes = self.REPORT_BYTES_PER_RANK * size
            yield from self.fs.metadata_op(self.amortize_fixed)
            yield self.fs.raw_write(int(nbytes * self.amortize_fixed))
            yield from self.fs.metadata_op(self.amortize_fixed)
