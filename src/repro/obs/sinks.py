"""Built-in bus sinks: NDJSON files, a bounded ring, and a live-tail server.

Every sink implements the bus protocol — ``emit(record) -> bool`` (False
means the sink's own backpressure policy dropped the record), ``close()``,
``stats()`` — and none of them ever raises out of ``emit`` for flow-control
reasons: the bus counts drops per sink, so a slow tail client can never
stall the simulation it is observing.
"""

from __future__ import annotations

import collections
import json
import os
import socket
import threading
from typing import IO, Any, Iterator

from repro.errors import ConfigError
from repro.obs.registry import record_time

__all__ = ["FileSink", "RingSink", "TailServer", "parse_address"]


class FileSink:
    """Append one ``json.dumps`` line per record — the NDJSON/JSONL format.

    The byte stream is identical to the legacy per-plane exporters
    (:class:`~repro.telemetry.export.JSONLExporter`, the hostprof JSONL
    writer, :class:`~repro.telemetry.stream_export.MetricsStreamWriter`)
    because all of them serialize the very same record dicts with the very
    same ``json.dumps`` defaults.  ``flush_each=True`` (the default)
    flushes after every line so a reader can tail the file mid-run —
    exactly the contract the POP metrics stream already had.

    ``target`` is a path (opened/truncated immediately, closed by
    :meth:`close`) or an open text file object (caller keeps ownership).
    """

    def __init__(self, target: str | IO[str], *, flush_each: bool = True):
        if hasattr(target, "write"):
            self._fh: IO[str] = target
            self._owns = False
            self.path = getattr(target, "name", None)
        else:
            self._fh = open(target, "w")
            self._owns = True
            self.path = str(target)
        self.flush_each = flush_each
        self.records_written = 0
        self.bytes_written = 0
        self._closed = False

    def emit(self, record: dict[str, Any]) -> bool:
        if self._closed:
            raise ConfigError("observability file sink is closed")
        line = json.dumps(record)
        self._fh.write(line)
        self._fh.write("\n")
        if self.flush_each:
            self._fh.flush()
        self.records_written += 1
        self.bytes_written += len(line) + 1
        return True

    def stats(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "records_written": self.records_written,
            "bytes_written": self.bytes_written,
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns:
            self._fh.close()
        else:
            self._fh.flush()


class RingSink:
    """Bounded in-memory ring of the most recent records, for live query.

    Overflow policy is drop-oldest: the ring always holds the newest
    ``capacity`` records and counts what it evicted, so a consumer can
    tell "I saw everything" from "I saw the tail of a firehose".
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ConfigError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: collections.deque[dict[str, Any]] = collections.deque(
            maxlen=capacity
        )
        self.accepted = 0
        self.evicted = 0

    def emit(self, record: dict[str, Any]) -> bool:
        if len(self._ring) == self.capacity:
            self.evicted += 1
        self._ring.append(record)
        self.accepted += 1
        return True

    def __len__(self) -> int:
        return len(self._ring)

    def records(self) -> list[dict[str, Any]]:
        return list(self._ring)

    def query(
        self,
        schema: str | None = None,
        kind: str | None = None,
        since: float | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Filtered view over the retained records, oldest first.

        ``since`` keeps records whose timestamp (see
        :func:`~repro.obs.registry.record_time`) is at or after the bound;
        time-less records are excluded by a ``since`` filter.
        """
        for record in self._ring:
            if schema is not None and record.get("schema") != schema:
                continue
            if kind is not None and record.get("kind") != kind:
                continue
            if since is not None:
                t = record_time(record)
                if t is None or t < since:
                    continue
            yield record

    def stats(self) -> dict[str, Any]:
        return {
            "capacity": self.capacity,
            "retained": len(self._ring),
            "evicted": self.evicted,
        }

    def close(self) -> None:  # ring stays queryable after the bus closes
        pass


def parse_address(address: str) -> tuple[int, Any]:
    """Classify a tail address: ``(family, sockaddr)``.

    ``HOST:PORT`` means TCP; anything else is a filesystem path for a Unix
    domain socket.  A lone ``:PORT`` binds/connects on localhost.
    """
    if ":" in address and not address.startswith(("/", ".")):
        host, _, port_s = address.rpartition(":")
        try:
            port = int(port_s)
        except ValueError:
            raise ConfigError(
                f"tail address {address!r} is neither HOST:PORT nor a socket path"
            ) from None
        return socket.AF_INET, (host or "127.0.0.1", port)
    return socket.AF_UNIX, address


class _TailClient:
    """One connected tail consumer with a bounded, thread-drained queue."""

    __slots__ = ("conn", "queue", "pending_bytes", "dropped", "sent", "thread", "dead")

    def __init__(self, conn: socket.socket):
        self.conn = conn
        self.queue: collections.deque[bytes] = collections.deque()
        self.pending_bytes = 0
        self.dropped = 0
        self.sent = 0
        self.thread: threading.Thread | None = None
        self.dead = False


class TailServer:
    """Line-delimited live-tail feed over TCP or a Unix domain socket.

    The server accepts any number of consumers; every emitted record is
    serialized once and enqueued per client.  Each client is drained by
    its own sender thread with *blocking* sends, and the per-client queue
    is bounded at ``max_pending_bytes`` — when a slow or stuck consumer
    falls that far behind, new records are dropped **for that client
    only** and counted, so backpressure never reaches the publisher (the
    simulation).  ``emit`` returns False only when every connected client
    dropped the record (no clients at all counts as delivered-to-nobody,
    True, like a file nobody reads).
    """

    def __init__(self, address: str, *, max_pending_bytes: int = 1 << 20):
        if max_pending_bytes < 1:
            raise ConfigError("max_pending_bytes must be >= 1")
        self.max_pending_bytes = max_pending_bytes
        family, sockaddr = parse_address(address)
        self._family = family
        self._server = socket.socket(family, socket.SOCK_STREAM)
        if family == socket.AF_INET:
            self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        else:
            if os.path.exists(sockaddr):
                os.unlink(sockaddr)
        self._server.bind(sockaddr)
        self._server.listen(8)
        self._sockpath = sockaddr if family == socket.AF_UNIX else None
        self.address = (
            "%s:%d" % self._server.getsockname()[:2]
            if family == socket.AF_INET
            else str(sockaddr)
        )
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._clients: list[_TailClient] = []
        self._closed = False
        self.records_offered = 0
        self.clients_served = 0
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="obs-tail-accept", daemon=True
        )
        self._accept_thread.start()

    # -- connection handling -------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _addr = self._server.accept()
            except OSError:
                return  # server socket closed
            client = _TailClient(conn)
            client.thread = threading.Thread(
                target=self._drain_loop, args=(client,),
                name="obs-tail-send", daemon=True,
            )
            with self._lock:
                self._clients.append(client)
                self.clients_served += 1
            client.thread.start()

    def _drain_loop(self, client: _TailClient) -> None:
        while True:
            with self._cond:
                while not client.queue and not self._closed and not client.dead:
                    self._cond.wait(timeout=0.5)
                if client.dead or (self._closed and not client.queue):
                    break
                chunk = client.queue.popleft()
                client.pending_bytes -= len(chunk)
            try:
                client.conn.sendall(chunk)
            except OSError:
                with self._lock:
                    client.dead = True
                break
            with self._lock:
                client.sent += 1
        try:
            client.conn.close()
        except OSError:
            pass

    # -- sink protocol --------------------------------------------------------------

    def emit(self, record: dict[str, Any]) -> bool:
        if self._closed:
            raise ConfigError("tail server is closed")
        self.records_offered += 1
        line = (json.dumps(record) + "\n").encode("utf-8")
        delivered_any = False
        had_live_client = False
        with self._lock:
            for client in self._clients:
                if client.dead:
                    continue
                had_live_client = True
                if client.pending_bytes + len(line) > self.max_pending_bytes:
                    client.dropped += 1
                    continue
                client.queue.append(line)
                client.pending_bytes += len(line)
                delivered_any = True
            self._cond.notify_all()
        return delivered_any or not had_live_client

    def stats(self) -> dict[str, Any]:
        with self._lock:
            clients = [
                {
                    "sent": c.sent,
                    "dropped": c.dropped,
                    "pending_bytes": c.pending_bytes,
                    "dead": c.dead,
                }
                for c in self._clients
            ]
        return {
            "address": self.address,
            "records_offered": self.records_offered,
            "clients_served": self.clients_served,
            "clients": clients,
        }

    def close(self) -> None:
        """Stop accepting, flush what queued, tear the clients down."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            clients = list(self._clients)
            self._cond.notify_all()
        try:
            self._server.close()
        except OSError:
            pass
        for client in clients:
            if client.thread is not None:
                client.thread.join(timeout=1.0)
            with self._lock:
                client.dead = True
            try:
                client.conn.close()
            except OSError:
                pass
        if self._sockpath is not None and os.path.exists(self._sockpath):
            try:
                os.unlink(self._sockpath)
            except OSError:
                pass
