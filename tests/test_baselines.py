"""Baseline tool models and the comparison harness."""

import pytest

from repro.errors import ConfigError
from repro.apps.nas import EP, SP
from repro.baselines import OTF2_BYTES_PER_EVENT, PostMortemAnalyzer, TraceWriterState
from repro.core.comparison import TOOLS, compare_tools, run_tool
from repro.iosim import ParallelFS, SionFile
from repro.network.machine import CURIE, small_test_machine
from repro.simt import Kernel


class TestTraceWriter:
    @pytest.fixture
    def fs(self, machine):
        return ParallelFS(Kernel(), machine, job_cores=16)

    def test_buffered_until_threshold(self, fs):
        writer = TraceWriterState(fs, rank=0, bytes_per_event=100, buffer_bytes=1000)

        def user(k):
            yield from writer.open()
            yield from writer.record(5)  # 500 bytes buffered
            assert fs.bytes_written == 0
            yield from writer.record(5)  # hits 1000 -> flush
            yield from writer.close()

        fs.kernel.spawn(user(fs.kernel))
        fs.kernel.run()
        assert fs.bytes_written == 1000
        assert writer.trace_bytes == 1000
        assert writer.flushes >= 1

    def test_close_flushes_tail(self, fs):
        writer = TraceWriterState(fs, rank=0, bytes_per_event=10, buffer_bytes=10**6)

        def user(k):
            yield from writer.open()
            yield from writer.record(3)
            yield from writer.close()

        fs.kernel.spawn(user(fs.kernel))
        fs.kernel.run()
        assert fs.bytes_written == 30

    def test_record_requires_open(self, fs):
        writer = TraceWriterState(fs, rank=0)
        with pytest.raises(ConfigError):
            list(writer.record(1))

    def test_validation(self, fs):
        with pytest.raises(ConfigError):
            TraceWriterState(fs, 0, bytes_per_event=0)
        with pytest.raises(ConfigError):
            TraceWriterState(fs, 0, amortize_fixed=0.0)
        with pytest.raises(ConfigError):
            TraceWriterState(fs, 0, amortize_fixed=2.0)

    def test_sion_mode_shares_metadata(self, fs):
        sion = SionFile(fs, "t.sion", tasks_per_file=8)
        writers = [
            TraceWriterState(fs, rank=r, bytes_per_event=10, sion=sion) for r in range(4)
        ]

        def user(k, w):
            yield from w.open()
            yield from w.record(2)
            yield from w.close()

        for w in writers:
            fs.kernel.spawn(user(fs.kernel, w))
        fs.kernel.run()
        assert fs.metadata_ops == 1  # one container creation for all tasks


class TestPostMortem:
    def test_read_back_scales_with_trace(self):
        pm = PostMortemAnalyzer(CURIE, analysis_cores=256)
        small = pm.analyze(10**9)
        big = pm.analyze(10**11)
        assert big.read_back_seconds == pytest.approx(small.read_back_seconds * 100)
        assert big.total_seconds > small.total_seconds

    def test_more_cores_faster_analysis(self):
        small = PostMortemAnalyzer(CURIE, analysis_cores=64).analyze(10**10)
        large = PostMortemAnalyzer(CURIE, analysis_cores=1024).analyze(10**10)
        assert large.analyze_seconds < small.analyze_seconds

    def test_validation(self):
        with pytest.raises(ConfigError):
            PostMortemAnalyzer(CURIE, analysis_cores=0)
        pm = PostMortemAnalyzer(CURIE, analysis_cores=4)
        with pytest.raises(ConfigError):
            pm.analyze(-1)


class TestRunTool:
    MACHINE = small_test_machine(nodes=128, cores_per_node=4)

    def test_unknown_tool_rejected(self):
        with pytest.raises(ConfigError):
            run_tool(EP(4, "C"), "strace", self.MACHINE)

    def test_reference_has_no_volume(self):
        r = run_tool(EP(4, "C"), "reference", self.MACHINE)
        assert r.full_run_volume_bytes == 0
        assert r.walltime > 0

    def test_online_reports_events_and_bi(self):
        r = run_tool(SP(16, "C", iterations=2), "online", self.MACHINE)
        assert r.extras["events"] > 0
        assert r.full_run_volume_bytes > 0
        assert r.extras["analyzer_nprocs"] == 16

    def test_scorep_trace_uses_sion(self):
        r = run_tool(SP(16, "C", iterations=2), "scorep_trace", self.MACHINE)
        assert r.extras["sion_containers"] >= 1
        assert r.full_run_volume_bytes > 0

    def test_scorep_profile_metadata_storm(self):
        r = run_tool(SP(16, "C", iterations=2), "scorep_profile", self.MACHINE)
        assert r.extras["fs_metadata_ops"] == 32  # open+close per rank

    def test_mpip_tiny_volume(self):
        r_trace = run_tool(SP(16, "C", iterations=2), "scorep_trace", self.MACHINE)
        r_mpip = run_tool(SP(16, "C", iterations=2), "mpip", self.MACHINE)
        assert r_mpip.full_run_volume_bytes < r_trace.full_run_volume_bytes / 10

    def test_compare_tools_overheads_relative_to_reference(self):
        results = compare_tools(
            lambda: SP(16, "C", iterations=2),
            tools=("reference", "online", "mpip"),
            machine=self.MACHINE,
        )
        by_tool = {r.tool: r for r in results}
        assert by_tool["reference"].overhead_pct == 0.0
        assert by_tool["online"].overhead_pct is not None
        assert by_tool["online"].overhead_pct >= 0.0
        assert by_tool["mpip"].overhead_pct >= 0.0

    def test_all_tools_run(self):
        results = compare_tools(
            lambda: SP(16, "C", iterations=2), tools=TOOLS, machine=self.MACHINE
        )
        assert {r.tool for r in results} == set(TOOLS)

    def test_online_volume_exceeds_scorep_trace(self):
        """The paper's ~2.9x online/Score-P volume ratio."""
        online = run_tool(SP(16, "D", iterations=2), "online", self.MACHINE)
        trace = run_tool(SP(16, "D", iterations=2), "scorep_trace", self.MACHINE)
        ratio = online.full_run_volume_bytes / trace.full_run_volume_bytes
        assert 2.0 < ratio < 4.0

    def test_amortization_reduces_fixed_costs(self):
        slow = run_tool(
            SP(16, "C", iterations=2),
            "scorep_profile",
            self.MACHINE,
            amortize_fixed_costs=False,
        )
        fast = run_tool(
            SP(16, "C", iterations=2),
            "scorep_profile",
            self.MACHINE,
            amortize_fixed_costs=True,
        )
        assert fast.walltime <= slow.walltime
