"""The hot-path invariant lint: catches violations, passes the real tree."""

import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "scripts" / "check_hotpath_invariants.py"

sys.path.insert(0, str(REPO / "scripts"))

from check_hotpath_invariants import check_tree  # noqa: E402


def _write(root: Path, rel: str, text: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)


def test_real_tree_is_clean():
    problems = check_tree(REPO / "src")
    assert problems == []


def test_cli_exit_zero_on_clean_tree():
    result = subprocess.run(
        [sys.executable, str(SCRIPT), str(REPO / "src")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "invariants hold" in result.stdout


def test_flags_perf_counter_outside_hostprof(tmp_path):
    _write(
        tmp_path,
        "repro/simt/rogue.py",
        "import time\n\ndef now():\n    return time.perf_counter()\n",
    )
    problems = check_tree(tmp_path)
    assert len(problems) == 1
    assert "rogue.py:4" in problems[0]
    assert "time.perf_counter" in problems[0]


def test_flags_from_time_import_perf_counter(tmp_path):
    _write(
        tmp_path,
        "repro/vmpi/rogue.py",
        "from time import perf_counter\n",
    )
    problems = check_tree(tmp_path)
    assert len(problems) == 1
    assert "from time import perf_counter" in problems[0]


def test_hostprof_itself_may_use_the_clock(tmp_path):
    _write(
        tmp_path,
        "repro/telemetry/hostprof.py",
        "import time\nCLOCK = time.perf_counter\n",
    )
    assert check_tree(tmp_path) == []


def test_flags_bytes_in_decode_path(tmp_path):
    _write(
        tmp_path,
        "repro/codec/frame.py",
        "def parse_frame(blob, verify=True):\n"
        "    return bytes(blob)\n"
        "\n"
        "def to_bytes(self):\n"
        "    return bytes(bytearray(4))\n",
    )
    problems = check_tree(tmp_path)
    # Encode-side to_bytes() may copy; the decode path may not.
    assert len(problems) == 1
    assert "parse_frame" in problems[0]
    assert "zero-copy" in problems[0]


def test_other_modules_may_call_bytes(tmp_path):
    _write(
        tmp_path,
        "repro/instrument/packer.py",
        "def parse_frame(blob):\n    return bytes(blob)\n",
    )
    # The decode-path rule is scoped to codec/frame.py only.
    assert check_tree(tmp_path) == []


def test_cli_exit_one_on_violation(tmp_path):
    _write(tmp_path, "repro/app.py", "import time\nT = time.perf_counter()\n")
    result = subprocess.run(
        [sys.executable, str(SCRIPT), str(tmp_path)],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 1
    assert "violation" in result.stdout


def test_cli_exit_two_on_missing_root(tmp_path):
    result = subprocess.run(
        [sys.executable, str(SCRIPT), str(tmp_path / "nope")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 2


@pytest.mark.parametrize(
    "fn", ["peek_header", "peek_provenance", "frame_content_size", "_header_fields"]
)
def test_every_decode_path_function_is_covered(tmp_path, fn):
    _write(
        tmp_path,
        "repro/codec/frame.py",
        f"def {fn}(blob):\n    return bytes(blob)\n",
    )
    problems = check_tree(tmp_path)
    assert len(problems) == 1
    assert fn in problems[0]
