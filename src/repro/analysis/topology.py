"""Topological module: communication matrices and graphs (paper Fig. 17).

For every point-to-point communication the module accumulates a sparse
``src -> dst`` matrix weighted in *hits*, *total size* and *total time*.
Graphs are exported through :mod:`networkx` (the paper invokes Graphviz on
the same data) and as DOT text.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro.errors import ReproError
from repro.instrument.events import P2P_SEND_CALLS


class CommMatrix:
    """Mergeable sparse point-to-point communication matrix."""

    def __init__(self, app: str, app_size: int):
        if app_size <= 0:
            raise ReproError(f"app_size must be > 0, got {app_size}")
        self.app = app
        self.app_size = app_size
        # (src, dst) -> [hits, bytes, time]
        self.cells: dict[tuple[int, int], list[float]] = {}

    # -- accumulation -----------------------------------------------------------------

    def update(self, rank: int, events: np.ndarray) -> None:
        """Fold the send events of one batch (``rank`` is the sender)."""
        if not (0 <= rank < self.app_size):
            raise ReproError(f"batch from rank {rank} outside app of {self.app_size}")
        send_ids = np.array(sorted(P2P_SEND_CALLS), dtype=events["call"].dtype)
        mask = np.isin(events["call"], send_ids) & (events["peer"] >= 0)
        if not mask.any():
            return
        peers = events["peer"][mask].astype(np.int64)
        nbytes = events["nbytes"][mask].clip(min=0).astype(np.float64)
        times = (events["t_end"] - events["t_start"])[mask]
        uniq, inverse = np.unique(peers, return_inverse=True)
        hit_sums = np.bincount(inverse)
        byte_sums = np.bincount(inverse, weights=nbytes)
        time_sums = np.bincount(inverse, weights=times)
        for i, dst in enumerate(uniq):
            if dst >= self.app_size:
                raise ReproError(f"send to rank {dst} outside app of {self.app_size}")
            cell = self.cells.setdefault((rank, int(dst)), [0.0, 0.0, 0.0])
            cell[0] += float(hit_sums[i])
            cell[1] += float(byte_sums[i])
            cell[2] += float(time_sums[i])

    def merge(self, other: "CommMatrix") -> None:
        if other.app != self.app or other.app_size != self.app_size:
            raise ReproError("merging comm matrices of different applications")
        for key, vals in other.cells.items():
            cell = self.cells.setdefault(key, [0.0, 0.0, 0.0])
            for i in range(3):
                cell[i] += vals[i]

    # -- queries -----------------------------------------------------------------------

    _WEIGHTS = {"hits": 0, "size": 1, "time": 2}

    def dense(self, weight: str = "size") -> np.ndarray:
        """Dense matrix (use only for small apps / plots)."""
        idx = self._weight_index(weight)
        m = np.zeros((self.app_size, self.app_size))
        for (src, dst), vals in self.cells.items():
            m[src, dst] = vals[idx]
        return m

    def graph(self, weight: str = "size") -> nx.DiGraph:
        """Directed communication graph with the chosen weight attribute."""
        idx = self._weight_index(weight)
        g = nx.DiGraph()
        g.add_nodes_from(range(self.app_size))
        for (src, dst), vals in self.cells.items():
            if vals[idx] > 0:
                g.add_edge(src, dst, weight=vals[idx])
        return g

    def degree_histogram(self) -> dict[int, int]:
        """Out-degree -> count of ranks; reveals mesh structure."""
        degrees: dict[int, int] = {}
        out: dict[int, int] = {}
        for (src, _dst) in self.cells:
            out[src] = out.get(src, 0) + 1
        for rank in range(self.app_size):
            d = out.get(rank, 0)
            degrees[d] = degrees.get(d, 0) + 1
        return degrees

    def top_pairs(self, weight: str = "size", k: int = 10) -> list[tuple[int, int, float]]:
        idx = self._weight_index(weight)
        ranked = sorted(
            ((src, dst, vals[idx]) for (src, dst), vals in self.cells.items()),
            key=lambda t: t[2],
            reverse=True,
        )
        return ranked[:k]

    def totals(self) -> tuple[float, float, float]:
        """(hits, bytes, time) summed over all pairs."""
        hits = sum(v[0] for v in self.cells.values())
        size = sum(v[1] for v in self.cells.values())
        time = sum(v[2] for v in self.cells.values())
        return hits, size, time

    def is_symmetric(self, weight: str = "hits", tol: float = 0.0) -> bool:
        """True when every src->dst cell has a matching dst->src cell."""
        idx = self._weight_index(weight)
        for (src, dst), vals in self.cells.items():
            back = self.cells.get((dst, src))
            if back is None or abs(back[idx] - vals[idx]) > tol:
                return False
        return True

    def to_dot(self, weight: str = "size", max_nodes: int = 256) -> str:
        """Graphviz DOT text (what the paper feeds to Graphviz)."""
        if self.app_size > max_nodes:
            raise ReproError(
                f"DOT export limited to {max_nodes} nodes, app has {self.app_size}"
            )
        idx = self._weight_index(weight)
        peak = max((v[idx] for v in self.cells.values()), default=1.0) or 1.0
        lines = [f'digraph "{self.app}" {{']
        lines.append("  node [shape=circle, fontsize=8];")
        for (src, dst), vals in sorted(self.cells.items()):
            w = vals[idx]
            if w <= 0:
                continue
            pen = 0.5 + 3.0 * w / peak
            lines.append(f'  {src} -> {dst} [penwidth={pen:.2f}, label="{w:.3g}"];')
        lines.append("}")
        return "\n".join(lines)

    def _weight_index(self, weight: str) -> int:
        try:
            return self._WEIGHTS[weight]
        except KeyError:
            raise ReproError(
                f"unknown weight {weight!r}; choose from {sorted(self._WEIGHTS)}"
            ) from None
