#!/usr/bin/env python
"""Health-monitor tour: catch a struggling coupled run *while it runs*.

Two sessions back to back:

1. a healthy configuration — the analyzer keeps up, the monitor stays
   quiet;
2. a deliberately under-provisioned one — a single analyzer rank drowning
   under many writers, so the monitor's online detectors (stream stalls,
   blackboard backlog, load imbalance) fire mid-simulation, stamped in
   virtual time long before the run ends.

Alerts travel three ways at once: into the monitor's own history, through
an :class:`AlertRouter` subscription (printed live below), and — dogfooding
the paper's architecture — as ``health_alert`` data entries consumed by a
knowledge source on the analyzer root's blackboard.

Run:  python examples/health_monitor.py
"""

from repro import CouplingSession
from repro.analysis.alerts import AlertRouter
from repro.apps import EulerMHD
from repro.telemetry import MonitorConfig, Telemetry


def run_session(name: str, nwriters: int, analyzer_nprocs: int) -> None:
    print(f"=== {name}: {nwriters} writers -> {analyzer_nprocs} analyzer rank(s) ===")
    tel = Telemetry()
    session = CouplingSession(seed=11, telemetry=tel)
    session.add_application(EulerMHD(nwriters, grid=512, iterations=4))
    session.set_analyzer(nprocs=analyzer_nprocs)

    router = AlertRouter()
    router.subscribe(lambda alert: print(f"  LIVE {alert.describe()}"))
    session.enable_monitor(
        config=MonitorConfig(interval=2e-4, window=1e-3), router=router
    )

    result = session.run()
    health = result.health
    print(f"  ticks={health['ticks']}  alerts={health['by_kind'] or 'none'}")
    print(f"  blackboard ingested {health['published_to_blackboard']} alert(s): "
          f"{result.analyzer_stats['health_ingest'] or '{}'}")
    report = result.report.render()
    if "## Health" in report:
        print()
        print(report[report.index("## Health") :])
    print()


def main() -> None:
    run_session("healthy", nwriters=8, analyzer_nprocs=4)
    run_session("undersized analyzer", nwriters=16, analyzer_nprocs=1)


if __name__ == "__main__":
    main()
